//! The **Proj** comparison system: projecting XML documents by full scan
//! (Marian & Siméon, VLDB'03; paper §5.1).
//!
//! PROJ walks the *entire* base document once and keeps every element
//! lying on one of the view's projection paths. Two semantic differences
//! from PDT generation, both called out in §4:
//!
//! * paths are treated in **isolation** — no twig constraints, so e.g.
//!   `books//book/isbn` keeps *all* books with isbns even when the view's
//!   `year > 1995` branch would prune them;
//! * every kept element's value is materialized, not a selective subset.
//!
//! The experiments time exactly this projection pass (the paper reports
//! Proj's projection cost alone, noting query processing would come on
//! top).

use std::time::{Duration, Instant};
use vxv_core::qpt::Qpt;
use vxv_index::pattern::{Axis as PAxis, PathPattern};
use vxv_xml::{Document, DocumentBuilder};

/// Work counters for one projection run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProjStats {
    /// Elements visited (always the whole document — that is the point).
    pub nodes_scanned: usize,
    /// Elements kept in the projection.
    pub nodes_kept: usize,
}

/// The projection paths of a QPT: one root-to-node pattern per probed
/// node (the paths whose data the view could need).
pub fn projection_paths(qpt: &Qpt) -> Vec<PathPattern> {
    qpt.probed_nodes().iter().map(|q| qpt.pattern(*q)).collect()
}

/// Project `doc` on `paths`: keep every element that lies on a prefix of
/// some path (isolated-path semantics), materializing its value.
pub fn project(doc: &Document, paths: &[PathPattern]) -> (Document, ProjStats, Duration) {
    let t0 = Instant::now();
    let mut stats = ProjStats::default();
    let Some(root) = doc.root() else {
        return (DocumentBuilder::new(doc.name(), 1).finish(), stats, t0.elapsed());
    };
    let ordinal = doc.node(root).dewey.components()[0];
    let mut b = DocumentBuilder::new(doc.name(), ordinal);

    // NFA states per pattern: indices of the next step to match. A state
    // i on entering an element with tag t advances to i+1 when step i
    // matches; descendant-axis steps also stay alive.
    type States = Vec<Vec<usize>>;
    let initial: States = paths.iter().map(|_| vec![0]).collect();

    fn advance(paths: &[PathPattern], states: &States, tag: &str) -> (States, bool) {
        let mut next: States = Vec::with_capacity(paths.len());
        let mut on_path = false;
        for (p, st) in paths.iter().zip(states) {
            let mut ns: Vec<usize> = Vec::new();
            for &i in st {
                if i >= p.steps.len() {
                    continue;
                }
                let step = &p.steps[i];
                if step.tag == tag {
                    on_path = true;
                    if i < p.steps.len() {
                        ns.push(i + 1);
                    }
                }
                if step.axis == PAxis::Descendant {
                    // The step may still match deeper.
                    ns.push(i);
                }
            }
            ns.sort_unstable();
            ns.dedup();
            next.push(ns);
        }
        (next, on_path)
    }

    fn rec(
        doc: &Document,
        node: vxv_xml::NodeId,
        paths: &[PathPattern],
        states: &States,
        b: &mut DocumentBuilder,
        stats: &mut ProjStats,
        depth: usize,
    ) {
        stats.nodes_scanned += 1;
        let tag = doc.node_tag(node);
        let (next, on_path) = advance(paths, states, tag);
        // Keep the root unconditionally (a projected document needs one);
        // keep other elements only when they lie on a projection path.
        let keep = depth == 0 || on_path;
        if keep {
            stats.nodes_kept += 1;
            b.begin_with_dewey(tag, doc.node(node).dewey.clone());
            if let Some(t) = &doc.node(node).text {
                b.text(t); // PROJ materializes every kept value
            }
        }
        if keep || depth == 0 {
            for c in doc.children(node) {
                rec(doc, *c, paths, &next, b, stats, depth + 1);
            }
        } else {
            // Even pruned subtrees are *scanned* — PROJ reads the whole
            // document (no indices guide it past irrelevant regions).
            for d in doc.subtree(node) {
                let _ = doc.node(d);
                stats.nodes_scanned += 1;
            }
        }
        if keep {
            b.end();
        }
    }

    rec(doc, root, paths, &initial, &mut b, &mut stats, 0);
    (b.finish(), stats, t0.elapsed())
}

/// Project every document a QPT needs (convenience wrapper).
pub fn project_for_qpt(doc: &Document, qpt: &Qpt) -> (Document, ProjStats, Duration) {
    project(doc, &projection_paths(qpt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vxv_core::qpt::Qpt;
    use vxv_index::{Axis, ValuePredicate};
    use vxv_xml::Corpus;

    fn book_qpt() -> Qpt {
        let mut q = Qpt::new("books.xml");
        let books = q.add_node(None, Axis::Child, true, "books");
        let book = q.add_node(Some(books), Axis::Descendant, true, "book");
        q.node_mut(q.roots()[0]).v_ann = false;
        let isbn = q.add_node(Some(book), Axis::Child, false, "isbn");
        q.node_mut(isbn).v_ann = true;
        let title = q.add_node(Some(book), Axis::Child, false, "title");
        q.node_mut(title).c_ann = true;
        let year = q.add_node(Some(book), Axis::Child, true, "year");
        q.node_mut(year).preds.push(ValuePredicate::Gt("1995".into()));
        q
    }

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>A</title><year>1996</year><extra>zzz</extra></book>\
               <book><isbn>222</isbn><title>B</title><year>1990</year></book>\
               <unrelated><noise>n</noise></unrelated>\
             </books>",
        )
        .unwrap();
        c
    }

    #[test]
    fn keeps_isolated_paths_without_twig_pruning() {
        let c = corpus();
        let doc = c.doc("books.xml").unwrap();
        let (projected, stats, _) = project_for_qpt(doc, &book_qpt());
        // PROJ keeps BOTH books (no year>1995 twig filtering) — the
        // difference from PDTs the paper highlights.
        assert!(projected.node_by_dewey(&"1.1".parse().unwrap()).is_some());
        assert!(projected.node_by_dewey(&"1.2".parse().unwrap()).is_some());
        assert!(projected.node_by_dewey(&"1.2.1".parse().unwrap()).is_some());
        // But off-path elements are dropped.
        assert!(projected.node_by_dewey(&"1.1.4".parse().unwrap()).is_none()); // extra
        assert!(projected.node_by_dewey(&"1.3".parse().unwrap()).is_none()); // unrelated
                                                                             // The whole document was scanned.
        assert!(stats.nodes_scanned >= doc.len());
        assert!(stats.nodes_kept < doc.len());
    }

    #[test]
    fn values_are_materialized_for_kept_nodes() {
        let c = corpus();
        let doc = c.doc("books.xml").unwrap();
        let (projected, _, _) = project_for_qpt(doc, &book_qpt());
        let isbn = projected.node_by_dewey(&"1.2.1".parse().unwrap()).unwrap();
        assert_eq!(projected.value(isbn), Some("222"));
        let year = projected.node_by_dewey(&"1.2.3".parse().unwrap()).unwrap();
        assert_eq!(projected.value(year), Some("1990"));
    }

    #[test]
    fn empty_paths_project_to_root_only() {
        let c = corpus();
        let doc = c.doc("books.xml").unwrap();
        let (projected, _, _) = project(doc, &[]);
        assert_eq!(projected.len(), 1);
    }
}
