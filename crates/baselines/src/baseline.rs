//! The **Baseline** comparison system: materialize the entire view at
//! query time, then run the keyword search over the materialized result
//! (paper §5.1). This is what a conventional XML full-text engine that
//! "supports" views does — and what the paper's Fig. 13 shows taking 59
//! seconds on a 13 MB dataset, 58 of which are spent materializing.
//!
//! Because Theorem 4.1 promises identical scores between the virtual and
//! materialized strategies, this engine doubles as the *semantic oracle*
//! for the Efficient pipeline: integration tests assert hit-for-hit,
//! score-for-score equality.

use std::time::{Duration, Instant};
use vxv_core::scoring::{score_and_rank, ElementStats, KeywordMode, ScoringOutcome};
use vxv_core::{EngineError, SearchHit};
use vxv_index::tokenize::{normalize_keyword, token_counts};
use vxv_xml::Corpus;
use vxv_xquery::{atomize, parse_query, serialize_item, Evaluator};

/// Phase costs of a Baseline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineTimings {
    /// View evaluation + full materialization (dominates, per the paper).
    pub materialize: Duration,
    /// Tokenization, scoring, ranking.
    pub search: Duration,
}

impl BaselineTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.materialize + self.search
    }
}

/// Result of a Baseline run (same hit shape as the Efficient engine).
#[derive(Debug)]
pub struct BaselineOutcome {
    /// Ranked, materialized hits (same shape as the Efficient engine's).
    pub hits: Vec<SearchHit>,
    /// |V(D)| — size of the view.
    pub view_size: usize,
    /// Matching elements before the top-k cut.
    pub matching: usize,
    /// Per-keyword idf over the view.
    pub idf: Vec<f64>,
    /// Phase wall-clock costs.
    pub timings: BaselineTimings,
    /// Total bytes materialized (the whole view, not just the top-k).
    pub materialized_bytes: u64,
}

/// The materialize-then-search engine.
pub struct BaselineEngine<'c> {
    corpus: &'c Corpus,
}

impl<'c> BaselineEngine<'c> {
    /// Wrap a corpus (no indices needed — that is rather the point).
    pub fn new(corpus: &'c Corpus) -> Self {
        BaselineEngine { corpus }
    }

    /// Evaluate a view over a disk-backed store: read and parse every
    /// referenced document (the base-data access the Efficient pipeline
    /// avoids), then run the standard materialize-and-search path. The
    /// read+parse time is charged to the materialization phase, as it is
    /// work the query triggers.
    pub fn search_from_store(
        store: &vxv_xml::DiskStore,
        view: &str,
        keywords: &[&str],
        k: usize,
        mode: KeywordMode,
    ) -> Result<BaselineOutcome, EngineError> {
        let t0 = Instant::now();
        let corpus = store.read_all().map_err(|e| EngineError::UnknownDocument(e.to_string()))?;
        let load = t0.elapsed();
        let engine = BaselineEngine::new(&corpus);
        let mut out = engine.search(view, keywords, k, mode)?;
        // The materialized view goes back into document storage before the
        // traditional IR machinery can tokenize and index it (§1: systems
        // assume documents "can be parsed, tokenized and indexed when they
        // are loaded").
        let t1 = Instant::now();
        store.charge_write(out.materialized_bytes);
        out.timings.materialize += load + t1.elapsed();
        Ok(out)
    }

    /// Evaluate the view over base data, materialize every element,
    /// tokenize, score, and return the top `k`.
    pub fn search(
        &self,
        view: &str,
        keywords: &[&str],
        k: usize,
        mode: KeywordMode,
    ) -> Result<BaselineOutcome, EngineError> {
        let keywords: Vec<String> = keywords.iter().map(|s| normalize_keyword(s)).collect();
        let query = parse_query(view)?;

        let t0 = Instant::now();
        let evaluator = Evaluator::new(self.corpus, &query);
        let results = evaluator.eval_query(&query)?;
        // Materialize the *entire* view.
        let materialized: Vec<String> = results.iter().map(serialize_item).collect();
        let materialized_bytes: u64 = materialized.iter().map(|s| s.len() as u64).sum();
        let t_mat = t0.elapsed();

        let t1 = Instant::now();
        // Tokenize and index the materialized view (the "traditional IR"
        // step): one term-frequency map per view element.
        let stats: Vec<ElementStats> = results
            .iter()
            .zip(&materialized)
            .map(|(item, xml)| {
                let text = atomize(item);
                let index: std::collections::HashMap<String, u32> =
                    token_counts(&text).into_iter().collect();
                ElementStats {
                    tf: keywords.iter().map(|kw| index.get(kw).copied().unwrap_or(0)).collect(),
                    byte_len: xml.len() as u64,
                }
            })
            .collect();
        let ScoringOutcome { top, matching, idf, view_size } = score_and_rank(&stats, mode, k);
        let hits: Vec<SearchHit> = top
            .into_iter()
            .enumerate()
            .map(|(i, s)| SearchHit {
                rank: i + 1,
                score: s.score,
                tf: s.tf,
                byte_len: s.byte_len,
                xml: materialized[s.index].clone(),
            })
            .collect();
        let t_search = t1.elapsed();

        Ok(BaselineOutcome {
            hits,
            view_size,
            matching,
            idf,
            timings: BaselineTimings { materialize: t_mat, search: t_search },
            materialized_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>1</isbn><title>XML search</title><year>2000</year></book>\
               <book><isbn>2</isbn><title>Cooking</title><year>2005</year></book>\
             </books>",
        )
        .unwrap();
        c
    }

    #[test]
    fn materializes_and_ranks() {
        let c = corpus();
        let engine = BaselineEngine::new(&c);
        let out = engine
            .search(
                "for $b in fn:doc(books.xml)/books/book where $b/year > 1999 \
                 return <hit> { $b/title } </hit>",
                &["xml"],
                10,
                KeywordMode::Conjunctive,
            )
            .unwrap();
        assert_eq!(out.view_size, 2);
        assert_eq!(out.matching, 1);
        assert_eq!(out.hits[0].xml, "<hit><title>XML search</title></hit>");
        // The whole view was materialized, not just the hit.
        assert!(out.materialized_bytes > out.hits[0].xml.len() as u64);
    }

    #[test]
    fn tf_counts_tokens_in_materialized_content() {
        let c = corpus();
        let engine = BaselineEngine::new(&c);
        let out = engine
            .search(
                "for $b in fn:doc(books.xml)/books/book return $b/title",
                &["xml", "search"],
                10,
                KeywordMode::Disjunctive,
            )
            .unwrap();
        assert_eq!(out.hits[0].tf, vec![1, 1]);
    }
}
