//! The **GTP + TermJoin** comparison system (paper §5.1, after Chen et
//! al. VLDB'03 and Al-Khalifa et al. SIGMOD'03 as implemented in Timber).
//!
//! It answers the same QPT matching problem as PDT generation, but the way
//! a structural-join engine does:
//!
//! * element streams come from the **tag index** — one sorted stream per
//!   query node tag, unrestricted by path, so streams are longer than the
//!   path index's lists;
//! * the twig is matched bottom-up with **structural merge joins**
//!   (ancestor/descendant semi-joins over Dewey-ordered streams), then a
//!   top-down pass enforces ancestor constraints;
//! * predicate and join values are **fetched from base data** (Timber's
//!   structure indices store no values), which the paper singles out as
//!   GTP's second cost driver.
//!
//! The matched elements form the same PDT as the Efficient pipeline (the
//! tests check this), so downstream evaluation/scoring is shared; the
//! experiments time the construction phase, mirroring the paper's
//! measurement of "structural joins + base data access".

use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use vxv_core::pdt::{Pdt, PdtElem};
use vxv_core::qpt::{Qpt, QptNodeId};
use vxv_index::{Axis, InvertedIndex, TagIndex};
use vxv_xml::{Corpus, DeweyId, Document};

/// Work counters of one GTP twig match.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GtpStats {
    /// Total tag-stream elements consumed.
    pub stream_elements: usize,
    /// Structural semi-join passes executed.
    pub joins: usize,
    /// Values fetched from base documents (predicates + v-nodes).
    pub base_value_fetches: usize,
}

/// The structural-join engine for one corpus.
pub struct GtpEngine<'c> {
    corpus: &'c Corpus,
    tag_index: TagIndex,
    inverted: InvertedIndex,
    /// When set, join/predicate values are fetched from disk-backed
    /// storage (Timber's structure indices store no values), making
    /// every value access a positioned read.
    store: Option<&'c vxv_xml::DiskStore>,
}

impl<'c> GtpEngine<'c> {
    /// Build the tag and inverted indices GTP+TermJoin consumes.
    pub fn new(corpus: &'c Corpus) -> Self {
        GtpEngine {
            corpus,
            tag_index: TagIndex::build(corpus),
            inverted: InvertedIndex::build(corpus),
            store: None,
        }
    }

    /// Route base-data value fetches through disk-backed storage.
    pub fn with_store(mut self, store: &'c vxv_xml::DiskStore) -> Self {
        self.store = Some(store);
        self
    }

    fn value_of(&self, doc: &Document, dewey: &DeweyId) -> Option<String> {
        match self.store {
            Some(store) => store.read_value(dewey).ok().flatten(),
            None => fetch_value(doc, dewey),
        }
    }

    /// Match `qpt` with structural joins and assemble the equivalent PDT.
    /// Returns the PDT, work counters, and the wall-clock of the match
    /// phase (what Fig. 13 charges to GTP).
    pub fn build_pdt(&self, qpt: &Qpt, keywords: &[String]) -> (Pdt, GtpStats, Duration) {
        let t0 = Instant::now();
        let mut stats = GtpStats::default();
        let doc = self
            .corpus
            .doc(&qpt.doc_name)
            .unwrap_or_else(|| panic!("unknown document {}", qpt.doc_name));
        let root = doc.root().expect("non-empty document");
        let ordinal = doc.node(root).dewey.components()[0];

        // Bottom-up candidate lists (descendant constraints), per QPT node.
        let order = bottom_up_order(qpt);
        let mut candidates: BTreeMap<QptNodeId, Vec<DeweyId>> = BTreeMap::new();
        for q in &order {
            let qn = qpt.node(*q);
            let stream = self.tag_index.stream(&qn.tag);
            stats.stream_elements += stream.len();
            let mut list: Vec<DeweyId> = stream
                .iter()
                .filter(|d| d.components().first() == Some(&ordinal))
                .cloned()
                .collect();
            if !qn.preds.is_empty() {
                // Predicate values come from base data.
                list.retain(|d| {
                    stats.base_value_fetches += 1;
                    self.value_of(doc, d)
                        .map(|v| qn.preds.iter().all(|p| p.eval(&v)))
                        .unwrap_or(false)
                });
            }
            for edge in qpt.mandatory_children(*q) {
                stats.joins += 1;
                let child_list = &candidates[&edge.child];
                list = structural_semi_join(&list, child_list, edge.axis);
            }
            candidates.insert(*q, list);
        }

        // Top-down ancestor constraints.
        let mut matched: BTreeMap<QptNodeId, Vec<DeweyId>> = BTreeMap::new();
        for q in order.iter().rev() {
            let qn = qpt.node(*q);
            let list = candidates.remove(q).unwrap();
            let kept = match qn.parent {
                None => match qn.incoming_axis {
                    Axis::Child => list.into_iter().filter(|d| d.len() == 1).collect(),
                    Axis::Descendant => list,
                },
                Some(pq) => {
                    stats.joins += 1;
                    keep_with_matched_ancestor(&list, &matched[&pq], qn.incoming_axis)
                }
            };
            matched.insert(*q, kept);
        }

        // Assemble the PDT; values for probed nodes again from base data.
        let mut elements: BTreeMap<DeweyId, PdtElem> = BTreeMap::new();
        for q in qpt.node_ids() {
            let qn = qpt.node(q);
            let probed = qpt.probed(q);
            for d in &matched[&q] {
                let node_id = doc.node_by_dewey(d).expect("matched element exists");
                let slot = elements
                    .entry(d.clone())
                    .or_insert_with(|| PdtElem { tag: qn.tag.clone(), ..PdtElem::default() });
                if probed {
                    if slot.value.is_none() {
                        stats.base_value_fetches += 1;
                        slot.value = self.value_of(doc, d);
                    }
                    slot.byte_len = doc.node(node_id).byte_len;
                }
                slot.content |= qn.c_ann;
            }
        }
        let root_tag = doc.node_tag(root).to_string();
        let mut pdt = Pdt::assemble(&qpt.doc_name, &root_tag, ordinal, &elements, keywords.len());
        for (dewey, info) in pdt.info.iter_mut() {
            if let Some(tf) = &mut info.tf {
                for (k, kw) in keywords.iter().enumerate() {
                    tf[k] = self.inverted.subtree_tf(kw, dewey);
                }
            }
        }
        (pdt, stats, t0.elapsed())
    }
}

/// Children-before-parents traversal order of the QPT.
fn bottom_up_order(qpt: &Qpt) -> Vec<QptNodeId> {
    let mut order = Vec::with_capacity(qpt.len());
    fn rec(qpt: &Qpt, q: QptNodeId, out: &mut Vec<QptNodeId>) {
        for e in &qpt.node(q).children {
            rec(qpt, e.child, out);
        }
        out.push(q);
    }
    for r in qpt.roots() {
        rec(qpt, *r, &mut order);
    }
    order
}

fn fetch_value(doc: &Document, dewey: &DeweyId) -> Option<String> {
    doc.node_by_dewey(dewey).and_then(|n| doc.node(n).text.clone())
}

/// Dewey-order merge semi-join: ancestors (or parents) from `outer` that
/// have at least one match in `inner`.
fn structural_semi_join(outer: &[DeweyId], inner: &[DeweyId], axis: Axis) -> Vec<DeweyId> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for a in outer {
        while j < inner.len() && inner[j] < *a {
            j += 1;
        }
        // Scan this element's subtree range without consuming it (nested
        // outer elements may share descendants).
        let hi = a.subtree_upper_bound();
        let mut j2 = j;
        let mut hit = false;
        while j2 < inner.len() && inner[j2] < hi {
            let ok = match axis {
                Axis::Child => a.is_parent_of(&inner[j2]),
                Axis::Descendant => a.is_ancestor_of(&inner[j2]),
            };
            if ok {
                hit = true;
                break;
            }
            j2 += 1;
        }
        if hit {
            out.push(a.clone());
        }
    }
    out
}

/// Keep the elements of `list` that have a parent (child axis) or strict
/// ancestor (descendant axis) in the Dewey-ordered `parents`.
fn keep_with_matched_ancestor(list: &[DeweyId], parents: &[DeweyId], axis: Axis) -> Vec<DeweyId> {
    let mut out = Vec::new();
    let mut stack: Vec<&DeweyId> = Vec::new();
    let mut pi = 0usize;
    for d in list {
        while pi < parents.len() && parents[pi] < *d {
            stack.push(&parents[pi]);
            pi += 1;
        }
        while let Some(top) = stack.last() {
            if top.is_prefix_of(d) {
                break;
            }
            stack.pop();
        }
        let ok = match axis {
            Axis::Child => stack.iter().any(|p| p.is_parent_of(d)),
            Axis::Descendant => stack.iter().any(|p| p.is_ancestor_of(d)),
        };
        if ok {
            out.push(d.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vxv_core::oracle::oracle_pdt;
    use vxv_index::ValuePredicate;

    fn book_qpt() -> Qpt {
        let mut q = Qpt::new("books.xml");
        let books = q.add_node(None, Axis::Child, true, "books");
        let book = q.add_node(Some(books), Axis::Descendant, true, "book");
        let isbn = q.add_node(Some(book), Axis::Child, false, "isbn");
        q.node_mut(isbn).v_ann = true;
        let title = q.add_node(Some(book), Axis::Child, false, "title");
        q.node_mut(title).c_ann = true;
        let year = q.add_node(Some(book), Axis::Child, true, "year");
        q.node_mut(year).preds.push(ValuePredicate::Gt("1995".into()));
        q
    }

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>New XML search</title><year>1996</year></book>\
               <book><isbn>222</isbn><title>Old</title><year>1990</year></book>\
               <shelf><book><isbn>333</isbn><title>Deep</title><year>2001</year></book></shelf>\
             </books>",
        )
        .unwrap();
        c
    }

    #[test]
    fn gtp_pdt_matches_the_oracle() {
        let c = corpus();
        let engine = GtpEngine::new(&c);
        let kws = vec!["xml".to_string(), "search".to_string()];
        let (pdt, stats, _) = engine.build_pdt(&book_qpt(), &kws);
        let doc = c.doc("books.xml").unwrap();
        let inv = InvertedIndex::build(&c);
        let oracle = oracle_pdt(doc, &book_qpt(), &inv, &kws);
        let got: Vec<String> = pdt.info.keys().map(|d| d.to_string()).collect();
        let want: Vec<String> = oracle.info.keys().map(|d| d.to_string()).collect();
        assert_eq!(got, want);
        for (d, want_info) in &oracle.info {
            assert_eq!(pdt.node_info(d).unwrap(), want_info, "at {d}");
        }
        assert!(stats.base_value_fetches > 0, "GTP must touch base data");
        assert!(stats.joins >= 3);
    }

    #[test]
    fn structural_semi_join_child_vs_descendant() {
        let d = |s: &str| s.parse::<DeweyId>().unwrap();
        let outer = vec![d("1.1"), d("1.2"), d("1.3")];
        let inner = vec![d("1.1.5"), d("1.2.4.2")];
        assert_eq!(structural_semi_join(&outer, &inner, Axis::Child), vec![d("1.1")]);
        assert_eq!(
            structural_semi_join(&outer, &inner, Axis::Descendant),
            vec![d("1.1"), d("1.2")]
        );
    }

    #[test]
    fn nested_outer_elements_share_descendants() {
        let d = |s: &str| s.parse::<DeweyId>().unwrap();
        let outer = vec![d("1"), d("1.1")];
        let inner = vec![d("1.1.1")];
        assert_eq!(structural_semi_join(&outer, &inner, Axis::Descendant), vec![d("1"), d("1.1")]);
    }

    #[test]
    fn ancestor_filter_respects_axis() {
        let d = |s: &str| s.parse::<DeweyId>().unwrap();
        let list = vec![d("1.1.1"), d("1.2.9.1")];
        let parents = vec![d("1.1"), d("1.2")];
        assert_eq!(keep_with_matched_ancestor(&list, &parents, Axis::Child), vec![d("1.1.1")]);
        assert_eq!(
            keep_with_matched_ancestor(&list, &parents, Axis::Descendant),
            vec![d("1.1.1"), d("1.2.9.1")]
        );
    }
}
