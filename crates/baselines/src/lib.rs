#![warn(missing_docs)]
//! # vxv-baselines — the paper's comparison systems
//!
//! The three alternatives the evaluation (§5) measures the Efficient
//! pipeline against:
//!
//! * [`BaselineEngine`] — materialize the whole view at query time, then
//!   search it (also the semantic oracle for Theorem 4.1 equality tests);
//! * [`GtpEngine`] — GTP with TermJoin: structural merge joins over tag
//!   streams plus base-data value fetches, Timber-style;
//! * [`proj`] — XML document projection by full scan (Marian & Siméon).

pub mod baseline;
pub mod gtp;
pub mod proj;

pub use baseline::{BaselineEngine, BaselineOutcome, BaselineTimings};
pub use gtp::{GtpEngine, GtpStats};
pub use proj::{project, project_for_qpt, projection_paths, ProjStats};
