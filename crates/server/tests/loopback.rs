//! Loopback integration: concurrent clients, byte-identity with direct
//! searches, deadline propagation, protocol robustness. Every server
//! binds `127.0.0.1:0` — no real network is touched.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vxv_core::tenant::TenantId;
use vxv_core::{SearchRequest, ViewCatalog, ViewSearchEngine};
use vxv_server::{serve, Client, ServerConfig};
use vxv_xml::Corpus;

fn corpus() -> Corpus {
    let mut c = Corpus::new();
    for (name, body) in [
        (
            "books.xml",
            "<books>\
               <book><title>xml keyword search</title><year>2004</year>\
                 <blurb>search over virtual xml views with ranked keyword search</blurb></book>\
               <book><title>database systems</title><year>2001</year>\
                 <blurb>relational database engines and query planning</blurb></book>\
               <book><title>xml databases</title><year>2005</year>\
                 <blurb>storing xml inside a database with indexes</blurb></book>\
             </books>",
        ),
        (
            "papers.xml",
            "<papers>\
               <paper><title>virtual views</title><year>2007</year>\
                 <abstract>efficient keyword search over virtual xml views</abstract></paper>\
               <paper><title>ranking functions</title><year>2003</year>\
                 <abstract>tf idf scoring for xml element ranking</abstract></paper>\
             </papers>",
        ),
    ] {
        c.add_parsed(name, body).unwrap();
    }
    c
}

const BOOKS_VIEW: &str = "for $b in fn:doc(books.xml)/books/book \
     where $b/year > 2000 return <hit> { $b/title } { $b/blurb } </hit>";
const PAPERS_VIEW: &str = "for $p in fn:doc(papers.xml)/papers/paper \
     return <hit> { $p/title } { $p/abstract } </hit>";

fn catalog() -> Arc<ViewCatalog> {
    Arc::new(ViewCatalog::new(ViewSearchEngine::new(corpus())))
}

/// K client threads against one server: every response must be
/// bit-identical to a direct `PreparedView::search` — same score bits,
/// same idf bits, same XML, same order.
#[test]
fn concurrent_clients_are_byte_identical_to_direct_searches() {
    let catalog = catalog();
    catalog.register("books", BOOKS_VIEW).unwrap();
    catalog.register("papers", PAPERS_VIEW).unwrap();
    let server = serve(Arc::clone(&catalog), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    let cases: Vec<(&str, Vec<&str>)> = vec![
        ("books", vec!["xml"]),
        ("books", vec!["xml", "search"]),
        ("books", vec!["database"]),
        ("papers", vec!["keyword", "search"]),
        ("papers", vec!["ranking"]),
    ];
    let direct: Vec<_> = cases
        .iter()
        .map(|(name, kws)| catalog.get(name).unwrap().search(&SearchRequest::new(kws)).unwrap())
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..8 {
            let cases = &cases;
            let direct = &direct;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..4 {
                    let i = (worker + round) % cases.len();
                    let (name, kws) = &cases[i];
                    let wire = client.search("public", name, &[], kws).unwrap();
                    let want = &direct[i];
                    assert_eq!(wire.matching, want.matching, "{name} {kws:?}");
                    assert_eq!(wire.view_size, want.view_size);
                    assert_eq!(wire.idf.len(), want.idf.len());
                    for (w, d) in wire.idf.iter().zip(&want.idf) {
                        assert_eq!(w.to_bits(), d.to_bits(), "idf bits for {name} {kws:?}");
                    }
                    assert_eq!(wire.hits.len(), want.hits.len());
                    for (w, d) in wire.hits.iter().zip(&want.hits) {
                        assert_eq!(w.rank, d.rank);
                        assert_eq!(
                            w.score.to_bits(),
                            d.score.to_bits(),
                            "score bits for {name} {kws:?}"
                        );
                        assert_eq!(w.tf, d.tf);
                        assert_eq!(w.byte_len, d.byte_len);
                        assert_eq!(w.xml, d.xml, "hit XML for {name} {kws:?}");
                    }
                }
                client.quit().unwrap();
            });
        }
    });

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.admission.shed, 0, "default limits never shed this load");
    assert_eq!(stats.admission.admitted, 32);
}

/// The whole command surface over one connection: register, search with
/// options, quota read-back, stats, segments, and typed errors.
#[test]
fn full_command_surface_over_the_wire() {
    let catalog = catalog();
    let server = serve(Arc::clone(&catalog), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    client.ping().unwrap();
    client.register("acme", "books", BOOKS_VIEW).unwrap();
    assert_eq!(catalog.names_for(&TenantId::new("acme")), vec!["books".to_string()]);

    // Options: top-k cut and disjunctive matching both apply.
    let wire =
        client.search("acme", "books", &["top=1", "mode=any"], &["xml", "relational"]).unwrap();
    assert_eq!(wire.hits.len(), 1);
    assert!(wire.matching >= 2, "disjunctive matches more than conjunctive");

    // materialize=0: scores flow, XML stays home.
    let bare = client.search("acme", "books", &["materialize=0"], &["xml"]).unwrap();
    assert!(!bare.hits.is_empty());
    assert!(bare.hits.iter().all(|h| h.xml.is_empty()));
    assert_eq!(bare.hits[0].score.to_bits(), {
        let direct = catalog
            .get_for(&TenantId::new("acme"), "books")
            .unwrap()
            .search(&SearchRequest::new(["xml"]))
            .unwrap();
        direct.hits[0].score.to_bits()
    });

    // Unknown views and malformed lines are typed, and the connection
    // survives both.
    let err = client.search("acme", "nope", &[], &["xml"]).unwrap_err();
    assert_eq!(err.fault().unwrap().code, "not-found");
    let err = client.request_line("frobnicate the server").unwrap_err();
    assert_eq!(err.fault().unwrap().code, "bad-request");
    client.ping().unwrap();

    // Quotas echo back effective values; stats carry the tenant line.
    let reply = client.quota("acme", &["concurrent=3", "queue=2"]).unwrap();
    assert!(reply.contains("concurrent=3") && reply.contains("queue=2"), "{reply}");
    let stats = client.stats(Some("acme")).unwrap();
    let tenant_line = stats.iter().find(|l| l.starts_with("tenant acme")).unwrap();
    assert!(tenant_line.contains("admitted 2"), "{tenant_line}");
    assert!(tenant_line.contains("completed 2"), "{tenant_line}");

    let (header, body) = client.request_block("segments").unwrap();
    assert_eq!(header, "ok segments 1");
    assert_eq!(body.len(), 1);
    assert!(body[0].starts_with("segment "), "{}", body[0]);

    // Batch: one line per entry, errors typed per entry.
    let (header, body) = client.request_block("batch acme books:xml nope:xml").unwrap();
    assert_eq!(header, "ok batch 2");
    assert!(body[0].starts_with("result 0 ok hits"), "{}", body[0]);
    assert!(body[1].starts_with("result 1 error not-found"), "{}", body[1]);

    client.quit().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.active, 0);
}

/// Deadline propagation hands the engine the *remaining* budget: a
/// request whose wire budget dies while queued behind a slow search is
/// answered `deadline-exceeded` without ever executing — under
/// original-budget semantics it would have run with a fresh 150 ms and
/// succeeded.
#[test]
fn queued_deadline_gets_remaining_budget_not_original() {
    let catalog = catalog();
    catalog.register("books", BOOKS_VIEW).unwrap();
    let mut config = ServerConfig::default();
    config.admission.max_in_flight = 1;
    config.service_delay = Some(Duration::from_millis(250));
    let server = serve(Arc::clone(&catalog), "127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    // Occupy the single execution slot for ~250 ms.
    let hold = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.search("public", "books", &[], &["xml"]).map(|_| ())
    });
    std::thread::sleep(Duration::from_millis(60));

    // 150 ms of budget cannot survive a ~190 ms queue wait.
    let mut client = Client::connect(addr).unwrap();
    let start = Instant::now();
    let err = client.search("public", "books", &["deadline-ms=150"], &["xml"]).unwrap_err();
    let waited = start.elapsed();
    assert!(err.is_deadline_exceeded(), "{err}");
    assert!(waited >= Duration::from_millis(100), "deadline honored, got {waited:?}");
    assert!(waited < Duration::from_millis(250), "did not wait for the slot, got {waited:?}");

    hold.join().unwrap().unwrap();
    // An ample budget queued behind the same kind of load still runs.
    let ok = client.search("public", "books", &["deadline-ms=5000"], &["xml"]).unwrap();
    assert!(!ok.hits.is_empty());

    let tenant = catalog.tenants().tenant(&TenantId::public()).stats();
    assert_eq!(tenant.deadline_exceeded, 1);
    assert_eq!(tenant.completed, 2);
    server.shutdown();
}

/// Shutdown stops accepting and joins every handler; a final
/// unterminated request line (EOF without newline) is still answered.
#[test]
fn shutdown_joins_and_eof_half_lines_are_served() {
    let catalog = catalog();
    catalog.register("books", BOOKS_VIEW).unwrap();
    let server = serve(Arc::clone(&catalog), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Send a request with no trailing newline, then shut the write half:
    // the handler sees EOF with a pending half-line and must answer it.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"ping").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reply = String::new();
        BufReader::new(&mut stream).read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), "ok pong");
    }

    let stats = server.shutdown();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.active, 0, "every handler joined");
    // The listener is gone: new connections are refused (or reset).
    let late = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    if let Ok(stream) = late {
        use std::io::Read;
        let mut buf = [0u8; 1];
        let _ = stream.try_clone().and_then(|mut s| {
            s.set_read_timeout(Some(Duration::from_millis(200)))?;
            let n = s.read(&mut buf)?;
            assert_eq!(n, 0, "no server behind the socket");
            Ok(())
        });
    }
}

/// The write path over the wire: `ingest` lands in the WAL + memtable
/// and is searchable before any flush; counters surface in `stats`; a
/// multi-line document survives the line escaping round trip.
#[test]
fn wire_ingest_is_durable_and_immediately_searchable() {
    let dir = std::env::temp_dir().join(format!("vxv-wire-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("wal.vxl");

    let engine = ViewSearchEngine::new(corpus());
    engine.enable_writes(&wal, vxv_core::WriteConfig::default()).unwrap();
    let catalog = Arc::new(ViewCatalog::new(engine.clone()));
    catalog.register("books", BOOKS_VIEW).unwrap();
    let server = serve(Arc::clone(&catalog), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    let mut client = Client::connect(addr).unwrap();
    let xml = "<books>\n  <book><title>streamed xml</title><year>2024</year>\
               \n    <blurb>wire ingest durability</blurb></book>\n</books>";
    let ack = client.ingest("acme", "fresh.xml", xml).unwrap();
    assert!(ack.starts_with("ok ingested fresh.xml segment "), "{ack}");

    // Searchable before any flush, through a view over the new doc.
    catalog
        .register(
            "fresh",
            "for $b in fn:doc(fresh.xml)/books/book return <hit> { $b/title } { $b/blurb } </hit>",
        )
        .unwrap();
    let out = client.search("public", "fresh", &[], &["durability"]).unwrap();
    assert_eq!(out.hits.len(), 1);
    assert!(out.hits[0].xml.contains("wire ingest durability"), "{}", out.hits[0].xml);

    // Duplicate names are rejected with a typed wire error.
    let err = client.ingest("acme", "fresh.xml", "<r/>").unwrap_err();
    assert!(format!("{err}").contains("already exists"), "{err}");

    // Write counters ride the stats block.
    let stats = client.stats(None).unwrap();
    let writes = stats.iter().find(|l| l.starts_with("writes ")).expect("writes line");
    assert!(writes.contains("enabled 1"), "{writes}");
    assert!(writes.contains("wal-appends 1"), "{writes}");
    assert!(writes.contains("memtable-entries 1"), "{writes}");

    server.shutdown();
    drop(catalog);
    drop(engine); // joins the compactor, syncs the WAL

    // The acknowledged write is on disk: a fresh engine replays it.
    let recovered = ViewSearchEngine::new(corpus());
    let report = recovered.enable_writes(&wal, vxv_core::WriteConfig::default()).unwrap();
    assert_eq!(report.records, 1);
    assert_eq!(report.documents, 1);
    assert!(recovered.doc_meta("fresh.xml").is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A sharded server behind `serve_sharded`: registers route to owning
/// shards, wire searches are byte-identical to a single-engine union
/// build, repeats are served by the result cache, ingests route by the
/// doc→shard map, and `shards`/`stats` report the topology and cache
/// counters.
#[test]
fn sharded_server_routes_and_caches_over_the_wire() {
    use vxv_core::{shard_of, ShardedCatalog};
    let sharded = Arc::new(ShardedCatalog::partition(&corpus(), 2));
    let server =
        vxv_server::serve_sharded(Arc::clone(&sharded), "127.0.0.1:0", ServerConfig::default())
            .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    client.register("public", "books", BOOKS_VIEW).unwrap();
    client.register("public", "papers", PAPERS_VIEW).unwrap();
    let tenant = TenantId::public();
    assert_eq!(sharded.route_of(&tenant, "books"), Some(sharded.shard_of_doc("books.xml")));
    assert_eq!(sharded.route_of(&tenant, "papers"), Some(sharded.shard_of_doc("papers.xml")));

    // Byte-identity with a single-engine union build, over the wire.
    let union = catalog();
    union.register("books", BOOKS_VIEW).unwrap();
    let want = union.get("books").unwrap().search(&SearchRequest::new(["xml", "search"])).unwrap();
    let wire = client.search("public", "books", &[], &["xml", "search"]).unwrap();
    assert_eq!(wire.hits.len(), want.hits.len());
    assert_eq!(wire.matching, want.matching);
    for (w, d) in wire.hits.iter().zip(&want.hits) {
        assert_eq!(w.score.to_bits(), d.score.to_bits(), "score bits");
        assert_eq!(w.xml, d.xml);
    }

    // The identical request again is answered from the result cache —
    // still byte-identical — and the hit counter says so.
    let before = sharded.cache_stats().hits;
    let again = client.search("public", "books", &[], &["xml", "search"]).unwrap();
    assert_eq!(again, wire);
    assert_eq!(sharded.cache_stats().hits, before + 1, "served from cache");

    // A view spanning both shards is rejected typed (when its two
    // documents actually hash apart; the map is deterministic).
    if shard_of("books.xml", 2) != shard_of("papers.xml", 2) {
        let cross = "for $b in fn:doc(books.xml)/books/book, \
                     $p in fn:doc(papers.xml)/papers/paper \
                     return <x> { $b/title } { $p/title } </x>";
        let err = client.register("public", "cross", cross).unwrap_err();
        assert_eq!(err.fault().unwrap().code, "bad-request", "{err}");
        assert!(format!("{err}").contains("spans shards"), "{err}");
    }

    // Ingest routes by hash (non-durable fallback; no write path here).
    client.ingest("public", "routed.xml", "<r><e>routed doc</e></r>").unwrap();
    let target = sharded.shard_of_doc("routed.xml");
    assert!(sharded.shard(target).engine().doc_meta("routed.xml").is_some());
    assert!(sharded.shard(1 - target).engine().doc_meta("routed.xml").is_none());

    // Topology and cache counters ride the wire.
    let shards = client.shards().unwrap();
    assert_eq!(shards.len(), 2);
    assert!(shards.iter().all(|l| l.starts_with("shard ")), "{shards:?}");
    assert!(shards.iter().any(|l| l.contains("cache-hits 1")), "{shards:?}");
    let stats = client.stats(None).unwrap();
    let cache = stats.iter().find(|l| l.starts_with("cache ")).expect("cache line");
    assert!(cache.contains("hits 1"), "{cache}");
    let engine = stats.iter().find(|l| l.starts_with("engine ")).expect("engine line");
    assert!(engine.contains("shards 2"), "{engine}");

    server.shutdown();
}

/// Without `enable_writes` the wire `ingest` still works (non-durable
/// in-memory path), so search-only deployments are unaffected.
#[test]
fn wire_ingest_without_write_path_falls_back_to_plain_ingest() {
    let catalog = catalog();
    let server = serve(Arc::clone(&catalog), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let ack = client.ingest("acme", "plain.xml", "<r><e>plain path</e></r>").unwrap();
    assert!(ack.starts_with("ok ingested plain.xml"), "{ack}");
    assert!(catalog.engine().doc_meta("plain.xml").is_some());
    let stats = client.stats(None).unwrap();
    let writes = stats.iter().find(|l| l.starts_with("writes ")).expect("writes line");
    assert!(writes.contains("enabled 0"), "{writes}");
    server.shutdown();
}

/// The positional query surface over the wire: phrase tokens quoted by
/// the client, proximity/prefix/boost tokens verbatim — every response
/// bit-identical to a direct `parse_terms` search, malformed terms and
/// positionless-index phrases failing with their typed codes.
#[test]
fn positional_terms_ride_the_wire_byte_identically() {
    let catalog = catalog();
    catalog.register("books", BOOKS_VIEW).unwrap();
    catalog.register("papers", PAPERS_VIEW).unwrap();
    let server = serve(Arc::clone(&catalog), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let cases: Vec<(&str, Vec<&str>)> = vec![
        ("books", vec!["keyword search"]),    // phrase → quoted on the wire
        ("papers", vec!["~3:virtual,views"]), // proximity
        ("books", vec!["data*"]),             // prefix union
        ("books", vec!["xml^2.5", "database"]), // boosted word + word
        ("papers", vec!["virtual views", "xml^0.5"]), // phrase + boosted word
    ];
    for (name, kws) in &cases {
        let direct =
            catalog.get(name).unwrap().search(&SearchRequest::parse_terms(kws).unwrap()).unwrap();
        let wire = client.search("public", name, &[], kws).unwrap();
        assert_eq!(wire.matching, direct.matching, "{name} {kws:?}");
        assert_eq!(wire.hits.len(), direct.hits.len(), "{name} {kws:?}");
        for (w, d) in wire.hits.iter().zip(&direct.hits) {
            assert_eq!(w.score.to_bits(), d.score.to_bits(), "score bits for {name} {kws:?}");
            assert_eq!(w.tf, d.tf, "{name} {kws:?}");
            assert_eq!(w.xml, d.xml, "{name} {kws:?}");
        }
    }

    // A malformed term is a typed bad request; the connection survives.
    let err = client.search("public", "books", &[], &["xml^zero"]).unwrap_err();
    assert_eq!(err.fault().unwrap().code, "bad-request", "{err}");
    let again = client.search("public", "books", &[], &["xml"]).unwrap();
    assert!(!again.hits.is_empty(), "connection stays usable after a bad term");

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "quoted phrases are valid protocol");
}
