//! Admission-control integration: saturation sheds with typed
//! retry-after (never hangs), tenant quotas isolate tenants, and the
//! connection cap degrades into rejections. Loopback only.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vxv_core::{ViewCatalog, ViewSearchEngine};
use vxv_server::{serve, Client, ServerConfig};
use vxv_xml::Corpus;

fn corpus() -> Corpus {
    let mut c = Corpus::new();
    c.add_parsed(
        "books.xml",
        "<books>\
           <book><title>xml search</title><year>2004</year></book>\
           <book><title>xml databases</title><year>2005</year></book>\
         </books>",
    )
    .unwrap();
    c
}

const VIEW: &str = "for $b in fn:doc(books.xml)/books/book return <hit> { $b/title } </hit>";

fn catalog() -> Arc<ViewCatalog> {
    let catalog = Arc::new(ViewCatalog::new(ViewSearchEngine::new(corpus())));
    catalog.register("books", VIEW).unwrap();
    catalog
}

/// With one execution slot and a zero-depth queue, concurrent overload
/// is answered promptly with `overloaded retry-after-ms=N` — no request
/// ever waits unboundedly, and the slot holder still completes.
#[test]
fn queue_overflow_sheds_with_retry_after_and_never_hangs() {
    let mut config = ServerConfig::default();
    config.admission.max_in_flight = 1;
    config.admission.queue_depth = 0;
    config.admission.retry_after = Duration::from_millis(7);
    config.service_delay = Some(Duration::from_millis(200));
    let server = serve(catalog(), "127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    let hold = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.search("public", "books", &[], &["xml"]).map(|r| r.hits.len())
    });
    std::thread::sleep(Duration::from_millis(60));

    let mut sheds = 0;
    std::thread::scope(|scope| {
        let sheds = &mut sheds;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let start = Instant::now();
                    let result = client.search("public", "books", &[], &["xml"]);
                    (result, start.elapsed())
                })
            })
            .collect();
        for handle in handles {
            let (result, elapsed) = handle.join().unwrap();
            let err = result.expect_err("no queue, one busy slot: must shed");
            assert!(err.is_overloaded(), "{err}");
            assert_eq!(err.fault().unwrap().retry_after_ms, Some(7));
            assert!(elapsed < Duration::from_millis(150), "shed promptly, not after {elapsed:?}");
            *sheds += 1;
        }
    });
    assert_eq!(sheds, 4);
    assert!(hold.join().unwrap().unwrap() > 0, "the admitted search completed");

    let stats = server.shutdown();
    assert_eq!(stats.admission.shed, 4);
    assert_eq!(stats.admission.admitted, 1);
    assert_eq!(stats.protocol_errors, 0);
}

/// Per-tenant quota exhaustion sheds only that tenant: `starved`
/// (concurrent=0, queue=0) is rejected while `healthy` — same server,
/// same instant — completes.
#[test]
fn tenant_quota_exhaustion_sheds_only_that_tenant() {
    let catalog = catalog();
    let server = serve(Arc::clone(&catalog), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut admin = Client::connect(server.addr()).unwrap();
    admin.register("starved", "books", VIEW).unwrap();
    admin.register("healthy", "books", VIEW).unwrap();
    admin.quota("starved", &["concurrent=0", "queue=0"]).unwrap();

    let mut starved_client = Client::connect(server.addr()).unwrap();
    let err = starved_client.search("starved", "books", &[], &["xml"]).unwrap_err();
    assert!(err.is_overloaded(), "{err}");

    let mut healthy_client = Client::connect(server.addr()).unwrap();
    let ok = healthy_client.search("healthy", "books", &[], &["xml"]).unwrap();
    assert!(!ok.hits.is_empty());

    let starved = catalog.tenants().tenant(&"starved".into()).stats();
    let healthy = catalog.tenants().tenant(&"healthy".into()).stats();
    assert_eq!((starved.shed, starved.admitted), (1, 0));
    assert_eq!((healthy.shed, healthy.admitted, healthy.completed), (0, 1, 1));

    // Lifting the quota un-sheds the tenant on the spot.
    admin.quota("starved", &["concurrent=8", "queue=8"]).unwrap();
    let ok = starved_client.search("starved", "books", &[], &["xml"]).unwrap();
    assert!(!ok.hits.is_empty());
    server.shutdown();
}

/// `max_views` is enforced across the wire with a typed code, and
/// re-registering an existing name is replacement, not growth.
#[test]
fn view_quota_is_typed_over_the_wire() {
    let server = serve(catalog(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.quota("small", &["views=1"]).unwrap();
    client.register("small", "one", VIEW).unwrap();
    let err = client.register("small", "two", VIEW).unwrap_err();
    assert_eq!(err.fault().unwrap().code, "quota-exceeded");
    client.register("small", "one", VIEW).expect("replacement consumes no quota");
    server.shutdown();
}

/// Past `max_connections`, new connections receive one typed
/// `overloaded` line and are closed — a connection flood cannot stall
/// established clients.
#[test]
fn connection_cap_rejects_with_typed_overload() {
    let config = ServerConfig { max_connections: 1, ..Default::default() };
    let server = serve(catalog(), "127.0.0.1:0", config).unwrap();
    let mut first = Client::connect(server.addr()).unwrap();
    first.ping().unwrap(); // guarantees the first connection is accepted

    // The server pushes one error line at the rejected connection and
    // closes it without waiting for a request.
    {
        use std::io::{BufRead, BufReader};
        let second = std::net::TcpStream::connect(server.addr()).unwrap();
        second.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut reply = String::new();
        BufReader::new(second).read_line(&mut reply).unwrap();
        let fault = vxv_server::proto::parse_error(reply.trim_end()).unwrap();
        assert_eq!(fault.code, "overloaded");
        assert!(fault.retry_after_ms.is_some(), "{reply}");
    }

    // The established client is unaffected.
    first.ping().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.active, 0);
}
