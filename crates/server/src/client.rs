//! A small blocking client for the wire protocol — what the integration
//! tests, the load generator, and scripted drivers use.
//!
//! The client is strictly lockstep: one request line out, one response
//! (single- or multi-line, fixed per command) back. Typed helpers parse
//! responses into [`crate::proto::WireSearch`] / [`crate::proto::
//! WireFault`], so callers branch on error *codes* (`overloaded`,
//! `deadline-exceeded`, …) instead of string-matching messages.

use crate::proto::{self, WireFault, WireSearch};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// What a request can come back as.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed mid-request.
    Io(std::io::Error),
    /// The server's bytes didn't parse as the protocol.
    Protocol(String),
    /// A well-formed `error <code> ...` response.
    Server(WireFault),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
            ClientError::Server(fault) => {
                write!(f, "server: {} {}", fault.code, fault.detail)
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server fault, if this is a typed server error.
    pub fn fault(&self) -> Option<&WireFault> {
        match self {
            ClientError::Server(fault) => Some(fault),
            _ => None,
        }
    }

    /// True when the server shed this request with `overloaded` (the
    /// caller should back off `retry_after_ms` and retry).
    pub fn is_overloaded(&self) -> bool {
        self.fault().is_some_and(|f| f.code == proto::code::OVERLOADED)
    }

    /// True when the request's deadline expired (queued or executing).
    pub fn is_deadline_exceeded(&self) -> bool {
        self.fault().is_some_and(|f| f.code == proto::code::DEADLINE_EXCEEDED)
    }
}

/// One blocking protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server (tests: [`crate::ServerHandle::addr`]).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// The peer address.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.writer.peer_addr()
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_response_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed mid-response".into()));
        }
        Ok(line.trim_end_matches(['\n', '\r']).to_string())
    }

    /// Send one request line and read a **single-line** response.
    /// `error` responses become [`ClientError::Server`].
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        self.send(line)?;
        let reply = self.read_response_line()?;
        if let Some(fault) = proto::parse_error(&reply) {
            return Err(ClientError::Server(fault));
        }
        Ok(reply)
    }

    /// Send one request line and read a **multi-line** response: an `ok`
    /// header, body lines, and the closing `.`. A single `error` line
    /// (sheds, deadline trips, 404s) becomes [`ClientError::Server`].
    pub fn request_block(&mut self, line: &str) -> Result<(String, Vec<String>), ClientError> {
        self.send(line)?;
        let header = self.read_response_line()?;
        if let Some(fault) = proto::parse_error(&header) {
            return Err(ClientError::Server(fault));
        }
        let mut body = Vec::new();
        loop {
            let line = self.read_response_line()?;
            if line == "." {
                return Ok((header, body));
            }
            body.push(line);
        }
    }

    /// `ping` → server liveness.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let reply = self.request_line("ping")?;
        if reply == "ok pong" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("unexpected ping reply '{reply}'")))
        }
    }

    /// Register `view_text` as `tenant`'s view `name`. The text may span
    /// lines; it is escaped onto the wire.
    pub fn register(
        &mut self,
        tenant: &str,
        name: &str,
        view_text: &str,
    ) -> Result<(), ClientError> {
        let line = format!("register {tenant} {name} {}", proto::escape_line(view_text));
        self.request_line(&line).map(|_| ())
    }

    /// Durably append document `name` with `xml` as `tenant`. The XML
    /// may span lines; it is escaped onto the wire. Returns the server's
    /// acknowledgement line (`ok ingested <name> segment <id> …`).
    pub fn ingest(&mut self, tenant: &str, name: &str, xml: &str) -> Result<String, ClientError> {
        let line = format!("ingest {tenant} {name} {}", proto::escape_line(xml));
        self.request_line(&line)
    }

    /// Search `tenant`'s view `name`. `options` are raw `key=value`
    /// tokens (`top=5`, `mode=any`, `deadline-ms=100`, `materialize=0`);
    /// pass `&[]` for defaults. Each keyword token is one query term
    /// (`xml`, `auto*`, `~3:virtual,views`, `xml^2.5`, or a phrase with
    /// interior spaces — quoted automatically via
    /// [`proto::quote_token`]).
    pub fn search(
        &mut self,
        tenant: &str,
        name: &str,
        options: &[&str],
        keywords: &[&str],
    ) -> Result<WireSearch, ClientError> {
        let mut line = format!("search {tenant} {name}");
        for opt in options {
            line.push(' ');
            line.push_str(opt);
        }
        for kw in keywords {
            line.push(' ');
            line.push_str(&proto::quote_token(kw));
        }
        let (header, body) = self.request_block(&line)?;
        proto::parse_search_response(&header, &body).map_err(ClientError::Protocol)
    }

    /// Set `tenant`'s quotas; `settings` are `views=N` / `concurrent=N`
    /// / `queue=N` tokens.
    pub fn quota(&mut self, tenant: &str, settings: &[&str]) -> Result<String, ClientError> {
        let mut line = format!("quota {tenant}");
        for s in settings {
            line.push(' ');
            line.push_str(s);
        }
        self.request_line(&line)
    }

    /// `stats [tenant]` → the raw stat lines.
    pub fn stats(&mut self, tenant: Option<&str>) -> Result<Vec<String>, ClientError> {
        let line = match tenant {
            Some(t) => format!("stats {t}"),
            None => "stats".to_string(),
        };
        let (_, body) = self.request_block(&line)?;
        Ok(body)
    }

    /// `shards` → the raw per-shard topology lines.
    pub fn shards(&mut self) -> Result<Vec<String>, ClientError> {
        let (_, body) = self.request_block("shards")?;
        Ok(body)
    }

    /// `quit` — ask the server to close this connection.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.request_line("quit").map(|_| ())
    }
}
