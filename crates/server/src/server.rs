//! The accept loop, per-connection handlers, and request execution.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionSnapshot, AdmitError};
use crate::proto::{self, code, Command, SearchOpts};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vxv_core::tenant::{TenantId, TenantRegistry};
use vxv_core::{
    CatalogStats, EngineError, PreparedView, SearchRequest, ShardedCatalog, ViewCatalog,
    ViewSearchEngine,
};
use vxv_xml::DocumentSource;

/// Everything tunable about a server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Concurrent connections; further accepts are told `overloaded` and
    /// closed.
    pub max_connections: usize,
    /// The admission-queue knobs (global in-flight cap, queue depth,
    /// retry-after, max queue wait).
    pub admission: AdmissionConfig,
    /// Searches one connection's `batch` command may run at once (the
    /// per-connection in-flight limit; single `search` commands are
    /// sequential per connection by construction).
    pub max_conn_in_flight: usize,
    /// `top` when a search names none.
    pub default_top_k: usize,
    /// How often blocked reads wake up to check for shutdown.
    pub poll_interval: Duration,
    /// Test-only fault injection: stall every admitted search this long
    /// before executing, so tests can hold permits predictably.
    pub service_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            admission: AdmissionConfig::default(),
            max_conn_in_flight: 4,
            default_top_k: 10,
            poll_interval: Duration::from_millis(100),
            service_delay: None,
        }
    }
}

/// Server-level counter snapshot (admission gauges included).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted, lifetime.
    pub connections: u64,
    /// Connections open right now.
    pub active: usize,
    /// Connections refused by the connection cap.
    pub rejected: u64,
    /// Request lines processed, lifetime.
    pub requests: u64,
    /// Request lines that failed to parse.
    pub protocol_errors: u64,
    /// The admission controller's gauges and counters.
    pub admission: AdmissionSnapshot,
}

/// What a server fronts: one catalog, or N of them behind the
/// scatter-gather router. Both arms answer the same verbs, so the
/// connection handlers never care which is behind them; the sharded arm
/// routes by the deterministic doc→shard map
/// ([`vxv_core::shard_of`]) exactly like direct [`ShardedCatalog`] use.
enum Backend<S: DocumentSource> {
    Single(Arc<ViewCatalog<S>>),
    Sharded(Arc<ShardedCatalog<S>>),
}

impl<S: DocumentSource> Backend<S> {
    fn tenants(&self) -> &TenantRegistry {
        match self {
            Backend::Single(c) => c.tenants(),
            Backend::Sharded(s) => s.tenants(),
        }
    }

    fn register(&self, tenant: &TenantId, name: &str, text: &str) -> Result<(), EngineError> {
        match self {
            Backend::Single(c) => c.register_for(tenant, name, text).map(|_| ()),
            Backend::Sharded(s) => s.register_for(tenant, name, text).map(|_| ()),
        }
    }

    fn get(&self, tenant: &TenantId, name: &str) -> Option<Arc<PreparedView<S>>> {
        match self {
            Backend::Single(c) => c.get_for(tenant, name),
            Backend::Sharded(s) => s.get_for(tenant, name),
        }
    }

    /// Append (durable) or ingest (search-only deployments) one
    /// document into the engine owning it — the single engine, or the
    /// shard its name hashes to.
    fn ingest(&self, name: &str, xml: &str) -> Result<vxv_core::IngestReport, EngineError> {
        let engine = match self {
            Backend::Single(c) => c.engine(),
            Backend::Sharded(s) => s.shard(s.shard_of_doc(name)).engine(),
        };
        if engine.writes_enabled() {
            engine.append([(name, xml)])
        } else {
            engine.ingest([(name, xml)])
        }
    }

    /// Every engine behind the facade, in shard order (a single catalog
    /// is shard 0 of 1).
    fn engines(&self) -> Vec<&ViewSearchEngine<S>> {
        match self {
            Backend::Single(c) => vec![c.engine()],
            Backend::Sharded(s) => (0..s.shard_count()).map(|i| s.shard(i).engine()).collect(),
        }
    }

    fn catalog_stats(&self) -> CatalogStats {
        match self {
            Backend::Single(c) => c.stats(),
            Backend::Sharded(s) => s.catalog_stats(),
        }
    }

    fn cache_stats(&self) -> vxv_core::CacheStats {
        match self {
            Backend::Single(c) => c.engine().result_cache().stats(),
            Backend::Sharded(s) => s.cache_stats(),
        }
    }

    /// Registered views per shard (the router's routes; a single
    /// catalog reports its named-view count).
    fn views_per_shard(&self) -> Vec<usize> {
        match self {
            Backend::Single(c) => vec![c.stats().named],
            Backend::Sharded(s) => s.routes_per_shard(),
        }
    }
}

struct Shared<S: DocumentSource> {
    backend: Backend<S>,
    config: ServerConfig,
    admission: Arc<AdmissionController>,
    active: AtomicUsize,
    connections: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A running server: address, live stats, and shutdown.
///
/// Dropping the handle does **not** stop the server; call
/// [`ServerHandle::shutdown`] (tests) or [`ServerHandle::join`] (the
/// CLI) explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    stats: Arc<dyn Fn() -> ServerStats + Send + Sync>,
}

impl ServerHandle {
    /// The bound address (with the OS-chosen port when `:0` was asked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters.
    pub fn stats(&self) -> ServerStats {
        (self.stats)()
    }

    /// Stop accepting, wake every connection handler, and join all
    /// threads. In-flight requests finish; idle connections close at
    /// their next poll tick.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown.store(true, Ordering::Release);
        // The accept loop blocks in `accept()`; a self-connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for worker in workers {
            let _ = worker.join();
        }
        (self.stats)()
    }

    /// Block until the server stops (it only stops via an external
    /// [`ServerHandle::shutdown`] — this is the CLI's foreground mode).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Bind `addr` and serve `catalog` until shutdown. Tests pass
/// `127.0.0.1:0` and read the real port from [`ServerHandle::addr`].
pub fn serve<S>(
    catalog: Arc<ViewCatalog<S>>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle>
where
    S: DocumentSource + Send + Sync + 'static,
{
    serve_backend(Backend::Single(catalog), addr, config)
}

/// Bind `addr` and serve a [`ShardedCatalog`] until shutdown: the same
/// wire protocol, with registers/searches routed to owning shards,
/// ingests routed by the doc→shard map, and the `shards` command
/// reporting per-shard topology.
pub fn serve_sharded<S>(
    sharded: Arc<ShardedCatalog<S>>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle>
where
    S: DocumentSource + Send + Sync + 'static,
{
    serve_backend(Backend::Sharded(sharded), addr, config)
}

fn serve_backend<S>(
    backend: Backend<S>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle>
where
    S: DocumentSource + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        backend,
        config,
        admission: AdmissionController::new(config.admission),
        active: AtomicUsize::new(0),
        connections: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        protocol_errors: AtomicU64::new(0),
    });
    let workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
    let shutdown = Arc::new(AtomicBool::new(false));

    let accept = {
        let shared = Arc::clone(&shared);
        let workers = Arc::clone(&workers);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                shared.connections.fetch_add(1, Ordering::Relaxed);
                if shared.active.load(Ordering::Acquire) >= shared.config.max_connections {
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let line = proto::format_error(
                        code::OVERLOADED,
                        Some(shared.config.admission.retry_after),
                        "connection limit reached",
                    );
                    let _ = writeln!(stream, "{line}");
                    continue;
                }
                shared.active.fetch_add(1, Ordering::AcqRel);
                let shared = Arc::clone(&shared);
                let conn_shutdown = Arc::clone(&shutdown);
                let handle = std::thread::spawn(move || {
                    handle_connection(&shared, &conn_shutdown, stream);
                    shared.active.fetch_sub(1, Ordering::AcqRel);
                });
                workers.lock().unwrap().push(handle);
            }
        })
    };

    let stats = {
        let shared = Arc::clone(&shared);
        Arc::new(move || ServerStats {
            connections: shared.connections.load(Ordering::Relaxed),
            active: shared.active.load(Ordering::Relaxed),
            rejected: shared.rejected.load(Ordering::Relaxed),
            requests: shared.requests.load(Ordering::Relaxed),
            protocol_errors: shared.protocol_errors.load(Ordering::Relaxed),
            admission: shared.admission.snapshot(),
        }) as Arc<dyn Fn() -> ServerStats + Send + Sync>
    };
    Ok(ServerHandle { addr, shutdown, accept: Some(accept), workers, stats })
}

/// One connection's read → dispatch → respond loop. Reads poll with a
/// short timeout so the shutdown flag is observed within
/// `poll_interval`; `BufRead::read_line` keeps partially-read bytes in
/// the buffer across such timeouts, so slow senders are never corrupted.
fn handle_connection<S: DocumentSource>(
    shared: &Arc<Shared<S>>,
    shutdown: &AtomicBool,
    stream: TcpStream,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => {
                // EOF; a final unterminated line still gets answered.
                if !line.trim().is_empty() {
                    let _ = respond(shared, line.trim_end_matches(['\n', '\r']), &mut writer);
                }
                return;
            }
            Ok(_) => {
                let quit = respond(shared, line.trim_end_matches(['\n', '\r']), &mut writer);
                line.clear();
                if quit {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Dispatch one request line and write its response. Returns whether the
/// connection should close.
fn respond<S: DocumentSource>(shared: &Arc<Shared<S>>, line: &str, writer: &mut TcpStream) -> bool {
    if line.trim().is_empty() {
        return false;
    }
    let arrival = Instant::now();
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let command = match proto::parse_command(line) {
        Ok(c) => c,
        Err(detail) => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return write_lines(writer, &[proto::format_error(code::BAD_REQUEST, None, &detail)]);
        }
    };
    let (lines, quit) = execute(shared, command, arrival);
    write_lines(writer, &lines) || quit
}

/// Write response lines; returns whether the connection broke.
fn write_lines(writer: &mut TcpStream, lines: &[String]) -> bool {
    for line in lines {
        if writeln!(writer, "{line}").is_err() {
            return true;
        }
    }
    writer.flush().is_err()
}

fn wire_error(e: &EngineError) -> String {
    let (code, retry_after, detail) = proto::engine_error_to_wire(e);
    proto::format_error(code, retry_after, &detail)
}

fn admit_error(e: AdmitError) -> String {
    match e {
        AdmitError::Shed { retry_after } => {
            proto::format_error(code::OVERLOADED, Some(retry_after), "admission queue full")
        }
        AdmitError::DeadlineExceeded => {
            proto::format_error(code::DEADLINE_EXCEEDED, None, "deadline expired while queued")
        }
    }
}

/// Run one command to its response lines. `arrival` anchors deadline
/// budgets: `deadline-ms` counts from the moment the request line was
/// read, so queue wait spends budget.
fn execute<S: DocumentSource>(
    shared: &Arc<Shared<S>>,
    command: Command,
    arrival: Instant,
) -> (Vec<String>, bool) {
    match command {
        Command::Ping => (vec!["ok pong".into()], false),
        Command::Quit => (vec!["ok bye".into()], true),
        Command::Register { tenant, name, view_text } => {
            let tenant = TenantId::new(tenant);
            match shared.backend.register(&tenant, &name, &view_text) {
                Ok(()) => (vec![format!("ok registered {tenant} {name}")], false),
                Err(e) => (vec![wire_error(&e)], false),
            }
        }
        Command::Ingest { tenant, name, xml } => {
            let tenant = TenantId::new(tenant);
            let lines = match run_ingest(shared, &tenant, &name, &xml, arrival) {
                Ok(report) => {
                    vec![format!(
                        "ok ingested {name} segment {} documents {}",
                        report.segment.id,
                        report.documents.len()
                    )]
                }
                Err(line) => vec![line],
            };
            (lines, false)
        }
        Command::Search { tenant, name, opts, keywords } => {
            let tenant = TenantId::new(tenant);
            let keywords: Vec<&str> = keywords.iter().map(String::as_str).collect();
            let lines = match run_search(shared, &tenant, &name, opts, &keywords, arrival) {
                Ok(resp) => proto::format_search_response(&resp),
                Err(line) => vec![line],
            };
            (lines, false)
        }
        Command::Batch { tenant, opts, entries } => {
            let tenant = TenantId::new(tenant);
            let width = shared.config.max_conn_in_flight.clamp(1, entries.len().max(1));
            let results = fan_out(&entries, width, |(name, keywords)| {
                let keywords: Vec<&str> = keywords.iter().map(String::as_str).collect();
                run_search(shared, &tenant, name, opts, &keywords, arrival)
            });
            let mut lines = Vec::with_capacity(results.len() + 2);
            lines.push(format!("ok batch {}", results.len()));
            for (i, result) in results.iter().enumerate() {
                match result {
                    Ok(resp) => {
                        let top = resp
                            .hits
                            .first()
                            .map(|h| format!("{}", h.score))
                            .unwrap_or_else(|| "-".into());
                        lines.push(format!(
                            "result {i} ok hits {} matching {} top {top}",
                            resp.hits.len(),
                            resp.matching
                        ));
                    }
                    Err(line) => lines.push(format!("result {i} {line}")),
                }
            }
            lines.push(".".into());
            (lines, false)
        }
        Command::Stats { tenant } => {
            let mut lines = vec!["ok stats".to_string()];
            let c = shared.backend.catalog_stats();
            let a = shared.admission.snapshot();
            lines.push(format!(
                "server active {} connections {} rejected {} requests {} protocol-errors {}",
                shared.active.load(Ordering::Relaxed),
                shared.connections.load(Ordering::Relaxed),
                shared.rejected.load(Ordering::Relaxed),
                shared.requests.load(Ordering::Relaxed),
                shared.protocol_errors.load(Ordering::Relaxed),
            ));
            lines.push(format!(
                "admission in-flight {} queued {} admitted {} shed {} queue-timeouts {}",
                a.in_flight, a.queued, a.admitted, a.shed, a.queue_timeouts
            ));
            lines.push(format!(
                "catalog named {} adhoc {} hits {} misses {} prepares {} refreshes {} \
                 evictions {}",
                c.named, c.adhoc, c.hits, c.misses, c.prepares, c.refreshes, c.evictions
            ));
            // Engine and write counters summed across shards (a single
            // catalog is one shard).
            let engines = shared.backend.engines();
            let (mut segments, mut documents) = (0usize, 0usize);
            let (mut scanned, mut skipped) = (0u64, 0u64);
            let mut w = vxv_core::WriteStats::default();
            for engine in &engines {
                let s = engine.stats();
                segments += s.segments;
                documents += s.documents;
                scanned += s.entries_scanned();
                skipped += s.blocks_skipped();
                w.enabled |= s.writes.enabled;
                w.wal_appends += s.writes.wal_appends;
                w.wal_bytes += s.writes.wal_bytes;
                w.memtable_entries += s.writes.memtable_entries;
                w.flushes += s.writes.flushes;
                w.compactions += s.writes.compactions;
                w.replay_records += s.writes.replay_records;
                w.checkpoints += s.writes.checkpoints;
            }
            lines.push(format!(
                "engine shards {} segments {segments} documents {documents} \
                 entries-scanned {scanned} blocks-skipped {skipped}",
                engines.len()
            ));
            let k = shared.backend.cache_stats();
            lines.push(format!(
                "cache hits {} misses {} inserts {} evictions {} stale {} entries {} \
                 bytes {} capacity {} probe-hits {} probe-misses {}",
                k.hits,
                k.misses,
                k.inserts,
                k.evictions,
                k.stale,
                k.entries,
                k.bytes,
                k.capacity,
                k.probe_hits,
                k.probe_misses
            ));
            lines.push(format!(
                "writes enabled {} wal-appends {} wal-bytes {} memtable-entries {} \
                 flushes {} compactions {} checkpoints {} replay-records {}",
                if w.enabled { 1 } else { 0 },
                w.wal_appends,
                w.wal_bytes,
                w.memtable_entries,
                w.flushes,
                w.compactions,
                w.checkpoints,
                w.replay_records
            ));
            let wanted = tenant.map(TenantId::new);
            for (id, t) in shared.backend.tenants().stats() {
                if wanted.as_ref().is_some_and(|w| *w != id) {
                    continue;
                }
                lines.push(format!(
                    "tenant {id} admitted {} shed {} completed {} deadline-exceeded {} \
                     in-flight {} queued {}",
                    t.admitted, t.shed, t.completed, t.deadline_exceeded, t.in_flight, t.queued
                ));
            }
            lines.push(".".into());
            (lines, false)
        }
        Command::Quota { tenant, views, concurrent, queue } => {
            let tenant = TenantId::new(tenant);
            let state = shared.backend.tenants().tenant(&tenant);
            let mut quotas = state.quotas();
            if let Some(v) = views {
                quotas.max_views = v;
            }
            if let Some(c) = concurrent {
                quotas.max_concurrent = c;
            }
            if let Some(q) = queue {
                quotas.max_queue = q;
            }
            state.set_quotas(quotas);
            (
                vec![format!(
                    "ok quota {tenant} views={} concurrent={} queue={}",
                    quotas.max_views, quotas.max_concurrent, quotas.max_queue
                )],
                false,
            )
        }
        Command::Segments => {
            let engines = shared.backend.engines();
            let sharded = engines.len() > 1;
            let mut lines = vec![String::new()];
            for (i, engine) in engines.iter().enumerate() {
                for s in engine.segments() {
                    let mut line = format!(
                        "segment {} gen {} docs {} compressed {} raw {}",
                        s.id,
                        s.generation,
                        s.documents,
                        s.footprint.compressed_bytes,
                        s.footprint.uncompressed_bytes
                    );
                    if sharded {
                        line.push_str(&format!(" shard {i}"));
                    }
                    lines.push(line);
                }
            }
            lines[0] = format!("ok segments {}", lines.len() - 1);
            lines.push(".".into());
            (lines, false)
        }
        Command::Shards => {
            let engines = shared.backend.engines();
            let views = shared.backend.views_per_shard();
            let mut lines = Vec::with_capacity(engines.len() + 2);
            lines.push(format!("ok shards {}", engines.len()));
            for (i, engine) in engines.iter().enumerate() {
                let s = engine.stats();
                let k = engine.result_cache().stats();
                lines.push(format!(
                    "shard {i} views {} segments {} documents {} epoch {} writes {} \
                     cache-hits {} cache-misses {} probe-hits {} probe-misses {}",
                    views.get(i).copied().unwrap_or(0),
                    s.segments,
                    s.documents,
                    engine.epoch(),
                    if s.writes.enabled { 1 } else { 0 },
                    k.hits,
                    k.misses,
                    k.probe_hits,
                    k.probe_misses
                ));
            }
            lines.push(".".into());
            (lines, false)
        }
    }
}

/// The admit → execute → record path for one search. On success the
/// caller formats the response; on failure the returned `String` is the
/// finished wire error line.
fn run_search<S: DocumentSource>(
    shared: &Arc<Shared<S>>,
    tenant: &TenantId,
    name: &str,
    opts: SearchOpts,
    keywords: &[&str],
    arrival: Instant,
) -> Result<vxv_core::SearchResponse, String> {
    // Resolve the view first: a 404 must not consume queue capacity.
    let view = shared
        .backend
        .get(tenant, name)
        .ok_or_else(|| wire_error(&EngineError::ViewNotFound(name.to_string())))?;
    let state = shared.backend.tenants().tenant(tenant);
    let deadline = opts.deadline_ms.map(|ms| arrival + Duration::from_millis(ms));
    let permit = shared.admission.admit(&state, deadline).map_err(admit_error)?;

    // Each wire token is one query term: plain words, quoted phrases
    // ("virtual views"), proximity (~3:a,b), prefixes (auto*), and ^N
    // boosts all parse here; a malformed term is a bad request before
    // any index work.
    let mut request = SearchRequest::parse_terms(keywords)
        .map_err(|e| wire_error(&EngineError::from(e)))?
        .top_k(opts.top.unwrap_or(shared.config.default_top_k));
    if let Some(mode) = opts.mode {
        request = request.mode(mode);
    }
    if let Some(materialize) = opts.materialize {
        request = request.materialize(materialize);
    }
    // Deadline propagation: the engine gets the *remaining* budget —
    // wire budget minus parse and queue wait — never the original one.
    if let Some(deadline) = deadline {
        let now = Instant::now();
        if now >= deadline {
            permit.tenant().record_deadline_exceeded();
            return Err(proto::format_error(
                code::DEADLINE_EXCEEDED,
                None,
                "budget exhausted before execution",
            ));
        }
        request = request.deadline(deadline - now);
    }
    if let Some(delay) = shared.config.service_delay {
        std::thread::sleep(delay);
    }
    // Through the epoch-keyed result cache: a hit is the byte-identical
    // response computed at this view's epoch, served without a search.
    let result = view.search_cached(tenant, name, &request);
    match &result {
        Ok(_) => permit.tenant().record_completed(),
        Err(EngineError::DeadlineExceeded { .. }) => permit.tenant().record_deadline_exceeded(),
        Err(_) => {}
    }
    result.map_err(|e| wire_error(&e))
}

/// The admit → append → record path for one write. Writes share the
/// searches' admission controller and tenant accounting, so a tenant
/// hammering `ingest` is shed and counted exactly like one hammering
/// `search`. Durable [`vxv_core::ViewSearchEngine::append`] when the
/// engine's write path is enabled; the non-durable in-memory `ingest`
/// otherwise (search-only deployments keep working).
fn run_ingest<S: DocumentSource>(
    shared: &Arc<Shared<S>>,
    tenant: &TenantId,
    name: &str,
    xml: &str,
    _arrival: Instant,
) -> Result<vxv_core::IngestReport, String> {
    let state = shared.backend.tenants().tenant(tenant);
    let permit = shared.admission.admit(&state, None).map_err(admit_error)?;
    if let Some(delay) = shared.config.service_delay {
        std::thread::sleep(delay);
    }
    let result = shared.backend.ingest(name, xml);
    if result.is_ok() {
        permit.tenant().record_completed();
    }
    result.map_err(|e| wire_error(&e))
}

/// Run `f` over `items` on up to `width` scoped threads, claiming items
/// by index; results come back in item order. The serving tier's local
/// analogue of the catalog's batch pool, capped by the per-connection
/// in-flight limit instead of the host's core count.
fn fan_out<T: Sync, R: Send>(items: &[T], width: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let width = width.clamp(1, items.len());
    if width == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..width {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    slots.into_iter().map(|slot| slot.into_inner().unwrap().expect("every slot filled")).collect()
}
