//! Bounded admission: a global in-flight cap, a bounded wait queue, and
//! typed load shedding — per tenant and for the server as a whole.
//!
//! Every search the server executes first passes [`AdmissionController::
//! admit`]. The controller grants an [`AdmitPermit`] when a global
//! execution slot **and** a tenant concurrency slot
//! ([`vxv_core::tenant::TenantState::try_begin_search`]) are both free.
//! Otherwise the request takes one bounded queue slot (global
//! `queue_depth`, per-tenant `max_queue`) and waits on a condvar; if no
//! slot exists, or the wait outlives `max_queue_wait` or the request's
//! own deadline, the request is **shed with a typed error** — the
//! protocol turns [`AdmitError::Shed`] into `error overloaded
//! retry-after-ms=N`, so clients back off instead of piling on. Nothing
//! ever waits unboundedly.
//!
//! Dropping the permit releases both slots and wakes queued waiters.
//! Counters mirror the per-tenant ones: admitted / shed / queue-timeouts
//! plus live in-flight and queued gauges.
//!
//! ## Per-tenant round-robin fairness
//!
//! The queue drains in **round-robin order over tenants**, not FIFO
//! over requests: tenants with queued waiters form a rotation, freed
//! slots go to the tenant whose turn it is, and a tenant that takes a
//! slot moves to the back of the rotation while it still has waiters.
//! A chatty tenant that floods the queue therefore delays its *own*
//! later requests, never another tenant's — one queued request from a
//! quiet tenant is admitted after at most one turn of every other
//! waiting tenant, instead of behind the flood. A tenant whose own
//! concurrency quota is exhausted is skipped (its turn is not a
//! blockade), and new arrivals never barge past a non-empty queue.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vxv_core::tenant::{SearchPermit, TenantState};

/// Knobs for the bounded admission queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Searches executing at once, across all connections and tenants.
    pub max_in_flight: usize,
    /// Requests waiting for a slot, across all tenants. Anything beyond
    /// is shed immediately.
    pub queue_depth: usize,
    /// Backoff suggested in `overloaded` rejections.
    pub retry_after: Duration,
    /// Longest a request may sit in the queue before being shed (its own
    /// deadline may cut the wait shorter).
    pub max_queue_wait: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight: 8,
            queue_depth: 32,
            retry_after: Duration::from_millis(25),
            max_queue_wait: Duration::from_secs(1),
        }
    }
}

/// Why a request was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// No execution slot and no queue slot (or the queue wait timed
    /// out): retry after the suggested backoff.
    Shed {
        /// Suggested client backoff.
        retry_after: Duration,
    },
    /// The request's own deadline expired while it was still queued —
    /// the remaining budget reached zero before any work ran.
    DeadlineExceeded,
}

/// Live admission gauges and lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Searches executing right now.
    pub in_flight: usize,
    /// Requests waiting in the queue right now.
    pub queued: usize,
    /// Requests granted a permit, lifetime.
    pub admitted: u64,
    /// Requests shed (queue full, tenant quota, or wait timeout),
    /// lifetime.
    pub shed: u64,
    /// Sheds specifically caused by a `max_queue_wait` timeout.
    pub queue_timeouts: u64,
}

/// One tenant's slot in the round-robin rotation. Keyed by the
/// registry's `Arc<TenantState>` identity — the registry hands out one
/// state per tenant, so pointer identity *is* tenant identity.
#[derive(Debug)]
struct Turn {
    key: usize,
    state: Arc<TenantState>,
    waiters: usize,
}

#[derive(Debug)]
struct Gate {
    in_flight: usize,
    queued: usize,
    /// Tenants with queued waiters, in turn order: the front tenant's
    /// waiters go first; taking a slot rotates the tenant to the back.
    rotation: VecDeque<Turn>,
}

impl Gate {
    /// Whether a queued waiter of `key`'s tenant may take the next
    /// slot: it is first in rotation, or every tenant ahead of it is
    /// blocked on its own concurrency quota (a blocked tenant's turn
    /// is skipped, not a blockade — it keeps its place for when a
    /// permit frees).
    fn turn_eligible(&self, key: usize) -> bool {
        for turn in &self.rotation {
            if turn.key == key {
                return true;
            }
            if turn.state.stats().in_flight < turn.state.quotas().max_concurrent {
                return false;
            }
        }
        false
    }

    /// Remove one waiter of `key`'s tenant from the queue bookkeeping.
    /// `took_turn` marks an admission (vs a timeout/deadline exit): a
    /// front tenant that consumed its turn and still has waiters
    /// rotates to the back, handing the next slot to its neighbours.
    fn leave_queue(&mut self, key: usize, took_turn: bool) {
        self.queued -= 1;
        let Some(pos) = self.rotation.iter().position(|t| t.key == key) else {
            debug_assert!(false, "queued waiter's tenant is in rotation");
            return;
        };
        self.rotation[pos].waiters -= 1;
        if self.rotation[pos].waiters == 0 {
            self.rotation.remove(pos);
        } else if took_turn && pos == 0 {
            self.rotation.rotate_left(1);
        }
    }
}

/// The server's admission gate; see the module docs.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    gate: Mutex<Gate>,
    available: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
    queue_timeouts: AtomicU64,
}

impl AdmissionController {
    /// A controller enforcing `config`.
    pub fn new(config: AdmissionConfig) -> Arc<Self> {
        Arc::new(AdmissionController {
            config,
            gate: Mutex::new(Gate { in_flight: 0, queued: 0, rotation: VecDeque::new() }),
            available: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queue_timeouts: AtomicU64::new(0),
        })
    }

    /// The knobs this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Current gauges and counters.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let gate = self.gate.lock().unwrap();
        AdmissionSnapshot {
            in_flight: gate.in_flight,
            queued: gate.queued,
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            queue_timeouts: self.queue_timeouts.load(Ordering::Relaxed),
        }
    }

    /// Admit one search for `tenant`, queueing (bounded) if the server
    /// or the tenant is at capacity. `deadline` is the request's own
    /// absolute deadline: expiring while queued yields
    /// [`AdmitError::DeadlineExceeded`] — the executing phase would have
    /// zero budget left, so nothing runs.
    ///
    /// Every outcome is recorded in both the controller's and the
    /// tenant's counters exactly once.
    pub fn admit(
        self: &Arc<Self>,
        tenant: &Arc<TenantState>,
        deadline: Option<Instant>,
    ) -> Result<AdmitPermit, AdmitError> {
        let queue_cutoff = Instant::now() + self.config.max_queue_wait;
        let wait_until = deadline.map_or(queue_cutoff, |d| d.min(queue_cutoff));
        let key = Arc::as_ptr(tenant) as usize;
        let mut gate = self.gate.lock().unwrap();
        let mut queued = false;
        loop {
            // A fresh arrival takes the fast path only past an EMPTY
            // queue (no barging); a queued waiter proceeds only on its
            // tenant's round-robin turn.
            let eligible = if queued { gate.turn_eligible(key) } else { gate.queued == 0 };
            if eligible && gate.in_flight < self.config.max_in_flight {
                if let Some(permit) = tenant.try_begin_search() {
                    gate.in_flight += 1;
                    if queued {
                        gate.leave_queue(key, true);
                        tenant.dequeue();
                        // More slots may remain free: hand the next
                        // tenant in rotation its turn right away.
                        if gate.queued > 0 {
                            self.available.notify_all();
                        }
                    }
                    drop(gate);
                    tenant.record_admitted();
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(AdmitPermit {
                        controller: Arc::clone(self),
                        tenant_permit: Some(permit),
                    });
                }
            }
            if !queued {
                if gate.queued >= self.config.queue_depth || !tenant.try_enqueue() {
                    drop(gate);
                    tenant.record_shed();
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(AdmitError::Shed { retry_after: self.config.retry_after });
                }
                gate.queued += 1;
                queued = true;
                match gate.rotation.iter_mut().find(|t| t.key == key) {
                    Some(turn) => turn.waiters += 1,
                    None => {
                        gate.rotation.push_back(Turn { key, state: Arc::clone(tenant), waiters: 1 })
                    }
                }
            }
            let now = Instant::now();
            if now >= wait_until {
                gate.leave_queue(key, false);
                tenant.dequeue();
                drop(gate);
                // The request's own deadline firing first is a deadline
                // failure (zero budget would remain); otherwise the wait
                // aged out and the request is shed like any overload.
                if deadline.is_some_and(|d| now >= d) {
                    tenant.record_deadline_exceeded();
                    return Err(AdmitError::DeadlineExceeded);
                }
                tenant.record_shed();
                self.shed.fetch_add(1, Ordering::Relaxed);
                self.queue_timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(AdmitError::Shed { retry_after: self.config.retry_after });
            }
            let (g, _) = self.available.wait_timeout(gate, wait_until - now).unwrap();
            gate = g;
        }
    }
}

/// RAII grant from [`AdmissionController::admit`]: holds one global
/// execution slot and the tenant's [`SearchPermit`]. Dropping it
/// releases both and wakes queued waiters.
#[derive(Debug)]
pub struct AdmitPermit {
    controller: Arc<AdmissionController>,
    tenant_permit: Option<SearchPermit>,
}

impl AdmitPermit {
    /// The tenant state the permit was drawn from (for recording the
    /// search's final outcome).
    pub fn tenant(&self) -> &Arc<TenantState> {
        self.tenant_permit.as_ref().expect("permit held until drop").tenant()
    }
}

impl Drop for AdmitPermit {
    fn drop(&mut self) {
        // Free the tenant slot first so a queued waiter that wakes for
        // the global slot can immediately take the tenant one too.
        self.tenant_permit = None;
        let mut gate = self.controller.gate.lock().unwrap();
        gate.in_flight -= 1;
        drop(gate);
        self.controller.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vxv_core::tenant::{TenantId, TenantQuotas, TenantRegistry};

    fn controller(max_in_flight: usize, queue_depth: usize) -> Arc<AdmissionController> {
        AdmissionController::new(AdmissionConfig {
            max_in_flight,
            queue_depth,
            retry_after: Duration::from_millis(5),
            max_queue_wait: Duration::from_millis(100),
        })
    }

    #[test]
    fn admits_up_to_capacity_then_sheds_past_the_queue() {
        let ctrl = controller(2, 0);
        let registry = TenantRegistry::new();
        let tenant = registry.tenant(&TenantId::public());
        let a = ctrl.admit(&tenant, None).unwrap();
        let _b = ctrl.admit(&tenant, None).unwrap();
        // No queue: the third request is shed immediately with a backoff.
        let err = ctrl.admit(&tenant, None).unwrap_err();
        assert_eq!(err, AdmitError::Shed { retry_after: Duration::from_millis(5) });
        let snap = ctrl.snapshot();
        assert_eq!((snap.in_flight, snap.admitted, snap.shed), (2, 2, 1));
        drop(a);
        assert!(ctrl.admit(&tenant, None).is_ok(), "released slot is reusable");
    }

    #[test]
    fn queued_request_proceeds_when_a_permit_releases() {
        let ctrl = controller(1, 4);
        let registry = TenantRegistry::new();
        let tenant = registry.tenant(&TenantId::public());
        let first = ctrl.admit(&tenant, None).unwrap();
        let t = {
            let ctrl = Arc::clone(&ctrl);
            let tenant = Arc::clone(&tenant);
            std::thread::spawn(move || ctrl.admit(&tenant, None).map(|_| ()))
        };
        std::thread::sleep(Duration::from_millis(10));
        drop(first);
        t.join().unwrap().expect("queued request admitted after release");
        assert_eq!(ctrl.snapshot().queued, 0);
    }

    #[test]
    fn queue_wait_times_out_as_a_shed_never_a_hang() {
        let ctrl = controller(1, 4);
        let registry = TenantRegistry::new();
        let tenant = registry.tenant(&TenantId::public());
        let _hold = ctrl.admit(&tenant, None).unwrap();
        let start = Instant::now();
        let err = ctrl.admit(&tenant, None).unwrap_err();
        assert!(matches!(err, AdmitError::Shed { .. }), "{err:?}");
        assert!(start.elapsed() >= Duration::from_millis(100), "waited out max_queue_wait");
        assert_eq!(ctrl.snapshot().queue_timeouts, 1);
    }

    #[test]
    fn own_deadline_expiring_in_queue_is_a_deadline_error() {
        let ctrl = controller(1, 4);
        let registry = TenantRegistry::new();
        let tenant = registry.tenant(&TenantId::public());
        let _hold = ctrl.admit(&tenant, None).unwrap();
        let deadline = Instant::now() + Duration::from_millis(20);
        let err = ctrl.admit(&tenant, Some(deadline)).unwrap_err();
        assert_eq!(err, AdmitError::DeadlineExceeded);
        assert_eq!(tenant.stats().deadline_exceeded, 1);
        assert_eq!(ctrl.snapshot().queued, 0, "queue slot released");
    }

    #[test]
    fn round_robin_keeps_a_quiet_tenant_from_starving_behind_a_flood() {
        // One execution slot, held while a greedy tenant floods the
        // queue with 4 waiters and a meek tenant queues 1. FIFO would
        // admit meek 5th; round-robin admits it 2nd — right after
        // greedy's first turn.
        let ctrl = AdmissionController::new(AdmissionConfig {
            max_in_flight: 1,
            queue_depth: 16,
            retry_after: Duration::from_millis(5),
            max_queue_wait: Duration::from_secs(10),
        });
        let registry = TenantRegistry::new();
        let holder = registry.tenant(&TenantId::new("holder"));
        let greedy = registry.tenant(&TenantId::new("greedy"));
        let meek = registry.tenant(&TenantId::new("meek"));
        let hold = ctrl.admit(&holder, None).unwrap();

        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let mut threads = Vec::new();
        for _ in 0..4 {
            let ctrl = Arc::clone(&ctrl);
            let greedy = Arc::clone(&greedy);
            let order = Arc::clone(&order);
            threads.push(std::thread::spawn(move || {
                let permit = ctrl.admit(&greedy, None).unwrap();
                order.lock().unwrap().push("greedy");
                std::thread::sleep(Duration::from_millis(5));
                drop(permit);
            }));
        }
        // Let every greedy waiter reach the queue before meek arrives —
        // the fairness claim is exactly "arriving later than the flood
        // does not mean finishing after it".
        while ctrl.snapshot().queued < 4 {
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let ctrl = Arc::clone(&ctrl);
            let meek = Arc::clone(&meek);
            let order = Arc::clone(&order);
            threads.push(std::thread::spawn(move || {
                let permit = ctrl.admit(&meek, None).unwrap();
                order.lock().unwrap().push("meek");
                std::thread::sleep(Duration::from_millis(5));
                drop(permit);
            }));
        }
        while ctrl.snapshot().queued < 5 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(hold);
        for t in threads {
            t.join().unwrap();
        }
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 5);
        assert_eq!(
            order[1], "meek",
            "round-robin admits the quiet tenant on the second turn, got {order:?}"
        );
    }

    #[test]
    fn tenant_quota_sheds_only_that_tenant() {
        let ctrl = controller(8, 8);
        let registry = TenantRegistry::new();
        let starved = registry.set_quotas(
            &TenantId::new("starved"),
            TenantQuotas { max_concurrent: 0, max_queue: 0, ..Default::default() },
        );
        let healthy = registry.tenant(&TenantId::new("healthy"));
        let err = ctrl.admit(&starved, None).unwrap_err();
        assert!(matches!(err, AdmitError::Shed { .. }), "{err:?}");
        let _ok = ctrl.admit(&healthy, None).unwrap();
        assert_eq!(starved.stats().shed, 1);
        assert_eq!(healthy.stats().admitted, 1);
    }
}
