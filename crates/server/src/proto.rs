//! The line-delimited wire protocol: tokenizing, command parsing, and
//! response formatting/parsing.
//!
//! Requests are one line each; see the crate docs for the command
//! grammar. Responses are either a single line (`ok ...` / `error
//! <code> ...`) or a multi-line block opened by an `ok <what> ...`
//! header and closed by a lone `.`. Which shape a command produces is
//! fixed per command (`search`/`batch`/`stats`/`segments` are
//! multi-line; everything else is single-line), so a lockstep client
//! always knows how much to read.
//!
//! Two invariants make the protocol safe to parse line-by-line:
//!
//! * any free-text field (hit XML, error detail, view text) is escaped
//!   onto one line with [`escape_line`] (`\\`, `\n`, `\r`) — a
//!   pretty-printed source document can never split a hit across lines
//!   or fake the `.` terminator;
//! * every `f64` (scores, idf) is formatted with `{}` — Rust's shortest
//!   round-trip representation — so the bits a client parses back are
//!   **identical** to the bits the engine produced. The loopback
//!   byte-identity tests pin this.

use std::time::Duration;
use vxv_core::{EngineError, KeywordMode, SearchResponse};

/// Wire error codes (the first token after `error`).
pub mod code {
    /// Malformed or unparsable request line.
    pub const BAD_REQUEST: &str = "bad-request";
    /// Unknown view (or document) name.
    pub const NOT_FOUND: &str = "not-found";
    /// A tenant resource quota (e.g. `max_views`) was exceeded.
    pub const QUOTA_EXCEEDED: &str = "quota-exceeded";
    /// Shed by admission control; carries `retry-after-ms=N`.
    pub const OVERLOADED: &str = "overloaded";
    /// The request's deadline passed (queued or executing).
    pub const DEADLINE_EXCEEDED: &str = "deadline-exceeded";
    /// The request's cancel token fired.
    pub const CANCELLED: &str = "cancelled";
    /// The request is well-formed but this deployment cannot serve it
    /// (e.g. a phrase/proximity term against a pre-v5 index without
    /// stored positions). Retrying won't help until the index is
    /// rebuilt.
    pub const UNSUPPORTED: &str = "unsupported";
    /// Any other engine-side failure.
    pub const INTERNAL: &str = "internal";
}

/// Escape a free-text field onto a single protocol line: backslash,
/// newline and carriage return become `\\`, `\n`, `\r`.
pub fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Quote a token for a command line if [`tokenize`] would otherwise
/// split or mangle it: phrase terms carry interior whitespace, so
/// `xml search` goes on the wire as `"xml search"` (with `"` and `\`
/// escaped). Tokens that survive tokenization verbatim pass through.
pub fn quote_token(token: &str) -> String {
    if !token.is_empty() && !token.chars().any(|c| c.is_whitespace() || c == '"' || c == '\\') {
        return token.to_string();
    }
    let mut out = String::with_capacity(token.len() + 2);
    out.push('"');
    for c in token.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

/// Reverse [`escape_line`].
pub fn unescape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Split a command line into whitespace-separated tokens, honoring
/// double quotes (`"two words"` is one token; `\"` and `\\` are escapes
/// inside quotes). Runs of whitespace collapse; an empty quoted string
/// is a valid (empty) token.
pub fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut has_token = false;
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                has_token = true;
            }
            '\\' if in_quotes => match chars.next() {
                Some('"') => cur.push('"'),
                Some('\\') => cur.push('\\'),
                Some(other) => {
                    cur.push('\\');
                    cur.push(other);
                }
                None => return Err("dangling backslash inside quotes".into()),
            },
            c if c.is_whitespace() && !in_quotes => {
                if has_token {
                    out.push(std::mem::take(&mut cur));
                    has_token = false;
                }
            }
            c => {
                cur.push(c);
                has_token = true;
            }
        }
    }
    if in_quotes {
        return Err("unterminated quote".into());
    }
    if has_token {
        out.push(cur);
    }
    Ok(out)
}

/// First whitespace-delimited word and the (left-trimmed) remainder.
fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

/// Per-search options carried as `key=value` tokens between the view
/// name and the keywords.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchOpts {
    /// `top=N` — how many hits to return.
    pub top: Option<usize>,
    /// `mode=any|all` — disjunctive / conjunctive matching.
    pub mode: Option<KeywordMode>,
    /// `deadline-ms=N` — total budget from the moment the server read
    /// the request line (queue wait included).
    pub deadline_ms: Option<u64>,
    /// `materialize=0|1` — whether hits carry XML.
    pub materialize: Option<bool>,
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `ping` — liveness check.
    Ping,
    /// `quit` (or `exit`) — close the connection.
    Quit,
    /// `register <tenant> <name> <view text…>` — prepare and register a
    /// view; the view text is the raw remainder of the line, unescaped
    /// through [`unescape_line`] so multi-line XQuery can ride one line.
    Register {
        /// Owning tenant.
        tenant: String,
        /// View name (unique per tenant).
        name: String,
        /// The XQuery view text.
        view_text: String,
    },
    /// `ingest <tenant> <name> <xml…>` — durably append one document;
    /// the XML is the raw remainder of the line, unescaped through
    /// [`unescape_line`] so real documents ride one line. Admitted
    /// through the same controller and tenant accounting as searches.
    Ingest {
        /// Tenant performing the write (admission accounting).
        tenant: String,
        /// Document name (`fn:doc(...)` key; engine-unique).
        name: String,
        /// The document's XML text.
        xml: String,
    },
    /// `search <tenant> <name> [key=value…] <kw…>` — one keyword search.
    Search {
        /// Tenant whose namespace is searched.
        tenant: String,
        /// Registered view name.
        name: String,
        /// Parsed `key=value` options.
        opts: SearchOpts,
        /// At least one keyword.
        keywords: Vec<String>,
    },
    /// `batch <tenant> [key=value…] <name>:<kw[,kw…]> …` — several
    /// searches admitted and executed independently.
    Batch {
        /// Tenant whose namespace is searched.
        tenant: String,
        /// Options applied to every entry.
        opts: SearchOpts,
        /// `(view name, keywords)` per entry.
        entries: Vec<(String, Vec<String>)>,
    },
    /// `stats [tenant]` — server/admission/catalog/engine counters plus
    /// per-tenant lines (all tenants, or just the named one).
    Stats {
        /// Restrict the tenant lines to this tenant.
        tenant: Option<String>,
    },
    /// `quota <tenant> [views=N] [concurrent=N] [queue=N]` — set (or,
    /// with no pairs, read) a tenant's quotas.
    Quota {
        /// The tenant to configure.
        tenant: String,
        /// New `max_views`, if given.
        views: Option<usize>,
        /// New `max_concurrent`, if given.
        concurrent: Option<usize>,
        /// New `max_queue`, if given.
        queue: Option<usize>,
    },
    /// `segments` — per-segment index breakdown.
    Segments,
    /// `shards` — per-shard topology: routed views, segments,
    /// documents, epoch, and cache counters (a single-engine server
    /// reports one shard).
    Shards,
}

fn parse_opt(opts: &mut SearchOpts, key: &str, value: &str) -> Result<bool, String> {
    match key {
        "top" => {
            opts.top = Some(value.parse().map_err(|_| format!("bad top={value}"))?);
        }
        "mode" => {
            opts.mode = Some(match value {
                "any" => KeywordMode::Disjunctive,
                "all" => KeywordMode::Conjunctive,
                _ => return Err(format!("bad mode={value} (want any|all)")),
            });
        }
        "deadline-ms" => {
            opts.deadline_ms = Some(value.parse().map_err(|_| format!("bad deadline-ms={value}"))?);
        }
        "materialize" => {
            opts.materialize = Some(match value {
                "1" | "true" => true,
                "0" | "false" => false,
                _ => return Err(format!("bad materialize={value} (want 0|1)")),
            });
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Split a token stream into leading `key=value` options and trailing
/// positional tokens. Unknown `key=value` tokens are rejected (they are
/// almost certainly typos, not keywords).
fn parse_opts(tokens: &[String]) -> Result<(SearchOpts, &[String]), String> {
    let mut opts = SearchOpts::default();
    for (i, token) in tokens.iter().enumerate() {
        let Some((key, value)) = token.split_once('=') else {
            // A known option past the first term is a misplaced option,
            // not a keyword (index tokens are alphanumeric runs — a
            // `top=5` "term" can never match; it would only poison a
            // conjunctive search). Reject it loudly.
            for late in &tokens[i..] {
                if let Some((key, _)) = late.split_once('=') {
                    if matches!(key, "top" | "mode" | "deadline-ms" | "materialize") {
                        return Err(format!(
                            "misplaced option '{late}': options go between the view name and \
                             the first term"
                        ));
                    }
                }
            }
            return Ok((opts, &tokens[i..]));
        };
        if !parse_opt(&mut opts, key, value)? {
            return Err(format!("unknown option '{key}=' (want top/mode/deadline-ms/materialize)"));
        }
    }
    Ok((opts, &[]))
}

/// Parse one request line. The error string is the `bad-request` detail.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let (word, rest) = split_word(line);
    match word {
        "" => Err("empty command".into()),
        "ping" => Ok(Command::Ping),
        "quit" | "exit" => Ok(Command::Quit),
        "segments" => Ok(Command::Segments),
        "shards" => Ok(Command::Shards),
        "stats" => {
            let tokens = tokenize(rest)?;
            match tokens.len() {
                0 => Ok(Command::Stats { tenant: None }),
                1 => Ok(Command::Stats { tenant: Some(tokens[0].clone()) }),
                _ => Err("usage: stats [tenant]".into()),
            }
        }
        "register" => {
            let (tenant, rest) = split_word(rest);
            let (name, view) = split_word(rest);
            if tenant.is_empty() || name.is_empty() || view.is_empty() {
                return Err("usage: register <tenant> <name> <view text>".into());
            }
            Ok(Command::Register {
                tenant: tenant.to_string(),
                name: name.to_string(),
                view_text: unescape_line(view),
            })
        }
        "ingest" => {
            let (tenant, rest) = split_word(rest);
            let (name, xml) = split_word(rest);
            if tenant.is_empty() || name.is_empty() || xml.is_empty() {
                return Err("usage: ingest <tenant> <name> <xml>".into());
            }
            Ok(Command::Ingest {
                tenant: tenant.to_string(),
                name: name.to_string(),
                xml: unescape_line(xml),
            })
        }
        "search" => {
            let tokens = tokenize(rest)?;
            if tokens.len() < 3 {
                return Err("usage: search <tenant> <name> [key=value...] <keyword...>".into());
            }
            let (opts, keywords) = parse_opts(&tokens[2..])?;
            if keywords.is_empty() {
                return Err("search needs at least one keyword".into());
            }
            Ok(Command::Search {
                tenant: tokens[0].clone(),
                name: tokens[1].clone(),
                opts,
                keywords: keywords.to_vec(),
            })
        }
        "batch" => {
            let tokens = tokenize(rest)?;
            if tokens.is_empty() {
                return Err("usage: batch <tenant> [key=value...] <name>:<kw[,kw...]> ...".into());
            }
            let (opts, specs) = parse_opts(&tokens[1..])?;
            if specs.is_empty() {
                return Err("batch needs at least one <name>:<kw[,kw...]> entry".into());
            }
            let mut entries = Vec::with_capacity(specs.len());
            for spec in specs {
                let Some((name, kws)) = spec.split_once(':') else {
                    return Err(format!("bad batch entry '{spec}' (want name:kw[,kw...])"));
                };
                let keywords: Vec<String> =
                    kws.split(',').filter(|k| !k.is_empty()).map(str::to_string).collect();
                if name.is_empty() || keywords.is_empty() {
                    return Err(format!("bad batch entry '{spec}' (want name:kw[,kw...])"));
                }
                entries.push((name.to_string(), keywords));
            }
            Ok(Command::Batch { tenant: tokens[0].clone(), opts, entries })
        }
        "quota" => {
            let tokens = tokenize(rest)?;
            if tokens.is_empty() {
                return Err("usage: quota <tenant> [views=N] [concurrent=N] [queue=N]".into());
            }
            let (mut views, mut concurrent, mut queue) = (None, None, None);
            for token in &tokens[1..] {
                let Some((key, value)) = token.split_once('=') else {
                    return Err(format!("bad quota setting '{token}' (want key=N)"));
                };
                let parsed: usize =
                    value.parse().map_err(|_| format!("bad quota value '{token}'"))?;
                match key {
                    "views" => views = Some(parsed),
                    "concurrent" => concurrent = Some(parsed),
                    "queue" => queue = Some(parsed),
                    _ => {
                        return Err(format!("unknown quota '{key}' (want views/concurrent/queue)"))
                    }
                }
            }
            Ok(Command::Quota { tenant: tokens[0].clone(), views, concurrent, queue })
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn join_f64(values: &[f64]) -> String {
    if values.is_empty() {
        return "-".into();
    }
    values.iter().map(|v| format!("{v}")).collect::<Vec<_>>().join(",")
}

fn join_u32(values: &[u32]) -> String {
    if values.is_empty() {
        return "-".into();
    }
    values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
}

fn parse_f64_list(s: &str) -> Result<Vec<f64>, String> {
    if s == "-" {
        return Ok(vec![]);
    }
    s.split(',').map(|v| v.parse().map_err(|_| format!("bad float '{v}'"))).collect()
}

fn parse_u32_list(s: &str) -> Result<Vec<u32>, String> {
    if s == "-" {
        return Ok(vec![]);
    }
    s.split(',').map(|v| v.parse().map_err(|_| format!("bad int '{v}'"))).collect()
}

/// Format a search response as its wire lines (header, one `hit` line
/// per hit, closing `.`).
pub fn format_search_response(resp: &SearchResponse) -> Vec<String> {
    let mut lines = Vec::with_capacity(resp.hits.len() + 2);
    lines.push(format!(
        "ok search hits {} matching {} view {} idf {}",
        resp.hits.len(),
        resp.matching,
        resp.view_size,
        join_f64(&resp.idf)
    ));
    for hit in &resp.hits {
        lines.push(format!(
            "hit {} {} {} {} {}",
            hit.rank,
            hit.score,
            join_u32(&hit.tf),
            hit.byte_len,
            escape_line(&hit.xml)
        ));
    }
    lines.push(".".into());
    lines
}

/// One hit parsed back off the wire. Scores round-trip bit-exactly
/// (shortest-repr `f64` formatting), so comparing against a direct
/// [`vxv_core::SearchHit`] is a byte-identity check.
#[derive(Clone, Debug, PartialEq)]
pub struct WireHit {
    /// 1-based rank.
    pub rank: usize,
    /// TF-IDF score, bit-identical to the engine's.
    pub score: f64,
    /// Per-keyword term frequencies.
    pub tf: Vec<u32>,
    /// Byte length of the view element.
    pub byte_len: u64,
    /// Unescaped hit XML (empty when materialization was off).
    pub xml: String,
}

/// A search response parsed back off the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSearch {
    /// Ranked hits.
    pub hits: Vec<WireHit>,
    /// Matching elements before the top-k cut.
    pub matching: usize,
    /// |V(D)| — size of the virtual view.
    pub view_size: usize,
    /// Per-keyword idf, bit-identical to the engine's.
    pub idf: Vec<f64>,
}

/// Parse a `ok search ...` header plus its `hit` body lines.
pub fn parse_search_response(header: &str, body: &[String]) -> Result<WireSearch, String> {
    let tokens: Vec<&str> = header.split_whitespace().collect();
    match tokens.as_slice() {
        ["ok", "search", "hits", h, "matching", m, "view", v, "idf", idf] => {
            let expected: usize = h.parse().map_err(|_| format!("bad hits '{h}'"))?;
            let mut hits = Vec::with_capacity(expected);
            for line in body {
                let mut fields = line.splitn(6, ' ');
                let (Some("hit"), Some(rank), Some(score), Some(tf), Some(len), xml) = (
                    fields.next(),
                    fields.next(),
                    fields.next(),
                    fields.next(),
                    fields.next(),
                    fields.next(),
                ) else {
                    return Err(format!("bad hit line '{line}'"));
                };
                hits.push(WireHit {
                    rank: rank.parse().map_err(|_| format!("bad rank '{rank}'"))?,
                    score: score.parse().map_err(|_| format!("bad score '{score}'"))?,
                    tf: parse_u32_list(tf)?,
                    byte_len: len.parse().map_err(|_| format!("bad byte_len '{len}'"))?,
                    xml: unescape_line(xml.unwrap_or("")),
                });
            }
            if hits.len() != expected {
                return Err(format!("header says {expected} hits, body has {}", hits.len()));
            }
            Ok(WireSearch {
                hits,
                matching: m.parse().map_err(|_| format!("bad matching '{m}'"))?,
                view_size: v.parse().map_err(|_| format!("bad view '{v}'"))?,
                idf: parse_f64_list(idf)?,
            })
        }
        _ => Err(format!("bad search header '{header}'")),
    }
}

/// A single-line `error <code> [retry-after-ms=N] <detail>` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFault {
    /// The error code (see [`code`]).
    pub code: String,
    /// Suggested backoff, present on `overloaded`.
    pub retry_after_ms: Option<u64>,
    /// Human-readable detail (unescaped).
    pub detail: String,
}

/// Format an error line. `retry_after` is attached as `retry-after-ms=N`
/// right after the code.
pub fn format_error(code: &str, retry_after: Option<Duration>, detail: &str) -> String {
    match retry_after {
        Some(d) => {
            format!("error {code} retry-after-ms={} {}", d.as_millis(), escape_line(detail))
        }
        None => format!("error {code} {}", escape_line(detail)),
    }
}

/// Parse a line that may be an error. `Ok(None)` means the line is not
/// an `error` line at all.
pub fn parse_error(line: &str) -> Option<WireFault> {
    let (word, rest) = split_word(line);
    if word != "error" {
        return None;
    }
    let (code, rest) = split_word(rest);
    let (retry_after_ms, detail) = match rest.strip_prefix("retry-after-ms=") {
        Some(tail) => {
            let (ms, detail) = split_word(tail);
            (ms.parse().ok(), detail)
        }
        None => (None, rest),
    };
    Some(WireFault { code: code.to_string(), retry_after_ms, detail: unescape_line(detail) })
}

/// Map an engine error to its wire `(code, retry_after, detail)`.
pub fn engine_error_to_wire(e: &EngineError) -> (&'static str, Option<Duration>, String) {
    match e {
        EngineError::ViewNotFound(_) | EngineError::UnknownDocument(_) => {
            (code::NOT_FOUND, None, e.to_string())
        }
        EngineError::Overloaded { retry_after } => {
            (code::OVERLOADED, Some(*retry_after), e.to_string())
        }
        EngineError::QuotaExceeded { .. } => (code::QUOTA_EXCEEDED, None, e.to_string()),
        EngineError::DeadlineExceeded { .. } => (code::DEADLINE_EXCEEDED, None, e.to_string()),
        EngineError::Cancelled { .. } => (code::CANCELLED, None, e.to_string()),
        EngineError::EmptyQuery
        | EngineError::InvalidTerm(_)
        | EngineError::Parse(_)
        | EngineError::QptGen(_)
        | EngineError::CrossShard { .. } => (code::BAD_REQUEST, None, e.to_string()),
        EngineError::PositionsUnavailable => (code::UNSUPPORTED, None, e.to_string()),
        _ => (code::INTERNAL, None, e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_handles_quotes_and_runs_of_whitespace() {
        assert_eq!(tokenize("a   b\tc").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(tokenize("a \"two words\" c").unwrap(), vec!["a", "two words", "c"]);
        assert_eq!(
            tokenize(r#"say "a \"quoted\" word""#).unwrap(),
            vec!["say", "a \"quoted\" word"]
        );
        assert_eq!(tokenize("\"\"").unwrap(), vec![""]);
        assert_eq!(tokenize("  ").unwrap(), Vec::<String>::new());
        assert!(tokenize("\"open").is_err());
    }

    #[test]
    fn quote_token_round_trips_through_tokenize() {
        for term in
            ["xml", "auto*", "~3:virtual,views", "xml^2.5", "virtual views", "a \"b\" c\\d", ""]
        {
            let line = format!("search t v {}", quote_token(term));
            let tokens = tokenize(&line).unwrap();
            assert_eq!(tokens.len(), 4, "term {term:?}");
            assert_eq!(tokens[3], term, "term {term:?}");
        }
        // Plain terms pass through unquoted — the wire stays readable.
        assert_eq!(quote_token("xml^2"), "xml^2");
        assert_eq!(quote_token("two words"), "\"two words\"");
    }

    #[test]
    fn escape_round_trips() {
        let ugly = "line one\nline\\two\r.";
        let escaped = escape_line(ugly);
        assert!(!escaped.contains('\n'));
        assert_eq!(unescape_line(&escaped), ugly);
    }

    #[test]
    fn parse_search_command_with_options() {
        let cmd =
            parse_command("search acme reviews top=5 mode=any deadline-ms=250 xml db").unwrap();
        assert_eq!(
            cmd,
            Command::Search {
                tenant: "acme".into(),
                name: "reviews".into(),
                opts: SearchOpts {
                    top: Some(5),
                    mode: Some(KeywordMode::Disjunctive),
                    deadline_ms: Some(250),
                    materialize: None,
                },
                keywords: vec!["xml".into(), "db".into()],
            }
        );
        assert!(parse_command("search acme reviews").is_err(), "keywords required");
        assert!(parse_command("search acme reviews topp=5 xml").is_err(), "typo'd option");
        // A known option after the first term is a misplaced option,
        // never a keyword — it must fail loudly, not silently poison a
        // conjunctive search with an unmatchable term.
        assert!(parse_command("search acme reviews xml top=5").is_err(), "misplaced option");
        // Unknown key=value-shaped tokens among terms stay terms (the
        // options region ended); only the four known keys are reserved.
        assert!(parse_command("search acme reviews xml a=b").is_ok());
    }

    #[test]
    fn parse_register_keeps_view_text_raw() {
        let cmd = parse_command("register acme v for $b in fn:doc(x.xml)/a return $b").unwrap();
        assert_eq!(
            cmd,
            Command::Register {
                tenant: "acme".into(),
                name: "v".into(),
                view_text: "for $b in fn:doc(x.xml)/a return $b".into(),
            }
        );
    }

    #[test]
    fn parse_ingest_unescapes_the_document() {
        let cmd = parse_command("ingest acme d.xml <r>\\n  <e>line two</e>\\n</r>").unwrap();
        assert_eq!(
            cmd,
            Command::Ingest {
                tenant: "acme".into(),
                name: "d.xml".into(),
                xml: "<r>\n  <e>line two</e>\n</r>".into(),
            }
        );
        assert!(parse_command("ingest acme d.xml").is_err(), "xml required");
        assert!(parse_command("ingest acme").is_err(), "name required");
    }

    #[test]
    fn parse_batch_entries() {
        let cmd = parse_command("batch acme top=3 a:xml b:db,search").unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                tenant: "acme".into(),
                opts: SearchOpts { top: Some(3), ..Default::default() },
                entries: vec![
                    ("a".into(), vec!["xml".into()]),
                    ("b".into(), vec!["db".into(), "search".into()]),
                ],
            }
        );
        assert!(parse_command("batch acme nope").is_err());
    }

    #[test]
    fn error_lines_round_trip_retry_after() {
        let line = format_error(code::OVERLOADED, Some(Duration::from_millis(25)), "full");
        let fault = parse_error(&line).unwrap();
        assert_eq!(fault.code, code::OVERLOADED);
        assert_eq!(fault.retry_after_ms, Some(25));
        assert_eq!(fault.detail, "full");
        assert!(parse_error("ok pong").is_none());
    }

    #[test]
    fn f64_wire_format_round_trips_bit_exactly() {
        for v in [0.1f64, 1.0 / 3.0, 2.0f64.sqrt(), 1e-300, 123456.789] {
            let s = format!("{v}");
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
    }
}
