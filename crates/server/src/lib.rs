#![warn(missing_docs)]
//! # vxv-server — the network serving tier over a `ViewCatalog`
//!
//! A concurrent loopback TCP server that turns the service layer into a
//! multi-tenant network service. One process owns one shared
//! [`vxv_core::ViewCatalog`] (prepared views, tenant registry, engine);
//! any number
//! of clients speak a line-delimited protocol to it. Every request walks
//! the same four stations:
//!
//! 1. **Accept** — a thread per connection behind a connection cap
//!    ([`ServerConfig::max_connections`]); over-cap connections get one
//!    `error overloaded retry-after-ms=N` line and are closed, so a
//!    connection flood degrades into typed rejections, not latency.
//!    Handlers poll a shutdown flag between reads (partial request bytes
//!    survive the poll ticks), so shutdown is prompt without dropping
//!    half-written responses.
//! 2. **Admit** — every search passes the bounded
//!    [`admission::AdmissionController`]: a global in-flight cap, a
//!    bounded wait queue, per-tenant quotas
//!    ([`vxv_core::tenant::TenantQuotas`]), and per-tenant + global
//!    counters. Saturation sheds with `overloaded retry-after-ms=N`;
//!    nothing waits forever ([`admission::AdmissionConfig::
//!    max_queue_wait`]).
//! 3. **Execute** — the admitted search runs against the tenant's
//!    prepared view with the **remaining** deadline budget: the wire
//!    field `deadline-ms=N` counts from the moment the server read the
//!    request line, so time spent queued is spent budget, and a request
//!    whose budget died in the queue never executes at all.
//! 4. **Respond** — single-line `ok`/`error <code>` replies, or
//!    `.`-terminated blocks for `search`/`batch`/`stats`/`segments`.
//!    Scores ride the wire in Rust's shortest round-trip `f64` format,
//!    so a parsed response is **bit-identical** to a direct
//!    [`vxv_core::PreparedView::search`] — the loopback tests pin this.
//!
//! ## Wire protocol (one request per line)
//!
//! ```text
//! ping                                         -> ok pong
//! register <tenant> <name> <view text…>        -> ok registered <tenant> <name>
//! ingest <tenant> <name> <xml…>                -> ok ingested <name> segment <id> …
//! search <tenant> <name> [top=N] [mode=any|all]
//!        [deadline-ms=N] [materialize=0|1] <kw…>
//!                                              -> ok search … + hit lines + .
//! batch <tenant> [options…] <name>:<kw[,kw…]> …-> ok batch N + result lines + .
//! stats [tenant]                               -> ok stats + counter lines + .
//! quota <tenant> [views=N] [concurrent=N] [queue=N]
//!                                              -> ok quota <tenant> …
//! segments                                     -> ok segments N + lines + .
//! shards                                       -> ok shards N + lines + .
//! quit                                         -> ok bye (connection closes)
//! ```
//!
//! Errors are single lines: `error <code> [retry-after-ms=N] <detail>`
//! with codes `bad-request`, `not-found`, `quota-exceeded`,
//! `overloaded`, `deadline-exceeded`, `cancelled`, `internal`.
//!
//! ## Tenancy
//!
//! Tenants exist in the **core**, not the server: the catalog keys every
//! view by `(tenant, name)` (tenant id leading, OceanBase-style), quotas
//! live on [`vxv_core::tenant::TenantState`], and this crate only adds
//! the bounded queue in front. `quota <tenant> concurrent=2 queue=4`
//! caps one tenant without touching any other — an overloaded tenant's
//! requests shed while its neighbours' flow.
//!
//! Everything binds loopback in tests (`127.0.0.1:0`); the build needs
//! no network. The protocol module ([`proto`]) and client ([`Client`])
//! are exported so the load generator in `crates/bench` and external
//! drivers share one wire implementation.

pub mod admission;
pub mod client;
pub mod proto;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionSnapshot, AdmitError};
pub use client::{Client, ClientError};
pub use proto::{WireFault, WireHit, WireSearch};
pub use server::{serve, serve_sharded, ServerConfig, ServerHandle, ServerStats};
