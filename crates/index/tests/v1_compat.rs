//! Backward compatibility: a checked-in v1 `indices.vxi` (written by the
//! pre-segmentation format) must load through the v2 loader as a single
//! generation-0 segment, with every list intact.
//!
//! The fixture under `tests/fixtures/v1/` was produced by the original
//! single-index `IndexBundle::save` over the two-document corpus
//! reconstructed below; if the loader ever stops accepting v1 bytes this
//! test fails without needing any old code around.

use std::path::Path;
use vxv_index::cursor::collect_postings;
use vxv_index::{IndexBundle, IndexSegment, PathPattern};
use vxv_xml::Corpus;

fn fixture_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v1"))
}

/// The corpus the fixture was built from (kept in sync with the fixture
/// generator; the fixture itself is frozen bytes).
fn fixture_corpus() -> Corpus {
    let mut c = Corpus::new();
    c.add_parsed(
        "books.xml",
        "<books><book><isbn>111</isbn><title>XML search</title><year>1996</year></book>\
         <book><isbn>222</isbn><title>AI</title></book></books>",
    )
    .unwrap();
    c.add_parsed(
        "reviews.xml",
        "<reviews><review><isbn>111</isbn><content>all about xml</content></review></reviews>",
    )
    .unwrap();
    c
}

#[test]
fn v1_fixture_loads_as_a_single_generation_zero_segment() {
    let bundle = IndexBundle::load(fixture_dir()).expect("v1 fixture loads");
    assert_eq!(bundle.segments.len(), 1, "v1 files carry exactly one segment");
    let seg = &bundle.segments[0];
    assert_eq!(seg.generation(), 0);
    assert_eq!(seg.doc_count(), 2);
    assert_eq!(seg.docs()[0].name, "books.xml");
    assert_eq!(seg.docs()[0].root_tag, "books");
    assert_eq!(seg.max_root_ordinal(), Some(2));
}

#[test]
fn v1_fixture_lists_match_a_fresh_build() {
    let loaded = IndexBundle::load(fixture_dir()).expect("v1 fixture loads");
    let fresh = IndexSegment::build(&fixture_corpus());
    let seg = &loaded.segments[0];

    let mut kws: Vec<String> = fresh.inverted().keywords().map(|s| s.to_string()).collect();
    kws.sort();
    let mut loaded_kws: Vec<String> = seg.inverted().keywords().map(|s| s.to_string()).collect();
    loaded_kws.sort();
    assert_eq!(kws, loaded_kws);
    for k in &kws {
        assert_eq!(
            collect_postings(seg.inverted().postings(k)),
            collect_postings(fresh.inverted().postings(k)),
            "keyword {k}"
        );
    }
    for pat in ["/books//book/isbn", "/books/book/title", "/reviews/review/content"] {
        let p = PathPattern::parse(pat).unwrap();
        assert_eq!(
            seg.path_index().lookup(&p, &[]),
            fresh.path_index().lookup(&p, &[]),
            "pattern {pat}"
        );
    }
}

#[test]
fn resaving_a_v1_bundle_produces_v2_bytes_that_load_identically() {
    let bundle = IndexBundle::load(fixture_dir()).expect("v1 fixture loads");
    let dir = std::env::temp_dir().join(format!("vxv-v1-resave-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = bundle.save(&dir).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..8], b"VXVIDX05", "save always writes the current version");
    let again = IndexBundle::load(&dir).unwrap();
    assert_eq!(again.segments.len(), 1);
    assert_eq!(again.segments[0].docs(), bundle.segments[0].docs());
    std::fs::remove_dir_all(&dir).unwrap();
}
