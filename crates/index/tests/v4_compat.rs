//! Backward compatibility: a checked-in v4 `indices.vxi` (the zero-copy
//! block format, from before per-occurrence positions existed) must
//! load through the current loader with every list and stored bound
//! intact — and **without** positions: `has_positions()` reports false
//! so the engine can fail phrase/proximity requests typed instead of
//! returning silent zero counts. Re-saving writes current v5 bytes that
//! stay positionless (positions are recorded at tokenization time and
//! cannot be synthesized from the postings).
//!
//! The fixture under `tests/fixtures/v4/` was produced by the v4
//! `IndexBundle::save` over the two-segment bundle reconstructed below
//! (mirroring `v1_compat.rs` / `v2_compat.rs` / `v3_compat.rs`); if the
//! loader ever stops accepting v4 bytes this test fails without needing
//! any old code around.

use std::path::{Path, PathBuf};
use vxv_index::cursor::collect_postings;
use vxv_index::{IndexBundle, IndexSegment, PathPattern, PersistError};
use vxv_xml::{Corpus, DeweyId};

fn fixture_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v4"))
}

/// The corpora the fixture's two segments were built from (kept in sync
/// with the fixture generator; the fixture itself is frozen bytes).
fn fixture_corpora() -> (Corpus, Corpus) {
    let mut c1 = Corpus::new();
    c1.add_parsed(
        "books.xml",
        "<books><book><isbn>111</isbn><title>XML search</title><year>1996</year></book>\
         <book><isbn>222</isbn><title>AI</title></book></books>",
    )
    .unwrap();
    c1.add_parsed(
        "reviews.xml",
        "<reviews><review><isbn>111</isbn><content>all about xml</content></review></reviews>",
    )
    .unwrap();
    let mut c2 = Corpus::new();
    c2.add(vxv_xml::parse_document("extra.xml", "<extra><e>late xml doc</e></extra>", 9).unwrap());
    (c1, c2)
}

#[test]
fn v4_fixture_loads_without_positions() {
    let bundle = IndexBundle::load(fixture_dir()).expect("v4 fixture loads");
    assert_eq!(bundle.segments.len(), 2, "the fixture holds two segments");
    assert_eq!(bundle.segments[0].generation(), 1, "merged segment keeps its generation");
    assert_eq!(bundle.segments[1].generation(), 0);
    assert_eq!(bundle.segments[0].doc_count(), 2);
    assert_eq!(bundle.segments[1].docs()[0].name, "extra.xml");
    assert_eq!(bundle.max_root_ordinal(), Some(9));
    assert_eq!(bundle.open_stats().format_version, 4);
    for seg in &bundle.segments {
        assert!(
            !seg.inverted().has_positions(),
            "pre-v5 bytes carry no positions — the loader must not invent them"
        );
    }
}

#[test]
fn v4_fixture_lists_match_a_fresh_build_including_bounds() {
    let loaded = IndexBundle::load(fixture_dir()).expect("v4 fixture loads");
    let (c1, c2) = fixture_corpora();
    let fresh = [IndexSegment::merge([&IndexSegment::build(&c1)]), IndexSegment::build(&c2)];

    for (seg, want) in loaded.segments.iter().zip(&fresh) {
        assert!(want.inverted().has_positions(), "fresh builds record positions");
        let mut kws: Vec<String> = want.inverted().keywords().map(|s| s.to_string()).collect();
        kws.sort();
        let mut loaded_kws: Vec<String> =
            seg.inverted().keywords().map(|s| s.to_string()).collect();
        loaded_kws.sort();
        assert_eq!(kws, loaded_kws);
        for k in &kws {
            assert_eq!(
                collect_postings(seg.inverted().postings(k)),
                collect_postings(want.inverted().postings(k)),
                "keyword {k}"
            );
            assert_eq!(seg.inverted().max_tf(k), want.inverted().max_tf(k), "max_tf {k}");
            for root in ["1", "1.1", "9"] {
                let root: DeweyId = root.parse().unwrap();
                assert_eq!(
                    seg.inverted().subtree_tf_bound(k, &root),
                    want.inverted().subtree_tf_bound(k, &root),
                    "bound for {k} at {root}"
                );
            }
        }
    }
    let seg = &loaded.segments[0];
    for pat in ["/books//book/isbn", "/books/book/title", "/reviews/review/content"] {
        let p = PathPattern::parse(pat).unwrap();
        assert_eq!(
            seg.path_index().lookup(&p, &[]),
            fresh[0].path_index().lookup(&p, &[]),
            "pattern {pat}"
        );
    }
}

#[test]
fn resaving_a_v4_bundle_produces_v5_bytes_that_stay_positionless() {
    let bundle = IndexBundle::load(fixture_dir()).expect("v4 fixture loads");
    let dir = std::env::temp_dir().join(format!("vxv-v4-resave-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = bundle.save(&dir).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..8], b"VXVIDX05", "save always writes the current version");
    let again = IndexBundle::load(&dir).unwrap();
    assert_eq!(again.open_stats().format_version, 5);
    assert_eq!(again.segments.len(), 2);
    for (a, b) in again.segments.iter().zip(&bundle.segments) {
        assert_eq!(a.docs(), b.docs());
        assert_eq!(a.generation(), b.generation());
        assert!(
            !a.inverted().has_positions(),
            "re-saving cannot synthesize positions — only a rebuild can"
        );
        let mut kws: Vec<String> = b.inverted().keywords().map(|s| s.to_string()).collect();
        kws.sort();
        for k in &kws {
            assert_eq!(
                collect_postings(a.inverted().postings(k)),
                collect_postings(b.inverted().postings(k)),
                "keyword {k}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tampered_or_truncated_v4_files_fail_typed() {
    let good = std::fs::read(fixture_dir().join("indices.vxi")).unwrap();
    let dir: PathBuf = std::env::temp_dir().join(format!("vxv-v4-tamper-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("indices.vxi");
    // Truncation sweep across the tail: typed corruption through both
    // open paths, never a panic or an allocator abort.
    for cut in (good.len().saturating_sub(48))..good.len() {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))), "cut {cut}");
        assert!(
            matches!(IndexBundle::open_mmap(&dir), Err(PersistError::Corrupt(_))),
            "cut {cut}, mmap path"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
