//! Property tests for the index substrate, each pitting the indexed
//! access path against a naive scan of the same documents.

use proptest::prelude::*;
use vxv_index::tokenize::{count_keyword, tokens};
use vxv_index::{Axis, InvertedIndex, PathIndex, PathPattern, Step, TagIndex, ValuePredicate};
use vxv_xml::{Corpus, DocumentBuilder};

const TAGS: &[&str] = &["a", "b", "c"];
const WORDS: &[&str] = &["red", "blue", "green"];

#[derive(Clone, Debug)]
struct Spec {
    tag: usize,
    words: Vec<usize>,
    value: Option<u8>,
    children: Vec<Spec>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let leaf =
        (0..TAGS.len(), prop::collection::vec(0..WORDS.len(), 0..4), proptest::option::of(0u8..5))
            .prop_map(|(tag, words, value)| Spec { tag, words, value, children: vec![] });
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            0..TAGS.len(),
            prop::collection::vec(0..WORDS.len(), 0..4),
            proptest::option::of(0u8..5),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, words, value, children)| Spec { tag, words, value, children })
    })
}

fn build(spec: &Spec) -> Corpus {
    fn rec(b: &mut DocumentBuilder, s: &Spec) {
        b.begin(TAGS[s.tag]);
        let mut text = s.words.iter().map(|w| WORDS[*w]).collect::<Vec<_>>().join(" ");
        if let Some(v) = s.value {
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(&v.to_string());
        }
        if !text.is_empty() {
            b.text(&text);
        }
        for c in &s.children {
            rec(b, c);
        }
        b.end();
    }
    let mut b = DocumentBuilder::new("doc.xml", 1);
    rec(&mut b, spec);
    let mut c = Corpus::new();
    c.add(b.finish());
    c
}

fn pattern_strategy() -> impl Strategy<Value = PathPattern> {
    prop::collection::vec((any::<bool>(), 0..TAGS.len()), 1..4).prop_map(|steps| PathPattern {
        steps: steps
            .into_iter()
            .map(|(desc, tag)| Step {
                axis: if desc { Axis::Descendant } else { Axis::Child },
                tag: TAGS[tag].to_string(),
            })
            .collect(),
    })
}

proptest! {
    /// Inverted-index subtree tf == counting tokens in the subtree text.
    #[test]
    fn subtree_tf_matches_naive_count(spec in spec_strategy(), w in 0..WORDS.len()) {
        let corpus = build(&spec);
        let idx = InvertedIndex::build(&corpus);
        let doc = corpus.doc("doc.xml").unwrap();
        for n in doc.iter() {
            let naive = count_keyword(&doc.full_text(n), WORDS[w]);
            prop_assert_eq!(idx.subtree_tf(WORDS[w], &doc.node(n).dewey), naive);
        }
    }

    /// Path-index lookups == naive scans matching the pattern per node.
    #[test]
    fn path_lookup_matches_naive_scan(spec in spec_strategy(), pat in pattern_strategy()) {
        let corpus = build(&spec);
        let idx = PathIndex::build(&corpus);
        let doc = corpus.doc("doc.xml").unwrap();
        let mut naive: Vec<String> = doc
            .iter()
            .filter(|n| pat.matches_path_string(&doc.path_of(*n)))
            .map(|n| doc.node(n).dewey.to_string())
            .collect();
        naive.sort();
        let got: Vec<String> =
            idx.lookup_ids(&pat).iter().map(|d| d.to_string()).collect();
        prop_assert_eq!(got, naive);
    }

    /// Predicate probes == scan + filter on the element's own value.
    #[test]
    fn predicate_lookup_matches_filtered_scan(
        spec in spec_strategy(),
        pat in pattern_strategy(),
        op in 0u8..3,
        operand in 0u8..5,
    ) {
        let corpus = build(&spec);
        let idx = PathIndex::build(&corpus);
        let doc = corpus.doc("doc.xml").unwrap();
        let pred = match op {
            0 => ValuePredicate::Eq(operand.to_string()),
            1 => ValuePredicate::Lt(operand.to_string()),
            _ => ValuePredicate::Gt(operand.to_string()),
        };
        let naive: Vec<String> = doc
            .iter()
            .filter(|n| pat.matches_path_string(&doc.path_of(*n)))
            .filter(|n| doc.value(*n).map(|v| pred.eval(v)).unwrap_or(false))
            .map(|n| doc.node(n).dewey.to_string())
            .collect();
        let got: Vec<String> = idx
            .lookup(&pat, std::slice::from_ref(&pred))
            .iter()
            .map(|(e, _)| e.id.to_string())
            .collect();
        prop_assert_eq!(got, naive);
    }

    /// Tag streams are exactly the elements bearing the tag, in order.
    #[test]
    fn tag_streams_match_naive(spec in spec_strategy(), t in 0..TAGS.len()) {
        let corpus = build(&spec);
        let idx = TagIndex::build(&corpus);
        let doc = corpus.doc("doc.xml").unwrap();
        let naive: Vec<String> = doc
            .iter()
            .filter(|n| doc.node_tag(*n) == TAGS[t])
            .map(|n| doc.node(n).dewey.to_string())
            .collect();
        let got: Vec<String> = idx.stream(TAGS[t]).iter().map(|d| d.to_string()).collect();
        prop_assert_eq!(got, naive);
    }

    /// Tokenization is stable under re-joining (idempotent normal form).
    #[test]
    fn tokenize_idempotent(words in prop::collection::vec(0..WORDS.len(), 0..12)) {
        let text = words.iter().map(|w| WORDS[*w]).collect::<Vec<_>>().join("  ,  ");
        let once: Vec<String> = tokens(&text).collect();
        let rejoined = once.join(" ");
        let twice: Vec<String> = tokens(&rejoined).collect();
        prop_assert_eq!(once, twice);
    }
}
