//! Guard against silently over-long CI property runs: ci.yml sets
//! `PROPTEST_CASES` globally, and every crate's proptests re-read it
//! through `ProptestConfig::default()` at test time. If the vendored
//! stub ever stopped honoring the variable, CI would quietly run the
//! 256-case default per property — blowing the runner budget without a
//! visible failure. This binary pins the override end to end.
//!
//! It lives in its own integration-test binary (its own process) so the
//! env mutation can never race another test's `ProptestConfig::default()`.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static RUNS: AtomicU32 = AtomicU32::new(0);

proptest! {
    // Deliberately NOT a #[test]: it is invoked from the test below,
    // after the env override is in place (running it standalone would
    // race the env mutation inside this binary).
    fn counted_property(_x in 0u32..100) {
        RUNS.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn proptest_cases_env_override_is_honored() {
    std::env::set_var("PROPTEST_CASES", "7");
    assert_eq!(
        ProptestConfig::default().cases,
        7,
        "ProptestConfig::default() must re-read PROPTEST_CASES"
    );
    RUNS.store(0, Ordering::Relaxed);
    counted_property();
    assert_eq!(
        RUNS.load(Ordering::Relaxed),
        7,
        "a default-config property must run exactly PROPTEST_CASES cases"
    );

    // Unset: falls back to the 256-case default.
    std::env::remove_var("PROPTEST_CASES");
    assert_eq!(ProptestConfig::default().cases, 256);

    // Garbage values fall back rather than panic.
    std::env::set_var("PROPTEST_CASES", "not-a-number");
    assert_eq!(ProptestConfig::default().cases, 256);
    std::env::remove_var("PROPTEST_CASES");
}
