//! Backward compatibility: a checked-in v2 `indices.vxi` (the
//! segmented, pre-payload-bounds format) must load through the v3
//! loader with every list intact and its block-max payload bounds
//! recomputed from the data.
//!
//! The fixture under `tests/fixtures/v2/` was produced by the v2
//! `IndexBundle::save` over the two-segment bundle reconstructed below
//! (mirroring `v1_compat.rs`); if the loader ever stops accepting v2
//! bytes — or stops restoring bounds for them — this test fails without
//! needing any old code around.

use std::path::Path;
use vxv_index::cursor::collect_postings;
use vxv_index::{IndexBundle, IndexSegment, PathPattern};
use vxv_xml::{Corpus, DeweyId};

fn fixture_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v2"))
}

/// The corpora the fixture's two segments were built from (kept in sync
/// with the fixture generator; the fixture itself is frozen bytes).
fn fixture_corpora() -> (Corpus, Corpus) {
    let mut c1 = Corpus::new();
    c1.add_parsed(
        "books.xml",
        "<books><book><isbn>111</isbn><title>XML search</title><year>1996</year></book>\
         <book><isbn>222</isbn><title>AI</title></book></books>",
    )
    .unwrap();
    c1.add_parsed(
        "reviews.xml",
        "<reviews><review><isbn>111</isbn><content>all about xml</content></review></reviews>",
    )
    .unwrap();
    let mut c2 = Corpus::new();
    c2.add(vxv_xml::parse_document("extra.xml", "<extra><e>late xml doc</e></extra>", 9).unwrap());
    (c1, c2)
}

#[test]
fn v2_fixture_loads_with_segments_and_generations_intact() {
    let bundle = IndexBundle::load(fixture_dir()).expect("v2 fixture loads");
    assert_eq!(bundle.segments.len(), 2, "the fixture holds two segments");
    assert_eq!(bundle.segments[0].generation(), 1, "merged segment keeps its generation");
    assert_eq!(bundle.segments[1].generation(), 0);
    assert_eq!(bundle.segments[0].doc_count(), 2);
    assert_eq!(bundle.segments[1].docs()[0].name, "extra.xml");
    assert_eq!(bundle.max_root_ordinal(), Some(9));
}

#[test]
fn v2_fixture_lists_match_a_fresh_build_including_bounds() {
    let loaded = IndexBundle::load(fixture_dir()).expect("v2 fixture loads");
    let (c1, c2) = fixture_corpora();
    let fresh = [IndexSegment::merge([&IndexSegment::build(&c1)]), IndexSegment::build(&c2)];

    for (seg, want) in loaded.segments.iter().zip(&fresh) {
        let mut kws: Vec<String> = want.inverted().keywords().map(|s| s.to_string()).collect();
        kws.sort();
        let mut loaded_kws: Vec<String> =
            seg.inverted().keywords().map(|s| s.to_string()).collect();
        loaded_kws.sort();
        assert_eq!(kws, loaded_kws);
        for k in &kws {
            assert_eq!(
                collect_postings(seg.inverted().postings(k)),
                collect_postings(want.inverted().postings(k)),
                "keyword {k}"
            );
            // Bounds were absent in v2 bytes: the loader recomputed them
            // to exactly what a fresh build carries.
            assert_eq!(seg.inverted().max_tf(k), want.inverted().max_tf(k), "max_tf {k}");
            for root in ["1", "1.1", "9"] {
                let root: DeweyId = root.parse().unwrap();
                assert_eq!(
                    seg.inverted().subtree_tf_bound(k, &root),
                    want.inverted().subtree_tf_bound(k, &root),
                    "bound for {k} at {root}"
                );
            }
        }
    }
    let seg = &loaded.segments[0];
    for pat in ["/books//book/isbn", "/books/book/title", "/reviews/review/content"] {
        let p = PathPattern::parse(pat).unwrap();
        assert_eq!(
            seg.path_index().lookup(&p, &[]),
            fresh[0].path_index().lookup(&p, &[]),
            "pattern {pat}"
        );
    }
}

#[test]
fn resaving_a_v2_bundle_produces_v3_bytes_that_load_identically() {
    let bundle = IndexBundle::load(fixture_dir()).expect("v2 fixture loads");
    let dir = std::env::temp_dir().join(format!("vxv-v2-resave-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = bundle.save(&dir).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..8], b"VXVIDX04", "save always writes the current version");
    let again = IndexBundle::load(&dir).unwrap();
    assert_eq!(again.segments.len(), 2);
    for (a, b) in again.segments.iter().zip(&bundle.segments) {
        assert_eq!(a.docs(), b.docs());
        assert_eq!(a.generation(), b.generation());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
