//! WAL corruption sweep: replay must recover the intact record prefix
//! — typed, never panicking, never inventing documents — from a log
//! damaged *anywhere*. Truncation is swept at every byte boundary, bit
//! flips at every byte offset, and garbage tails of several shapes.
//!
//! The sweep drives [`vxv_index::wal::replay_bytes`] on in-memory
//! images so damaging every offset costs no disk I/O; one test closes
//! the loop through real files to check the physical truncation
//! [`WalWriter::open`] performs.

use std::path::PathBuf;
use vxv_index::wal::{self, replay_bytes, TornTail, WalError, WalWriter};
use vxv_index::FsyncPolicy;

const MAGIC_LEN: usize = 8;
const RECORD_HEADER: usize = 12;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vxv-wal-sweep-{tag}-{}", std::process::id()))
}

fn batch(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs.iter().map(|(n, x)| (n.to_string(), x.to_string())).collect()
}

type WalBatch = Vec<(String, String)>;

/// A three-record log (single-doc, multi-doc, empty-ish doc) plus the
/// byte offset where each record ends — the acknowledged boundaries.
fn sample_log() -> (Vec<u8>, Vec<u64>, Vec<WalBatch>) {
    let batches = vec![
        batch(&[("a.xml", "<r><e>alpha</e></r>")]),
        batch(&[("b.xml", "<r/>"), ("c.xml", "<r><e>beta gamma</e></r>")]),
        batch(&[("d.xml", "<r><e></e></r>")]),
    ];
    let path = temp_path("sample");
    let _ = std::fs::remove_file(&path);
    let mut w = WalWriter::open(&path, 0, FsyncPolicy::Never).unwrap();
    let mut boundaries = vec![w.len()];
    for b in &batches {
        w.append_batch(b).unwrap();
        boundaries.push(w.len());
    }
    drop(w);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(bytes.len() as u64, *boundaries.last().unwrap());
    (bytes, boundaries, batches)
}

/// How many whole records fit within `cut` bytes.
fn intact_records(boundaries: &[u64], cut: usize) -> usize {
    boundaries[1..].iter().filter(|&&b| b <= cut as u64).count()
}

#[test]
fn truncation_at_every_byte_boundary_recovers_the_acknowledged_prefix() {
    let (bytes, boundaries, batches) = sample_log();
    for cut in 0..=bytes.len() {
        let r = replay_bytes(&bytes[..cut]).unwrap_or_else(|e| {
            panic!("cut at {cut}: replay must stay Ok over truncations, got {e}")
        });
        let expect = intact_records(&boundaries, cut);
        assert_eq!(r.records as usize, expect, "cut at {cut}");
        assert_eq!(r.batches.len(), expect, "cut at {cut}");
        // Never invented, never reordered: exactly the acknowledged
        // prefix, byte for byte.
        for (i, b) in r.batches.iter().enumerate() {
            assert_eq!(b, &batches[i], "cut at {cut}, record {i}");
        }
        if cut == 0 {
            assert!(r.truncated.is_none());
            continue;
        }
        let on_boundary = boundaries.contains(&(cut as u64));
        assert_eq!(
            r.truncated.is_none(),
            on_boundary,
            "cut at {cut}: torn tail must be reported iff mid-record"
        );
        // The validated prefix is the last boundary at or before the
        // cut — reopening there loses nothing acknowledged.
        if cut >= MAGIC_LEN {
            let prefix = boundaries.iter().copied().filter(|&b| b <= cut as u64).max().unwrap();
            assert_eq!(r.valid_bytes, prefix, "cut at {cut}");
        }
    }
}

#[test]
fn truncation_tails_are_typed_by_what_was_lost() {
    let (bytes, boundaries, _) = sample_log();
    let first = boundaries[0] as usize; // == MAGIC_LEN
    assert_eq!(first, MAGIC_LEN);
    for cut in 1..bytes.len() {
        let r = replay_bytes(&bytes[..cut]).unwrap();
        let Some(tail) = r.truncated else { continue };
        let past = cut - r.valid_bytes as usize;
        match tail {
            TornTail::ShortHeader { bytes: b } => {
                assert!(past < RECORD_HEADER || cut < MAGIC_LEN, "cut at {cut}");
                if cut >= MAGIC_LEN {
                    assert_eq!(b, past, "cut at {cut}");
                }
            }
            TornTail::ShortPayload { claimed, present } => {
                assert!(past >= RECORD_HEADER, "cut at {cut}");
                assert!(present < claimed, "cut at {cut}");
                assert_eq!(present as usize, past - RECORD_HEADER, "cut at {cut}");
            }
            other => panic!("cut at {cut}: truncation can only shorten, got {other:?}"),
        }
    }
}

#[test]
fn bit_flips_at_every_offset_never_panic_and_never_invent_documents() {
    let (bytes, _, batches) = sample_log();
    for offset in 0..bytes.len() {
        for bit in 0..8u8 {
            let mut damaged = bytes.clone();
            damaged[offset] ^= 1 << bit;
            match replay_bytes(&damaged) {
                Ok(r) => {
                    assert!(
                        offset >= MAGIC_LEN,
                        "offset {offset} bit {bit}: magic damage must be typed corrupt"
                    );
                    // Whatever survives validation must be a prefix of
                    // the acknowledged batches — corruption may cost
                    // records, never fabricate or alter them.
                    assert!(r.records as usize <= batches.len());
                    for (i, b) in r.batches.iter().enumerate() {
                        assert_eq!(
                            b, &batches[i],
                            "offset {offset} bit {bit}: replayed record {i} altered"
                        );
                    }
                    // A flip strictly inside the image always damages
                    // some record: replay cannot report a fully valid
                    // file.
                    assert!(
                        r.truncated.is_some() || (r.records as usize) < batches.len(),
                        "offset {offset} bit {bit}: corruption went undetected"
                    );
                }
                Err(WalError::Corrupt(_)) => {
                    assert!(offset < MAGIC_LEN, "offset {offset} bit {bit}");
                }
                Err(e) => panic!("offset {offset} bit {bit}: unexpected {e}"),
            }
        }
    }
}

#[test]
fn garbage_tails_replay_the_intact_prefix() {
    let (bytes, boundaries, batches) = sample_log();
    let tails: [&[u8]; 4] = [
        &[0u8; 64],
        &[0xFFu8; 64],
        b"VXVWAL01 pretend nested magic",
        &[0xA5u8; 3], // shorter than a record header
    ];
    for (i, tail) in tails.iter().enumerate() {
        let mut damaged = bytes.clone();
        damaged.extend_from_slice(tail);
        let r = replay_bytes(&damaged).unwrap();
        assert_eq!(r.records as usize, batches.len(), "tail {i}");
        assert_eq!(r.valid_bytes, *boundaries.last().unwrap(), "tail {i}");
        assert!(r.truncated.is_some(), "tail {i}: garbage went undetected");
        for (j, b) in r.batches.iter().enumerate() {
            assert_eq!(b, &batches[j], "tail {i}, record {j}");
        }
    }
}

#[test]
fn reopening_after_any_truncation_lands_appends_on_a_clean_boundary() {
    let (bytes, boundaries, batches) = sample_log();
    let path = temp_path("reopen");
    // Sparse sweep through the file (every 7th cut) to keep disk I/O
    // sane; the in-memory sweep above covers every offset.
    for cut in (0..=bytes.len()).step_by(7).chain([bytes.len()]) {
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let r = wal::replay(&path).unwrap();
        let mut w = WalWriter::open(&path, r.valid_bytes, FsyncPolicy::Never).unwrap();
        let fresh = batch(&[("fresh.xml", "<r><e>post-crash</e></r>")]);
        w.append_batch(&fresh).unwrap();
        drop(w);

        let again = wal::replay(&path).unwrap();
        assert!(again.truncated.is_none(), "cut at {cut}: tail survived reopen");
        let expect = intact_records(&boundaries, cut);
        assert_eq!(again.records as usize, expect + 1, "cut at {cut}");
        for (i, b) in again.batches[..expect].iter().enumerate() {
            assert_eq!(b, &batches[i], "cut at {cut}, record {i}");
        }
        assert_eq!(again.batches[expect], fresh, "cut at {cut}");
    }
    let _ = std::fs::remove_file(&path);
}
