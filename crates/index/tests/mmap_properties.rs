//! Byte-identity of the mmap'd open path.
//!
//! The whole point of `IndexBundle::open_mmap` is that it changes *how*
//! posting bytes are backed, never *what* any probe answers. These
//! properties pin that down across random corpora and multi-segment
//! bundles: every search-relevant probe — postings, bounds, estimates,
//! containment, path lookups — answers identically through an owned
//! load and a mapped open, **including the probe/prune work counters**
//! (entries scanned, blocks skipped, bytes decoded), since the
//! experiments report those as results.
//!
//! A second sweep mutates and truncates saved files to pin the failure
//! mode: every out-of-bounds section offset or corrupt structure
//! surfaces as a typed `PersistError`, never a panic, allocator abort,
//! or out-of-bounds read through the mapping.

use proptest::prelude::*;
use vxv_index::cursor::collect_postings;
use vxv_index::footprint::IndexFootprint;
use vxv_index::{IndexBundle, IndexSegment, PathPattern, PersistError};
use vxv_xml::{Corpus, DeweyId, DocumentBuilder};

const TAGS: &[&str] = &["a", "b", "c"];
const WORDS: &[&str] = &["red", "blue", "green", "xml"];

#[derive(Clone, Debug)]
struct Spec {
    tag: usize,
    words: Vec<usize>,
    children: Vec<Spec>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let leaf = (0..TAGS.len(), prop::collection::vec(0..WORDS.len(), 0..4))
        .prop_map(|(tag, words)| Spec { tag, words, children: vec![] });
    leaf.prop_recursive(3, 16, 4, |inner| {
        (
            0..TAGS.len(),
            prop::collection::vec(0..WORDS.len(), 0..4),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, words, children)| Spec { tag, words, children })
    })
}

/// One to three segments, each over one generated document, namespaced
/// at distinct root ordinals.
fn bundle_strategy() -> impl Strategy<Value = Vec<Spec>> {
    prop::collection::vec(spec_strategy(), 1..4)
}

fn build_segment(spec: &Spec, ordinal: u32) -> IndexSegment {
    fn rec(b: &mut DocumentBuilder, s: &Spec) {
        b.begin(TAGS[s.tag]);
        let text = s.words.iter().map(|w| WORDS[*w]).collect::<Vec<_>>().join(" ");
        if !text.is_empty() {
            b.text(&text);
        }
        for c in &s.children {
            rec(b, c);
        }
        b.end();
    }
    let mut b = DocumentBuilder::new(format!("doc{ordinal}.xml"), ordinal);
    rec(&mut b, spec);
    let mut c = Corpus::new();
    c.add(b.finish());
    IndexSegment::build(&c)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "vxv-mmapprop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Drive an identical probe workload through a segment and return every
/// answer as comparable strings, plus the counter snapshot it cost.
fn probe_workload(seg: &IndexSegment) -> (Vec<String>, vxv_index::SegmentStats) {
    seg.reset_stats();
    let mut out = Vec::new();
    let inv = seg.inverted();
    let mut kws: Vec<String> = inv.keywords().map(|s| s.to_string()).collect();
    kws.sort();
    let roots: Vec<DeweyId> =
        ["1", "1.1", "1.2.1", "9", "9.1"].iter().map(|s| s.parse().unwrap()).collect();
    for k in &kws {
        out.push(format!("{k}: {:?}", collect_postings(inv.postings(k))));
        out.push(format!("{k} max_tf {}", inv.max_tf(k)));
        for r in &roots {
            out.push(format!("{k}@{r} bound {:?}", inv.subtree_tf_bound(k, r)));
            out.push(format!("{k}@{r} est {:?}", inv.subtree_tf_estimate(k, r)));
            out.push(format!("{k}@{r} interior {}", inv.subtree_tf_interior(k, r)));
            out.push(format!("{k}@{r} contains {}", inv.contains_in_subtree(k, r)));
            out.push(format!("{k}@{r} tf {}", inv.subtree_tf(k, r)));
        }
    }
    for pat in ["/a", "//b", "/a//c", "//a/b"] {
        let p = PathPattern::parse(pat).unwrap();
        out.push(format!("{pat}: {:?}", seg.path_index().lookup(&p, &[])));
    }
    (out, seg.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
    ))]

    /// Mapped cold-open answers byte-identically to an owned load —
    /// answers *and* probe/prune counters — and decodes nothing at open.
    #[test]
    fn mmap_open_is_byte_identical_to_owned_load(specs in bundle_strategy()) {
        let segments: Vec<IndexSegment> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| build_segment(s, 1 + 8 * i as u32))
            .collect();
        let bundle = IndexBundle::from_segments(segments);
        let dir = tmpdir("identity");
        bundle.save(&dir).unwrap();

        let owned = IndexBundle::load(&dir).unwrap();
        let mapped = IndexBundle::open_mmap(&dir).unwrap();
        // Cold open decodes no posting block on either path.
        prop_assert_eq!(owned.open_stats().bytes_decoded, 0);
        prop_assert_eq!(mapped.open_stats().bytes_decoded, 0);
        // Residency is the only difference: the mapped bundle owns no
        // posting bytes.
        prop_assert_eq!(
            owned.segments.iter().map(|s| s.owned_data_bytes()).sum::<u64>(),
            owned.open_stats().owned_bytes
        );
        prop_assert_eq!(mapped.segments.iter().map(|s| s.owned_data_bytes()).sum::<u64>(), 0);

        prop_assert_eq!(owned.segments.len(), mapped.segments.len());
        for (a, b) in owned.segments.iter().zip(&mapped.segments) {
            let (answers_a, stats_a) = probe_workload(a);
            let (answers_b, stats_b) = probe_workload(b);
            prop_assert_eq!(answers_a, answers_b);
            // Same probes, same work: scanned entries, skipped blocks
            // and decoded bytes all match counter-for-counter.
            prop_assert_eq!(stats_a, stats_b);
            // And both match the original in-memory build.
            prop_assert_eq!(a.footprint(), b.footprint());
        }
        std::fs::remove_dir_all(&dir).unwrap();
        // The mapped bundle stays fully usable after the file is gone
        // (the mapping pins the pages).
        for seg in &mapped.segments {
            let _ = probe_workload(seg);
        }
    }

    /// Every truncation of a saved bundle fails typed through both open
    /// paths — unaligned cuts included, since the cut offset is
    /// arbitrary. Never a panic, never an abort.
    #[test]
    fn truncated_mappings_fail_typed(spec in spec_strategy(), frac in 0u32..1000) {
        let bundle = IndexBundle::from_segments(vec![build_segment(&spec, 1)]);
        let dir = tmpdir("trunc");
        let path = bundle.save(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = (bytes.len() * frac as usize / 1000).min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        prop_assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))));
        prop_assert!(matches!(IndexBundle::open_mmap(&dir), Err(PersistError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Arbitrary single-byte corruption anywhere in the file either
    /// fails typed or loads a bundle whose probes complete without
    /// panicking (flips in DATA or padding are tolerated by design —
    /// the decoder is bounds-checked; flips in the header or META are
    /// caught by the section table checks and checksum).
    #[test]
    fn corrupted_mappings_never_panic(spec in spec_strategy(), pos_frac in 0u32..1000, flip in 1u32..256) {
        let flip = flip as u8;
        let bundle = IndexBundle::from_segments(vec![build_segment(&spec, 1)]);
        let dir = tmpdir("flip");
        let path = bundle.save(&dir).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (bytes.len() * pos_frac as usize / 1000).min(bytes.len() - 1);
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).unwrap();
        for opened in [IndexBundle::load(&dir), IndexBundle::open_mmap(&dir)] {
            match opened {
                Err(PersistError::Corrupt(_)) => {}
                Err(PersistError::Io(e)) => prop_assert!(false, "unexpected io error: {e}"),
                Ok(b) => {
                    for seg in &b.segments {
                        let _ = probe_workload(seg);
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
