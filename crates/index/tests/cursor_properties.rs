//! Property tests for the block-compressed cursor layer, pitting the
//! compressed representation against plain sorted vectors.
//!
//! The sensitive case is block boundaries around prefix-vs-extension IDs
//! (`1.1` vs `1.10`): components 1..=12 make such pairs likely, and
//! block sizes down to 1 force every entry onto its own boundary.

use proptest::prelude::*;
use vxv_index::cursor::ScanCounters;
use vxv_index::postings::BlockList;
use vxv_xml::DeweyId;

fn dewey_strategy() -> impl Strategy<Value = DeweyId> {
    prop::collection::vec(1u32..13, 1..5).prop_map(DeweyId::from_components)
}

/// A random sorted, deduplicated Dewey-ordered list with payloads.
fn list_strategy() -> impl Strategy<Value = Vec<(DeweyId, u32)>> {
    prop::collection::vec((dewey_strategy(), 0u32..1000), 0..60).prop_map(|mut v| {
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v.dedup_by(|a, b| a.0 == b.0);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn decode_round_trips(entries in list_strategy(), bs in 1usize..9) {
        let list = BlockList::encode_with_block_size(&entries, bs);
        prop_assert_eq!(list.decode_all(), entries.clone());
        prop_assert_eq!(list.len(), entries.len() as u64);
    }

    /// `seek` must land exactly on the lower bound — never skipping a
    /// qualifying posting across a block boundary.
    #[test]
    fn seek_never_skips_across_block_boundaries(
        entries in list_strategy(),
        target in dewey_strategy(),
        bs in 1usize..9,
    ) {
        let list = BlockList::encode_with_block_size(&entries, bs);
        let counters = ScanCounters::default();
        let mut cur = list.cursor(Some(&counters));
        cur.seek_raw(&target);
        let got: Vec<DeweyId> = std::iter::from_fn(|| cur.next_raw().map(|(id, _)| id)).collect();
        let want: Vec<DeweyId> =
            entries.iter().filter(|(id, _)| *id >= target).map(|(id, _)| id.clone()).collect();
        prop_assert_eq!(got, want, "seek to {} with block size {}", target, bs);
    }

    /// Seeking from a mid-stream position (after consuming a prefix)
    /// also lands on the lower bound of the remaining entries.
    #[test]
    fn mid_stream_seek_is_forward_lower_bound(
        entries in list_strategy(),
        skip in 0usize..20,
        target in dewey_strategy(),
        bs in 1usize..9,
    ) {
        let list = BlockList::encode_with_block_size(&entries, bs);
        let mut cur = list.cursor(None);
        let mut consumed = Vec::new();
        for _ in 0..skip {
            match cur.next_raw() {
                Some((id, _)) => consumed.push(id),
                None => break,
            }
        }
        cur.seek_raw(&target);
        let got: Vec<DeweyId> = std::iter::from_fn(|| cur.next_raw().map(|(id, _)| id)).collect();
        let want: Vec<DeweyId> = entries
            .iter()
            .map(|(id, _)| id.clone())
            .skip(consumed.len())
            .filter(|id| *id >= target)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn count_range_matches_naive_filter(
        entries in list_strategy(),
        lo in dewey_strategy(),
        hi in dewey_strategy(),
        bs in 1usize..9,
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let list = BlockList::encode_with_block_size(&entries, bs);
        let naive = entries.iter().filter(|(id, _)| *id >= lo && *id < hi).count() as u64;
        prop_assert_eq!(list.count_range(&lo, &hi), naive);
    }

    /// Compressed storage never loses to the materialized accounting by
    /// more than the per-block directory overhead allows, and the
    /// directory's skip metadata is consistent with the data.
    #[test]
    fn subtree_ranges_match_slice_partition(entries in list_strategy(), root in dewey_strategy()) {
        let list = BlockList::encode_with_block_size(&entries, 4);
        let hi = root.subtree_upper_bound();
        let mut cur = list.cursor(None);
        cur.seek_raw(&root);
        let mut got = Vec::new();
        while let Some((id, payload)) = cur.next_raw() {
            if id >= hi {
                break;
            }
            got.push((id, payload));
        }
        let want: Vec<(DeweyId, u32)> = entries
            .iter()
            .filter(|(id, _)| root.is_prefix_of(id))
            .cloned()
            .collect();
        prop_assert_eq!(got, want, "subtree of {}", root);
    }
}
