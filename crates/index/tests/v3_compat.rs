//! Backward compatibility: a checked-in v3 `indices.vxi` (the segmented
//! format with inlined list bytes and persisted payload bounds) must
//! load through the v4 loader into fully owned lists, with every list
//! and every stored bound intact — and re-saving it must write current
//! v4 bytes.
//!
//! The fixture under `tests/fixtures/v3/` was produced by the v3
//! `IndexBundle::save` over the two-segment bundle reconstructed below
//! (mirroring `v1_compat.rs` / `v2_compat.rs`); if the loader ever
//! stops accepting v3 bytes this test fails without needing any old
//! code around.

use std::path::{Path, PathBuf};
use vxv_index::cursor::collect_postings;
use vxv_index::{IndexBundle, IndexSegment, PathPattern, PersistError};
use vxv_xml::{Corpus, DeweyId};

fn fixture_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v3"))
}

/// The corpora the fixture's two segments were built from (kept in sync
/// with the fixture generator; the fixture itself is frozen bytes).
fn fixture_corpora() -> (Corpus, Corpus) {
    let mut c1 = Corpus::new();
    c1.add_parsed(
        "books.xml",
        "<books><book><isbn>111</isbn><title>XML search</title><year>1996</year></book>\
         <book><isbn>222</isbn><title>AI</title></book></books>",
    )
    .unwrap();
    c1.add_parsed(
        "reviews.xml",
        "<reviews><review><isbn>111</isbn><content>all about xml</content></review></reviews>",
    )
    .unwrap();
    let mut c2 = Corpus::new();
    c2.add(vxv_xml::parse_document("extra.xml", "<extra><e>late xml doc</e></extra>", 9).unwrap());
    (c1, c2)
}

#[test]
fn v3_fixture_loads_with_segments_and_generations_intact() {
    let bundle = IndexBundle::load(fixture_dir()).expect("v3 fixture loads");
    assert_eq!(bundle.segments.len(), 2, "the fixture holds two segments");
    assert_eq!(bundle.segments[0].generation(), 1, "merged segment keeps its generation");
    assert_eq!(bundle.segments[1].generation(), 0);
    assert_eq!(bundle.segments[0].doc_count(), 2);
    assert_eq!(bundle.segments[1].docs()[0].name, "extra.xml");
    assert_eq!(bundle.max_root_ordinal(), Some(9));
    // v3 lists are validated (fully decoded) at load, into owned bytes.
    let stats = bundle.open_stats();
    assert_eq!(stats.format_version, 3);
    assert!(stats.bytes_decoded > 0, "legacy loads decode for validation");
    assert!(stats.owned_bytes > 0);
    assert_eq!(stats.mapped_bytes, 0);
}

#[test]
fn v3_fixture_lists_match_a_fresh_build_including_bounds() {
    let loaded = IndexBundle::load(fixture_dir()).expect("v3 fixture loads");
    let (c1, c2) = fixture_corpora();
    let fresh = [IndexSegment::merge([&IndexSegment::build(&c1)]), IndexSegment::build(&c2)];

    for (seg, want) in loaded.segments.iter().zip(&fresh) {
        let mut kws: Vec<String> = want.inverted().keywords().map(|s| s.to_string()).collect();
        kws.sort();
        let mut loaded_kws: Vec<String> =
            seg.inverted().keywords().map(|s| s.to_string()).collect();
        loaded_kws.sort();
        assert_eq!(kws, loaded_kws);
        for k in &kws {
            assert_eq!(
                collect_postings(seg.inverted().postings(k)),
                collect_postings(want.inverted().postings(k)),
                "keyword {k}"
            );
            // v3 bounds were stored in the file: they must equal what a
            // fresh build computes.
            assert_eq!(seg.inverted().max_tf(k), want.inverted().max_tf(k), "max_tf {k}");
            for root in ["1", "1.1", "9"] {
                let root: DeweyId = root.parse().unwrap();
                assert_eq!(
                    seg.inverted().subtree_tf_bound(k, &root),
                    want.inverted().subtree_tf_bound(k, &root),
                    "bound for {k} at {root}"
                );
            }
        }
    }
    let seg = &loaded.segments[0];
    for pat in ["/books//book/isbn", "/books/book/title", "/reviews/review/content"] {
        let p = PathPattern::parse(pat).unwrap();
        assert_eq!(
            seg.path_index().lookup(&p, &[]),
            fresh[0].path_index().lookup(&p, &[]),
            "pattern {pat}"
        );
    }
}

#[test]
fn resaving_a_v3_bundle_produces_v4_bytes_that_load_identically() {
    let bundle = IndexBundle::load(fixture_dir()).expect("v3 fixture loads");
    let dir = std::env::temp_dir().join(format!("vxv-v3-resave-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = bundle.save(&dir).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..8], b"VXVIDX05", "save always writes the current version");
    let again = IndexBundle::load(&dir).unwrap();
    assert_eq!(again.open_stats().format_version, 5);
    assert_eq!(again.open_stats().bytes_decoded, 0, "v4 reload decodes nothing");
    assert_eq!(again.segments.len(), 2);
    for (a, b) in again.segments.iter().zip(&bundle.segments) {
        assert_eq!(a.docs(), b.docs());
        assert_eq!(a.generation(), b.generation());
        let mut kws: Vec<String> = b.inverted().keywords().map(|s| s.to_string()).collect();
        kws.sort();
        for k in &kws {
            assert_eq!(
                collect_postings(a.inverted().postings(k)),
                collect_postings(b.inverted().postings(k)),
                "keyword {k}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tampered_or_truncated_v3_files_fail_typed() {
    // Stale bounds and truncations must surface as typed corruption —
    // never a panic or an allocator abort — through both open paths.
    let good = std::fs::read(fixture_dir().join("indices.vxi")).unwrap();
    let dir: PathBuf = std::env::temp_dir().join(format!("vxv-v3-tamper-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("indices.vxi");
    // The file's final bytes are the last blocklist's stored payload
    // bounds: flipping them desynchronizes bound from data.
    for back in 1..=4 {
        let mut bad = good.clone();
        let i = bad.len() - back;
        bad[i] = bad[i].wrapping_add(1);
        std::fs::write(&path, &bad).unwrap();
        assert!(
            matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))),
            "tampered bound byte {back} from the end"
        );
        assert!(
            matches!(IndexBundle::open_mmap(&dir), Err(PersistError::Corrupt(_))),
            "tampered bound byte {back} from the end, mmap path"
        );
    }
    // Truncation sweep across the tail.
    for cut in (good.len().saturating_sub(48))..good.len() {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))), "cut {cut}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
