//! [`IndexSegment`] — the unit of incremental indexing.
//!
//! A segment is an **immutable** triple: a [`PathIndex`], an
//! [`InvertedIndex`], and the catalog ([`DocInfo`]) of the documents both
//! cover. Segments partition the corpus by document — every document
//! (and therefore every Dewey root ordinal) lives in exactly one segment
//! — so a query that projects a document consults exactly one segment's
//! indices, several projected documents fan out across segments in
//! parallel, and ingesting new documents means *building a new segment*,
//! never touching an existing one.
//!
//! Segments carry a **generation**: freshly built segments are
//! generation 0; merging segments ([`IndexSegment::merge`]) produces a
//! segment one generation above its deepest input. The engine's
//! size-tiered compaction uses generations for observability (operators
//! can see how often data has been rewritten).
//!
//! The merge invariant the property tests pin down: because both index
//! families re-sort and re-encode on merge, a merged segment answers
//! every probe, cursor scan and footprint query **identically** to the
//! segment a single build over the union of the documents would produce
//! — so compaction can never change a search result. (Internal
//! enumeration orders — the path dictionary and the catalog — may
//! differ from a union build's; neither is observable through probes.)

use crate::footprint::{Footprint, IndexFootprint};
use crate::inverted::{InvertedIndex, InvertedIndexStats};
use crate::path_index::{PathIndex, PathIndexStats};
use crate::persist::DocInfo;
use std::sync::Arc;
use vxv_xml::Corpus;

/// Work-counter snapshot of one segment (both index families).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// The segment's path-index counters.
    pub path: PathIndexStats,
    /// The segment's inverted-index counters.
    pub inverted: InvertedIndexStats,
}

impl std::ops::Add for SegmentStats {
    type Output = SegmentStats;

    fn add(self, rhs: SegmentStats) -> SegmentStats {
        SegmentStats { path: self.path + rhs.path, inverted: self.inverted + rhs.inverted }
    }
}

/// An immutable index segment: both indices plus the catalog of the
/// documents they cover. See the module docs.
#[derive(Debug)]
pub struct IndexSegment {
    path_index: Arc<PathIndex>,
    inverted: Arc<InvertedIndex>,
    docs: Vec<DocInfo>,
    generation: u32,
}

/// Extract the per-document catalog metadata a segment (or bundle)
/// carries for an in-memory corpus.
pub fn corpus_doc_infos(corpus: &Corpus) -> Vec<DocInfo> {
    corpus
        .docs()
        .filter_map(|d| {
            let root = d.root()?;
            Some(DocInfo {
                name: d.name().to_string(),
                root_tag: d.node_tag(root).to_string(),
                root_ordinal: d.node(root).dewey.components()[0],
            })
        })
        .collect()
}

impl IndexSegment {
    /// Build a generation-0 segment over every document in `corpus`.
    pub fn build(corpus: &Corpus) -> IndexSegment {
        IndexSegment {
            path_index: Arc::new(PathIndex::build(corpus)),
            inverted: Arc::new(InvertedIndex::build(corpus)),
            docs: corpus_doc_infos(corpus),
            generation: 0,
        }
    }

    /// Wrap pre-built parts into a segment.
    pub fn from_parts(
        path_index: impl Into<Arc<PathIndex>>,
        inverted: impl Into<Arc<InvertedIndex>>,
        docs: Vec<DocInfo>,
        generation: u32,
    ) -> IndexSegment {
        IndexSegment { path_index: path_index.into(), inverted: inverted.into(), docs, generation }
    }

    /// Merge segments over disjoint document sets into one segment of
    /// generation `max(input generations) + 1`. The merged indices
    /// answer every probe identically to a single build over the union
    /// of the documents (entries are re-sorted and re-encoded; only
    /// unobservable enumeration orders may differ). The merged catalog
    /// is name-sorted for stability across merge orders.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a IndexSegment>) -> IndexSegment {
        let parts: Vec<&IndexSegment> = parts.into_iter().collect();
        let mut docs: Vec<DocInfo> = parts.iter().flat_map(|s| s.docs.iter().cloned()).collect();
        docs.sort_by(|a, b| a.name.cmp(&b.name));
        IndexSegment {
            path_index: Arc::new(PathIndex::merge(parts.iter().map(|s| s.path_index()))),
            inverted: Arc::new(InvertedIndex::merge(parts.iter().map(|s| s.inverted()))),
            docs,
            generation: parts.iter().map(|s| s.generation).max().map(|g| g + 1).unwrap_or(0),
        }
    }

    /// The segment's (Path, Value) index.
    pub fn path_index(&self) -> &PathIndex {
        &self.path_index
    }

    /// An owned handle to the segment's path index.
    pub fn path_index_arc(&self) -> Arc<PathIndex> {
        Arc::clone(&self.path_index)
    }

    /// The segment's inverted keyword index.
    pub fn inverted(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// An owned handle to the segment's inverted index.
    pub fn inverted_arc(&self) -> Arc<InvertedIndex> {
        Arc::clone(&self.inverted)
    }

    /// Catalog metadata of the documents this segment covers.
    pub fn docs(&self) -> &[DocInfo] {
        &self.docs
    }

    /// Number of documents this segment covers.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Merge depth: 0 for freshly built segments, one above the deepest
    /// input for merged ones.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The largest Dewey root ordinal among this segment's documents
    /// (`None` for an empty segment) — what the engine's ordinal
    /// allocator namespaces new segments above.
    pub fn max_root_ordinal(&self) -> Option<u32> {
        self.docs.iter().map(|d| d.root_ordinal).max()
    }

    /// Heap bytes this segment's posting/row buffers actually own —
    /// zero when every list decodes out of a shared file mapping
    /// ([`crate::IndexBundle::open_mmap`]); the map-vs-owned residency
    /// split `vxv inspect` reports.
    pub fn owned_data_bytes(&self) -> u64 {
        self.path_index.owned_data_bytes() + self.inverted.owned_data_bytes()
    }

    /// Combined work-counter snapshot of both indices.
    pub fn stats(&self) -> SegmentStats {
        SegmentStats { path: self.path_index.stats(), inverted: self.inverted.stats() }
    }

    /// Reset both indices' work counters.
    pub fn reset_stats(&self) {
        self.path_index.reset_stats();
        self.inverted.reset_stats();
    }
}

impl IndexFootprint for IndexSegment {
    fn footprint(&self) -> Footprint {
        self.path_index.footprint() + self.inverted.footprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_postings;
    use crate::pattern::PathPattern;

    fn part(name: &str, ordinal: u32, xml: &str) -> Corpus {
        let mut c = Corpus::new();
        let doc = vxv_xml::parse::parse_document(name, xml, ordinal).unwrap();
        c.add(doc);
        c
    }

    fn union(parts: &[&Corpus]) -> Corpus {
        let mut all = Corpus::new();
        for p in parts {
            for d in p.docs() {
                all.add(d.clone());
            }
        }
        all
    }

    #[test]
    fn merge_is_byte_identical_to_a_union_build() {
        let a = part("a.xml", 1, "<books><book><t>xml search</t><y>1996</y></book></books>");
        let b = part("b.xml", 2, "<books><book><t>ai</t><y>2002</y></book></books>");
        let c = part("c.xml", 3, "<reviews><review><t>xml classics</t></review></reviews>");
        let merged = IndexSegment::merge([&IndexSegment::build(&a), &IndexSegment::build(&b)]);
        let merged = IndexSegment::merge([&merged, &IndexSegment::build(&c)]);
        let unioned = IndexSegment::build(&union(&[&a, &b, &c]));

        assert_eq!(merged.docs(), unioned.docs());
        let mut kws: Vec<&str> = unioned.inverted().keywords().collect();
        kws.sort();
        for k in kws {
            assert_eq!(
                collect_postings(merged.inverted().postings(k)),
                collect_postings(unioned.inverted().postings(k)),
                "keyword {k}"
            );
        }
        for pat in ["/books//book/t", "/books/book/y", "/reviews//t"] {
            let p = PathPattern::parse(pat).unwrap();
            assert_eq!(
                merged.path_index().lookup(&p, &[]),
                unioned.path_index().lookup(&p, &[]),
                "pattern {pat}"
            );
        }
        assert_eq!(merged.footprint(), unioned.footprint());
    }

    #[test]
    fn generations_track_merge_depth() {
        let a = IndexSegment::build(&part("a.xml", 1, "<r><e>x</e></r>"));
        let b = IndexSegment::build(&part("b.xml", 2, "<r><e>y</e></r>"));
        assert_eq!(a.generation(), 0);
        let m1 = IndexSegment::merge([&a, &b]);
        assert_eq!(m1.generation(), 1);
        let c = IndexSegment::build(&part("c.xml", 3, "<r><e>z</e></r>"));
        let m2 = IndexSegment::merge([&m1, &c]);
        assert_eq!(m2.generation(), 2);
        assert_eq!(m2.doc_count(), 3);
        assert_eq!(m2.max_root_ordinal(), Some(3));
    }
}
