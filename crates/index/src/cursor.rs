//! Streaming cursors — the contract between the index layer and the
//! engine.
//!
//! PDT generation never needs a whole posting list at once: the
//! single-pass merge consumes entries in Dewey order and subtree probes
//! consume one bounded range. A cursor exposes exactly that access
//! pattern — `next()` for ordered consumption and `seek()` for forward
//! skips — so the engine's memory and copy cost scale with what the
//! merge actually pulls, not with list length.
//!
//! Two cursor families exist, mirroring the two index families:
//!
//! * [`PostingCursor`] over keyword postings ([`Posting`]: Dewey ID + tf);
//! * [`EntryCursor`] over path-index rows ([`IdEntry`]: Dewey ID + byte
//!   length — the row's value is shared row-level state, not repeated per
//!   entry).
//!
//! Both are implemented by plain in-memory slices (the materialized
//! reference path) and by the block-compressed lists of
//! [`crate::postings`] (the default storage). Consumption work is
//! tallied in [`ScanCounters`]: entries decoded, whole blocks skipped by
//! `seek`, and compressed bytes decoded — the I/O-cost proxies the
//! experiments report.

use crate::inverted::Posting;
use crate::path_index::IdEntry;
use std::sync::atomic::{AtomicU64, Ordering};
use vxv_xml::DeweyId;

/// Work performed while *consuming* cursors (shared, thread-safe).
///
/// Lookup-time counters (how often a list was opened) stay on the owning
/// index; these counters only ever grow when a cursor decodes or skips.
#[derive(Debug, Default)]
pub struct ScanCounters {
    /// Entries decoded and handed to the consumer (or scanned past
    /// inside a block while seeking).
    pub entries: AtomicU64,
    /// Whole compressed blocks `seek` jumped over without decoding.
    pub blocks_skipped: AtomicU64,
    /// Compressed bytes decoded.
    pub bytes_decoded: AtomicU64,
    /// Position-record bytes decoded for phrase/proximity verification
    /// (counted separately from `bytes_decoded`: positions are only
    /// touched when a positional query demands them, and the
    /// `positional_search` bench gates on this staying honest).
    pub positions_bytes: AtomicU64,
}

impl ScanCounters {
    /// Add `n` consumed entries.
    pub fn add_entries(&self, n: u64) {
        self.entries.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` skipped blocks.
    pub fn add_blocks_skipped(&self, n: u64) {
        self.blocks_skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` decoded bytes.
    pub fn add_bytes(&self, n: u64) {
        self.bytes_decoded.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` decoded position-record bytes.
    pub fn add_positions_bytes(&self, n: u64) {
        self.positions_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.entries.store(0, Ordering::Relaxed);
        self.blocks_skipped.store(0, Ordering::Relaxed);
        self.bytes_decoded.store(0, Ordering::Relaxed);
        self.positions_bytes.store(0, Ordering::Relaxed);
    }
}

/// A streaming cursor over a Dewey-ordered keyword posting list.
pub trait PostingCursor {
    /// The next posting in Dewey order, or `None` when exhausted.
    fn next(&mut self) -> Option<Posting>;

    /// Position the cursor so the next [`Self::next`] returns the first
    /// posting with `id >= target`, skipping whole blocks where the
    /// representation allows. Forward-only: seeking to a target the
    /// cursor has already passed is a no-op.
    fn seek(&mut self, target: &DeweyId);

    /// Upper bound on the tf of any posting this cursor can still
    /// return — the cursor-level face of the block-max score-bound
    /// contract. (The engine's own pruning path works at range
    /// granularity through [`crate::InvertedIndex::subtree_tf_estimate`];
    /// this hook is for consumers that stream a whole list and want a
    /// cheap remaining-score ceiling, e.g. document-at-a-time rankers.)
    /// Representations that track no bound return `u32::MAX` (never
    /// prune); an exhausted cursor may return anything (the bound is
    /// vacuous). The default is the conservative `u32::MAX`.
    fn max_tf(&self) -> u32 {
        u32::MAX
    }
}

/// A streaming cursor over a Dewey-ordered path-index entry list.
pub trait EntryCursor {
    /// The next entry in Dewey order, or `None` when exhausted.
    fn next(&mut self) -> Option<IdEntry>;

    /// As [`PostingCursor::seek`], over entries.
    fn seek(&mut self, target: &DeweyId);
}

/// [`PostingCursor`] over an in-memory sorted slice — the materialized
/// representation's cursor.
#[derive(Clone, Debug)]
pub struct SlicePostingCursor<'a> {
    items: &'a [Posting],
    pos: usize,
}

impl<'a> SlicePostingCursor<'a> {
    /// Cursor over `items` (must already be in Dewey order).
    pub fn new(items: &'a [Posting]) -> Self {
        SlicePostingCursor { items, pos: 0 }
    }
}

impl PostingCursor for SlicePostingCursor<'_> {
    fn next(&mut self) -> Option<Posting> {
        let p = self.items.get(self.pos)?.clone();
        self.pos += 1;
        Some(p)
    }

    fn seek(&mut self, target: &DeweyId) {
        let ahead = &self.items[self.pos..];
        self.pos += ahead.partition_point(|p| p.id < *target);
    }

    fn max_tf(&self) -> u32 {
        // Exact over the remaining suffix — the reference bound the
        // block-max implementation must dominate.
        self.items[self.pos..].iter().map(|p| p.tf).max().unwrap_or(0)
    }
}

/// [`EntryCursor`] over an in-memory sorted slice.
#[derive(Clone, Debug)]
pub struct SliceEntryCursor<'a> {
    items: &'a [IdEntry],
    pos: usize,
}

impl<'a> SliceEntryCursor<'a> {
    /// Cursor over `items` (must already be in Dewey order).
    pub fn new(items: &'a [IdEntry]) -> Self {
        SliceEntryCursor { items, pos: 0 }
    }
}

impl EntryCursor for SliceEntryCursor<'_> {
    fn next(&mut self) -> Option<IdEntry> {
        let e = self.items.get(self.pos)?.clone();
        self.pos += 1;
        Some(e)
    }

    fn seek(&mut self, target: &DeweyId) {
        let ahead = &self.items[self.pos..];
        self.pos += ahead.partition_point(|e| e.id < *target);
    }
}

/// Drain a posting cursor into a vector (tests and small tools).
pub fn collect_postings<C: PostingCursor>(mut cursor: C) -> Vec<Posting> {
    let mut out = Vec::new();
    while let Some(p) = cursor.next() {
        out.push(p);
    }
    out
}

/// Drain an entry cursor into a vector (tests and small tools).
pub fn collect_entries<C: EntryCursor>(mut cursor: C) -> Vec<IdEntry> {
    let mut out = Vec::new();
    while let Some(e) = cursor.next() {
        out.push(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn postings(ids: &[&str]) -> Vec<Posting> {
        ids.iter().map(|s| Posting { id: s.parse().unwrap(), tf: 1 }).collect()
    }

    #[test]
    fn slice_cursor_streams_in_order() {
        let items = postings(&["1.1", "1.2", "1.10"]);
        let got = collect_postings(SlicePostingCursor::new(&items));
        assert_eq!(got, items);
    }

    #[test]
    fn slice_seek_is_lower_bound_and_forward_only() {
        let items = postings(&["1.1", "1.2", "1.2.1", "1.10"]);
        let mut c = SlicePostingCursor::new(&items);
        c.seek(&"1.2".parse().unwrap());
        assert_eq!(c.next().unwrap().id.to_string(), "1.2");
        // Seeking backwards does not rewind.
        c.seek(&"1.1".parse().unwrap());
        assert_eq!(c.next().unwrap().id.to_string(), "1.2.1");
        // 1.2 vs 1.10: numeric component order, not string order.
        c.seek(&"1.3".parse().unwrap());
        assert_eq!(c.next().unwrap().id.to_string(), "1.10");
        assert!(c.next().is_none());
    }

    #[test]
    fn slice_max_tf_tracks_the_remaining_suffix() {
        let items: Vec<Posting> = [("1.1", 9), ("1.2", 4), ("1.3", 2)]
            .iter()
            .map(|(s, tf)| Posting { id: s.parse().unwrap(), tf: *tf })
            .collect();
        let mut c = SlicePostingCursor::new(&items);
        assert_eq!(c.max_tf(), 9);
        c.next();
        assert_eq!(c.max_tf(), 4);
        c.next();
        c.next();
        assert_eq!(c.max_tf(), 0, "exhausted cursor bounds to zero");
    }

    #[test]
    fn entry_cursor_seeks() {
        let items: Vec<IdEntry> = ["1.1", "1.9", "1.10", "1.11"]
            .iter()
            .map(|s| IdEntry { id: s.parse().unwrap(), byte_len: 3 })
            .collect();
        let mut c = SliceEntryCursor::new(&items);
        c.seek(&"1.10".parse().unwrap());
        assert_eq!(c.next().unwrap().id.to_string(), "1.10");
    }
}
