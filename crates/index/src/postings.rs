//! Block-compressed Dewey-ordered lists — the default posting storage.
//!
//! Both index families store the same shape of data: a Dewey-ordered
//! sequence of `(DeweyId, u32)` pairs (tf for inverted postings, subtree
//! byte length for path-index rows). [`BlockList`] holds such a sequence
//! as fixed-size blocks of delta-varint-encoded entries with per-block
//! skip metadata, following the disk-resident posting-list designs the
//! EMBANKS line of work uses for keyword search over structured data.
//!
//! ## Block format
//!
//! Entries are grouped into blocks of [`DEFAULT_BLOCK_ENTRIES`] (the
//! builder accepts other sizes for tests and experiments). Each block is
//! encoded into a shared byte buffer:
//!
//! * the **first entry** of a block stores its Dewey ID in full:
//!   `varint(component_count)` followed by one varint per component,
//!   then `varint(payload)`;
//! * every **subsequent entry** is delta-encoded against its
//!   predecessor: `varint(lcp)` (shared prefix length in components),
//!   `varint(suffix_len)`, the suffix components as varints, then
//!   `varint(payload)`.
//!
//! Because sibling ordinals are small integers and consecutive IDs in
//! document order share long prefixes, most entries cost a few bytes.
//!
//! The per-block directory (`BlockMeta`) keeps the block's byte
//! `offset`, entry `count`, **max Dewey ID** (its min is implied:
//! strictly above the previous block's max), and **max payload** — the
//! largest tf / byte-length in the block, the score-upper-bound
//! metadata of the block-max (WAND-family) pruning literature. Lists
//! that fit in a single block — the common case for path-index rows
//! keyed by high-cardinality values — store **no directory at all**:
//! the whole buffer is one implicit block, so a one-entry row costs
//! only its few delta-encoded bytes (the list-level
//! [`BlockList::max_payload`] still bounds it). [`BlockCursor::seek_raw`]
//! binary-searches the directory for the first block whose `max` is not
//! below the target and decodes only from there — whole blocks before
//! it are skipped, counted in [`ScanCounters::blocks_skipped`].
//! [`BlockList::range_payload_bound`] walks the same directory to bound
//! the payload *sum* of a range without decoding anything — what top-k
//! pruning uses to skip exact subtree-tf probes entirely. Max
//! comparisons use Dewey component order, so `1.2 < 1.10` and
//! prefix-vs-extension cases (`1.1` vs `1.10`) can never cause a
//! qualifying entry to be skipped.

use crate::cursor::ScanCounters;
use vxv_xml::DeweyId;

/// Default number of entries per compressed block.
pub const DEFAULT_BLOCK_ENTRIES: usize = 32;

/// Directory entry for one compressed block. A block's minimum ID is
/// implied: it is strictly greater than the previous block's `max`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct BlockMeta {
    /// Byte offset of the block in [`BlockList::data`].
    pub(crate) offset: u32,
    /// Entries in the block.
    pub(crate) count: u32,
    /// Dewey ID of the block's last entry.
    pub(crate) max: DeweyId,
    /// Largest payload (tf / byte length) of any entry in the block.
    pub(crate) max_payload: u32,
}

/// A directory-only upper bound on the payload sum of a Dewey range —
/// no entry is decoded to produce it (see
/// [`BlockList::range_payload_bound`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PayloadBound {
    /// Upper bound on the sum of payloads of entries in the range
    /// (`Σ block count × block max payload` over candidate blocks).
    pub bound: u64,
    /// Compressed blocks overlapping the range — what an exact probe
    /// would have to decode.
    pub blocks: u64,
}

/// A boundary-exact payload estimate of a Dewey range (see
/// [`BlockList::range_payload_estimate`]): the two boundary blocks are
/// decoded, interior blocks contribute `count × block max` without
/// decoding. When `skipped_blocks == 0` the bound **is** the exact sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RangeEstimate {
    /// Upper bound on the payload sum of the range; exact when
    /// `skipped_blocks == 0`.
    pub bound: u64,
    /// The exact payload sum of the decoded boundary blocks' in-range
    /// entries — `boundary_sum` plus the interior blocks' exact sum
    /// ([`BlockList::range_interior_payload_sum`]) is the exact range
    /// sum, so completing an estimate never re-decodes a boundary.
    pub boundary_sum: u64,
    /// Interior blocks bounded from the directory instead of decoded —
    /// the work an exact probe would add.
    pub skipped_blocks: u64,
    /// Exact: does the range hold any entry with a positive payload?
    pub contains: bool,
}

/// A block-compressed, Dewey-ordered list of `(DeweyId, u32)` entries.
///
/// `blocks` is empty for lists that fit in one block; the data buffer is
/// then a single implicit block of `len` entries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockList {
    pub(crate) data: Vec<u8>,
    pub(crate) blocks: Vec<BlockMeta>,
    pub(crate) len: u64,
    /// Bytes a materialized representation would occupy
    /// (4 bytes per Dewey component + 4 payload bytes per entry).
    pub(crate) uncompressed: u64,
    /// Largest payload of any entry in the list (0 for empty lists).
    pub(crate) max_payload: u32,
}

impl BlockList {
    /// Encode `entries` (already in Dewey order) with the default block
    /// size.
    pub fn encode(entries: &[(DeweyId, u32)]) -> BlockList {
        Self::encode_with_block_size(entries, DEFAULT_BLOCK_ENTRIES)
    }

    /// As [`Self::encode`] with an explicit block size (tests force tiny
    /// blocks to exercise boundary handling; experiments tune skip
    /// granularity).
    ///
    /// # Panics
    /// Panics if `block_entries` is zero or `entries` is not sorted.
    pub fn encode_with_block_size(entries: &[(DeweyId, u32)], block_entries: usize) -> BlockList {
        assert!(block_entries > 0, "block size must be positive");
        let mut list = BlockList::default();
        let single_block = entries.len() <= block_entries;
        for chunk in entries.chunks(block_entries) {
            let offset = list.data.len() as u32;
            let mut prev: Option<&DeweyId> = None;
            let mut chunk_max_payload = 0u32;
            for (id, payload) in chunk {
                chunk_max_payload = chunk_max_payload.max(*payload);
                if let Some(p) = prev {
                    assert!(p <= id, "entries must be Dewey-ordered");
                    let lcp = p.common_prefix_len(id);
                    let suffix = &id.components()[lcp..];
                    write_varint(&mut list.data, lcp as u64);
                    write_varint(&mut list.data, suffix.len() as u64);
                    for c in suffix {
                        write_varint(&mut list.data, *c as u64);
                    }
                } else {
                    write_varint(&mut list.data, id.len() as u64);
                    for c in id.components() {
                        write_varint(&mut list.data, *c as u64);
                    }
                }
                write_varint(&mut list.data, *payload as u64);
                list.uncompressed += 4 * id.len() as u64 + 4;
                prev = Some(id);
            }
            // Single-block lists carry no directory: the buffer is one
            // implicit block and tiny rows pay no skip-metadata tax.
            if !single_block {
                list.blocks.push(BlockMeta {
                    offset,
                    count: chunk.len() as u32,
                    max: chunk[chunk.len() - 1].0.clone(),
                    max_payload: chunk_max_payload,
                });
            }
            list.max_payload = list.max_payload.max(chunk_max_payload);
            list.len += chunk.len() as u64;
        }
        list
    }

    /// Number of physical blocks (directory entries, or one implicit
    /// block for short lists).
    fn total_blocks(&self) -> usize {
        if self.blocks.is_empty() {
            usize::from(self.len > 0)
        } else {
            self.blocks.len()
        }
    }

    /// `(byte offset, entry count)` of block `b`.
    fn block_bounds(&self, b: usize) -> (u32, u32) {
        if self.blocks.is_empty() {
            debug_assert_eq!(b, 0);
            (0, self.len as u32)
        } else {
            (self.blocks[b].offset, self.blocks[b].count)
        }
    }

    /// Total entries in the list.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed bytes held (entry data, directory, and the payload
    /// bounds the v3 format persists: 4 bytes per block + 4 list-level).
    pub fn compressed_bytes(&self) -> u64 {
        let dir: u64 = self.blocks.iter().map(|b| 12 + 4 * b.max.len() as u64).sum();
        self.data.len() as u64 + dir + 4
    }

    /// Largest payload (tf / byte length) of any entry — the list-level
    /// score upper bound top-k pruning combines with idf.
    pub fn max_payload(&self) -> u32 {
        self.max_payload
    }

    /// Upper-bound the payload sum of entries with `lo <= id < hi` from
    /// the block directory alone: candidate blocks contribute
    /// `count × max payload`, and **nothing is decoded**. The result is
    /// never below the exact [`count_range`](Self::count_range)-style
    /// sum, so a pruning decision based on it can never drop a
    /// qualifying top-k candidate. `blocks` reports how many compressed
    /// blocks an exact probe of the range would touch.
    pub fn range_payload_bound(&self, lo: &DeweyId, hi: &DeweyId) -> PayloadBound {
        if self.len == 0 || lo >= hi {
            return PayloadBound::default();
        }
        if self.blocks.is_empty() {
            // Single implicit block: no ID metadata to exclude it, so it
            // is always a candidate.
            return PayloadBound { bound: self.len * self.max_payload as u64, blocks: 1 };
        }
        let start = self.blocks.partition_point(|m| m.max < *lo);
        let mut out = PayloadBound::default();
        // A block's min is strictly above the previous block's max, so
        // once the previous max reaches `hi` the remaining blocks lie
        // entirely above the range.
        let mut prev_max = (start > 0).then(|| &self.blocks[start - 1].max);
        for meta in &self.blocks[start..] {
            if prev_max.map(|pm| *pm >= *hi).unwrap_or(false) {
                break;
            }
            out.bound += meta.count as u64 * meta.max_payload as u64;
            out.blocks += 1;
            prev_max = Some(&meta.max);
        }
        out
    }

    /// Boundary-exact payload estimate of `lo <= id < hi`: decode the
    /// (at most two) boundary blocks, bound every **interior** block —
    /// fully contained in the range by the directory's ordering
    /// invariants — as `count × block max` without decoding it. The
    /// result dominates the exact sum, collapses *to* the exact sum
    /// when no interior block exists (`skipped_blocks == 0`), and
    /// reports exactly whether the range holds a positive-payload entry.
    /// Decoded work is tallied into `counters` like any cursor scan.
    pub fn range_payload_estimate(
        &self,
        lo: &DeweyId,
        hi: &DeweyId,
        counters: Option<&ScanCounters>,
    ) -> RangeEstimate {
        let mut est = RangeEstimate::default();
        if self.len == 0 || lo >= hi {
            return est;
        }
        let decode_block = |bi: usize, count: u32, est: &mut RangeEstimate| {
            let mut cur = self.cursor(counters);
            cur.jump_to_block(bi);
            for _ in 0..count {
                let (id, p) = cur.next_raw().expect("directory count is exact");
                if id >= *hi {
                    break;
                }
                if id >= *lo {
                    est.bound += p as u64;
                    est.boundary_sum += p as u64;
                    if p > 0 {
                        est.contains = true;
                    }
                }
            }
        };
        if self.blocks.is_empty() {
            // Single implicit block: it is its own boundary.
            decode_block(0, self.len as u32, &mut est);
            return est;
        }
        // Candidate blocks: `start` (first whose max reaches lo) through
        // `last` (first whose max reaches hi). Blocks strictly between
        // them lie fully inside the range: their min is above start's
        // max (>= lo) and their max is below hi.
        let start = self.blocks.partition_point(|m| m.max < *lo);
        if start >= self.blocks.len() {
            return est;
        }
        let last = start + self.blocks[start..].partition_point(|m| m.max < *hi);
        decode_block(start, self.blocks[start].count, &mut est);
        if last > start + 1 {
            for meta in &self.blocks[start + 1..last.min(self.blocks.len())] {
                est.bound += meta.count as u64 * meta.max_payload as u64;
                est.skipped_blocks += 1;
                // A fully-contained block with a positive max proves
                // containment without decoding.
                if meta.max_payload > 0 {
                    est.contains = true;
                }
            }
        }
        if last > start && last < self.blocks.len() {
            decode_block(last, self.blocks[last].count, &mut est);
        }
        est
    }

    /// Exact payload sum of the **interior** blocks of `lo <= id < hi` —
    /// the blocks [`Self::range_payload_estimate`] bounded without
    /// decoding. Adding this to the estimate's `boundary_sum` yields the
    /// exact range sum while decoding every block at most once across
    /// the two calls.
    pub fn range_interior_payload_sum(
        &self,
        lo: &DeweyId,
        hi: &DeweyId,
        counters: Option<&ScanCounters>,
    ) -> u64 {
        if self.len == 0 || lo >= hi || self.blocks.is_empty() {
            return 0;
        }
        let start = self.blocks.partition_point(|m| m.max < *lo);
        if start >= self.blocks.len() {
            return 0;
        }
        let last = start + self.blocks[start..].partition_point(|m| m.max < *hi);
        let mut total = 0u64;
        if last > start + 1 {
            let mut cur = self.cursor(counters);
            for bi in start + 1..last.min(self.blocks.len()) {
                cur.jump_to_block(bi);
                for _ in 0..self.blocks[bi].count {
                    // Interior entries are in range by construction.
                    let (_, p) = cur.next_raw().expect("directory count is exact");
                    total += p as u64;
                }
            }
        }
        total
    }

    /// Bytes a fully materialized representation would occupy.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.uncompressed
    }

    /// Structurally validate the list with bounds-checked decoding:
    /// every block starts where the directory says, every entry decodes
    /// inside the buffer, IDs are Dewey-ordered, directory maxima (IDs
    /// **and** payload bounds, per block and list-level) match the data,
    /// counts sum to `len`, and the buffer is fully consumed.
    /// Persistence uses this to reject corrupt-but-parseable files
    /// instead of panicking at query time.
    pub fn validate(&self) -> bool {
        match self.decode_check() {
            None => false,
            Some((block_maxes, list_max)) => {
                list_max == self.max_payload
                    && block_maxes.len() == self.blocks.len()
                    && block_maxes.iter().zip(&self.blocks).all(|(m, b)| *m == b.max_payload)
            }
        }
    }

    /// Recompute the payload bounds from the data (one bounds-checked
    /// full decode) — how pre-v3 persisted lists, which carry no bounds,
    /// acquire them at load time. Returns `false` when the list is
    /// structurally corrupt.
    pub(crate) fn restore_bounds(&mut self) -> bool {
        match self.decode_check() {
            None => false,
            Some((block_maxes, list_max)) => {
                if block_maxes.len() != self.blocks.len() {
                    return false;
                }
                for (meta, max) in self.blocks.iter_mut().zip(block_maxes) {
                    meta.max_payload = max;
                }
                self.max_payload = list_max;
                true
            }
        }
    }

    /// The shared structural check: a fully bounds-checked decode that
    /// also computes per-block and list-level payload maxima. `None`
    /// when the buffer or directory is corrupt.
    fn decode_check(&self) -> Option<(Vec<u32>, u32)> {
        let mut pos = 0usize;
        let mut decoded = 0u64;
        let mut prev: Option<DeweyId> = None;
        let mut block_maxes = Vec::with_capacity(self.blocks.len());
        let mut list_max = 0u32;
        for b in 0..self.total_blocks() {
            let (offset, count) = self.block_bounds(b);
            if offset as usize != pos || count == 0 {
                return None;
            }
            let mut block_max = 0u32;
            for i in 0..count {
                let id = if i == 0 {
                    let n = try_read_varint(&self.data, &mut pos)? as usize;
                    let mut comps = Vec::with_capacity(n);
                    for _ in 0..n {
                        comps.push(try_read_varint(&self.data, &mut pos)? as u32);
                    }
                    DeweyId::from_components(comps)
                } else {
                    let p = prev.as_ref()?;
                    let lcp = try_read_varint(&self.data, &mut pos)? as usize;
                    if lcp > p.len() {
                        return None;
                    }
                    let suffix_len = try_read_varint(&self.data, &mut pos)? as usize;
                    let mut comps = Vec::with_capacity(lcp + suffix_len);
                    comps.extend_from_slice(&p.components()[..lcp]);
                    for _ in 0..suffix_len {
                        comps.push(try_read_varint(&self.data, &mut pos)? as u32);
                    }
                    DeweyId::from_components(comps)
                };
                let payload = try_read_varint(&self.data, &mut pos)?;
                if payload > u32::MAX as u64 {
                    return None;
                }
                block_max = block_max.max(payload as u32);
                if prev.as_ref().map(|p| *p > id).unwrap_or(false) {
                    return None;
                }
                prev = Some(id);
                decoded += 1;
            }
            if let Some(meta) = self.blocks.get(b) {
                if Some(&meta.max) != prev.as_ref() {
                    return None;
                }
                block_maxes.push(block_max);
            }
            list_max = list_max.max(block_max);
        }
        (pos == self.data.len() && decoded == self.len).then_some((block_maxes, list_max))
    }

    /// Open a streaming cursor; consumption work is tallied into
    /// `counters` when given.
    pub fn cursor<'a>(&'a self, counters: Option<&'a ScanCounters>) -> BlockCursor<'a> {
        BlockCursor {
            list: self,
            next_block: 0,
            remaining: 0,
            pos: 0,
            prev: DeweyId::default(),
            fresh: true,
            peeked: None,
            counters,
        }
    }

    /// Decode every entry (index rebuilds and tests; not a query path).
    pub fn decode_all(&self) -> Vec<(DeweyId, u32)> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut cur = self.cursor(None);
        while let Some(e) = cur.next_raw() {
            out.push(e);
        }
        out
    }

    /// Number of entries with `lo <= id < hi`, using the block directory
    /// so only boundary blocks are decoded.
    pub fn count_range(&self, lo: &DeweyId, hi: &DeweyId) -> u64 {
        if self.len == 0 || lo >= hi {
            return 0;
        }
        let mut total = 0u64;
        let count_block = |bi: usize, count: u32| -> u64 {
            let mut cur = self.cursor(None);
            cur.jump_to_block(bi);
            let mut n = 0u64;
            for _ in 0..count {
                let (id, _) = cur.next_raw().expect("directory count is exact");
                if id >= *hi {
                    break;
                }
                if id >= *lo {
                    n += 1;
                }
            }
            n
        };
        if self.blocks.is_empty() {
            // Single implicit block: decode it.
            return count_block(0, self.len as u32);
        }
        // A block's min is strictly above the previous block's max, so
        // `prev_max >= lo` proves the block lies fully above `lo`.
        let mut prev_max: Option<&DeweyId> = None;
        for (bi, meta) in self.blocks.iter().enumerate() {
            if meta.max < *lo {
                prev_max = Some(&meta.max);
                continue;
            }
            let min_above_lo = prev_max.map(|m| *m >= *lo).unwrap_or(false);
            if min_above_lo && meta.max < *hi {
                total += meta.count as u64;
            } else {
                total += count_block(bi, meta.count);
            }
            if meta.max >= *hi {
                break;
            }
            prev_max = Some(&meta.max);
        }
        total
    }
}

/// Streaming decoder over a [`BlockList`], with directory-driven skips.
#[derive(Clone, Debug)]
pub struct BlockCursor<'a> {
    list: &'a BlockList,
    /// Index of the next block not yet opened.
    next_block: usize,
    /// Entries left to decode in the currently open block.
    remaining: u32,
    /// Byte position of the next entry.
    pos: usize,
    /// Previously decoded ID (delta base).
    prev: DeweyId,
    /// True when the next entry is a block's full-ID first entry.
    fresh: bool,
    peeked: Option<(DeweyId, u32)>,
    counters: Option<&'a ScanCounters>,
}

impl BlockCursor<'_> {
    /// Decode and return the next `(id, payload)` pair.
    pub fn next_raw(&mut self) -> Option<(DeweyId, u32)> {
        if let Some(e) = self.peeked.take() {
            return Some(e);
        }
        self.decode_next()
    }

    /// The next pair without consuming it.
    pub fn peek(&mut self) -> Option<&(DeweyId, u32)> {
        if self.peeked.is_none() {
            self.peeked = self.decode_next();
        }
        self.peeked.as_ref()
    }

    /// Position at the first entry with `id >= target` (forward only).
    pub fn seek_raw(&mut self, target: &DeweyId) {
        if let Some((id, _)) = &self.peeked {
            if *id >= *target {
                return;
            }
        }
        if !self.list.blocks.is_empty() {
            // First candidate block: the first whose max is not below
            // target.
            let b = self.list.blocks.partition_point(|m| m.max < *target);
            if b >= self.list.blocks.len() {
                // Past the end of the list.
                self.peeked = None;
                self.remaining = 0;
                self.next_block = self.list.blocks.len();
                return;
            }
            // If a block is open and the target may still be inside it,
            // scan within; otherwise jump, counting fully skipped blocks.
            let open_block =
                (self.remaining > 0 || self.peeked.is_some()).then(|| self.next_block - 1);
            if open_block.map(|ob| b > ob).unwrap_or(true) && b >= self.next_block {
                let skipped = (b - self.next_block) as u64;
                if skipped > 0 {
                    if let Some(c) = self.counters {
                        c.add_blocks_skipped(skipped);
                    }
                }
                self.jump_to_block(b);
            }
        }
        while let Some((id, _)) = self.peek() {
            if *id >= *target {
                break;
            }
            self.peeked = None;
        }
    }

    /// Largest payload of any entry in the underlying list — a bound on
    /// every entry this cursor can still return (cursors are
    /// forward-only, so the list-level maximum always applies).
    pub fn list_max_payload(&self) -> u32 {
        self.list.max_payload
    }

    pub(crate) fn jump_to_block(&mut self, b: usize) {
        let (offset, count) = self.list.block_bounds(b);
        self.pos = offset as usize;
        self.remaining = count;
        self.fresh = true;
        self.next_block = b + 1;
        self.peeked = None;
    }

    fn decode_next(&mut self) -> Option<(DeweyId, u32)> {
        while self.remaining == 0 {
            if self.next_block >= self.list.total_blocks() {
                return None;
            }
            let b = self.next_block;
            self.jump_to_block(b);
        }
        let start = self.pos;
        let data = &self.list.data;
        let id = if self.fresh {
            let n = read_varint(data, &mut self.pos) as usize;
            let mut comps = Vec::with_capacity(n);
            for _ in 0..n {
                comps.push(read_varint(data, &mut self.pos) as u32);
            }
            self.fresh = false;
            DeweyId::from_components(comps)
        } else {
            let lcp = read_varint(data, &mut self.pos) as usize;
            let suffix_len = read_varint(data, &mut self.pos) as usize;
            let mut comps = Vec::with_capacity(lcp + suffix_len);
            comps.extend_from_slice(&self.prev.components()[..lcp]);
            for _ in 0..suffix_len {
                comps.push(read_varint(data, &mut self.pos) as u32);
            }
            DeweyId::from_components(comps)
        };
        let payload = read_varint(data, &mut self.pos) as u32;
        self.prev = id.clone();
        self.remaining -= 1;
        if let Some(c) = self.counters {
            c.add_entries(1);
            c.add_bytes((self.pos - start) as u64);
        }
        Some((id, payload))
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Bounds- and overflow-checked variant of [`read_varint`], for
/// validating untrusted buffers.
fn try_read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(ids: &[&str]) -> Vec<(DeweyId, u32)> {
        ids.iter().enumerate().map(|(i, s)| (s.parse().unwrap(), i as u32)).collect()
    }

    #[test]
    fn round_trips_across_block_sizes() {
        let input = entries(&["1", "1.1", "1.1.1", "1.2", "1.2.3.4", "1.10", "1.10.1", "2.1"]);
        for bs in [1, 2, 3, 8, 64] {
            let list = BlockList::encode_with_block_size(&input, bs);
            assert_eq!(list.len(), input.len() as u64);
            assert_eq!(list.decode_all(), input, "block size {bs}");
        }
    }

    #[test]
    fn seek_lands_on_lower_bound_across_blocks() {
        let input = entries(&["1.1", "1.1.5", "1.2", "1.9", "1.10", "1.10.2", "1.11"]);
        let list = BlockList::encode_with_block_size(&input, 2);
        for (target, want) in [
            ("1", Some("1.1")),
            ("1.1.6", Some("1.2")),
            ("1.10", Some("1.10")),
            ("1.10.3", Some("1.11")),
            ("1.12", None),
        ] {
            let mut cur = list.cursor(None);
            cur.seek_raw(&target.parse().unwrap());
            let got = cur.next_raw().map(|(id, _)| id.to_string());
            assert_eq!(got.as_deref(), want, "seek {target}");
        }
    }

    #[test]
    fn seek_counts_skipped_blocks_and_decoded_bytes() {
        let input: Vec<(DeweyId, u32)> =
            (1..=64u32).map(|i| (DeweyId::from_components(vec![1, i]), i)).collect();
        let list = BlockList::encode_with_block_size(&input, 4);
        let counters = ScanCounters::default();
        let mut cur = list.cursor(Some(&counters));
        cur.seek_raw(&"1.50".parse().unwrap());
        let (id, _) = cur.next_raw().unwrap();
        assert_eq!(id.to_string(), "1.50");
        use std::sync::atomic::Ordering;
        assert!(counters.blocks_skipped.load(Ordering::Relaxed) >= 10);
        assert!(counters.bytes_decoded.load(Ordering::Relaxed) > 0);
        // Only the landing block's prefix was decoded, not 50 entries.
        assert!(counters.entries.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn count_range_matches_naive() {
        let input = entries(&["1.1", "1.1.2", "1.2", "1.9", "1.10", "1.10.1", "1.11", "2.1"]);
        let list = BlockList::encode_with_block_size(&input, 3);
        let cases = [("1.1", "1.2"), ("1", "2"), ("1.10", "1.11"), ("1.2", "1.10"), ("3", "4")];
        for (lo, hi) in cases {
            let lo: DeweyId = lo.parse().unwrap();
            let hi: DeweyId = hi.parse().unwrap();
            let naive = input.iter().filter(|(id, _)| *id >= lo && *id < hi).count() as u64;
            assert_eq!(list.count_range(&lo, &hi), naive, "range {lo}..{hi}");
        }
    }

    #[test]
    fn compression_beats_materialized_on_dense_siblings() {
        let input: Vec<(DeweyId, u32)> =
            (1..=1000u32).map(|i| (DeweyId::from_components(vec![1, 7, i]), 1)).collect();
        let list = BlockList::encode(&input);
        assert!(
            list.compressed_bytes() * 2 < list.uncompressed_bytes(),
            "compressed {} vs uncompressed {}",
            list.compressed_bytes(),
            list.uncompressed_bytes()
        );
    }

    #[test]
    fn tiny_lists_carry_no_directory_overhead() {
        // One-entry rows (the common path-index case) must cost fewer
        // bytes compressed than materialized.
        let one = BlockList::encode(&[(("1.2.3.4").parse().unwrap(), 42)]);
        assert!(one.blocks.is_empty(), "single-block list stores no directory");
        assert!(
            one.compressed_bytes() < one.uncompressed_bytes(),
            "compressed {} vs uncompressed {}",
            one.compressed_bytes(),
            one.uncompressed_bytes()
        );
        // Seek still works without a directory.
        let mut cur = one.cursor(None);
        cur.seek_raw(&"1.2".parse().unwrap());
        assert_eq!(cur.next_raw().unwrap().0.to_string(), "1.2.3.4");
        let mut cur = one.cursor(None);
        cur.seek_raw(&"1.3".parse().unwrap());
        assert!(cur.next_raw().is_none());
    }

    #[test]
    fn validate_accepts_encodings_and_rejects_tampering() {
        let input = entries(&["1.1", "1.2", "1.9", "1.10", "1.10.1", "2.3"]);
        for bs in [2, 64] {
            let list = BlockList::encode_with_block_size(&input, bs);
            assert!(list.validate(), "block size {bs}");
        }
        // Inflated entry count: decodes fine but len disagrees.
        let mut bad = BlockList::encode(&input);
        bad.len += 1;
        assert!(!bad.validate(), "inflated len must fail");
        // Truncated data buffer.
        let mut bad = BlockList::encode(&input);
        bad.data.pop();
        assert!(!bad.validate(), "truncated data must fail");
        // A never-terminating varint (all continuation bits).
        let mut bad = BlockList::encode(&input);
        for b in &mut bad.data {
            *b |= 0x80;
        }
        assert!(!bad.validate(), "unterminated varints must fail");
        // Directory max no longer matches the data.
        let mut bad = BlockList::encode_with_block_size(&input, 2);
        bad.blocks[0].max = "9.9".parse().unwrap();
        assert!(!bad.validate(), "stale directory max must fail");
    }

    #[test]
    fn payload_maxima_are_tracked_per_block_and_per_list() {
        let input: Vec<(DeweyId, u32)> =
            (1..=10u32).map(|i| (DeweyId::from_components(vec![1, i]), i * 3)).collect();
        let list = BlockList::encode_with_block_size(&input, 4);
        assert_eq!(list.max_payload(), 30);
        assert_eq!(list.blocks.iter().map(|b| b.max_payload).collect::<Vec<_>>(), vec![12, 24, 30]);
        // Single-block lists still carry the list-level max.
        let one = BlockList::encode(&input[..2]);
        assert!(one.blocks.is_empty());
        assert_eq!(one.max_payload(), 6);
        assert_eq!(BlockList::encode(&[]).max_payload(), 0);
    }

    #[test]
    fn range_payload_bound_dominates_the_exact_sum() {
        let input: Vec<(DeweyId, u32)> =
            (1..=64u32).map(|i| (DeweyId::from_components(vec![1, i, 1]), i % 7 + 1)).collect();
        for bs in [1, 3, 8, 64] {
            let list = BlockList::encode_with_block_size(&input, bs);
            for (lo, hi) in [("1.1", "1.9"), ("1", "2"), ("1.40", "1.41"), ("1.70", "1.80")] {
                let lo: DeweyId = lo.parse().unwrap();
                let hi: DeweyId = hi.parse().unwrap();
                let exact: u64 = input
                    .iter()
                    .filter(|(id, _)| *id >= lo && *id < hi)
                    .map(|(_, p)| *p as u64)
                    .sum();
                let b = list.range_payload_bound(&lo, &hi);
                assert!(b.bound >= exact, "bs {bs} range {lo}..{hi}: {} < {exact}", b.bound);
                if exact > 0 {
                    assert!(b.blocks > 0, "a non-empty range must touch blocks");
                }
            }
            // Empty / inverted ranges bound to zero.
            let z = list.range_payload_bound(&"2".parse().unwrap(), &"1".parse().unwrap());
            assert_eq!(z, PayloadBound::default());
        }
        // A range past the end of a multi-block list touches nothing.
        let list = BlockList::encode_with_block_size(&input, 4);
        let past = list.range_payload_bound(&"9".parse().unwrap(), &"10".parse().unwrap());
        assert_eq!(past, PayloadBound::default());
    }

    #[test]
    fn range_payload_bound_skips_interior_directory_walks() {
        // A mid-list point range must touch O(1) candidate blocks, not
        // the whole directory.
        let input: Vec<(DeweyId, u32)> =
            (1..=256u32).map(|i| (DeweyId::from_components(vec![1, i]), 2)).collect();
        let list = BlockList::encode_with_block_size(&input, 4);
        let b = list.range_payload_bound(&"1.100".parse().unwrap(), &"1.101".parse().unwrap());
        assert!(b.blocks <= 2, "point range touched {} blocks", b.blocks);
        assert!(b.bound <= 2 * 4 * 2, "bound {} too loose", b.bound);
    }

    #[test]
    fn range_payload_estimate_is_boundary_exact() {
        let input: Vec<(DeweyId, u32)> =
            (1..=96u32).map(|i| (DeweyId::from_components(vec![1, i]), i % 5 + 1)).collect();
        for bs in [1, 4, 16, 128] {
            let list = BlockList::encode_with_block_size(&input, bs);
            for (lo, hi) in
                [("1.1", "1.97"), ("1.10", "1.12"), ("1.3", "1.90"), ("1", "2"), ("2", "3")]
            {
                let lo: DeweyId = lo.parse().unwrap();
                let hi: DeweyId = hi.parse().unwrap();
                let exact: u64 = input
                    .iter()
                    .filter(|(id, _)| *id >= lo && *id < hi)
                    .map(|(_, p)| *p as u64)
                    .sum();
                let est = list.range_payload_estimate(&lo, &hi, None);
                assert!(est.bound >= exact, "bs {bs} {lo}..{hi}: {} < {exact}", est.bound);
                assert_eq!(est.contains, exact > 0, "bs {bs} {lo}..{hi} contains");
                if est.skipped_blocks == 0 {
                    assert_eq!(est.bound, exact, "bs {bs} {lo}..{hi}: boundary-only is exact");
                }
                // Completing the estimate with the interior sum is
                // always exact, never re-decoding a boundary.
                assert_eq!(
                    est.boundary_sum + list.range_interior_payload_sum(&lo, &hi, None),
                    exact,
                    "bs {bs} {lo}..{hi}: boundary + interior must be exact"
                );
            }
            // Tighter than (or equal to) the directory-only bound.
            let lo: DeweyId = "1.3".parse().unwrap();
            let hi: DeweyId = "1.90".parse().unwrap();
            assert!(
                list.range_payload_estimate(&lo, &hi, None).bound
                    <= list.range_payload_bound(&lo, &hi).bound
            );
        }
        // A wide range over small blocks must actually skip interiors.
        let list = BlockList::encode_with_block_size(&input, 4);
        let est =
            list.range_payload_estimate(&"1.1".parse().unwrap(), &"1.97".parse().unwrap(), None);
        assert!(est.skipped_blocks >= 20, "interiors skipped: {}", est.skipped_blocks);
    }

    #[test]
    fn validate_rejects_tampered_payload_bounds() {
        let input = entries(&["1.1", "1.2", "1.9", "1.10", "1.10.1", "2.3"]);
        let mut bad = BlockList::encode_with_block_size(&input, 2);
        bad.blocks[1].max_payload += 1;
        assert!(!bad.validate(), "stale block max payload must fail");
        let mut bad = BlockList::encode_with_block_size(&input, 2);
        bad.max_payload = 0;
        assert!(!bad.validate(), "stale list max payload must fail");
        // restore_bounds repairs exactly that.
        assert!(bad.restore_bounds());
        assert!(bad.validate());
    }

    #[test]
    fn empty_list_cursor_is_exhausted() {
        let list = BlockList::encode(&[]);
        assert!(list.is_empty());
        let mut cur = list.cursor(None);
        assert!(cur.next_raw().is_none());
        cur.seek_raw(&"1".parse().unwrap());
        assert!(cur.next_raw().is_none());
        assert_eq!(list.count_range(&"1".parse().unwrap(), &"2".parse().unwrap()), 0);
    }
}
