//! Block-compressed Dewey-ordered lists — the default posting storage.
//!
//! Both index families store the same shape of data: a Dewey-ordered
//! sequence of `(DeweyId, u32)` pairs (tf for inverted postings, subtree
//! byte length for path-index rows). [`BlockList`] holds such a sequence
//! as fixed-size blocks of delta-varint-encoded entries with per-block
//! skip metadata, following the disk-resident posting-list designs the
//! EMBANKS line of work uses for keyword search over structured data.
//!
//! ## Block format
//!
//! Entries are grouped into blocks of [`DEFAULT_BLOCK_ENTRIES`] (the
//! builder accepts other sizes for tests and experiments). Each block is
//! encoded into a shared byte buffer:
//!
//! * the **first entry** of a block stores its Dewey ID in full:
//!   `varint(component_count)` followed by one varint per component,
//!   then `varint(payload)`;
//! * every **subsequent entry** is delta-encoded against its
//!   predecessor: `varint(lcp)` (shared prefix length in components),
//!   `varint(suffix_len)`, the suffix components as varints, then
//!   `varint(payload)`.
//!
//! Because sibling ordinals are small integers and consecutive IDs in
//! document order share long prefixes, most entries cost a few bytes.
//!
//! The per-block directory (`BlockMeta`) keeps the block's byte
//! `offset`, entry `count`, and **max Dewey ID** (its min is implied:
//! strictly above the previous block's max). Lists that fit in a single
//! block — the common case for path-index rows keyed by high-cardinality
//! values — store **no directory at all**: the whole buffer is one
//! implicit block, so a one-entry row costs only its few delta-encoded
//! bytes. [`BlockCursor::seek_raw`] binary-searches the directory for
//! the first block whose `max` is not below the target and decodes only
//! from there — whole blocks before it are skipped, counted in
//! [`ScanCounters::blocks_skipped`]. Max comparisons use Dewey component
//! order, so `1.2 < 1.10` and prefix-vs-extension cases (`1.1` vs
//! `1.10`) can never cause a qualifying entry to be skipped.

use crate::cursor::ScanCounters;
use vxv_xml::DeweyId;

/// Default number of entries per compressed block.
pub const DEFAULT_BLOCK_ENTRIES: usize = 32;

/// Directory entry for one compressed block. A block's minimum ID is
/// implied: it is strictly greater than the previous block's `max`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct BlockMeta {
    /// Byte offset of the block in [`BlockList::data`].
    pub(crate) offset: u32,
    /// Entries in the block.
    pub(crate) count: u32,
    /// Dewey ID of the block's last entry.
    pub(crate) max: DeweyId,
}

/// A block-compressed, Dewey-ordered list of `(DeweyId, u32)` entries.
///
/// `blocks` is empty for lists that fit in one block; the data buffer is
/// then a single implicit block of `len` entries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockList {
    pub(crate) data: Vec<u8>,
    pub(crate) blocks: Vec<BlockMeta>,
    pub(crate) len: u64,
    /// Bytes a materialized representation would occupy
    /// (4 bytes per Dewey component + 4 payload bytes per entry).
    pub(crate) uncompressed: u64,
}

impl BlockList {
    /// Encode `entries` (already in Dewey order) with the default block
    /// size.
    pub fn encode(entries: &[(DeweyId, u32)]) -> BlockList {
        Self::encode_with_block_size(entries, DEFAULT_BLOCK_ENTRIES)
    }

    /// As [`Self::encode`] with an explicit block size (tests force tiny
    /// blocks to exercise boundary handling; experiments tune skip
    /// granularity).
    ///
    /// # Panics
    /// Panics if `block_entries` is zero or `entries` is not sorted.
    pub fn encode_with_block_size(entries: &[(DeweyId, u32)], block_entries: usize) -> BlockList {
        assert!(block_entries > 0, "block size must be positive");
        let mut list = BlockList::default();
        let single_block = entries.len() <= block_entries;
        for chunk in entries.chunks(block_entries) {
            let offset = list.data.len() as u32;
            let mut prev: Option<&DeweyId> = None;
            for (id, payload) in chunk {
                if let Some(p) = prev {
                    assert!(p <= id, "entries must be Dewey-ordered");
                    let lcp = p.common_prefix_len(id);
                    let suffix = &id.components()[lcp..];
                    write_varint(&mut list.data, lcp as u64);
                    write_varint(&mut list.data, suffix.len() as u64);
                    for c in suffix {
                        write_varint(&mut list.data, *c as u64);
                    }
                } else {
                    write_varint(&mut list.data, id.len() as u64);
                    for c in id.components() {
                        write_varint(&mut list.data, *c as u64);
                    }
                }
                write_varint(&mut list.data, *payload as u64);
                list.uncompressed += 4 * id.len() as u64 + 4;
                prev = Some(id);
            }
            // Single-block lists carry no directory: the buffer is one
            // implicit block and tiny rows pay no skip-metadata tax.
            if !single_block {
                list.blocks.push(BlockMeta {
                    offset,
                    count: chunk.len() as u32,
                    max: chunk[chunk.len() - 1].0.clone(),
                });
            }
            list.len += chunk.len() as u64;
        }
        list
    }

    /// Number of physical blocks (directory entries, or one implicit
    /// block for short lists).
    fn total_blocks(&self) -> usize {
        if self.blocks.is_empty() {
            usize::from(self.len > 0)
        } else {
            self.blocks.len()
        }
    }

    /// `(byte offset, entry count)` of block `b`.
    fn block_bounds(&self, b: usize) -> (u32, u32) {
        if self.blocks.is_empty() {
            debug_assert_eq!(b, 0);
            (0, self.len as u32)
        } else {
            (self.blocks[b].offset, self.blocks[b].count)
        }
    }

    /// Total entries in the list.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed bytes held (entry data plus directory).
    pub fn compressed_bytes(&self) -> u64 {
        let dir: u64 = self.blocks.iter().map(|b| 8 + 4 * b.max.len() as u64).sum();
        self.data.len() as u64 + dir
    }

    /// Bytes a fully materialized representation would occupy.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.uncompressed
    }

    /// Structurally validate the list with bounds-checked decoding:
    /// every block starts where the directory says, every entry decodes
    /// inside the buffer, IDs are Dewey-ordered, directory maxima match
    /// the data, counts sum to `len`, and the buffer is fully consumed.
    /// Persistence uses this to reject corrupt-but-parseable files
    /// instead of panicking at query time.
    pub fn validate(&self) -> bool {
        self.validate_inner().is_some()
    }

    fn validate_inner(&self) -> Option<()> {
        let mut pos = 0usize;
        let mut decoded = 0u64;
        let mut prev: Option<DeweyId> = None;
        for b in 0..self.total_blocks() {
            let (offset, count) = self.block_bounds(b);
            if offset as usize != pos || count == 0 {
                return None;
            }
            for i in 0..count {
                let id = if i == 0 {
                    let n = try_read_varint(&self.data, &mut pos)? as usize;
                    let mut comps = Vec::with_capacity(n);
                    for _ in 0..n {
                        comps.push(try_read_varint(&self.data, &mut pos)? as u32);
                    }
                    DeweyId::from_components(comps)
                } else {
                    let p = prev.as_ref()?;
                    let lcp = try_read_varint(&self.data, &mut pos)? as usize;
                    if lcp > p.len() {
                        return None;
                    }
                    let suffix_len = try_read_varint(&self.data, &mut pos)? as usize;
                    let mut comps = Vec::with_capacity(lcp + suffix_len);
                    comps.extend_from_slice(&p.components()[..lcp]);
                    for _ in 0..suffix_len {
                        comps.push(try_read_varint(&self.data, &mut pos)? as u32);
                    }
                    DeweyId::from_components(comps)
                };
                try_read_varint(&self.data, &mut pos)?; // payload
                if prev.as_ref().map(|p| *p > id).unwrap_or(false) {
                    return None;
                }
                prev = Some(id);
                decoded += 1;
            }
            if let Some(meta) = self.blocks.get(b) {
                if Some(&meta.max) != prev.as_ref() {
                    return None;
                }
            }
        }
        (pos == self.data.len() && decoded == self.len).then_some(())
    }

    /// Open a streaming cursor; consumption work is tallied into
    /// `counters` when given.
    pub fn cursor<'a>(&'a self, counters: Option<&'a ScanCounters>) -> BlockCursor<'a> {
        BlockCursor {
            list: self,
            next_block: 0,
            remaining: 0,
            pos: 0,
            prev: DeweyId::default(),
            fresh: true,
            peeked: None,
            counters,
        }
    }

    /// Decode every entry (index rebuilds and tests; not a query path).
    pub fn decode_all(&self) -> Vec<(DeweyId, u32)> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut cur = self.cursor(None);
        while let Some(e) = cur.next_raw() {
            out.push(e);
        }
        out
    }

    /// Number of entries with `lo <= id < hi`, using the block directory
    /// so only boundary blocks are decoded.
    pub fn count_range(&self, lo: &DeweyId, hi: &DeweyId) -> u64 {
        if self.len == 0 || lo >= hi {
            return 0;
        }
        let mut total = 0u64;
        let count_block = |bi: usize, count: u32| -> u64 {
            let mut cur = self.cursor(None);
            cur.jump_to_block(bi);
            let mut n = 0u64;
            for _ in 0..count {
                let (id, _) = cur.next_raw().expect("directory count is exact");
                if id >= *hi {
                    break;
                }
                if id >= *lo {
                    n += 1;
                }
            }
            n
        };
        if self.blocks.is_empty() {
            // Single implicit block: decode it.
            return count_block(0, self.len as u32);
        }
        // A block's min is strictly above the previous block's max, so
        // `prev_max >= lo` proves the block lies fully above `lo`.
        let mut prev_max: Option<&DeweyId> = None;
        for (bi, meta) in self.blocks.iter().enumerate() {
            if meta.max < *lo {
                prev_max = Some(&meta.max);
                continue;
            }
            let min_above_lo = prev_max.map(|m| *m >= *lo).unwrap_or(false);
            if min_above_lo && meta.max < *hi {
                total += meta.count as u64;
            } else {
                total += count_block(bi, meta.count);
            }
            if meta.max >= *hi {
                break;
            }
            prev_max = Some(&meta.max);
        }
        total
    }
}

/// Streaming decoder over a [`BlockList`], with directory-driven skips.
#[derive(Clone, Debug)]
pub struct BlockCursor<'a> {
    list: &'a BlockList,
    /// Index of the next block not yet opened.
    next_block: usize,
    /// Entries left to decode in the currently open block.
    remaining: u32,
    /// Byte position of the next entry.
    pos: usize,
    /// Previously decoded ID (delta base).
    prev: DeweyId,
    /// True when the next entry is a block's full-ID first entry.
    fresh: bool,
    peeked: Option<(DeweyId, u32)>,
    counters: Option<&'a ScanCounters>,
}

impl BlockCursor<'_> {
    /// Decode and return the next `(id, payload)` pair.
    pub fn next_raw(&mut self) -> Option<(DeweyId, u32)> {
        if let Some(e) = self.peeked.take() {
            return Some(e);
        }
        self.decode_next()
    }

    /// The next pair without consuming it.
    pub fn peek(&mut self) -> Option<&(DeweyId, u32)> {
        if self.peeked.is_none() {
            self.peeked = self.decode_next();
        }
        self.peeked.as_ref()
    }

    /// Position at the first entry with `id >= target` (forward only).
    pub fn seek_raw(&mut self, target: &DeweyId) {
        if let Some((id, _)) = &self.peeked {
            if *id >= *target {
                return;
            }
        }
        if !self.list.blocks.is_empty() {
            // First candidate block: the first whose max is not below
            // target.
            let b = self.list.blocks.partition_point(|m| m.max < *target);
            if b >= self.list.blocks.len() {
                // Past the end of the list.
                self.peeked = None;
                self.remaining = 0;
                self.next_block = self.list.blocks.len();
                return;
            }
            // If a block is open and the target may still be inside it,
            // scan within; otherwise jump, counting fully skipped blocks.
            let open_block =
                (self.remaining > 0 || self.peeked.is_some()).then(|| self.next_block - 1);
            if open_block.map(|ob| b > ob).unwrap_or(true) && b >= self.next_block {
                let skipped = (b - self.next_block) as u64;
                if skipped > 0 {
                    if let Some(c) = self.counters {
                        c.add_blocks_skipped(skipped);
                    }
                }
                self.jump_to_block(b);
            }
        }
        while let Some((id, _)) = self.peek() {
            if *id >= *target {
                break;
            }
            self.peeked = None;
        }
    }

    pub(crate) fn jump_to_block(&mut self, b: usize) {
        let (offset, count) = self.list.block_bounds(b);
        self.pos = offset as usize;
        self.remaining = count;
        self.fresh = true;
        self.next_block = b + 1;
        self.peeked = None;
    }

    fn decode_next(&mut self) -> Option<(DeweyId, u32)> {
        while self.remaining == 0 {
            if self.next_block >= self.list.total_blocks() {
                return None;
            }
            let b = self.next_block;
            self.jump_to_block(b);
        }
        let start = self.pos;
        let data = &self.list.data;
        let id = if self.fresh {
            let n = read_varint(data, &mut self.pos) as usize;
            let mut comps = Vec::with_capacity(n);
            for _ in 0..n {
                comps.push(read_varint(data, &mut self.pos) as u32);
            }
            self.fresh = false;
            DeweyId::from_components(comps)
        } else {
            let lcp = read_varint(data, &mut self.pos) as usize;
            let suffix_len = read_varint(data, &mut self.pos) as usize;
            let mut comps = Vec::with_capacity(lcp + suffix_len);
            comps.extend_from_slice(&self.prev.components()[..lcp]);
            for _ in 0..suffix_len {
                comps.push(read_varint(data, &mut self.pos) as u32);
            }
            DeweyId::from_components(comps)
        };
        let payload = read_varint(data, &mut self.pos) as u32;
        self.prev = id.clone();
        self.remaining -= 1;
        if let Some(c) = self.counters {
            c.add_entries(1);
            c.add_bytes((self.pos - start) as u64);
        }
        Some((id, payload))
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Bounds- and overflow-checked variant of [`read_varint`], for
/// validating untrusted buffers.
fn try_read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(ids: &[&str]) -> Vec<(DeweyId, u32)> {
        ids.iter().enumerate().map(|(i, s)| (s.parse().unwrap(), i as u32)).collect()
    }

    #[test]
    fn round_trips_across_block_sizes() {
        let input = entries(&["1", "1.1", "1.1.1", "1.2", "1.2.3.4", "1.10", "1.10.1", "2.1"]);
        for bs in [1, 2, 3, 8, 64] {
            let list = BlockList::encode_with_block_size(&input, bs);
            assert_eq!(list.len(), input.len() as u64);
            assert_eq!(list.decode_all(), input, "block size {bs}");
        }
    }

    #[test]
    fn seek_lands_on_lower_bound_across_blocks() {
        let input = entries(&["1.1", "1.1.5", "1.2", "1.9", "1.10", "1.10.2", "1.11"]);
        let list = BlockList::encode_with_block_size(&input, 2);
        for (target, want) in [
            ("1", Some("1.1")),
            ("1.1.6", Some("1.2")),
            ("1.10", Some("1.10")),
            ("1.10.3", Some("1.11")),
            ("1.12", None),
        ] {
            let mut cur = list.cursor(None);
            cur.seek_raw(&target.parse().unwrap());
            let got = cur.next_raw().map(|(id, _)| id.to_string());
            assert_eq!(got.as_deref(), want, "seek {target}");
        }
    }

    #[test]
    fn seek_counts_skipped_blocks_and_decoded_bytes() {
        let input: Vec<(DeweyId, u32)> =
            (1..=64u32).map(|i| (DeweyId::from_components(vec![1, i]), i)).collect();
        let list = BlockList::encode_with_block_size(&input, 4);
        let counters = ScanCounters::default();
        let mut cur = list.cursor(Some(&counters));
        cur.seek_raw(&"1.50".parse().unwrap());
        let (id, _) = cur.next_raw().unwrap();
        assert_eq!(id.to_string(), "1.50");
        use std::sync::atomic::Ordering;
        assert!(counters.blocks_skipped.load(Ordering::Relaxed) >= 10);
        assert!(counters.bytes_decoded.load(Ordering::Relaxed) > 0);
        // Only the landing block's prefix was decoded, not 50 entries.
        assert!(counters.entries.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn count_range_matches_naive() {
        let input = entries(&["1.1", "1.1.2", "1.2", "1.9", "1.10", "1.10.1", "1.11", "2.1"]);
        let list = BlockList::encode_with_block_size(&input, 3);
        let cases = [("1.1", "1.2"), ("1", "2"), ("1.10", "1.11"), ("1.2", "1.10"), ("3", "4")];
        for (lo, hi) in cases {
            let lo: DeweyId = lo.parse().unwrap();
            let hi: DeweyId = hi.parse().unwrap();
            let naive = input.iter().filter(|(id, _)| *id >= lo && *id < hi).count() as u64;
            assert_eq!(list.count_range(&lo, &hi), naive, "range {lo}..{hi}");
        }
    }

    #[test]
    fn compression_beats_materialized_on_dense_siblings() {
        let input: Vec<(DeweyId, u32)> =
            (1..=1000u32).map(|i| (DeweyId::from_components(vec![1, 7, i]), 1)).collect();
        let list = BlockList::encode(&input);
        assert!(
            list.compressed_bytes() * 2 < list.uncompressed_bytes(),
            "compressed {} vs uncompressed {}",
            list.compressed_bytes(),
            list.uncompressed_bytes()
        );
    }

    #[test]
    fn tiny_lists_carry_no_directory_overhead() {
        // One-entry rows (the common path-index case) must cost fewer
        // bytes compressed than materialized.
        let one = BlockList::encode(&[(("1.2.3.4").parse().unwrap(), 42)]);
        assert!(one.blocks.is_empty(), "single-block list stores no directory");
        assert!(
            one.compressed_bytes() < one.uncompressed_bytes(),
            "compressed {} vs uncompressed {}",
            one.compressed_bytes(),
            one.uncompressed_bytes()
        );
        // Seek still works without a directory.
        let mut cur = one.cursor(None);
        cur.seek_raw(&"1.2".parse().unwrap());
        assert_eq!(cur.next_raw().unwrap().0.to_string(), "1.2.3.4");
        let mut cur = one.cursor(None);
        cur.seek_raw(&"1.3".parse().unwrap());
        assert!(cur.next_raw().is_none());
    }

    #[test]
    fn validate_accepts_encodings_and_rejects_tampering() {
        let input = entries(&["1.1", "1.2", "1.9", "1.10", "1.10.1", "2.3"]);
        for bs in [2, 64] {
            let list = BlockList::encode_with_block_size(&input, bs);
            assert!(list.validate(), "block size {bs}");
        }
        // Inflated entry count: decodes fine but len disagrees.
        let mut bad = BlockList::encode(&input);
        bad.len += 1;
        assert!(!bad.validate(), "inflated len must fail");
        // Truncated data buffer.
        let mut bad = BlockList::encode(&input);
        bad.data.pop();
        assert!(!bad.validate(), "truncated data must fail");
        // A never-terminating varint (all continuation bits).
        let mut bad = BlockList::encode(&input);
        for b in &mut bad.data {
            *b |= 0x80;
        }
        assert!(!bad.validate(), "unterminated varints must fail");
        // Directory max no longer matches the data.
        let mut bad = BlockList::encode_with_block_size(&input, 2);
        bad.blocks[0].max = "9.9".parse().unwrap();
        assert!(!bad.validate(), "stale directory max must fail");
    }

    #[test]
    fn empty_list_cursor_is_exhausted() {
        let list = BlockList::encode(&[]);
        assert!(list.is_empty());
        let mut cur = list.cursor(None);
        assert!(cur.next_raw().is_none());
        cur.seek_raw(&"1".parse().unwrap());
        assert!(cur.next_raw().is_none());
        assert_eq!(list.count_range(&"1".parse().unwrap(), &"2".parse().unwrap()), 0);
    }
}
