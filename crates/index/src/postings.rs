//! Block-compressed Dewey-ordered lists — the default posting storage.
//!
//! Both index families store the same shape of data: a Dewey-ordered
//! sequence of `(DeweyId, u32)` pairs (tf for inverted postings, subtree
//! byte length for path-index rows). [`BlockList`] holds such a sequence
//! as fixed-size blocks of delta-varint-encoded entries with per-block
//! skip metadata, following the disk-resident posting-list designs the
//! EMBANKS line of work uses for keyword search over structured data.
//!
//! ## Block format
//!
//! Entries are grouped into blocks of [`DEFAULT_BLOCK_ENTRIES`] (the
//! builder accepts other sizes for tests and experiments). Each block is
//! encoded into a shared byte buffer:
//!
//! * the **first entry** of a block stores its Dewey ID in full:
//!   `varint(component_count)` followed by one varint per component,
//!   then `varint(payload)`;
//! * every **subsequent entry** is delta-encoded against its
//!   predecessor: `varint(lcp)` (shared prefix length in components),
//!   `varint(suffix_len)`, the suffix components as varints, then
//!   `varint(payload)`.
//!
//! Because sibling ordinals are small integers and consecutive IDs in
//! document order share long prefixes, most entries cost a few bytes.
//!
//! ## Backing bytes
//!
//! The encoded buffer is a [`Bytes`] value: heap-owned for lists built
//! in memory (or loaded from legacy v1–v3 files), or a shared window
//! into a memory-mapped v4 file ([`crate::mapped`]). Every decode path
//! sees only `&[u8]`, so owned and mapped lists answer byte-identically.
//!
//! ## Batched decode
//!
//! Decoding is **block-batched**: a whole block is expanded in one pass
//! into a reusable [`DecodeScratch`] — a flat component arena plus
//! per-entry metadata — by a varint decoder with a one-byte fast path
//! (the overwhelmingly common case for lcp/suffix/ordinal/payload
//! values). Probes that only *compare* IDs (range estimates, subtree-tf
//! sums) work directly on scratch slices and allocate nothing per
//! entry; streaming cursors materialize one `DeweyId` per entry they
//! actually hand out. The `*_with` probe variants accept a
//! caller-provided scratch so hot loops (the score-bounded estimate
//! pass, the PDT merge) reuse one buffer across thousands of probes.
//! The decoder is fully bounds-checked: corrupt or truncated bytes end
//! the stream, they never panic or over-read — which is what makes it
//! safe to point cursors straight at an untrusted mapping.
//!
//! The per-block directory (`BlockMeta`) keeps the block's byte
//! `offset`, entry `count`, **max Dewey ID** (its min is implied:
//! strictly above the previous block's max), and **max payload** — the
//! largest tf / byte-length in the block, the score-upper-bound
//! metadata of the block-max (WAND-family) pruning literature. Lists
//! that fit in a single block — the common case for path-index rows
//! keyed by high-cardinality values — store **no directory at all**:
//! the whole buffer is one implicit block, so a one-entry row costs
//! only its few delta-encoded bytes (the list-level
//! [`BlockList::max_payload`] still bounds it). [`BlockCursor::seek_raw`]
//! binary-searches the directory for the first block whose `max` is not
//! below the target and decodes only from there — whole blocks before
//! it are skipped, counted in [`ScanCounters::blocks_skipped`].
//! [`BlockList::range_payload_bound`] walks the same directory to bound
//! the payload *sum* of a range without decoding anything — what top-k
//! pruning uses to skip exact subtree-tf probes entirely. Max
//! comparisons use Dewey component order, so `1.2 < 1.10` and
//! prefix-vs-extension cases (`1.1` vs `1.10`) can never cause a
//! qualifying entry to be skipped.
//!
//! Consumers that want bulk rather than entry-at-a-time access use
//! [`BlockCursor::drain_block`]: it serves one decoded block's worth of
//! `(components, payload)` pairs straight off the scratch — no per-entry
//! `DeweyId` allocation — stopping early at an optional exclusive bound
//! (checked per entry only when the block directory cannot prove the
//! whole block is below it). The PDT merge drains its streams this way.
//! [`ScanCounters`] tallies are batched inside the cursor and flushed at
//! block-decode boundaries and on drop, so consuming a block costs two
//! atomic adds, not two per entry.

use crate::cursor::ScanCounters;
use crate::mapped::Bytes;
use vxv_xml::DeweyId;

/// Default number of entries per compressed block.
pub const DEFAULT_BLOCK_ENTRIES: usize = 32;

/// Ceiling on one entry's component count. Real Dewey IDs are as deep
/// as their document tree — tens of components; anything past this is
/// corrupt data, rejected before it can size an allocation.
const MAX_COMPONENTS: usize = 1 << 16;

/// Directory entry for one compressed block. A block's minimum ID is
/// implied: it is strictly greater than the previous block's `max`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct BlockMeta {
    /// Byte offset of the block in [`BlockList::data`].
    pub(crate) offset: u32,
    /// Entries in the block.
    pub(crate) count: u32,
    /// Dewey ID of the block's last entry.
    pub(crate) max: DeweyId,
    /// Largest payload (tf / byte length) of any entry in the block.
    pub(crate) max_payload: u32,
}

/// A directory-only upper bound on the payload sum of a Dewey range —
/// no entry is decoded to produce it (see
/// [`BlockList::range_payload_bound`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PayloadBound {
    /// Upper bound on the sum of payloads of entries in the range
    /// (`Σ block count × block max payload` over candidate blocks).
    pub bound: u64,
    /// Compressed blocks overlapping the range — what an exact probe
    /// would have to decode.
    pub blocks: u64,
}

/// A boundary-exact payload estimate of a Dewey range (see
/// [`BlockList::range_payload_estimate`]): the two boundary blocks are
/// decoded, interior blocks contribute `count × block max` without
/// decoding. When `skipped_blocks == 0` the bound **is** the exact sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RangeEstimate {
    /// Upper bound on the payload sum of the range; exact when
    /// `skipped_blocks == 0`.
    pub bound: u64,
    /// The exact payload sum of the decoded boundary blocks' in-range
    /// entries — `boundary_sum` plus the interior blocks' exact sum
    /// ([`BlockList::range_interior_payload_sum`]) is the exact range
    /// sum, so completing an estimate never re-decodes a boundary.
    pub boundary_sum: u64,
    /// Interior blocks bounded from the directory instead of decoded —
    /// the work an exact probe would add.
    pub skipped_blocks: u64,
    /// Exact: does the range hold any entry with a positive payload?
    pub contains: bool,
}

/// Per-entry metadata of a batch-decoded block (parallel to the flat
/// component arena in [`DecodeScratch`]).
#[derive(Clone, Copy, Debug)]
struct EntryMeta {
    /// End offset of this entry's components in the arena (its start is
    /// the previous entry's end).
    end: u32,
    /// The entry's payload (tf / byte length).
    payload: u32,
    /// Encoded size of the entry in the block, for byte accounting.
    bytes: u32,
}

/// Reusable scratch for batched block decoding: a flat `u32` component
/// arena plus per-entry `(end, payload, encoded bytes)` metadata.
///
/// One scratch holds one decoded block at a time; reusing it across
/// blocks and probes amortizes its allocations to nothing. Probes that
/// only compare IDs read entries as `&[u32]` slices straight from the
/// arena — no per-entry `DeweyId` is ever built. Cursors own one
/// internally; the `*_with` methods on [`BlockList`] (and the
/// `TfReader` probe variants in `vxv-index::inverted`) accept a
/// caller-provided scratch for hot loops.
#[derive(Clone, Debug, Default)]
pub struct DecodeScratch {
    comps: Vec<u32>,
    meta: Vec<EntryMeta>,
}

impl DecodeScratch {
    /// Entries currently decoded.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when nothing is decoded.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Discard the decoded block, keeping the allocations.
    pub fn clear(&mut self) {
        self.comps.clear();
        self.meta.clear();
    }

    /// Entry `i` as `(components, payload)`. The slice borrows the
    /// arena — compare it, copy it, but decode nothing.
    pub fn entry(&self, i: usize) -> (&[u32], u32) {
        let start = if i == 0 { 0 } else { self.meta[i - 1].end as usize };
        let m = self.meta[i];
        (&self.comps[start..m.end as usize], m.payload)
    }

    /// Encoded size of entry `i` in the block, for
    /// [`ScanCounters::add_bytes`]-style accounting.
    pub(crate) fn entry_bytes(&self, i: usize) -> u64 {
        self.meta[i].bytes as u64
    }
}

/// Bounds-checked varint with a one-byte fast path (values < 128 — the
/// common case for every field the block format stores).
#[inline(always)]
pub(crate) fn read_varint_checked(data: &[u8], pos: &mut usize) -> Option<u64> {
    let b = *data.get(*pos)?;
    *pos += 1;
    if b < 0x80 {
        return Some(u64::from(b));
    }
    let mut v = u64::from(b & 0x7f);
    let mut shift = 7u32;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Batch-decode `count` delta-encoded entries starting at `data[pos]`
/// into `scratch`. Returns the end byte position, or `None` on any
/// structural problem (truncation, overflow, absurd lengths) — corrupt
/// bytes end the stream, they never panic.
fn decode_block_into(
    data: &[u8],
    mut pos: usize,
    count: u32,
    scratch: &mut DecodeScratch,
) -> Option<usize> {
    scratch.clear();
    scratch.meta.reserve(count as usize);
    // (start, len) of the previous entry's components in the arena.
    let mut prev_start = 0usize;
    let mut prev_len = 0usize;
    for i in 0..count {
        let entry_start_byte = pos;
        let entry_start = scratch.comps.len();
        if i == 0 {
            let n = read_varint_checked(data, &mut pos)? as usize;
            // Each component costs at least one byte: a count beyond the
            // remaining bytes (or any absurd depth) is corruption, caught
            // before it can size an allocation.
            if n > data.len() - pos || n > MAX_COMPONENTS {
                return None;
            }
            scratch.comps.reserve(n);
            for _ in 0..n {
                let c = read_varint_checked(data, &mut pos)?;
                if c > u32::MAX as u64 {
                    return None;
                }
                scratch.comps.push(c as u32);
            }
        } else {
            let lcp = read_varint_checked(data, &mut pos)? as usize;
            if lcp > prev_len {
                return None;
            }
            let suffix_len = read_varint_checked(data, &mut pos)? as usize;
            if suffix_len > data.len() - pos || lcp + suffix_len > MAX_COMPONENTS {
                return None;
            }
            scratch.comps.extend_from_within(prev_start..prev_start + lcp);
            for _ in 0..suffix_len {
                let c = read_varint_checked(data, &mut pos)?;
                if c > u32::MAX as u64 {
                    return None;
                }
                scratch.comps.push(c as u32);
            }
        }
        let payload = read_varint_checked(data, &mut pos)?;
        if payload > u32::MAX as u64 || scratch.comps.len() > u32::MAX as usize {
            return None;
        }
        scratch.meta.push(EntryMeta {
            end: scratch.comps.len() as u32,
            payload: payload as u32,
            bytes: (pos - entry_start_byte) as u32,
        });
        prev_start = entry_start;
        prev_len = scratch.comps.len() - entry_start;
    }
    Some(pos)
}

/// A block-compressed, Dewey-ordered list of `(DeweyId, u32)` entries.
///
/// `blocks` is empty for lists that fit in one block; the data buffer is
/// then a single implicit block of `len` entries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockList {
    pub(crate) data: Bytes,
    pub(crate) blocks: Vec<BlockMeta>,
    pub(crate) len: u64,
    /// Bytes a materialized representation would occupy
    /// (4 bytes per Dewey component + 4 payload bytes per entry).
    pub(crate) uncompressed: u64,
    /// Largest payload of any entry in the list (0 for empty lists).
    pub(crate) max_payload: u32,
}

impl BlockList {
    /// Encode `entries` (already in Dewey order) with the default block
    /// size.
    pub fn encode(entries: &[(DeweyId, u32)]) -> BlockList {
        Self::encode_with_block_size(entries, DEFAULT_BLOCK_ENTRIES)
    }

    /// As [`Self::encode`] with an explicit block size (tests force tiny
    /// blocks to exercise boundary handling; experiments tune skip
    /// granularity).
    ///
    /// # Panics
    /// Panics if `block_entries` is zero or `entries` is not sorted.
    pub fn encode_with_block_size(entries: &[(DeweyId, u32)], block_entries: usize) -> BlockList {
        assert!(block_entries > 0, "block size must be positive");
        let mut list = BlockList::default();
        let mut data = Vec::new();
        let single_block = entries.len() <= block_entries;
        for chunk in entries.chunks(block_entries) {
            let offset = data.len() as u32;
            let mut prev: Option<&DeweyId> = None;
            let mut chunk_max_payload = 0u32;
            for (id, payload) in chunk {
                chunk_max_payload = chunk_max_payload.max(*payload);
                if let Some(p) = prev {
                    assert!(p <= id, "entries must be Dewey-ordered");
                    let lcp = p.common_prefix_len(id);
                    let suffix = &id.components()[lcp..];
                    write_varint(&mut data, lcp as u64);
                    write_varint(&mut data, suffix.len() as u64);
                    for c in suffix {
                        write_varint(&mut data, *c as u64);
                    }
                } else {
                    write_varint(&mut data, id.len() as u64);
                    for c in id.components() {
                        write_varint(&mut data, *c as u64);
                    }
                }
                write_varint(&mut data, *payload as u64);
                list.uncompressed += 4 * id.len() as u64 + 4;
                prev = Some(id);
            }
            // Single-block lists carry no directory: the buffer is one
            // implicit block and tiny rows pay no skip-metadata tax.
            if !single_block {
                list.blocks.push(BlockMeta {
                    offset,
                    count: chunk.len() as u32,
                    max: chunk[chunk.len() - 1].0.clone(),
                    max_payload: chunk_max_payload,
                });
            }
            list.max_payload = list.max_payload.max(chunk_max_payload);
            list.len += chunk.len() as u64;
        }
        list.data = Bytes::Owned(data);
        list
    }

    /// Number of physical blocks (directory entries, or one implicit
    /// block for short lists).
    pub fn block_count(&self) -> usize {
        self.total_blocks()
    }

    fn total_blocks(&self) -> usize {
        if self.blocks.is_empty() {
            usize::from(self.len > 0)
        } else {
            self.blocks.len()
        }
    }

    /// `(byte offset, entry count)` of block `b`.
    fn block_bounds(&self, b: usize) -> (u32, u32) {
        if self.blocks.is_empty() {
            debug_assert_eq!(b, 0);
            (0, self.len as u32)
        } else {
            (self.blocks[b].offset, self.blocks[b].count)
        }
    }

    /// Batch-decode block `b` into `scratch`. Returns `false` (leaving
    /// `scratch` cleared) on corrupt bytes — never panics, so it is safe
    /// to call on an untrusted mapping. This is the single decode
    /// routine every cursor and probe goes through.
    pub fn decode_block(&self, b: usize, scratch: &mut DecodeScratch) -> bool {
        if b >= self.total_blocks() {
            scratch.clear();
            return false;
        }
        let (offset, count) = self.block_bounds(b);
        if offset as usize > self.data.len() {
            scratch.clear();
            return false;
        }
        match decode_block_into(&self.data, offset as usize, count, scratch) {
            Some(_) => true,
            None => {
                scratch.clear();
                false
            }
        }
    }

    /// Total entries in the list.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed bytes held (entry data, directory, and the payload
    /// bounds the v3+ formats persist: 4 bytes per block + 4 list-level).
    pub fn compressed_bytes(&self) -> u64 {
        let dir: u64 = self.blocks.iter().map(|b| 12 + 4 * b.max.len() as u64).sum();
        self.data.len() as u64 + dir + 4
    }

    /// Heap bytes this list's data buffer actually owns: its full size
    /// for owned lists, **zero** for lists decoding out of a shared
    /// mapping — the map-vs-owned residency split `vxv inspect` prints.
    pub fn owned_data_bytes(&self) -> u64 {
        self.data.owned_bytes()
    }

    /// Largest payload (tf / byte length) of any entry — the list-level
    /// score upper bound top-k pruning combines with idf.
    pub fn max_payload(&self) -> u32 {
        self.max_payload
    }

    /// Upper-bound the payload sum of entries with `lo <= id < hi` from
    /// the block directory alone: candidate blocks contribute
    /// `count × max payload`, and **nothing is decoded**. The result is
    /// never below the exact [`count_range`](Self::count_range)-style
    /// sum, so a pruning decision based on it can never drop a
    /// qualifying top-k candidate. `blocks` reports how many compressed
    /// blocks an exact probe of the range would touch.
    pub fn range_payload_bound(&self, lo: &DeweyId, hi: &DeweyId) -> PayloadBound {
        if self.len == 0 || lo >= hi {
            return PayloadBound::default();
        }
        if self.blocks.is_empty() {
            // Single implicit block: no ID metadata to exclude it, so it
            // is always a candidate.
            return PayloadBound { bound: self.len * self.max_payload as u64, blocks: 1 };
        }
        let start = self.blocks.partition_point(|m| m.max < *lo);
        let mut out = PayloadBound::default();
        // A block's min is strictly above the previous block's max, so
        // once the previous max reaches `hi` the remaining blocks lie
        // entirely above the range.
        let mut prev_max = (start > 0).then(|| &self.blocks[start - 1].max);
        for meta in &self.blocks[start..] {
            if prev_max.map(|pm| *pm >= *hi).unwrap_or(false) {
                break;
            }
            out.bound += meta.count as u64 * meta.max_payload as u64;
            out.blocks += 1;
            prev_max = Some(&meta.max);
        }
        out
    }

    /// Decode block `bi` into `scratch` and fold its in-range entries
    /// into `est`, charging each visited entry to `counters` exactly as
    /// a streaming cursor would.
    fn estimate_boundary_block(
        &self,
        bi: usize,
        lo: &[u32],
        hi: &[u32],
        counters: Option<&ScanCounters>,
        scratch: &mut DecodeScratch,
        est: &mut RangeEstimate,
    ) {
        if !self.decode_block(bi, scratch) {
            return;
        }
        for i in 0..scratch.len() {
            let (comps, p) = scratch.entry(i);
            if let Some(c) = counters {
                c.add_entries(1);
                c.add_bytes(scratch.entry_bytes(i));
            }
            if comps >= hi {
                break;
            }
            if comps >= lo {
                est.bound += p as u64;
                est.boundary_sum += p as u64;
                if p > 0 {
                    est.contains = true;
                }
            }
        }
    }

    /// Boundary-exact payload estimate of `lo <= id < hi`: decode the
    /// (at most two) boundary blocks, bound every **interior** block —
    /// fully contained in the range by the directory's ordering
    /// invariants — as `count × block max` without decoding it. The
    /// result dominates the exact sum, collapses *to* the exact sum
    /// when no interior block exists (`skipped_blocks == 0`), and
    /// reports exactly whether the range holds a positive-payload entry.
    /// Decoded work is tallied into `counters` like any cursor scan.
    pub fn range_payload_estimate(
        &self,
        lo: &DeweyId,
        hi: &DeweyId,
        counters: Option<&ScanCounters>,
    ) -> RangeEstimate {
        let mut scratch = DecodeScratch::default();
        self.range_payload_estimate_with(lo, hi, counters, &mut scratch)
    }

    /// As [`Self::range_payload_estimate`], reusing a caller-provided
    /// scratch — the form hot probe loops call so per-probe allocation
    /// drops to zero.
    pub fn range_payload_estimate_with(
        &self,
        lo: &DeweyId,
        hi: &DeweyId,
        counters: Option<&ScanCounters>,
        scratch: &mut DecodeScratch,
    ) -> RangeEstimate {
        let mut est = RangeEstimate::default();
        if self.len == 0 || lo >= hi {
            return est;
        }
        let (lo, hi) = (lo.components(), hi.components());
        if self.blocks.is_empty() {
            // Single implicit block: it is its own boundary.
            self.estimate_boundary_block(0, lo, hi, counters, scratch, &mut est);
            return est;
        }
        // Candidate blocks: `start` (first whose max reaches lo) through
        // `last` (first whose max reaches hi). Blocks strictly between
        // them lie fully inside the range: their min is above start's
        // max (>= lo) and their max is below hi.
        let start = self.blocks.partition_point(|m| m.max.components() < lo);
        if start >= self.blocks.len() {
            return est;
        }
        let last = start + self.blocks[start..].partition_point(|m| m.max.components() < hi);
        self.estimate_boundary_block(start, lo, hi, counters, scratch, &mut est);
        if last > start + 1 {
            for meta in &self.blocks[start + 1..last.min(self.blocks.len())] {
                est.bound += meta.count as u64 * meta.max_payload as u64;
                est.skipped_blocks += 1;
                // A fully-contained block with a positive max proves
                // containment without decoding.
                if meta.max_payload > 0 {
                    est.contains = true;
                }
            }
        }
        if last > start && last < self.blocks.len() {
            self.estimate_boundary_block(last, lo, hi, counters, scratch, &mut est);
        }
        est
    }

    /// Exact payload sum of the **interior** blocks of `lo <= id < hi` —
    /// the blocks [`Self::range_payload_estimate`] bounded without
    /// decoding. Adding this to the estimate's `boundary_sum` yields the
    /// exact range sum while decoding every block at most once across
    /// the two calls.
    pub fn range_interior_payload_sum(
        &self,
        lo: &DeweyId,
        hi: &DeweyId,
        counters: Option<&ScanCounters>,
    ) -> u64 {
        let mut scratch = DecodeScratch::default();
        self.range_interior_payload_sum_with(lo, hi, counters, &mut scratch)
    }

    /// As [`Self::range_interior_payload_sum`], reusing a caller-provided
    /// scratch.
    pub fn range_interior_payload_sum_with(
        &self,
        lo: &DeweyId,
        hi: &DeweyId,
        counters: Option<&ScanCounters>,
        scratch: &mut DecodeScratch,
    ) -> u64 {
        if self.len == 0 || lo >= hi || self.blocks.is_empty() {
            return 0;
        }
        let start = self.blocks.partition_point(|m| m.max < *lo);
        if start >= self.blocks.len() {
            return 0;
        }
        let last = start + self.blocks[start..].partition_point(|m| m.max < *hi);
        let mut total = 0u64;
        if last > start + 1 {
            for bi in start + 1..last.min(self.blocks.len()) {
                if !self.decode_block(bi, scratch) {
                    break;
                }
                for i in 0..scratch.len() {
                    // Interior entries are in range by construction.
                    let (_, p) = scratch.entry(i);
                    if let Some(c) = counters {
                        c.add_entries(1);
                        c.add_bytes(scratch.entry_bytes(i));
                    }
                    total += p as u64;
                }
            }
        }
        total
    }

    /// Bytes a fully materialized representation would occupy.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.uncompressed
    }

    /// Structurally validate the list with bounds-checked decoding:
    /// every block starts where the directory says, every entry decodes
    /// inside the buffer, IDs are Dewey-ordered, directory maxima (IDs
    /// **and** payload bounds, per block and list-level) match the data,
    /// counts sum to `len`, and the buffer is fully consumed.
    /// Persistence uses this to reject corrupt-but-parseable files
    /// instead of panicking at query time.
    pub fn validate(&self) -> bool {
        match self.decode_check() {
            None => false,
            Some((block_maxes, list_max)) => {
                list_max == self.max_payload
                    && block_maxes.len() == self.blocks.len()
                    && block_maxes.iter().zip(&self.blocks).all(|(m, b)| *m == b.max_payload)
            }
        }
    }

    /// Recompute the payload bounds from the data (one bounds-checked
    /// full decode) — how pre-v3 persisted lists, which carry no bounds,
    /// acquire them at load time. Returns `false` when the list is
    /// structurally corrupt.
    pub(crate) fn restore_bounds(&mut self) -> bool {
        match self.decode_check() {
            None => false,
            Some((block_maxes, list_max)) => {
                if block_maxes.len() != self.blocks.len() {
                    return false;
                }
                for (meta, max) in self.blocks.iter_mut().zip(block_maxes) {
                    meta.max_payload = max;
                }
                self.max_payload = list_max;
                true
            }
        }
    }

    /// The shared structural check: a fully bounds-checked batched
    /// decode that also verifies ordering and computes per-block and
    /// list-level payload maxima. `None` when the buffer or directory
    /// is corrupt.
    fn decode_check(&self) -> Option<(Vec<u32>, u32)> {
        let mut pos = 0usize;
        let mut decoded = 0u64;
        let mut scratch = DecodeScratch::default();
        // The previous block's final ID, for cross-block ordering.
        let mut carry: Vec<u32> = Vec::new();
        let mut block_maxes = Vec::with_capacity(self.blocks.len());
        let mut list_max = 0u32;
        for b in 0..self.total_blocks() {
            let (offset, count) = self.block_bounds(b);
            if offset as usize != pos || count == 0 {
                return None;
            }
            pos = decode_block_into(&self.data, pos, count, &mut scratch)?;
            let mut block_max = 0u32;
            for i in 0..scratch.len() {
                let (comps, payload) = scratch.entry(i);
                block_max = block_max.max(payload);
                let prev: &[u32] = if i == 0 { &carry } else { scratch.entry(i - 1).0 };
                if (b > 0 || i > 0) && prev > comps {
                    return None;
                }
                decoded += 1;
            }
            let last = scratch.entry(scratch.len() - 1).0;
            if let Some(meta) = self.blocks.get(b) {
                if meta.max.components() != last {
                    return None;
                }
                block_maxes.push(block_max);
            }
            carry.clear();
            carry.extend_from_slice(last);
            list_max = list_max.max(block_max);
        }
        (pos == self.data.len() && decoded == self.len).then_some((block_maxes, list_max))
    }

    /// Open a streaming cursor; consumption work is tallied into
    /// `counters` when given.
    pub fn cursor<'a>(&'a self, counters: Option<&'a ScanCounters>) -> BlockCursor<'a> {
        BlockCursor {
            list: self,
            next_block: 0,
            scratch: DecodeScratch::default(),
            idx: 0,
            peeked: None,
            counters,
            pending_entries: 0,
            pending_bytes: 0,
        }
    }

    /// Decode every entry (index rebuilds and tests; not a query path).
    pub fn decode_all(&self) -> Vec<(DeweyId, u32)> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut cur = self.cursor(None);
        while let Some(e) = cur.next_raw() {
            out.push(e);
        }
        out
    }

    /// Number of entries with `lo <= id < hi`, using the block directory
    /// so only boundary blocks are decoded.
    pub fn count_range(&self, lo: &DeweyId, hi: &DeweyId) -> u64 {
        if self.len == 0 || lo >= hi {
            return 0;
        }
        let (lo_c, hi_c) = (lo.components(), hi.components());
        let mut scratch = DecodeScratch::default();
        let mut total = 0u64;
        let count_block = |bi: usize, scratch: &mut DecodeScratch| -> u64 {
            if !self.decode_block(bi, scratch) {
                return 0;
            }
            let mut n = 0u64;
            for i in 0..scratch.len() {
                let (comps, _) = scratch.entry(i);
                if comps >= hi_c {
                    break;
                }
                if comps >= lo_c {
                    n += 1;
                }
            }
            n
        };
        if self.blocks.is_empty() {
            // Single implicit block: decode it.
            return count_block(0, &mut scratch);
        }
        // A block's min is strictly above the previous block's max, so
        // `prev_max >= lo` proves the block lies fully above `lo`.
        let mut prev_max: Option<&DeweyId> = None;
        for (bi, meta) in self.blocks.iter().enumerate() {
            if meta.max < *lo {
                prev_max = Some(&meta.max);
                continue;
            }
            let min_above_lo = prev_max.map(|m| *m >= *lo).unwrap_or(false);
            if min_above_lo && meta.max < *hi {
                total += meta.count as u64;
            } else {
                total += count_block(bi, &mut scratch);
            }
            if meta.max >= *hi {
                break;
            }
            prev_max = Some(&meta.max);
        }
        total
    }
}

/// Streaming decoder over a [`BlockList`], with directory-driven skips.
///
/// Decoding is block-batched into an internal [`DecodeScratch`]: the
/// cursor expands a whole block in one pass, then serves entries from
/// the scratch — work counters are still charged per entry *consumed*,
/// exactly as the entry-at-a-time decoder charged them.
#[derive(Clone, Debug)]
pub struct BlockCursor<'a> {
    list: &'a BlockList,
    /// Index of the next block not yet decoded into `scratch`.
    next_block: usize,
    /// The current block, batch-decoded.
    scratch: DecodeScratch,
    /// Next entry in `scratch` to hand out.
    idx: usize,
    peeked: Option<(DeweyId, u32)>,
    counters: Option<&'a ScanCounters>,
    /// Consumption not yet flushed to `counters`. Tallying locally and
    /// flushing per decoded block (and on drop) keeps the hot merge loop
    /// free of per-entry atomic traffic.
    pending_entries: u64,
    pending_bytes: u64,
}

impl Drop for BlockCursor<'_> {
    fn drop(&mut self) {
        self.flush_counters();
    }
}

impl BlockCursor<'_> {
    /// Decode and return the next `(id, payload)` pair.
    pub fn next_raw(&mut self) -> Option<(DeweyId, u32)> {
        if let Some(e) = self.peeked.take() {
            return Some(e);
        }
        self.pop_entry()
    }

    /// The next pair without consuming it.
    pub fn peek(&mut self) -> Option<&(DeweyId, u32)> {
        if self.peeked.is_none() {
            self.peeked = self.pop_entry();
        }
        self.peeked.as_ref()
    }

    /// Position at the first entry with `id >= target` (forward only).
    pub fn seek_raw(&mut self, target: &DeweyId) {
        if let Some((id, _)) = &self.peeked {
            if *id >= *target {
                return;
            }
        }
        if !self.list.blocks.is_empty() {
            // First candidate block: the first whose max is not below
            // target.
            let b = self.list.blocks.partition_point(|m| m.max < *target);
            if b >= self.list.blocks.len() {
                // Past the end of the list.
                self.peeked = None;
                self.scratch.clear();
                self.idx = 0;
                self.next_block = self.list.blocks.len();
                return;
            }
            // If a block is open and the target may still be inside it,
            // scan within; otherwise jump, counting fully skipped blocks.
            let open_block = (self.idx < self.scratch.len() || self.peeked.is_some())
                .then(|| self.next_block - 1);
            if open_block.map(|ob| b > ob).unwrap_or(true) && b >= self.next_block {
                let skipped = (b - self.next_block) as u64;
                if skipped > 0 {
                    if let Some(c) = self.counters {
                        c.add_blocks_skipped(skipped);
                    }
                }
                self.jump_to_block(b);
            }
        }
        while let Some((id, _)) = self.peek() {
            if *id >= *target {
                break;
            }
            self.peeked = None;
        }
    }

    /// Largest payload of any entry in the underlying list — a bound on
    /// every entry this cursor can still return (cursors are
    /// forward-only, so the list-level maximum always applies).
    pub fn list_max_payload(&self) -> u32 {
        self.list.max_payload
    }

    /// Reposition at the start of block `b`; its entries decode on the
    /// next consumption.
    pub(crate) fn jump_to_block(&mut self, b: usize) {
        self.next_block = b;
        self.scratch.clear();
        self.idx = 0;
        self.peeked = None;
    }

    /// Serve the next entry from the scratch, batch-decoding the next
    /// block when the current one is exhausted. Corrupt bytes end the
    /// stream — never a panic, even over an untrusted mapping.
    fn pop_entry(&mut self) -> Option<(DeweyId, u32)> {
        while self.idx >= self.scratch.len() {
            if self.next_block >= self.list.total_blocks() {
                return None;
            }
            let b = self.next_block;
            self.next_block += 1;
            // Block boundary: publish tallies so observers lag by at
            // most one block even while the cursor stays open.
            self.flush_counters();
            if !self.list.decode_block(b, &mut self.scratch) {
                self.next_block = self.list.total_blocks();
                return None;
            }
            self.idx = 0;
        }
        let (comps, payload) = self.scratch.entry(self.idx);
        let id = DeweyId::from_components(comps.to_vec());
        self.pending_entries += 1;
        self.pending_bytes += self.scratch.entry_bytes(self.idx);
        self.idx += 1;
        Some((id, payload))
    }

    /// Serve every remaining decoded entry of the current block (the
    /// peeked one included) to `f` as a raw `(components, payload)`
    /// pair, stopping before the first entry `>= bound`. Decodes the
    /// next block first when none is open. Returns the number served.
    ///
    /// This is the batch face of the cursor: a k-way merge drains one
    /// block at a time into its own contiguous scratch and touches the
    /// cursor again only at block boundaries, instead of bouncing
    /// through per-cursor state for every entry.
    pub fn drain_block<F: FnMut(&[u32], u32)>(
        &mut self,
        bound: Option<&DeweyId>,
        mut f: F,
    ) -> usize {
        if self.peek().is_none() {
            return 0;
        }
        let mut served = 0usize;
        if let Some((id, payload)) = self.peeked.take() {
            if let Some(b) = bound {
                if id >= *b {
                    self.peeked = Some((id, payload));
                    return 0;
                }
            }
            f(id.components(), payload);
            served += 1;
        }
        // The peeked entry was already tallied when it was popped; only
        // the direct scratch serves below add to the pending counters.
        let block_safe = match bound {
            None => true,
            Some(b) => self
                .next_block
                .checked_sub(1)
                .and_then(|n| self.list.blocks.get(n))
                .map(|m| m.max < *b)
                .unwrap_or(false),
        };
        while self.idx < self.scratch.len() {
            let (comps, payload) = self.scratch.entry(self.idx);
            if !block_safe {
                if let Some(b) = bound {
                    if comps >= b.components() {
                        break;
                    }
                }
            }
            f(comps, payload);
            let bytes = self.scratch.entry_bytes(self.idx);
            self.pending_entries += 1;
            self.pending_bytes += bytes;
            self.idx += 1;
            served += 1;
        }
        served
    }

    /// Entries immediately servable (the peeked one plus the rest of the
    /// current decoded block) when the whole block sorts below `end`,
    /// else 0. Lets a bounded consumer skip the per-entry bound compare
    /// for every block the directory proves is entirely in range.
    pub fn run_below(&mut self, end: &DeweyId) -> usize {
        if self.peek().is_none() {
            return 0;
        }
        let Some(b) = self.next_block.checked_sub(1) else { return 0 };
        match self.list.blocks.get(b) {
            Some(m) if m.max < *end => (self.scratch.len() - self.idx) + 1,
            _ => 0,
        }
    }

    /// Publish locally tallied consumption to the shared counters.
    fn flush_counters(&mut self) {
        if let Some(c) = self.counters {
            if self.pending_entries > 0 {
                c.add_entries(self.pending_entries);
                c.add_bytes(self.pending_bytes);
            }
        }
        self.pending_entries = 0;
        self.pending_bytes = 0;
    }
}

pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(ids: &[&str]) -> Vec<(DeweyId, u32)> {
        ids.iter().enumerate().map(|(i, s)| (s.parse().unwrap(), i as u32)).collect()
    }

    #[test]
    fn round_trips_across_block_sizes() {
        let input = entries(&["1", "1.1", "1.1.1", "1.2", "1.2.3.4", "1.10", "1.10.1", "2.1"]);
        for bs in [1, 2, 3, 8, 64] {
            let list = BlockList::encode_with_block_size(&input, bs);
            assert_eq!(list.len(), input.len() as u64);
            assert_eq!(list.decode_all(), input, "block size {bs}");
        }
    }

    #[test]
    fn seek_lands_on_lower_bound_across_blocks() {
        let input = entries(&["1.1", "1.1.5", "1.2", "1.9", "1.10", "1.10.2", "1.11"]);
        let list = BlockList::encode_with_block_size(&input, 2);
        for (target, want) in [
            ("1", Some("1.1")),
            ("1.1.6", Some("1.2")),
            ("1.10", Some("1.10")),
            ("1.10.3", Some("1.11")),
            ("1.12", None),
        ] {
            let mut cur = list.cursor(None);
            cur.seek_raw(&target.parse().unwrap());
            let got = cur.next_raw().map(|(id, _)| id.to_string());
            assert_eq!(got.as_deref(), want, "seek {target}");
        }
    }

    #[test]
    fn seek_counts_skipped_blocks_and_decoded_bytes() {
        let input: Vec<(DeweyId, u32)> =
            (1..=64u32).map(|i| (DeweyId::from_components(vec![1, i]), i)).collect();
        let list = BlockList::encode_with_block_size(&input, 4);
        let counters = ScanCounters::default();
        let mut cur = list.cursor(Some(&counters));
        cur.seek_raw(&"1.50".parse().unwrap());
        let (id, _) = cur.next_raw().unwrap();
        assert_eq!(id.to_string(), "1.50");
        use std::sync::atomic::Ordering;
        // Skips are published at seek time; consumption tallies are
        // batched and flushed when the cursor drops (or at the next
        // block decode), so read them after the drop.
        assert!(counters.blocks_skipped.load(Ordering::Relaxed) >= 10);
        drop(cur);
        assert!(counters.bytes_decoded.load(Ordering::Relaxed) > 0);
        // Only the landing block's prefix was consumed, not 50 entries.
        assert!(counters.entries.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn count_range_matches_naive() {
        let input = entries(&["1.1", "1.1.2", "1.2", "1.9", "1.10", "1.10.1", "1.11", "2.1"]);
        let list = BlockList::encode_with_block_size(&input, 3);
        let cases = [("1.1", "1.2"), ("1", "2"), ("1.10", "1.11"), ("1.2", "1.10"), ("3", "4")];
        for (lo, hi) in cases {
            let lo: DeweyId = lo.parse().unwrap();
            let hi: DeweyId = hi.parse().unwrap();
            let naive = input.iter().filter(|(id, _)| *id >= lo && *id < hi).count() as u64;
            assert_eq!(list.count_range(&lo, &hi), naive, "range {lo}..{hi}");
        }
    }

    #[test]
    fn compression_beats_materialized_on_dense_siblings() {
        let input: Vec<(DeweyId, u32)> =
            (1..=1000u32).map(|i| (DeweyId::from_components(vec![1, 7, i]), 1)).collect();
        let list = BlockList::encode(&input);
        assert!(
            list.compressed_bytes() * 2 < list.uncompressed_bytes(),
            "compressed {} vs uncompressed {}",
            list.compressed_bytes(),
            list.uncompressed_bytes()
        );
    }

    #[test]
    fn tiny_lists_carry_no_directory_overhead() {
        // One-entry rows (the common path-index case) must cost fewer
        // bytes compressed than materialized.
        let one = BlockList::encode(&[(("1.2.3.4").parse().unwrap(), 42)]);
        assert!(one.blocks.is_empty(), "single-block list stores no directory");
        assert!(
            one.compressed_bytes() < one.uncompressed_bytes(),
            "compressed {} vs uncompressed {}",
            one.compressed_bytes(),
            one.uncompressed_bytes()
        );
        // Seek still works without a directory.
        let mut cur = one.cursor(None);
        cur.seek_raw(&"1.2".parse().unwrap());
        assert_eq!(cur.next_raw().unwrap().0.to_string(), "1.2.3.4");
        let mut cur = one.cursor(None);
        cur.seek_raw(&"1.3".parse().unwrap());
        assert!(cur.next_raw().is_none());
    }

    #[test]
    fn validate_accepts_encodings_and_rejects_tampering() {
        let input = entries(&["1.1", "1.2", "1.9", "1.10", "1.10.1", "2.3"]);
        for bs in [2, 64] {
            let list = BlockList::encode_with_block_size(&input, bs);
            assert!(list.validate(), "block size {bs}");
        }
        let tamper = |list: &BlockList, f: &dyn Fn(&mut Vec<u8>)| -> BlockList {
            let mut bad = list.clone();
            let mut data = bad.data.to_vec();
            f(&mut data);
            bad.data = Bytes::Owned(data);
            bad
        };
        // Inflated entry count: decodes fine but len disagrees.
        let mut bad = BlockList::encode(&input);
        bad.len += 1;
        assert!(!bad.validate(), "inflated len must fail");
        // Truncated data buffer.
        let list = BlockList::encode(&input);
        let bad = tamper(&list, &|d| {
            d.pop();
        });
        assert!(!bad.validate(), "truncated data must fail");
        // A never-terminating varint (all continuation bits).
        let bad = tamper(&list, &|d| {
            for b in d.iter_mut() {
                *b |= 0x80;
            }
        });
        assert!(!bad.validate(), "unterminated varints must fail");
        // Directory max no longer matches the data.
        let mut bad = BlockList::encode_with_block_size(&input, 2);
        bad.blocks[0].max = "9.9".parse().unwrap();
        assert!(!bad.validate(), "stale directory max must fail");
    }

    #[test]
    fn corrupt_buffers_end_cursors_without_panicking() {
        // Cursors may be pointed at unvalidated mapped bytes: every kind
        // of garbage must end the stream cleanly, never panic or abort.
        let input = entries(&["1.1", "1.2", "1.9", "1.10", "1.10.1", "2.3"]);
        let list = BlockList::encode_with_block_size(&input, 2);
        type Corruption = Box<dyn Fn(&mut Vec<u8>)>;
        let corruptions: Vec<Corruption> = vec![
            Box::new(|d| d.truncate(1)),
            Box::new(|d| d.clear()),
            Box::new(|d| {
                for b in d.iter_mut() {
                    *b |= 0x80;
                }
            }),
            // Absurd first-entry component count.
            Box::new(|d| d[0] = 0x7f),
            // Absurd lcp for a delta entry.
            Box::new(|d| {
                let mid = d.len() / 2;
                d[mid] = 0x7f;
            }),
        ];
        for (ci, f) in corruptions.iter().enumerate() {
            let mut bad = list.clone();
            let mut data = bad.data.to_vec();
            f(&mut data);
            bad.data = Bytes::Owned(data);
            // Full scan terminates.
            let mut cur = bad.cursor(None);
            let mut n = 0;
            while cur.next_raw().is_some() {
                n += 1;
                assert!(n <= input.len(), "corruption {ci} yielded extra entries");
            }
            // Seeks and range probes terminate too.
            let mut cur = bad.cursor(None);
            cur.seek_raw(&"1.10".parse().unwrap());
            let _ = cur.next_raw();
            let lo: DeweyId = "1".parse().unwrap();
            let hi: DeweyId = "3".parse().unwrap();
            let _ = bad.range_payload_estimate(&lo, &hi, None);
            let _ = bad.range_interior_payload_sum(&lo, &hi, None);
            let _ = bad.count_range(&lo, &hi);
            assert!(!bad.validate(), "corruption {ci} must fail validation");
        }
    }

    #[test]
    fn batched_scratch_decode_matches_streaming() {
        let input: Vec<(DeweyId, u32)> =
            (1..=100u32).map(|i| (DeweyId::from_components(vec![1, i, i % 3]), i * 2)).collect();
        for bs in [1, 4, 32, 128] {
            let list = BlockList::encode_with_block_size(&input, bs);
            let mut scratch = DecodeScratch::default();
            let mut all: Vec<(DeweyId, u32)> = Vec::new();
            for b in 0..list.block_count() {
                assert!(list.decode_block(b, &mut scratch), "bs {bs} block {b}");
                for i in 0..scratch.len() {
                    let (comps, p) = scratch.entry(i);
                    all.push((DeweyId::from_components(comps.to_vec()), p));
                }
            }
            assert_eq!(all, list.decode_all(), "bs {bs}");
            assert_eq!(all, input, "bs {bs}");
        }
    }

    #[test]
    fn payload_maxima_are_tracked_per_block_and_per_list() {
        let input: Vec<(DeweyId, u32)> =
            (1..=10u32).map(|i| (DeweyId::from_components(vec![1, i]), i * 3)).collect();
        let list = BlockList::encode_with_block_size(&input, 4);
        assert_eq!(list.max_payload(), 30);
        assert_eq!(list.blocks.iter().map(|b| b.max_payload).collect::<Vec<_>>(), vec![12, 24, 30]);
        // Single-block lists still carry the list-level max.
        let one = BlockList::encode(&input[..2]);
        assert!(one.blocks.is_empty());
        assert_eq!(one.max_payload(), 6);
        assert_eq!(BlockList::encode(&[]).max_payload(), 0);
    }

    #[test]
    fn range_payload_bound_dominates_the_exact_sum() {
        let input: Vec<(DeweyId, u32)> =
            (1..=64u32).map(|i| (DeweyId::from_components(vec![1, i, 1]), i % 7 + 1)).collect();
        for bs in [1, 3, 8, 64] {
            let list = BlockList::encode_with_block_size(&input, bs);
            for (lo, hi) in [("1.1", "1.9"), ("1", "2"), ("1.40", "1.41"), ("1.70", "1.80")] {
                let lo: DeweyId = lo.parse().unwrap();
                let hi: DeweyId = hi.parse().unwrap();
                let exact: u64 = input
                    .iter()
                    .filter(|(id, _)| *id >= lo && *id < hi)
                    .map(|(_, p)| *p as u64)
                    .sum();
                let b = list.range_payload_bound(&lo, &hi);
                assert!(b.bound >= exact, "bs {bs} range {lo}..{hi}: {} < {exact}", b.bound);
                if exact > 0 {
                    assert!(b.blocks > 0, "a non-empty range must touch blocks");
                }
            }
            // Empty / inverted ranges bound to zero.
            let z = list.range_payload_bound(&"2".parse().unwrap(), &"1".parse().unwrap());
            assert_eq!(z, PayloadBound::default());
        }
        // A range past the end of a multi-block list touches nothing.
        let list = BlockList::encode_with_block_size(&input, 4);
        let past = list.range_payload_bound(&"9".parse().unwrap(), &"10".parse().unwrap());
        assert_eq!(past, PayloadBound::default());
    }

    #[test]
    fn range_payload_bound_skips_interior_directory_walks() {
        // A mid-list point range must touch O(1) candidate blocks, not
        // the whole directory.
        let input: Vec<(DeweyId, u32)> =
            (1..=256u32).map(|i| (DeweyId::from_components(vec![1, i]), 2)).collect();
        let list = BlockList::encode_with_block_size(&input, 4);
        let b = list.range_payload_bound(&"1.100".parse().unwrap(), &"1.101".parse().unwrap());
        assert!(b.blocks <= 2, "point range touched {} blocks", b.blocks);
        assert!(b.bound <= 2 * 4 * 2, "bound {} too loose", b.bound);
    }

    #[test]
    fn range_payload_estimate_is_boundary_exact() {
        let input: Vec<(DeweyId, u32)> =
            (1..=96u32).map(|i| (DeweyId::from_components(vec![1, i]), i % 5 + 1)).collect();
        for bs in [1, 4, 16, 128] {
            let list = BlockList::encode_with_block_size(&input, bs);
            for (lo, hi) in
                [("1.1", "1.97"), ("1.10", "1.12"), ("1.3", "1.90"), ("1", "2"), ("2", "3")]
            {
                let lo: DeweyId = lo.parse().unwrap();
                let hi: DeweyId = hi.parse().unwrap();
                let exact: u64 = input
                    .iter()
                    .filter(|(id, _)| *id >= lo && *id < hi)
                    .map(|(_, p)| *p as u64)
                    .sum();
                let est = list.range_payload_estimate(&lo, &hi, None);
                assert!(est.bound >= exact, "bs {bs} {lo}..{hi}: {} < {exact}", est.bound);
                assert_eq!(est.contains, exact > 0, "bs {bs} {lo}..{hi} contains");
                if est.skipped_blocks == 0 {
                    assert_eq!(est.bound, exact, "bs {bs} {lo}..{hi}: boundary-only is exact");
                }
                // Completing the estimate with the interior sum is
                // always exact, never re-decoding a boundary.
                assert_eq!(
                    est.boundary_sum + list.range_interior_payload_sum(&lo, &hi, None),
                    exact,
                    "bs {bs} {lo}..{hi}: boundary + interior must be exact"
                );
                // The scratch-reusing variants answer identically.
                let mut scratch = DecodeScratch::default();
                assert_eq!(
                    list.range_payload_estimate_with(&lo, &hi, None, &mut scratch),
                    est,
                    "bs {bs} {lo}..{hi}: _with variant"
                );
            }
            // Tighter than (or equal to) the directory-only bound.
            let lo: DeweyId = "1.3".parse().unwrap();
            let hi: DeweyId = "1.90".parse().unwrap();
            assert!(
                list.range_payload_estimate(&lo, &hi, None).bound
                    <= list.range_payload_bound(&lo, &hi).bound
            );
        }
        // A wide range over small blocks must actually skip interiors.
        let list = BlockList::encode_with_block_size(&input, 4);
        let est =
            list.range_payload_estimate(&"1.1".parse().unwrap(), &"1.97".parse().unwrap(), None);
        assert!(est.skipped_blocks >= 20, "interiors skipped: {}", est.skipped_blocks);
    }

    #[test]
    fn validate_rejects_tampered_payload_bounds() {
        let input = entries(&["1.1", "1.2", "1.9", "1.10", "1.10.1", "2.3"]);
        let mut bad = BlockList::encode_with_block_size(&input, 2);
        bad.blocks[1].max_payload += 1;
        assert!(!bad.validate(), "stale block max payload must fail");
        let mut bad = BlockList::encode_with_block_size(&input, 2);
        bad.max_payload = 0;
        assert!(!bad.validate(), "stale list max payload must fail");
        // restore_bounds repairs exactly that.
        assert!(bad.restore_bounds());
        assert!(bad.validate());
    }

    #[test]
    fn empty_list_cursor_is_exhausted() {
        let list = BlockList::encode(&[]);
        assert!(list.is_empty());
        let mut cur = list.cursor(None);
        assert!(cur.next_raw().is_none());
        cur.seek_raw(&"1".parse().unwrap());
        assert!(cur.next_raw().is_none());
        assert_eq!(list.count_range(&"1".parse().unwrap(), &"2".parse().unwrap()), 0);
    }

    #[test]
    fn mapped_and_owned_lists_decode_identically() {
        use crate::mapped::MappedFile;
        use std::sync::Arc;
        let input: Vec<(DeweyId, u32)> =
            (1..=48u32).map(|i| (DeweyId::from_components(vec![1, i]), i)).collect();
        let owned = BlockList::encode_with_block_size(&input, 4);
        // Write the raw data buffer to a file and rebuild the list over
        // a shared mapping of it.
        let path = std::env::temp_dir().join(format!("vxv-postings-mapped-{}", std::process::id()));
        std::fs::write(&path, &owned.data[..]).unwrap();
        let map = Arc::new(MappedFile::open(&path).unwrap());
        let mapped = BlockList {
            data: Bytes::shared(map, 0, owned.data.len()).unwrap(),
            blocks: owned.blocks.clone(),
            len: owned.len,
            uncompressed: owned.uncompressed,
            max_payload: owned.max_payload,
        };
        std::fs::remove_file(&path).unwrap();
        assert_eq!(mapped, owned, "content equality across backings");
        assert_eq!(mapped.decode_all(), owned.decode_all());
        assert_eq!(mapped.owned_data_bytes(), 0);
        assert!(owned.owned_data_bytes() > 0);
        // Counter-for-counter identical consumption.
        let (a, b) = (ScanCounters::default(), ScanCounters::default());
        let mut ca = owned.cursor(Some(&a));
        let mut cb = mapped.cursor(Some(&b));
        let t: DeweyId = "1.30".parse().unwrap();
        ca.seek_raw(&t);
        cb.seek_raw(&t);
        assert_eq!(ca.next_raw(), cb.next_raw());
        use std::sync::atomic::Ordering;
        assert_eq!(a.entries.load(Ordering::Relaxed), b.entries.load(Ordering::Relaxed));
        assert_eq!(
            a.blocks_skipped.load(Ordering::Relaxed),
            b.blocks_skipped.load(Ordering::Relaxed)
        );
        assert_eq!(
            a.bytes_decoded.load(Ordering::Relaxed),
            b.bytes_decoded.load(Ordering::Relaxed)
        );
    }
}
