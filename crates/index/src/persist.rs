//! On-disk persistence for the index layer.
//!
//! An [`IndexBundle`] packages everything a cold engine needs to answer
//! searches without re-tokenizing or re-walking base documents: one or
//! more [`IndexSegment`]s, each an immutable (path index, inverted
//! index, document catalog) triple. [`IndexBundle::save`] writes a
//! single `indices.vxi` file next to the document storage;
//! [`IndexBundle::load`] reads it back, reconstructing the compressed
//! lists byte-for-byte — the in-memory block format *is* the disk
//! format, so loading copies buffers without re-encoding.
//!
//! ## File format (`indices.vxi`, little-endian)
//!
//! Version 3 (written by [`IndexBundle::save`]) is the segmented v2
//! layout plus a **payload-bounds section per block list** — the
//! block-max metadata ([`BlockList::max_payload`] and the per-block
//! maxima) that top-k pruning consults, persisted so a cold open never
//! decodes a list just to recover its bounds:
//!
//! ```text
//! magic  "VXVIDX03"
//! u32    segment count
//! per segment:
//!   u32  generation (merge depth)
//!   segment body (v1 body below, with the v3 blocklist)
//! ```
//!
//! Version 2 files (magic `VXVIDX02`, same shape, no bounds section)
//! and version 1 files — the pre-segmentation format, exactly one
//! segment body after the magic — both still load; their payload
//! bounds are recomputed from the data during the load-time validation
//! decode. Tiny checked-in v1 and v2 fixtures pin both compatibility
//! paths in CI. The shared body is:
//!
//! ```text
//! magic  "VXVIDX01"          (v1 only; v2/v3 bodies have no magic)
//! u32    doc count           { str name, str root_tag, u32 ordinal }*
//! u32    keyword count       { str token, blocklist }*
//! u32    path count          { str path }*
//! per path: u32 row count    { u8 has_value, [str value], blocklist }*
//!
//! blocklist := u64 entry_count, u64 uncompressed_bytes,
//!              u64 data_len, data bytes,
//!              u32 block count { u32 offset, u32 count, dewey max }*
//!              (block count is 0 for single-block lists: the data is
//!              one implicit block of entry_count entries)
//!              v3 only: u32 list max payload,
//!                       u32 max payload per directory block
//! dewey     := u32 component count, u32* components
//! str       := u32 byte length, utf-8 bytes
//! ```
//!
//! Every read in the loader is bounds-checked through a typed
//! [`PersistError`] path: a truncated or corrupt bundle can never panic
//! at load time, and persisted payload bounds that disagree with the
//! data are rejected as corruption (a stale bound could silently prune
//! qualifying hits).

use crate::inverted::InvertedIndex;
use crate::path_index::PathIndex;
use crate::postings::{BlockList, BlockMeta};
use crate::segment::IndexSegment;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vxv_xml::{Corpus, DeweyId};

const MAGIC_V1: &[u8; 8] = b"VXVIDX01";
const MAGIC_V2: &[u8; 8] = b"VXVIDX02";
const MAGIC_V3: &[u8; 8] = b"VXVIDX03";

/// Whether a block list being read carries the v3 payload-bounds
/// section, or predates it (bounds recomputed from the data).
#[derive(Clone, Copy, PartialEq, Eq)]
enum BoundsFormat {
    Stored,
    Recompute,
}

/// The file name [`IndexBundle::save`] writes inside the store directory.
pub const INDEX_FILE: &str = "indices.vxi";

/// Catalog metadata for one indexed document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DocInfo {
    /// The document's name (the `fn:doc(...)` key).
    pub name: String,
    /// Tag of the document's root element.
    pub root_tag: String,
    /// The document's Dewey root ordinal.
    pub root_ordinal: u32,
}

/// The persisted index state: one or more [`IndexSegment`]s — everything
/// a cold engine opens from disk.
#[derive(Debug)]
pub struct IndexBundle {
    /// The segments, in on-disk order.
    pub segments: Vec<IndexSegment>,
}

impl IndexBundle {
    /// Build a single-segment bundle over an in-memory corpus.
    pub fn build(corpus: &Corpus) -> IndexBundle {
        IndexBundle { segments: vec![IndexSegment::build(corpus)] }
    }

    /// Wrap pre-built segments.
    pub fn from_segments(segments: Vec<IndexSegment>) -> IndexBundle {
        IndexBundle { segments }
    }

    /// Wrap pre-built parts as a single generation-0 segment.
    pub fn from_parts(
        path_index: PathIndex,
        inverted: InvertedIndex,
        docs: Vec<DocInfo>,
    ) -> IndexBundle {
        IndexBundle { segments: vec![IndexSegment::from_parts(path_index, inverted, docs, 0)] }
    }

    /// Catalog metadata across every segment, in segment order.
    pub fn docs(&self) -> impl Iterator<Item = &DocInfo> {
        self.segments.iter().flat_map(|s| s.docs().iter())
    }

    /// The largest Dewey root ordinal across all segments (`None` for an
    /// empty bundle) — new segments are namespaced above it.
    pub fn max_root_ordinal(&self) -> Option<u32> {
        self.segments.iter().filter_map(|s| s.max_root_ordinal()).max()
    }

    /// Split the bundle into `Arc`-shared segments — the form a
    /// long-lived service owns, where one loaded segment set backs any
    /// number of engines, catalogs and prepared views concurrently.
    pub fn into_segments(self) -> Vec<Arc<IndexSegment>> {
        self.segments.into_iter().map(Arc::new).collect()
    }

    /// Serialize into `dir/indices.vxi` (directory created if needed) in
    /// the v3 segmented format (block-max payload bounds included).
    /// Returns the written path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        let mut out: Vec<u8> = Vec::new();
        out.extend_from_slice(MAGIC_V3);
        write_u32(&mut out, self.segments.len() as u32);
        for seg in &self.segments {
            write_u32(&mut out, seg.generation());
            write_segment_body(&mut out, seg);
        }
        std::fs::create_dir_all(dir)?;
        let path = dir.join(INDEX_FILE);
        std::fs::write(&path, &out)?;
        Ok(path)
    }

    /// Load a bundle from `dir`, accepting the v3 segmented format, v2
    /// segmented files (payload bounds recomputed on load), and v1
    /// single-index files (loaded as one generation-0 segment, bounds
    /// recomputed likewise).
    pub fn load(dir: &Path) -> Result<IndexBundle, PersistError> {
        let path = dir.join(INDEX_FILE);
        let buf = std::fs::read(&path).map_err(PersistError::Io)?;
        let mut r = Reader { buf: &buf, pos: 0 };
        let magic = r.take(MAGIC_V3.len())?;
        let segments = if magic == MAGIC_V3.as_slice() || magic == MAGIC_V2.as_slice() {
            let bounds = if magic == MAGIC_V3.as_slice() {
                BoundsFormat::Stored
            } else {
                BoundsFormat::Recompute
            };
            let seg_count = r.u32()?;
            let mut segments = Vec::with_capacity(r.capacity_for(seg_count));
            for _ in 0..seg_count {
                let generation = r.u32()?;
                segments.push(read_segment_body(&mut r, generation, bounds)?);
            }
            segments
        } else if magic == MAGIC_V1.as_slice() {
            vec![read_segment_body(&mut r, 0, BoundsFormat::Recompute)?]
        } else {
            return Err(PersistError::bad("magic mismatch"));
        };
        if r.pos != buf.len() {
            return Err(PersistError::bad("trailing bytes"));
        }
        Ok(IndexBundle { segments })
    }
}

fn write_segment_body(out: &mut Vec<u8>, seg: &IndexSegment) {
    write_u32(out, seg.docs().len() as u32);
    for d in seg.docs() {
        write_str(out, &d.name);
        write_str(out, &d.root_tag);
        write_u32(out, d.root_ordinal);
    }
    let lists = seg.inverted().lists();
    let mut tokens: Vec<&String> = lists.keys().collect();
    tokens.sort();
    write_u32(out, tokens.len() as u32);
    for t in tokens {
        write_str(out, t);
        write_blocklist(out, &lists[t]);
    }
    let path_index = seg.path_index();
    let paths: Vec<&str> = path_index.paths().collect();
    write_u32(out, paths.len() as u32);
    for p in &paths {
        write_str(out, p);
    }
    for pid in 0..paths.len() as u32 {
        let rows: Vec<_> = path_index.rows_of(pid).collect();
        write_u32(out, rows.len() as u32);
        for (value, list) in rows {
            match value {
                Some(v) => {
                    out.push(1);
                    write_str(out, v);
                }
                None => out.push(0),
            }
            write_blocklist(out, list);
        }
    }
}

fn read_segment_body(
    r: &mut Reader<'_>,
    generation: u32,
    bounds: BoundsFormat,
) -> Result<IndexSegment, PersistError> {
    let doc_count = r.u32()?;
    let mut docs = Vec::with_capacity(r.capacity_for(doc_count));
    for _ in 0..doc_count {
        docs.push(DocInfo { name: r.string()?, root_tag: r.string()?, root_ordinal: r.u32()? });
    }
    let kw_count = r.u32()?;
    let mut lists = HashMap::with_capacity(r.capacity_for(kw_count));
    for _ in 0..kw_count {
        let token = r.string()?;
        lists.insert(token, r.blocklist(bounds)?);
    }
    let path_count = r.u32()?;
    let mut paths = Vec::with_capacity(r.capacity_for(path_count));
    for _ in 0..path_count {
        paths.push(r.string()?);
    }
    let mut tables = Vec::with_capacity(r.capacity_for(path_count));
    for _ in 0..path_count {
        let row_count = r.u32()?;
        let mut rows = Vec::with_capacity(r.capacity_for(row_count));
        for _ in 0..row_count {
            let value = if r.u8()? == 1 { Some(r.string()?) } else { None };
            rows.push((value, r.blocklist(bounds)?));
        }
        tables.push(rows);
    }
    Ok(IndexSegment::from_parts(
        PathIndex::from_parts(paths, tables),
        InvertedIndex::from_lists(lists),
        docs,
        generation,
    ))
}

/// Errors while loading a persisted index bundle.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// The file is truncated or structurally invalid.
    Corrupt(String),
}

impl PersistError {
    fn bad(what: &str) -> Self {
        PersistError::Corrupt(what.to_string())
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index persistence I/O error: {e}"),
            PersistError::Corrupt(w) => write!(f, "corrupt index file: {w}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn write_dewey(out: &mut Vec<u8>, d: &DeweyId) {
    write_u32(out, d.len() as u32);
    for c in d.components() {
        write_u32(out, *c);
    }
}

fn write_blocklist(out: &mut Vec<u8>, list: &BlockList) {
    write_u64(out, list.len);
    write_u64(out, list.uncompressed);
    write_u64(out, list.data.len() as u64);
    out.extend_from_slice(&list.data);
    write_u32(out, list.blocks.len() as u32);
    for b in &list.blocks {
        write_u32(out, b.offset);
        write_u32(out, b.count);
        write_dewey(out, &b.max);
    }
    // v3 bounds section: list-level max payload, then one max per
    // directory block (nothing extra for single-block lists).
    write_u32(out, list.max_payload);
    for b in &list.blocks {
        write_u32(out, b.max_payload);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A safe pre-allocation bound for a count field read from the file:
    /// every counted item consumes at least one byte, so the remaining
    /// buffer length caps how many can really follow. A corrupt count
    /// then fails on a truncated read instead of aborting the process
    /// inside the allocator.
    fn capacity_for(&self, count: u32) -> usize {
        (count as usize).min(self.buf.len() - self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        // Checked: a corrupt u64 length cast to usize can make `pos + n`
        // overflow, which must surface as the typed error, not a panic.
        if self.pos.checked_add(n).is_none_or(|end| end > self.buf.len()) {
            return Err(PersistError::bad("truncated file"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        let bytes: [u8; 4] =
            self.take(4)?.try_into().map_err(|_| PersistError::bad("short u32 read"))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let bytes: [u8; 8] =
            self.take(8)?.try_into().map_err(|_| PersistError::bad("short u64 read"))?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::bad("non-utf8 string"))
    }

    fn dewey(&mut self) -> Result<DeweyId, PersistError> {
        let n = self.u32()?;
        let mut comps = Vec::with_capacity(self.capacity_for(n));
        for _ in 0..n {
            comps.push(self.u32()?);
        }
        Ok(DeweyId::from_components(comps))
    }

    fn blocklist(&mut self, bounds: BoundsFormat) -> Result<BlockList, PersistError> {
        let len = self.u64()?;
        let uncompressed = self.u64()?;
        let data_len = self.u64()? as usize;
        let data = self.take(data_len)?.to_vec();
        let block_count = self.u32()?;
        let mut blocks = Vec::with_capacity(self.capacity_for(block_count));
        let mut decoded = 0u64;
        for _ in 0..block_count {
            let offset = self.u32()?;
            let count = self.u32()?;
            if offset as usize > data.len() {
                return Err(PersistError::bad("block directory out of bounds"));
            }
            decoded += count as u64;
            blocks.push(BlockMeta { offset, count, max: self.dewey()?, max_payload: 0 });
        }
        if block_count > 0 && decoded != len {
            return Err(PersistError::bad("directory entry count mismatch"));
        }
        let mut list = BlockList { data, blocks, len, uncompressed, max_payload: 0 };
        match bounds {
            BoundsFormat::Stored => {
                // v3: read the persisted bounds, then run the full
                // bounds-checked decode, which also verifies the stored
                // maxima against the data — a stale bound is corruption
                // (it could silently prune qualifying hits).
                list.max_payload = self.u32()?;
                for b in &mut list.blocks {
                    b.max_payload = self.u32()?;
                }
                if !list.validate() {
                    return Err(PersistError::bad("blocklist fails validation"));
                }
            }
            BoundsFormat::Recompute => {
                // v1/v2: no bounds on disk; the same validation decode
                // computes them.
                if !list.restore_bounds() {
                    return Err(PersistError::bad("blocklist fails validation"));
                }
            }
        }
        Ok(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_postings;
    use crate::footprint::IndexFootprint;
    use crate::pattern::PathPattern;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vxv-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books><book><isbn>111</isbn><title>XML search</title><year>1996</year></book>\
             <book><isbn>222</isbn><title>AI</title></book></books>",
        )
        .unwrap();
        c.add_parsed("reviews.xml", "<reviews><review><isbn>111</isbn></review></reviews>")
            .unwrap();
        c
    }

    fn assert_segments_equal(a: &IndexSegment, b: &IndexSegment) {
        assert_eq!(a.docs(), b.docs());
        assert_eq!(a.generation(), b.generation());
        let mut kws: Vec<String> = a.inverted().keywords().map(|s| s.to_string()).collect();
        kws.sort();
        let mut other: Vec<String> = b.inverted().keywords().map(|s| s.to_string()).collect();
        other.sort();
        assert_eq!(kws, other);
        for k in &kws {
            assert_eq!(
                collect_postings(a.inverted().postings(k)),
                collect_postings(b.inverted().postings(k)),
                "keyword {k}"
            );
        }
        assert_eq!(a.footprint(), b.footprint());
    }

    #[test]
    fn bundle_round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        let c = corpus();
        let bundle = IndexBundle::build(&c);
        bundle.save(&dir).unwrap();
        let loaded = IndexBundle::load(&dir).unwrap();

        assert_eq!(loaded.segments.len(), 1);
        assert_segments_equal(&loaded.segments[0], &bundle.segments[0]);
        assert_eq!(loaded.segments[0].docs()[0].root_tag, "books");

        // Path probes identical.
        let pat = PathPattern::parse("/books//book/isbn").unwrap();
        assert_eq!(
            bundle.segments[0].path_index().lookup(&pat, &[]),
            loaded.segments[0].path_index().lookup(&pat, &[])
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_segment_bundles_round_trip_with_generations() {
        let dir = tmpdir("multiseg");
        let c1 = corpus();
        let mut c2 = Corpus::new();
        c2.add(vxv_xml::parse_document("extra.xml", "<extra><e>late doc</e></extra>", 9).unwrap());
        let merged = IndexSegment::merge([&IndexSegment::build(&c1)]);
        let bundle = IndexBundle::from_segments(vec![merged, IndexSegment::build(&c2)]);
        bundle.save(&dir).unwrap();
        let loaded = IndexBundle::load(&dir).unwrap();
        assert_eq!(loaded.segments.len(), 2);
        assert_eq!(loaded.segments[0].generation(), 1);
        assert_eq!(loaded.segments[1].generation(), 0);
        assert_eq!(loaded.max_root_ordinal(), Some(9));
        for (a, b) in loaded.segments.iter().zip(&bundle.segments) {
            assert_segments_equal(a, b);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_files_fail_cleanly() {
        let dir = tmpdir("truncated");
        let c = corpus();
        let path = IndexBundle::build(&c).save(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Every truncation point must produce a typed error, never a
        // panic (the Reader is fully bounds-checked).
        for cut in [8, 9, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))),
                "cut at {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absurd_count_fields_fail_typed_instead_of_aborting() {
        // A 13-byte file claiming u32::MAX segments (or docs) must hit
        // the typed truncation path, not a ~200 GB pre-allocation.
        let dir = tmpdir("hugecount");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(INDEX_FILE);
        for magic in [MAGIC_V2.as_slice(), MAGIC_V1.as_slice()] {
            let mut bytes = magic.to_vec();
            bytes.extend_from_slice(&u32::MAX.to_le_bytes());
            bytes.push(0);
            std::fs::write(&path, &bytes).unwrap();
            assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))));
        }
        // A near-usize::MAX blocklist data_len must not overflow the
        // reader's bounds arithmetic either: one valid doc-count/kw-count
        // prefix, then a keyword whose list claims u64::MAX bytes.
        let mut bytes = MAGIC_V1.to_vec();
        bytes.extend_from_slice(&0u32.to_le_bytes()); // 0 docs
        bytes.extend_from_slice(&1u32.to_le_bytes()); // 1 keyword
        bytes.extend_from_slice(&1u32.to_le_bytes()); // token len 1
        bytes.push(b'x');
        bytes.extend_from_slice(&1u64.to_le_bytes()); // entry count
        bytes.extend_from_slice(&8u64.to_le_bytes()); // uncompressed
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd data_len
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_writes_v3_and_round_trips_payload_bounds() {
        let dir = tmpdir("v3bounds");
        // Enough repeated tokens to force multi-block posting lists.
        let mut c = Corpus::new();
        let mut xml = String::from("<r>");
        for i in 0..80 {
            xml.push_str(&format!("<e><t>target target word{i}</t></e>"));
        }
        xml.push_str("</r>");
        c.add_parsed("d.xml", &xml).unwrap();
        let bundle = IndexBundle::build(&c);
        let path = bundle.save(&dir).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..8], MAGIC_V3);
        let loaded = IndexBundle::load(&dir).unwrap();
        let (a, b) = (bundle.segments[0].inverted(), loaded.segments[0].inverted());
        for kw in ["target", "word3"] {
            assert_eq!(a.max_tf(kw), b.max_tf(kw), "list max for {kw}");
            let root: DeweyId = "1.5".parse().unwrap();
            assert_eq!(
                a.subtree_tf_bound(kw, &root),
                b.subtree_tf_bound(kw, &root),
                "range bound for {kw}"
            );
        }
        assert!(b.max_tf("target") >= 2, "multi-occurrence tf survives the round trip");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_persisted_bounds_are_rejected_as_corruption() {
        let dir = tmpdir("stalebounds");
        let c = corpus();
        let path = IndexBundle::build(&c).save(&dir).unwrap();
        let good = std::fs::read(&path).unwrap();
        assert!(IndexBundle::load(&dir).is_ok());
        // The file's final field is the last blocklist's bounds section;
        // flipping any byte of that u32 desynchronizes the stored bound
        // from the data, which the load-time validation decode must
        // reject (a stale bound could silently prune qualifying hits).
        for back in 1..=4 {
            let mut bad = good.clone();
            let i = bad.len() - back;
            bad[i] = bad[i].wrapping_add(1);
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))),
                "tampered bound byte {back} from the end must be rejected"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_inside_the_bounds_section_fails_typed() {
        let dir = tmpdir("truncbounds");
        let c = corpus();
        let path = IndexBundle::build(&c).save(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Sweep every cut in the file's tail, which interleaves final
        // blocklists with their v3 bounds sections.
        for cut in (bytes.len().saturating_sub(64))..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))),
                "cut at {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
