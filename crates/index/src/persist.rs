//! On-disk persistence for the index layer.
//!
//! An [`IndexBundle`] packages everything a cold engine needs to answer
//! searches without re-tokenizing or re-walking base documents: the
//! block-compressed [`PathIndex`] and [`InvertedIndex`], plus a small
//! document catalog (name, root tag, root ordinal — schema-level
//! metadata the prepare phase consults). [`IndexBundle::save`] writes a
//! single `indices.vxi` file next to the document storage;
//! [`IndexBundle::load`] reads it back, reconstructing the compressed
//! lists byte-for-byte — the in-memory block format *is* the disk
//! format, so loading copies buffers without re-encoding.
//!
//! ## File format (`indices.vxi`, little-endian)
//!
//! ```text
//! magic  "VXVIDX01"
//! u32    doc count          { str name, str root_tag, u32 ordinal }*
//! u32    keyword count      { str token, blocklist }*
//! u32    path count         { str path }*
//! per path: u32 row count   { u8 has_value, [str value], blocklist }*
//!
//! blocklist := u64 entry_count, u64 uncompressed_bytes,
//!              u64 data_len, data bytes,
//!              u32 block count { u32 offset, u32 count, dewey max }*
//!              (block count is 0 for single-block lists: the data is
//!              one implicit block of entry_count entries)
//! dewey     := u32 component count, u32* components
//! str       := u32 byte length, utf-8 bytes
//! ```

use crate::inverted::InvertedIndex;
use crate::path_index::PathIndex;
use crate::postings::{BlockList, BlockMeta};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use vxv_xml::{Corpus, DeweyId};

const MAGIC: &[u8; 8] = b"VXVIDX01";

/// The file name [`IndexBundle::save`] writes inside the store directory.
pub const INDEX_FILE: &str = "indices.vxi";

/// Catalog metadata for one indexed document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DocInfo {
    /// The document's name (the `fn:doc(...)` key).
    pub name: String,
    /// Tag of the document's root element.
    pub root_tag: String,
    /// The document's Dewey root ordinal.
    pub root_ordinal: u32,
}

/// Both indices plus the document catalog — everything a cold engine
/// opens from disk.
#[derive(Debug)]
pub struct IndexBundle {
    /// The (Path, Value) index.
    pub path_index: PathIndex,
    /// The keyword inverted index.
    pub inverted: InvertedIndex,
    /// Per-document catalog metadata, in corpus order.
    pub docs: Vec<DocInfo>,
}

impl IndexBundle {
    /// Build both indices and the catalog from an in-memory corpus.
    pub fn build(corpus: &Corpus) -> IndexBundle {
        let docs = corpus
            .docs()
            .filter_map(|d| {
                let root = d.root()?;
                Some(DocInfo {
                    name: d.name().to_string(),
                    root_tag: d.node_tag(root).to_string(),
                    root_ordinal: d.node(root).dewey.components()[0],
                })
            })
            .collect();
        IndexBundle {
            path_index: PathIndex::build(corpus),
            inverted: InvertedIndex::build(corpus),
            docs,
        }
    }

    /// Wrap pre-built parts.
    pub fn from_parts(
        path_index: PathIndex,
        inverted: InvertedIndex,
        docs: Vec<DocInfo>,
    ) -> IndexBundle {
        IndexBundle { path_index, inverted, docs }
    }

    /// Split the bundle into `Arc`-shared indices plus the catalog — the
    /// form a long-lived service owns, where one loaded index backs any
    /// number of engines, catalogs and prepared views concurrently.
    pub fn into_shared(
        self,
    ) -> (std::sync::Arc<PathIndex>, std::sync::Arc<InvertedIndex>, Vec<DocInfo>) {
        (std::sync::Arc::new(self.path_index), std::sync::Arc::new(self.inverted), self.docs)
    }

    /// Serialize into `dir/indices.vxi` (directory created if needed).
    /// Returns the written path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        let mut out: Vec<u8> = Vec::new();
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, self.docs.len() as u32);
        for d in &self.docs {
            write_str(&mut out, &d.name);
            write_str(&mut out, &d.root_tag);
            write_u32(&mut out, d.root_ordinal);
        }
        let lists = self.inverted.lists();
        let mut tokens: Vec<&String> = lists.keys().collect();
        tokens.sort();
        write_u32(&mut out, tokens.len() as u32);
        for t in tokens {
            write_str(&mut out, t);
            write_blocklist(&mut out, &lists[t]);
        }
        let paths: Vec<&str> = self.path_index.paths().collect();
        write_u32(&mut out, paths.len() as u32);
        for p in &paths {
            write_str(&mut out, p);
        }
        for pid in 0..paths.len() as u32 {
            let rows: Vec<_> = self.path_index.rows_of(pid).collect();
            write_u32(&mut out, rows.len() as u32);
            for (value, list) in rows {
                match value {
                    Some(v) => {
                        out.push(1);
                        write_str(&mut out, v);
                    }
                    None => out.push(0),
                }
                write_blocklist(&mut out, list);
            }
        }
        std::fs::create_dir_all(dir)?;
        let path = dir.join(INDEX_FILE);
        std::fs::write(&path, &out)?;
        Ok(path)
    }

    /// Load a bundle previously written by [`Self::save`] into `dir`.
    pub fn load(dir: &Path) -> Result<IndexBundle, PersistError> {
        let path = dir.join(INDEX_FILE);
        let buf = std::fs::read(&path).map_err(PersistError::Io)?;
        let mut r = Reader { buf: &buf, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC.as_slice() {
            return Err(PersistError::bad("magic mismatch"));
        }
        let doc_count = r.u32()?;
        let mut docs = Vec::with_capacity(doc_count as usize);
        for _ in 0..doc_count {
            docs.push(DocInfo { name: r.string()?, root_tag: r.string()?, root_ordinal: r.u32()? });
        }
        let kw_count = r.u32()?;
        let mut lists = HashMap::with_capacity(kw_count as usize);
        for _ in 0..kw_count {
            let token = r.string()?;
            lists.insert(token, r.blocklist()?);
        }
        let path_count = r.u32()?;
        let mut paths = Vec::with_capacity(path_count as usize);
        for _ in 0..path_count {
            paths.push(r.string()?);
        }
        let mut tables = Vec::with_capacity(path_count as usize);
        for _ in 0..path_count {
            let row_count = r.u32()?;
            let mut rows = Vec::with_capacity(row_count as usize);
            for _ in 0..row_count {
                let value = if r.u8()? == 1 { Some(r.string()?) } else { None };
                rows.push((value, r.blocklist()?));
            }
            tables.push(rows);
        }
        if r.pos != buf.len() {
            return Err(PersistError::bad("trailing bytes"));
        }
        Ok(IndexBundle {
            path_index: PathIndex::from_parts(paths, tables),
            inverted: InvertedIndex::from_lists(lists),
            docs,
        })
    }
}

/// Errors while loading a persisted index bundle.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// The file is truncated or structurally invalid.
    Corrupt(String),
}

impl PersistError {
    fn bad(what: &str) -> Self {
        PersistError::Corrupt(what.to_string())
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index persistence I/O error: {e}"),
            PersistError::Corrupt(w) => write!(f, "corrupt index file: {w}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn write_dewey(out: &mut Vec<u8>, d: &DeweyId) {
    write_u32(out, d.len() as u32);
    for c in d.components() {
        write_u32(out, *c);
    }
}

fn write_blocklist(out: &mut Vec<u8>, list: &BlockList) {
    write_u64(out, list.len);
    write_u64(out, list.uncompressed);
    write_u64(out, list.data.len() as u64);
    out.extend_from_slice(&list.data);
    write_u32(out, list.blocks.len() as u32);
    for b in &list.blocks {
        write_u32(out, b.offset);
        write_u32(out, b.count);
        write_dewey(out, &b.max);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.pos + n > self.buf.len() {
            return Err(PersistError::bad("truncated file"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::bad("non-utf8 string"))
    }

    fn dewey(&mut self) -> Result<DeweyId, PersistError> {
        let n = self.u32()? as usize;
        let mut comps = Vec::with_capacity(n);
        for _ in 0..n {
            comps.push(self.u32()?);
        }
        Ok(DeweyId::from_components(comps))
    }

    fn blocklist(&mut self) -> Result<BlockList, PersistError> {
        let len = self.u64()?;
        let uncompressed = self.u64()?;
        let data_len = self.u64()? as usize;
        let data = self.take(data_len)?.to_vec();
        let block_count = self.u32()?;
        let mut blocks = Vec::with_capacity(block_count as usize);
        let mut decoded = 0u64;
        for _ in 0..block_count {
            let offset = self.u32()?;
            let count = self.u32()?;
            if offset as usize > data.len() {
                return Err(PersistError::bad("block directory out of bounds"));
            }
            decoded += count as u64;
            blocks.push(BlockMeta { offset, count, max: self.dewey()? });
        }
        if block_count > 0 && decoded != len {
            return Err(PersistError::bad("directory entry count mismatch"));
        }
        let list = BlockList { data, blocks, len, uncompressed };
        // Full bounds-checked decode: a corrupt-but-parseable list must
        // fail here, not panic at query time.
        if !list.validate() {
            return Err(PersistError::bad("blocklist fails validation"));
        }
        Ok(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_postings;
    use crate::pattern::PathPattern;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vxv-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books><book><isbn>111</isbn><title>XML search</title><year>1996</year></book>\
             <book><isbn>222</isbn><title>AI</title></book></books>",
        )
        .unwrap();
        c.add_parsed("reviews.xml", "<reviews><review><isbn>111</isbn></review></reviews>")
            .unwrap();
        c
    }

    #[test]
    fn bundle_round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        let c = corpus();
        let bundle = IndexBundle::build(&c);
        bundle.save(&dir).unwrap();
        let loaded = IndexBundle::load(&dir).unwrap();

        assert_eq!(loaded.docs, bundle.docs);
        assert_eq!(loaded.docs[0].root_tag, "books");

        // Inverted lists identical, keyword by keyword.
        let mut kws: Vec<String> = bundle.inverted.keywords().map(|s| s.to_string()).collect();
        kws.sort();
        let mut loaded_kws: Vec<String> =
            loaded.inverted.keywords().map(|s| s.to_string()).collect();
        loaded_kws.sort();
        assert_eq!(kws, loaded_kws);
        for k in &kws {
            assert_eq!(
                collect_postings(bundle.inverted.postings(k)),
                collect_postings(loaded.inverted.postings(k)),
                "keyword {k}"
            );
        }

        // Path probes identical.
        let pat = PathPattern::parse("/books//book/isbn").unwrap();
        assert_eq!(bundle.path_index.lookup(&pat, &[]), loaded.path_index.lookup(&pat, &[]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_files_fail_cleanly() {
        let dir = tmpdir("truncated");
        let c = corpus();
        let path = IndexBundle::build(&c).save(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
