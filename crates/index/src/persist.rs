//! On-disk persistence for the index layer.
//!
//! An [`IndexBundle`] packages everything a cold engine needs to answer
//! searches without re-tokenizing or re-walking base documents: one or
//! more [`IndexSegment`]s, each an immutable (path index, inverted
//! index, document catalog) triple. [`IndexBundle::save`] writes a
//! single `indices.vxi` file next to the document storage; it is opened
//! two ways:
//!
//! * [`IndexBundle::load`] — read the file into memory; every list owns
//!   its bytes.
//! * [`IndexBundle::open_mmap`] — map the file once and hand every list
//!   a shared window into the mapping ([`crate::mapped`]); cursors
//!   decode straight out of the page cache, so opening a multi-gigabyte
//!   bundle costs O(header + metadata), and untouched posting blocks
//!   are never read at all. [`IndexBundle::open_stats`] reports the
//!   split (`bytes_decoded` at open is **zero** for v4/v5 files either
//!   way).
//!
//! Prefer `open_mmap` for serving cold indexes — it is strictly lazier
//! and the OS shares pages across processes; prefer `load` when the
//! file will be deleted or rewritten while the engine runs, or when a
//! fully-resident working set is wanted up front (e.g. latency-critical
//! benchmarks that must not take page faults mid-query).
//!
//! ## v5 file format (`indices.vxi`, little-endian)
//!
//! Version 5 (written by [`IndexBundle::save`]) keeps v4's
//! offset-addressed **section** framing so posting bytes are consumed
//! in place:
//!
//! ```text
//! magic  "VXVIDX05"
//! u32    section count (2)
//! per section: u8 kind (1 = DATA, 2 = META), u64 offset, u64 len
//! u64    FNV-1a checksum of the META section bytes
//! -- zero padding to the DATA offset (64-byte aligned) --
//! DATA   every block list's encoded bytes (and every keyword's
//!        position records), concatenated, each chunk zero-padded to
//!        8-byte alignment
//! META   the bundle's structural metadata (below)
//! ```
//!
//! META is the v2/v3 body shape, except a block list's entry bytes are
//! **referenced** — `(u64 data-relative offset, u64 len)` into DATA —
//! instead of inlined, and each inverted keyword carries an optional
//! positions record after its block list:
//!
//! ```text
//! u32    segment count
//! per segment:
//!   u32  generation (merge depth)
//!   u32  doc count           { str name, str root_tag, u32 ordinal }*
//!   u32  keyword count       { str token, blocklist, positions }*
//!   u32  path count          { str path }*
//!   per path: u32 row count  { u8 has_value, [str value], blocklist }*
//!
//! blocklist := u64 entry_count, u64 uncompressed_bytes,
//!              u64 data_offset, u64 data_len,       (window into DATA)
//!              u32 block count { u32 offset, u32 count, dewey max }*
//!              u32 list max payload,
//!              u32 max payload per directory block
//! positions := u8 present (0 | 1); if 1:
//!              u64 data_offset, u64 data_len,       (window into DATA)
//!              u32 chunk count, u32* chunk starts
//! dewey     := u32 component count, u32* components
//! str       := u32 byte length, utf-8 bytes
//! ```
//!
//! A segment is **positional** only when every keyword's record is
//! present — re-saving a positionless (pre-v5) bundle writes v5 with
//! every `present` flag zero, and such a segment keeps answering
//! bag-of-words queries while positional ones fail typed at the engine.
//!
//! Opening a v4/v5 bundle parses and checksums META, bounds-checks
//! every directory and data window, and decodes **no posting block**
//! (and no position chunk) — the batched decoders in
//! [`crate::postings`] and [`crate::positions`] are fully
//! bounds-checked, so deferring data validation to first touch is safe:
//! bytes the checksum does not cover can end a scan early but can never
//! cause a panic, out-of-bounds read, or allocator abort. The META
//! checksum is what turns a tampered directory, stale payload bound, or
//! desynchronized positions chunk table — which *could* silently change
//! answers — into a typed [`PersistError::Corrupt`] at open.
//!
//! ## Legacy formats
//!
//! v4 files (magic `VXVIDX04`: the same sectioned layout without
//! position records) load exactly as before — zero decode at open,
//! mapped or owned — and come up positionless. v3 files (magic
//! `VXVIDX03`: the segmented layout with inlined list bytes and
//! persisted payload bounds), v2 (same, no bounds) and v1 (single
//! unsegmented body) all still load, into fully owned lists, through
//! the original validation decode — their `bytes_decoded` at open
//! equals the posting bytes they carry. Checked-in v1–v4 fixtures pin
//! all four paths in CI; re-saving any of them writes v5.
//! [`IndexBundle::open_mmap`] accepts legacy files too (it simply
//! decodes owned lists out of the mapping), so callers can switch
//! unconditionally.
//!
//! Every read on every path is bounds-checked through the typed
//! [`PersistError`]: truncated files, out-of-range section tables and
//! absurd count fields all fail cleanly, never panic or abort.

use crate::inverted::InvertedIndex;
use crate::mapped::{Bytes, MappedFile};
use crate::path_index::PathIndex;
use crate::positions::PositionsList;
use crate::postings::{BlockList, BlockMeta};
use crate::segment::IndexSegment;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vxv_xml::{Corpus, DeweyId};

const MAGIC_V1: &[u8; 8] = b"VXVIDX01";
const MAGIC_V2: &[u8; 8] = b"VXVIDX02";
const MAGIC_V3: &[u8; 8] = b"VXVIDX03";
const MAGIC_V4: &[u8; 8] = b"VXVIDX04";
const MAGIC_V5: &[u8; 8] = b"VXVIDX05";

const SECTION_DATA: u8 = 1;
const SECTION_META: u8 = 2;
/// DATA starts on a cache-line/page-friendly boundary.
const DATA_ALIGN: usize = 64;
/// Each list's chunk inside DATA starts 8-byte aligned.
const CHUNK_ALIGN: usize = 8;

/// Whether a legacy block list being read carries the v3 payload-bounds
/// section, or predates it (bounds recomputed from the data).
#[derive(Clone, Copy, PartialEq, Eq)]
enum BoundsFormat {
    Stored,
    Recompute,
}

/// The file name [`IndexBundle::save`] writes inside the store directory.
pub const INDEX_FILE: &str = "indices.vxi";

/// Catalog metadata for one indexed document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DocInfo {
    /// The document's name (the `fn:doc(...)` key).
    pub name: String,
    /// Tag of the document's root element.
    pub root_tag: String,
    /// The document's Dewey root ordinal.
    pub root_ordinal: u32,
}

/// What opening a bundle actually cost and produced — the
/// map-vs-owned/lazy-vs-eager split `vxv inspect` reports and the
/// cold-open tests pin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenStats {
    /// Posting bytes decoded while opening. **Zero** for v4/v5 files
    /// (both [`IndexBundle::load`] and [`IndexBundle::open_mmap`]): no
    /// block is decoded until a query touches it. Legacy v1–v3 files
    /// decode every list once for validation, so this equals their
    /// posting payload.
    pub bytes_decoded: u64,
    /// Posting bytes backed by a shared file mapping (zero heap cost).
    pub mapped_bytes: u64,
    /// Posting bytes copied onto the heap at open.
    pub owned_bytes: u64,
    /// The on-disk format version the file carried (1–5).
    pub format_version: u32,
}

/// The persisted index state: one or more [`IndexSegment`]s — everything
/// a cold engine opens from disk.
#[derive(Debug)]
pub struct IndexBundle {
    /// The segments, in on-disk order.
    pub segments: Vec<IndexSegment>,
    /// How the bundle was opened (zeroed for in-memory builds).
    stats: OpenStats,
}

impl IndexBundle {
    /// Build a single-segment bundle over an in-memory corpus.
    pub fn build(corpus: &Corpus) -> IndexBundle {
        IndexBundle { segments: vec![IndexSegment::build(corpus)], stats: OpenStats::default() }
    }

    /// Wrap pre-built segments.
    pub fn from_segments(segments: Vec<IndexSegment>) -> IndexBundle {
        IndexBundle { segments, stats: OpenStats::default() }
    }

    /// Wrap pre-built parts as a single generation-0 segment.
    pub fn from_parts(
        path_index: PathIndex,
        inverted: InvertedIndex,
        docs: Vec<DocInfo>,
    ) -> IndexBundle {
        IndexBundle {
            segments: vec![IndexSegment::from_parts(path_index, inverted, docs, 0)],
            stats: OpenStats::default(),
        }
    }

    /// Catalog metadata across every segment, in segment order.
    pub fn docs(&self) -> impl Iterator<Item = &DocInfo> {
        self.segments.iter().flat_map(|s| s.docs().iter())
    }

    /// The largest Dewey root ordinal across all segments (`None` for an
    /// empty bundle) — new segments are namespaced above it.
    pub fn max_root_ordinal(&self) -> Option<u32> {
        self.segments.iter().filter_map(|s| s.max_root_ordinal()).max()
    }

    /// What the open cost: posting bytes decoded (zero for v4),
    /// mapped-vs-owned residency, and the file's format version.
    pub fn open_stats(&self) -> OpenStats {
        self.stats
    }

    /// Split the bundle into `Arc`-shared segments — the form a
    /// long-lived service owns, where one loaded segment set backs any
    /// number of engines, catalogs and prepared views concurrently.
    pub fn into_segments(self) -> Vec<Arc<IndexSegment>> {
        self.segments.into_iter().map(Arc::new).collect()
    }

    /// Serialize into `dir/indices.vxi` (directory created if needed) in
    /// the v5 sectioned format (offset-addressed DATA + checksummed
    /// META, per-keyword position records). Returns the written path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        IndexBundle::save_segments(self.segments.iter(), dir)
    }

    /// As [`Self::save`], over borrowed segments — a live engine
    /// checkpoints its `Arc`-shared segment set through this without
    /// cloning or rebuilding a bundle.
    pub fn save_segments<'a>(
        segments: impl IntoIterator<Item = &'a IndexSegment>,
        dir: &Path,
    ) -> io::Result<PathBuf> {
        let segments: Vec<&IndexSegment> = segments.into_iter().collect();
        let mut data: Vec<u8> = Vec::new();
        let mut meta: Vec<u8> = Vec::new();
        write_u32(&mut meta, segments.len() as u32);
        for seg in &segments {
            write_u32(&mut meta, seg.generation());
            write_segment_body(&mut meta, &mut data, seg);
        }
        let data_off = DATA_ALIGN; // header is 54 bytes; pad to 64
        let meta_off = data_off + data.len();
        let mut out: Vec<u8> = Vec::with_capacity(meta_off + meta.len());
        out.extend_from_slice(MAGIC_V5);
        write_u32(&mut out, 2);
        out.push(SECTION_DATA);
        write_u64(&mut out, data_off as u64);
        write_u64(&mut out, data.len() as u64);
        out.push(SECTION_META);
        write_u64(&mut out, meta_off as u64);
        write_u64(&mut out, meta.len() as u64);
        write_u64(&mut out, fnv1a(&meta));
        debug_assert!(out.len() <= data_off, "header grew past the DATA offset");
        out.resize(data_off, 0);
        out.extend_from_slice(&data);
        out.extend_from_slice(&meta);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(INDEX_FILE);
        std::fs::write(&path, &out)?;
        Ok(path)
    }

    /// Load a bundle from `dir` into fully owned lists. Accepts v5 and
    /// v4 (posting bytes copied but **not decoded** — `bytes_decoded`
    /// stays zero), v3, v2, and v1 files (legacy formats decode once
    /// for validation, recomputing payload bounds where the file
    /// carries none).
    pub fn load(dir: &Path) -> Result<IndexBundle, PersistError> {
        let path = dir.join(INDEX_FILE);
        let buf = std::fs::read(&path).map_err(PersistError::Io)?;
        parse_bundle(&buf, None)
    }

    /// Open `dir`'s bundle over a shared file mapping: the file is
    /// mapped once ([`crate::mapped::MappedFile`]; a heap read on
    /// non-mmap builds, same semantics) and every v4/v5 list decodes in
    /// place out of the mapping — cold open is O(header + metadata) and
    /// touches no posting block. Legacy v1–v3 files are accepted too,
    /// decoding into owned lists exactly as [`Self::load`] does.
    pub fn open_mmap(dir: &Path) -> Result<IndexBundle, PersistError> {
        let path = dir.join(INDEX_FILE);
        let map = Arc::new(MappedFile::open(&path).map_err(PersistError::Io)?);
        parse_bundle(map.as_slice(), Some(&map))
    }
}

/// Parse a bundle from `buf`; when `map` is given (and the file is
/// v4/v5), lists get shared windows into the mapping instead of owned
/// copies.
fn parse_bundle(buf: &[u8], map: Option<&Arc<MappedFile>>) -> Result<IndexBundle, PersistError> {
    if buf.len() >= 8 && &buf[..8] == MAGIC_V5 {
        parse_sectioned(buf, map, 5)
    } else if buf.len() >= 8 && &buf[..8] == MAGIC_V4 {
        parse_sectioned(buf, map, 4)
    } else {
        parse_legacy(buf)
    }
}

/// v4/v5: section table + checksummed META; no posting decode. v5
/// additionally carries per-keyword position records.
fn parse_sectioned(
    buf: &[u8],
    map: Option<&Arc<MappedFile>>,
    version: u32,
) -> Result<IndexBundle, PersistError> {
    let mut r = Reader::new(buf);
    r.take(8)?; // magic, already matched
    let section_count = r.u32()?;
    let mut data_sec: Option<(usize, usize)> = None;
    let mut meta_sec: Option<(usize, usize)> = None;
    for _ in 0..section_count {
        let kind = r.u8()?;
        let offset = r.u64()?;
        let len = r.u64()?;
        let end = offset.checked_add(len).ok_or_else(|| PersistError::bad("section overflow"))?;
        if end > buf.len() as u64 {
            return Err(PersistError::bad("section out of bounds"));
        }
        let sec = Some((offset as usize, len as usize));
        match kind {
            SECTION_DATA => data_sec = sec,
            SECTION_META => meta_sec = sec,
            // Unknown sections are skipped: room for future additions
            // without a version bump.
            _ => {}
        }
    }
    let checksum = r.u64()?;
    let (data_off, data_len) = data_sec.ok_or_else(|| PersistError::bad("missing DATA section"))?;
    let (meta_off, meta_len) = meta_sec.ok_or_else(|| PersistError::bad("missing META section"))?;
    let meta = &buf[meta_off..meta_off + meta_len];
    if fnv1a(meta) != checksum {
        return Err(PersistError::bad("META checksum mismatch"));
    }
    let src = match map {
        Some(m) => DataSource::Mapped { map: m, base: data_off, len: data_len },
        None => DataSource::Owned(&buf[data_off..data_off + data_len]),
    };
    let fmt = if version == 5 { ListFormat::V5(&src) } else { ListFormat::V4(&src) };
    let mut r = Reader::new(meta);
    let seg_count = r.u32()?;
    let mut segments = Vec::with_capacity(r.capacity_for(seg_count));
    for _ in 0..seg_count {
        let generation = r.u32()?;
        segments.push(read_segment_body(&mut r, generation, &fmt)?);
    }
    if r.pos != meta.len() {
        return Err(PersistError::bad("trailing META bytes"));
    }
    let stats = OpenStats {
        bytes_decoded: 0,
        mapped_bytes: if map.is_some() { r.data_bytes } else { 0 },
        owned_bytes: if map.is_some() { 0 } else { r.data_bytes },
        format_version: version,
    };
    Ok(IndexBundle { segments, stats })
}

/// v1–v3: inlined list bytes, validated (and therefore fully decoded)
/// at load.
fn parse_legacy(buf: &[u8]) -> Result<IndexBundle, PersistError> {
    let mut r = Reader::new(buf);
    let magic = r.take(MAGIC_V3.len())?;
    let (segments, version) = if magic == MAGIC_V3.as_slice() || magic == MAGIC_V2.as_slice() {
        let (bounds, version) = if magic == MAGIC_V3.as_slice() {
            (BoundsFormat::Stored, 3)
        } else {
            (BoundsFormat::Recompute, 2)
        };
        let seg_count = r.u32()?;
        let mut segments = Vec::with_capacity(r.capacity_for(seg_count));
        for _ in 0..seg_count {
            let generation = r.u32()?;
            segments.push(read_segment_body(&mut r, generation, &ListFormat::Legacy(bounds))?);
        }
        (segments, version)
    } else if magic == MAGIC_V1.as_slice() {
        (vec![read_segment_body(&mut r, 0, &ListFormat::Legacy(BoundsFormat::Recompute))?], 1)
    } else {
        return Err(PersistError::bad("magic mismatch"));
    };
    if r.pos != buf.len() {
        return Err(PersistError::bad("trailing bytes"));
    }
    let stats = OpenStats {
        bytes_decoded: r.decoded,
        mapped_bytes: 0,
        owned_bytes: r.data_bytes,
        format_version: version,
    };
    Ok(IndexBundle { segments, stats })
}

/// FNV-1a, the META integrity checksum — tiny, dependency-free, and
/// plenty against accidental corruption (malice is out of scope for a
/// local index file).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where a v4 list's entry bytes come from.
enum DataSource<'a> {
    /// `load`: copy windows out of the in-memory DATA section.
    Owned(&'a [u8]),
    /// `open_mmap`: share windows of the mapping (`base`/`len` delimit
    /// the DATA section inside it).
    Mapped { map: &'a Arc<MappedFile>, base: usize, len: usize },
}

impl DataSource<'_> {
    fn window(&self, rel: usize, len: usize) -> Option<Bytes> {
        let end = rel.checked_add(len)?;
        match self {
            DataSource::Owned(d) => (end <= d.len()).then(|| Bytes::Owned(d[rel..end].to_vec())),
            DataSource::Mapped { map, base, len: dlen } => {
                if end > *dlen {
                    return None;
                }
                Bytes::shared(Arc::clone(map), base.checked_add(rel)?, len)
            }
        }
    }
}

/// How a segment body's block lists are encoded.
enum ListFormat<'a> {
    Legacy(BoundsFormat),
    V4(&'a DataSource<'a>),
    /// v4's referenced lists plus a positions record per keyword.
    V5(&'a DataSource<'a>),
}

fn write_segment_body(meta: &mut Vec<u8>, data: &mut Vec<u8>, seg: &IndexSegment) {
    write_u32(meta, seg.docs().len() as u32);
    for d in seg.docs() {
        write_str(meta, &d.name);
        write_str(meta, &d.root_tag);
        write_u32(meta, d.root_ordinal);
    }
    let lists = seg.inverted().lists();
    let positional = seg.inverted().has_positions();
    let position_lists = seg.inverted().position_lists();
    let mut tokens: Vec<&String> = lists.keys().collect();
    tokens.sort();
    write_u32(meta, tokens.len() as u32);
    for t in tokens {
        write_str(meta, t);
        write_blocklist(meta, data, &lists[t]);
        // The keyword's positions record: present for positional
        // segments, flag 0 otherwise (a re-saved pre-v5 bundle stays
        // positionless in v5 clothing).
        match position_lists.get(t).filter(|_| positional) {
            Some(p) => {
                meta.push(1);
                while !data.len().is_multiple_of(CHUNK_ALIGN) {
                    data.push(0);
                }
                write_u64(meta, data.len() as u64);
                write_u64(meta, p.byte_len() as u64);
                data.extend_from_slice(&p.data);
                let starts = p.starts();
                write_u32(meta, starts.len() as u32);
                for s in starts {
                    write_u32(meta, *s);
                }
            }
            None => meta.push(0),
        }
    }
    let path_index = seg.path_index();
    let paths: Vec<&str> = path_index.paths().collect();
    write_u32(meta, paths.len() as u32);
    for p in &paths {
        write_str(meta, p);
    }
    for pid in 0..paths.len() as u32 {
        let rows: Vec<_> = path_index.rows_of(pid).collect();
        write_u32(meta, rows.len() as u32);
        for (value, list) in rows {
            match value {
                Some(v) => {
                    meta.push(1);
                    write_str(meta, v);
                }
                None => meta.push(0),
            }
            write_blocklist(meta, data, list);
        }
    }
}

fn read_segment_body(
    r: &mut Reader<'_>,
    generation: u32,
    fmt: &ListFormat<'_>,
) -> Result<IndexSegment, PersistError> {
    let doc_count = r.u32()?;
    let mut docs = Vec::with_capacity(r.capacity_for(doc_count));
    for _ in 0..doc_count {
        docs.push(DocInfo { name: r.string()?, root_tag: r.string()?, root_ordinal: r.u32()? });
    }
    let kw_count = r.u32()?;
    let mut lists = HashMap::with_capacity(r.capacity_for(kw_count));
    let mut position_lists: HashMap<String, PositionsList> = HashMap::new();
    let mut all_positional = true;
    for _ in 0..kw_count {
        let token = r.string()?;
        let list = r.blocklist(fmt)?;
        if let ListFormat::V5(src) = fmt {
            match r.positions(src, &list)? {
                Some(p) => {
                    position_lists.insert(token.clone(), p);
                }
                None => all_positional = false,
            }
        }
        lists.insert(token, list);
    }
    // A segment is positional only when every keyword carried a record
    // (v5 with positions); v4 and older segments never are.
    let positions = match fmt {
        ListFormat::V5(_) if all_positional => Some(position_lists),
        _ => None,
    };
    let path_count = r.u32()?;
    let mut paths = Vec::with_capacity(r.capacity_for(path_count));
    for _ in 0..path_count {
        paths.push(r.string()?);
    }
    let mut tables = Vec::with_capacity(r.capacity_for(path_count));
    for _ in 0..path_count {
        let row_count = r.u32()?;
        let mut rows = Vec::with_capacity(r.capacity_for(row_count));
        for _ in 0..row_count {
            let value = if r.u8()? == 1 { Some(r.string()?) } else { None };
            rows.push((value, r.blocklist(fmt)?));
        }
        tables.push(rows);
    }
    Ok(IndexSegment::from_parts(
        PathIndex::from_parts(paths, tables),
        InvertedIndex::from_lists(lists, positions),
        docs,
        generation,
    ))
}

/// Errors while loading a persisted index bundle.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// The file is truncated or structurally invalid.
    Corrupt(String),
}

impl PersistError {
    fn bad(what: &str) -> Self {
        PersistError::Corrupt(what.to_string())
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index persistence I/O error: {e}"),
            PersistError::Corrupt(w) => write!(f, "corrupt index file: {w}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn write_dewey(out: &mut Vec<u8>, d: &DeweyId) {
    write_u32(out, d.len() as u32);
    for c in d.components() {
        write_u32(out, *c);
    }
}

fn write_blocklist(meta: &mut Vec<u8>, data: &mut Vec<u8>, list: &BlockList) {
    // Each chunk starts 8-byte aligned so a mapped decode never starts
    // mid-word of its neighbour.
    while !data.len().is_multiple_of(CHUNK_ALIGN) {
        data.push(0);
    }
    let rel = data.len() as u64;
    data.extend_from_slice(&list.data);
    write_u64(meta, list.len);
    write_u64(meta, list.uncompressed);
    write_u64(meta, rel);
    write_u64(meta, list.data.len() as u64);
    write_u32(meta, list.blocks.len() as u32);
    for b in &list.blocks {
        write_u32(meta, b.offset);
        write_u32(meta, b.count);
        write_dewey(meta, &b.max);
    }
    // Bounds: list-level max payload, then one max per directory block
    // (nothing extra for single-block lists).
    write_u32(meta, list.max_payload);
    for b in &list.blocks {
        write_u32(meta, b.max_payload);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Posting bytes decoded so far (legacy validation decodes).
    decoded: u64,
    /// Posting bytes referenced so far (all formats).
    data_bytes: u64,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0, decoded: 0, data_bytes: 0 }
    }

    /// A safe pre-allocation bound for a count field read from the file:
    /// every counted item consumes at least one byte, so the remaining
    /// buffer length caps how many can really follow. A corrupt count
    /// then fails on a truncated read instead of aborting the process
    /// inside the allocator.
    fn capacity_for(&self, count: u32) -> usize {
        (count as usize).min(self.buf.len() - self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        // Checked: a corrupt u64 length cast to usize can make `pos + n`
        // overflow, which must surface as the typed error, not a panic.
        if self.pos.checked_add(n).is_none_or(|end| end > self.buf.len()) {
            return Err(PersistError::bad("truncated file"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        let bytes: [u8; 4] =
            self.take(4)?.try_into().map_err(|_| PersistError::bad("short u32 read"))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let bytes: [u8; 8] =
            self.take(8)?.try_into().map_err(|_| PersistError::bad("short u64 read"))?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::bad("non-utf8 string"))
    }

    fn dewey(&mut self) -> Result<DeweyId, PersistError> {
        let n = self.u32()?;
        let mut comps = Vec::with_capacity(self.capacity_for(n));
        for _ in 0..n {
            comps.push(self.u32()?);
        }
        Ok(DeweyId::from_components(comps))
    }

    /// One keyword's v5 positions record: `None` when the flag says the
    /// keyword stored no positions. The chunk table is META-covered, so
    /// a desynchronized table (wrong chunk count, non-monotone starts,
    /// out-of-window offsets) is typed corruption at open; the position
    /// *bytes* live in DATA and are validated lazily at first decode,
    /// like posting blocks.
    fn positions(
        &mut self,
        src: &DataSource<'_>,
        list: &BlockList,
    ) -> Result<Option<PositionsList>, PersistError> {
        if self.u8()? != 1 {
            return Ok(None);
        }
        let rel = self.u64()?;
        let data_len = self.u64()?;
        if rel > usize::MAX as u64 || data_len > usize::MAX as u64 {
            return Err(PersistError::bad("positions window overflow"));
        }
        let data = src
            .window(rel as usize, data_len as usize)
            .ok_or_else(|| PersistError::bad("positions window out of bounds"))?;
        self.data_bytes += data.len() as u64;
        let n = self.u32()?;
        let mut starts = Vec::with_capacity(self.capacity_for(n));
        for _ in 0..n {
            starts.push(self.u32()?);
        }
        let p = PositionsList { data, starts };
        if !p.structure_ok(list) {
            return Err(PersistError::bad("positions chunk table mismatch"));
        }
        Ok(Some(p))
    }

    fn blocklist(&mut self, fmt: &ListFormat<'_>) -> Result<BlockList, PersistError> {
        let len = self.u64()?;
        let uncompressed = self.u64()?;
        let data: Bytes = match fmt {
            ListFormat::Legacy(_) => {
                let data_len = self.u64()? as usize;
                Bytes::Owned(self.take(data_len)?.to_vec())
            }
            ListFormat::V4(src) | ListFormat::V5(src) => {
                let rel = self.u64()?;
                let data_len = self.u64()?;
                if rel > usize::MAX as u64 || data_len > usize::MAX as u64 {
                    return Err(PersistError::bad("data window overflow"));
                }
                src.window(rel as usize, data_len as usize)
                    .ok_or_else(|| PersistError::bad("data window out of bounds"))?
            }
        };
        self.data_bytes += data.len() as u64;
        // Every entry costs at least one encoded byte, so an entry count
        // beyond the data length is corrupt — and, unchecked, would size
        // downstream pre-allocations.
        if len > data.len() as u64 {
            return Err(PersistError::bad("entry count exceeds data length"));
        }
        let block_count = self.u32()?;
        let mut blocks = Vec::with_capacity(self.capacity_for(block_count));
        let mut counted = 0u64;
        for _ in 0..block_count {
            let offset = self.u32()?;
            let count = self.u32()?;
            if offset as usize > data.len() {
                return Err(PersistError::bad("block directory out of bounds"));
            }
            counted += count as u64;
            blocks.push(BlockMeta { offset, count, max: self.dewey()?, max_payload: 0 });
        }
        if block_count > 0 && counted != len {
            return Err(PersistError::bad("directory entry count mismatch"));
        }
        let mut list = BlockList { data, blocks, len, uncompressed, max_payload: 0 };
        match fmt {
            ListFormat::Legacy(BoundsFormat::Stored) => {
                // v3: read the persisted bounds, then run the full
                // bounds-checked decode, which also verifies the stored
                // maxima against the data — a stale bound is corruption
                // (it could silently prune qualifying hits).
                list.max_payload = self.u32()?;
                for b in &mut list.blocks {
                    b.max_payload = self.u32()?;
                }
                if !list.validate() {
                    return Err(PersistError::bad("blocklist fails validation"));
                }
                self.decoded += list.data.len() as u64;
            }
            ListFormat::Legacy(BoundsFormat::Recompute) => {
                // v1/v2: no bounds on disk; the same validation decode
                // computes them.
                if !list.restore_bounds() {
                    return Err(PersistError::bad("blocklist fails validation"));
                }
                self.decoded += list.data.len() as u64;
            }
            ListFormat::V4(_) | ListFormat::V5(_) => {
                // v4/v5: bounds come from the checksummed META; cheap
                // structural checks only, **no decode** — the batched
                // decoder tolerates anything the checksum doesn't cover.
                list.max_payload = self.u32()?;
                for b in &mut list.blocks {
                    b.max_payload = self.u32()?;
                }
                let mut prev: Option<&BlockMeta> = None;
                for b in &list.blocks {
                    if let Some(p) = prev {
                        if p.offset >= b.offset || p.max >= b.max {
                            return Err(PersistError::bad("unordered block directory"));
                        }
                    } else if b.offset != 0 {
                        return Err(PersistError::bad("first block not at offset zero"));
                    }
                    if b.count == 0 || b.max_payload > list.max_payload {
                        return Err(PersistError::bad("inconsistent block directory"));
                    }
                    prev = Some(b);
                }
            }
        }
        Ok(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_postings;
    use crate::footprint::IndexFootprint;
    use crate::pattern::PathPattern;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vxv-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books><book><isbn>111</isbn><title>XML search</title><year>1996</year></book>\
             <book><isbn>222</isbn><title>AI</title></book></books>",
        )
        .unwrap();
        c.add_parsed("reviews.xml", "<reviews><review><isbn>111</isbn></review></reviews>")
            .unwrap();
        c
    }

    fn assert_segments_equal(a: &IndexSegment, b: &IndexSegment) {
        assert_eq!(a.docs(), b.docs());
        assert_eq!(a.generation(), b.generation());
        let mut kws: Vec<String> = a.inverted().keywords().map(|s| s.to_string()).collect();
        kws.sort();
        let mut other: Vec<String> = b.inverted().keywords().map(|s| s.to_string()).collect();
        other.sort();
        assert_eq!(kws, other);
        for k in &kws {
            assert_eq!(
                collect_postings(a.inverted().postings(k)),
                collect_postings(b.inverted().postings(k)),
                "keyword {k}"
            );
        }
        assert_eq!(a.footprint(), b.footprint());
    }

    #[test]
    fn bundle_round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        let c = corpus();
        let bundle = IndexBundle::build(&c);
        bundle.save(&dir).unwrap();
        let loaded = IndexBundle::load(&dir).unwrap();

        assert_eq!(loaded.segments.len(), 1);
        assert_segments_equal(&loaded.segments[0], &bundle.segments[0]);
        assert_eq!(loaded.segments[0].docs()[0].root_tag, "books");

        // Path probes identical.
        let pat = PathPattern::parse("/books//book/isbn").unwrap();
        assert_eq!(
            bundle.segments[0].path_index().lookup(&pat, &[]),
            loaded.segments[0].path_index().lookup(&pat, &[])
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_segment_bundles_round_trip_with_generations() {
        let dir = tmpdir("multiseg");
        let c1 = corpus();
        let mut c2 = Corpus::new();
        c2.add(vxv_xml::parse_document("extra.xml", "<extra><e>late doc</e></extra>", 9).unwrap());
        let merged = IndexSegment::merge([&IndexSegment::build(&c1)]);
        let bundle = IndexBundle::from_segments(vec![merged, IndexSegment::build(&c2)]);
        bundle.save(&dir).unwrap();
        let loaded = IndexBundle::load(&dir).unwrap();
        assert_eq!(loaded.segments.len(), 2);
        assert_eq!(loaded.segments[0].generation(), 1);
        assert_eq!(loaded.segments[1].generation(), 0);
        assert_eq!(loaded.max_root_ordinal(), Some(9));
        for (a, b) in loaded.segments.iter().zip(&bundle.segments) {
            assert_segments_equal(a, b);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_files_fail_cleanly() {
        let dir = tmpdir("truncated");
        let c = corpus();
        let path = IndexBundle::build(&c).save(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Every truncation point must produce a typed error, never a
        // panic (header parsing and the Reader are fully bounds-checked).
        for cut in [8, 9, 20, 40, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))),
                "cut at {cut}"
            );
            assert!(
                matches!(IndexBundle::open_mmap(&dir), Err(PersistError::Corrupt(_))),
                "mmap cut at {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absurd_count_fields_fail_typed_instead_of_aborting() {
        // A 13-byte file claiming u32::MAX segments (or docs) must hit
        // the typed truncation path, not a ~200 GB pre-allocation.
        let dir = tmpdir("hugecount");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(INDEX_FILE);
        for magic in [MAGIC_V2.as_slice(), MAGIC_V1.as_slice()] {
            let mut bytes = magic.to_vec();
            bytes.extend_from_slice(&u32::MAX.to_le_bytes());
            bytes.push(0);
            std::fs::write(&path, &bytes).unwrap();
            assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))));
        }
        // A near-usize::MAX blocklist data_len must not overflow the
        // reader's bounds arithmetic either: one valid doc-count/kw-count
        // prefix, then a keyword whose list claims u64::MAX bytes.
        let mut bytes = MAGIC_V1.to_vec();
        bytes.extend_from_slice(&0u32.to_le_bytes()); // 0 docs
        bytes.extend_from_slice(&1u32.to_le_bytes()); // 1 keyword
        bytes.extend_from_slice(&1u32.to_le_bytes()); // token len 1
        bytes.push(b'x');
        bytes.extend_from_slice(&1u64.to_le_bytes()); // entry count
        bytes.extend_from_slice(&8u64.to_le_bytes()); // uncompressed
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd data_len
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))));
        // A v4 section table claiming u32::MAX sections, or sections
        // placed past the end of the file, must fail the same way.
        let mut bytes = MAGIC_V4.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_bounds_section_tables_fail_typed() {
        let dir = tmpdir("sections");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(INDEX_FILE);
        let table = |entries: &[(u8, u64, u64)]| -> Vec<u8> {
            let mut b = MAGIC_V4.to_vec();
            b.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (kind, off, len) in entries {
                b.push(*kind);
                b.extend_from_slice(&off.to_le_bytes());
                b.extend_from_slice(&len.to_le_bytes());
            }
            b.extend_from_slice(&0u64.to_le_bytes()); // checksum
            b.resize(128, 0);
            b
        };
        let cases: Vec<(&str, Vec<u8>)> = vec![
            // Offsets past the end of the file.
            ("data oob", table(&[(SECTION_DATA, 4096, 16), (SECTION_META, 64, 8)])),
            ("meta oob", table(&[(SECTION_DATA, 64, 8), (SECTION_META, 4096, 16)])),
            // offset + len overflowing u64.
            ("overflow", table(&[(SECTION_DATA, u64::MAX, 16), (SECTION_META, 64, 8)])),
            // Required sections absent entirely.
            ("no data", table(&[(SECTION_META, 64, 8)])),
            ("no meta", table(&[(SECTION_DATA, 64, 8)])),
            ("empty table", table(&[])),
        ];
        for (what, bytes) in cases {
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))),
                "{what} must be a typed error"
            );
            assert!(
                matches!(IndexBundle::open_mmap(&dir), Err(PersistError::Corrupt(_))),
                "{what} must be a typed error under mmap"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_writes_v5_and_round_trips_payload_bounds() {
        let dir = tmpdir("v5bounds");
        // Enough repeated tokens to force multi-block posting lists.
        let mut c = Corpus::new();
        let mut xml = String::from("<r>");
        for i in 0..80 {
            xml.push_str(&format!("<e><t>target target word{i}</t></e>"));
        }
        xml.push_str("</r>");
        c.add_parsed("d.xml", &xml).unwrap();
        let bundle = IndexBundle::build(&c);
        let path = bundle.save(&dir).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..8], MAGIC_V5);
        let loaded = IndexBundle::load(&dir).unwrap();
        let (a, b) = (bundle.segments[0].inverted(), loaded.segments[0].inverted());
        for kw in ["target", "word3"] {
            assert_eq!(a.max_tf(kw), b.max_tf(kw), "list max for {kw}");
            let root: DeweyId = "1.5".parse().unwrap();
            assert_eq!(
                a.subtree_tf_bound(kw, &root),
                b.subtree_tf_bound(kw, &root),
                "range bound for {kw}"
            );
        }
        assert!(b.max_tf("target") >= 2, "multi-occurrence tf survives the round trip");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v5_cold_open_decodes_zero_posting_bytes() {
        let dir = tmpdir("coldopen");
        let c = corpus();
        let bundle = IndexBundle::build(&c);
        bundle.save(&dir).unwrap();
        // Owned v5 load: bytes are copied but no posting block decodes.
        let owned = IndexBundle::load(&dir).unwrap();
        let s = owned.open_stats();
        assert_eq!(s.bytes_decoded, 0, "v5 load must not decode postings");
        assert_eq!(s.format_version, 5);
        assert!(s.owned_bytes > 0);
        assert_eq!(s.mapped_bytes, 0);
        // Mapped open: same, with the residency on the mapping side.
        let mapped = IndexBundle::open_mmap(&dir).unwrap();
        let s = mapped.open_stats();
        assert_eq!(s.bytes_decoded, 0, "mmap open must not decode postings");
        assert_eq!(s.format_version, 5);
        assert_eq!(s.owned_bytes, 0);
        assert!(s.mapped_bytes > 0);
        // Both answer identically to the in-memory build.
        for opened in [&owned, &mapped] {
            assert_eq!(opened.segments.len(), 1);
            assert_segments_equal(&opened.segments[0], &bundle.segments[0]);
        }
        // In-memory bundles report zeroed stats.
        assert_eq!(bundle.open_stats(), OpenStats::default());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v5_round_trips_positions_for_phrase_probes() {
        let dir = tmpdir("v5positions");
        let mut c = Corpus::new();
        c.add_parsed(
            "d.xml",
            "<r><a>fast xml search</a><b>search xml fast</b><c>fast search</c></r>",
        )
        .unwrap();
        let built = IndexBundle::build(&c);
        built.save(&dir).unwrap();
        let phrase = ["fast".to_string(), "search".to_string()];
        let root: DeweyId = "1".parse().unwrap();
        let want = built.segments[0].inverted().positional_subtree_tf(&phrase, None, &root);
        assert_eq!(want, 1, "only <c> holds the adjacent pair");
        for opened in [IndexBundle::load(&dir).unwrap(), IndexBundle::open_mmap(&dir).unwrap()] {
            let inv = opened.segments[0].inverted();
            assert!(inv.has_positions(), "v5 load must restore positions");
            assert_eq!(inv.positional_subtree_tf(&phrase, None, &root), want);
            assert_eq!(
                inv.positional_subtree_tf(&phrase, Some(2), &root),
                3,
                "near(2) matches all three"
            );
        }
        // Re-saving a positionless bundle writes v5 with every flag
        // zero: it loads positionless, not corrupt.
        let positionless = IndexSegment::from_parts(
            PathIndex::build(&c),
            InvertedIndex::from_lists(built.segments[0].inverted().lists().clone(), None),
            built.segments[0].docs().to_vec(),
            0,
        );
        IndexBundle::from_segments(vec![positionless]).save(&dir).unwrap();
        let reloaded = IndexBundle::load(&dir).unwrap();
        assert_eq!(reloaded.open_stats().format_version, 5);
        assert!(!reloaded.segments[0].inverted().has_positions());
        assert_eq!(reloaded.segments[0].inverted().subtree_tf("search", &root), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_positions_chunk_tables_are_rejected_at_open() {
        let dir = tmpdir("tamperpositions");
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><a>alpha beta alpha</a></r>").unwrap();
        let path = IndexBundle::build(&c).save(&dir).unwrap();
        let good = std::fs::read(&path).unwrap();
        // The META checksum covers the positions records (windows and
        // chunk tables); flipping any tail byte must fail typed.
        for back in 5..=12 {
            let mut bad = good.clone();
            let i = bad.len() - back;
            bad[i] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))),
                "flipped META byte {back} from the end must be rejected"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_mmap_accepts_legacy_files_by_decoding_owned() {
        // The v2 fixture exercises open_mmap's legacy fallback: the file
        // maps, then decodes into owned lists exactly as load() does.
        let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v2"));
        let mapped = IndexBundle::open_mmap(&dir).unwrap();
        let loaded = IndexBundle::load(&dir).unwrap();
        let s = mapped.open_stats();
        assert_eq!(s.format_version, 2);
        assert!(s.bytes_decoded > 0, "legacy loads decode for validation");
        assert!(s.owned_bytes > 0);
        assert_eq!(s.mapped_bytes, 0, "legacy lists are owned even under open_mmap");
        assert_eq!(mapped.segments.len(), loaded.segments.len());
        for (a, b) in mapped.segments.iter().zip(&loaded.segments) {
            assert_segments_equal(a, b);
        }
    }

    #[test]
    fn tampered_data_sections_never_panic_queries() {
        // The META checksum does not cover DATA — by design: covering it
        // would force an O(index) read at open. Corrupt posting bytes
        // must therefore be tolerated at query time: scans end early,
        // nothing panics.
        let dir = tmpdir("tamperdata");
        let c = corpus();
        let path = IndexBundle::build(&c).save(&dir).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // DATA starts at the fixed 64-byte offset; stomp a few bytes.
        for b in &mut bytes[64..70] {
            *b ^= 0xff;
        }
        std::fs::write(&path, &bytes).unwrap();
        let bundle = IndexBundle::load(&dir).unwrap();
        for seg in &bundle.segments {
            let kws: Vec<String> = seg.inverted().keywords().map(|s| s.to_string()).collect();
            for k in &kws {
                // May be empty or short — must not panic.
                let _ = collect_postings(seg.inverted().postings(k));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_persisted_bounds_are_rejected_as_corruption() {
        let dir = tmpdir("stalebounds");
        let c = corpus();
        let path = IndexBundle::build(&c).save(&dir).unwrap();
        let good = std::fs::read(&path).unwrap();
        assert!(IndexBundle::load(&dir).is_ok());
        // The file's tail is the META section, whose final fields are the
        // last blocklist's payload bounds; flipping any byte there
        // desynchronizes bounds that pruning trusts, which the META
        // checksum must reject (a stale bound could silently prune
        // qualifying hits).
        for back in 1..=4 {
            let mut bad = good.clone();
            let i = bad.len() - back;
            bad[i] = bad[i].wrapping_add(1);
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))),
                "tampered bound byte {back} from the end must be rejected"
            );
            assert!(
                matches!(IndexBundle::open_mmap(&dir), Err(PersistError::Corrupt(_))),
                "tampered bound byte {back} from the end must be rejected under mmap"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_inside_the_bounds_section_fails_typed() {
        let dir = tmpdir("truncbounds");
        let c = corpus();
        let path = IndexBundle::build(&c).save(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Sweep every cut in the file's tail — the META section with the
        // final blocklists' directories and bounds.
        for cut in (bytes.len().saturating_sub(64))..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(IndexBundle::load(&dir), Err(PersistError::Corrupt(_))),
                "cut at {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(IndexBundle::load(&dir), Err(PersistError::Io(_))));
        assert!(matches!(IndexBundle::open_mmap(&dir), Err(PersistError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
