//! Keyword tokenization.
//!
//! One tokenizer is shared by index construction, the Baseline system
//! (which tokenizes materialized views), and the scoring module, so that
//! every strategy agrees on what a keyword occurrence is.
//!
//! Tokens are maximal alphanumeric runs, lowercased. We index text content
//! only (not tag names) — a simplification relative to the paper's
//! `contains` definition that applies identically to every compared
//! system, so relative results are unaffected.

/// Iterate over the lowercased tokens of `text`.
pub fn tokens(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric()).filter(|t| !t.is_empty()).map(|t| t.to_lowercase())
}

/// Count occurrences of each token in `text`, in first-seen order.
pub fn token_counts(text: &str) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = Vec::new();
    for t in tokens(text) {
        match out.iter_mut().find(|(w, _)| *w == t) {
            Some((_, c)) => *c += 1,
            None => out.push((t, 1)),
        }
    }
    out
}

/// Token positions per distinct token, in first-seen order: for each
/// token, the 0-based ordinals it occupies in `text`'s token stream
/// (sorted ascending by construction). `positions.len()` is the token's
/// term frequency, so [`token_counts`] is exactly this with lengths.
/// Phrase and proximity queries intersect these ordinals.
pub fn token_positions(text: &str) -> Vec<(String, Vec<u32>)> {
    let mut out: Vec<(String, Vec<u32>)> = Vec::new();
    for (i, t) in tokens(text).enumerate() {
        match out.iter_mut().find(|(w, _)| *w == t) {
            Some((_, ps)) => ps.push(i as u32),
            None => out.push((t, vec![i as u32])),
        }
    }
    out
}

/// Number of occurrences of `keyword` (already lowercased) in `text`.
pub fn count_keyword(text: &str, keyword: &str) -> u32 {
    tokens(text).filter(|t| t == keyword).count() as u32
}

/// Normalize a user-supplied query keyword to token form.
pub fn normalize_keyword(keyword: &str) -> String {
    keyword.to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumeric_and_lowercases() {
        let t: Vec<String> = tokens("XML-based Web  Services, 2004!").collect();
        assert_eq!(t, vec!["xml", "based", "web", "services", "2004"]);
    }

    #[test]
    fn counts_repeated_tokens() {
        let c = token_counts("search and search again");
        assert_eq!(c, vec![("search".into(), 2), ("and".into(), 1), ("again".into(), 1)]);
    }

    #[test]
    fn keyword_counting_is_case_insensitive() {
        assert_eq!(count_keyword("XML xml Xml", "xml"), 3);
        assert_eq!(count_keyword("nothing here", "xml"), 0);
    }

    #[test]
    fn positions_are_token_ordinals_and_lengths_are_counts() {
        let p = token_positions("search and search again");
        assert_eq!(
            p,
            vec![("search".into(), vec![0, 2]), ("and".into(), vec![1]), ("again".into(), vec![3]),]
        );
        let counts = token_counts("search and search again");
        assert_eq!(
            p.iter().map(|(w, ps)| (w.clone(), ps.len() as u32)).collect::<Vec<_>>(),
            counts,
            "positions must agree with token_counts"
        );
    }

    #[test]
    fn empty_text_yields_no_tokens() {
        assert_eq!(tokens("").count(), 0);
        assert_eq!(tokens("  ,.- ").count(), 0);
    }
}
