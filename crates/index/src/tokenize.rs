//! Keyword tokenization.
//!
//! One tokenizer is shared by index construction, the Baseline system
//! (which tokenizes materialized views), and the scoring module, so that
//! every strategy agrees on what a keyword occurrence is.
//!
//! Tokens are maximal alphanumeric runs, lowercased. We index text content
//! only (not tag names) — a simplification relative to the paper's
//! `contains` definition that applies identically to every compared
//! system, so relative results are unaffected.

/// Iterate over the lowercased tokens of `text`.
pub fn tokens(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric()).filter(|t| !t.is_empty()).map(|t| t.to_lowercase())
}

/// Count occurrences of each token in `text`, in first-seen order.
pub fn token_counts(text: &str) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = Vec::new();
    for t in tokens(text) {
        match out.iter_mut().find(|(w, _)| *w == t) {
            Some((_, c)) => *c += 1,
            None => out.push((t, 1)),
        }
    }
    out
}

/// Number of occurrences of `keyword` (already lowercased) in `text`.
pub fn count_keyword(text: &str, keyword: &str) -> u32 {
    tokens(text).filter(|t| t == keyword).count() as u32
}

/// Normalize a user-supplied query keyword to token form.
pub fn normalize_keyword(keyword: &str) -> String {
    keyword.to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumeric_and_lowercases() {
        let t: Vec<String> = tokens("XML-based Web  Services, 2004!").collect();
        assert_eq!(t, vec!["xml", "based", "web", "services", "2004"]);
    }

    #[test]
    fn counts_repeated_tokens() {
        let c = token_counts("search and search again");
        assert_eq!(c, vec![("search".into(), 2), ("and".into(), 1), ("again".into(), 1)]);
    }

    #[test]
    fn keyword_counting_is_case_insensitive() {
        assert_eq!(count_keyword("XML xml Xml", "xml"), 3);
        assert_eq!(count_keyword("nothing here", "xml"), 0);
    }

    #[test]
    fn empty_text_yields_no_tokens() {
        assert_eq!(tokens("").count(), 0);
        assert_eq!(tokens("  ,.- ").count(), 0);
    }
}
