//! Memory-mapped index files and the [`Bytes`] backing abstraction.
//!
//! The v4 on-disk format (see [`crate::persist`]) lays every posting
//! buffer out as an offset-addressed slice of one contiguous DATA
//! section, so a segment can be *searched in place*: map the file once,
//! hand each [`crate::BlockList`] a `(offset, len)` window into the
//! mapping, and let cursors decode straight out of the page cache.
//! Cold open touches only the header and META section — no posting
//! block is read until a query asks for it.
//!
//! Two pieces live here:
//!
//! * [`MappedFile`] — a read-only file mapping. With the default-on
//!   `mmap` feature on a Unix target it is a real `mmap(2)` region
//!   (declared directly against libc, which `std` already links); in
//!   every other configuration — feature off, non-Unix, or Miri — it
//!   degrades to reading the file into a heap buffer with the same API,
//!   so `IndexBundle::open_mmap` exists and behaves identically
//!   everywhere (the fallback merely loses the lazy-paging benefit).
//! * [`Bytes`] — the backing storage of a [`crate::BlockList`]: either
//!   an owned `Vec<u8>` (built in memory, or copied out of a legacy
//!   v1–v3 file) or a shared window into an `Arc<MappedFile>`. Cursors
//!   only ever see `&[u8]`, so the decode path is byte-identical across
//!   backings — the property the mmap proptests pin down.

use std::fmt;
use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// The real `mmap(2)` path: Unix, `mmap` feature on, and not under
/// Miri (Miri cannot model file-backed mappings; it exercises the
/// fallback instead, which shares every byte-interpretation code path).
#[cfg(all(feature = "mmap", unix, not(miri)))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

enum MapInner {
    /// A live `mmap(2)` region; unmapped on drop.
    #[cfg(all(feature = "mmap", unix, not(miri)))]
    Mapped { ptr: *const u8, len: usize },
    /// Fallback: the whole file read into a heap buffer.
    Heap(Vec<u8>),
}

// SAFETY: the mapped region is read-only (PROT_READ, MAP_PRIVATE) for
// the lifetime of the value and is only ever exposed as `&[u8]`.
unsafe impl Send for MapInner {}
unsafe impl Sync for MapInner {}

/// A read-only mapping of one file (see the module docs for when it is
/// a true `mmap` versus a heap read). Shared across segments via
/// `Arc<MappedFile>`; [`Bytes::Shared`] windows borrow from it.
pub struct MappedFile {
    inner: MapInner,
}

impl MappedFile {
    /// Map `path` read-only. Empty files (and every non-mmap build)
    /// yield a heap-backed mapping with the same API.
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "file too large to map"));
        }
        Self::map(file, len as usize)
    }

    #[cfg(all(feature = "mmap", unix, not(miri)))]
    fn map(file: File, len: usize) -> io::Result<MappedFile> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // Zero-length mappings are invalid; an empty heap buffer is
            // indistinguishable through the API.
            return Ok(MappedFile { inner: MapInner::Heap(Vec::new()) });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(MappedFile { inner: MapInner::Mapped { ptr: ptr as *const u8, len } })
    }

    #[cfg(not(all(feature = "mmap", unix, not(miri))))]
    fn map(file: File, len: usize) -> io::Result<MappedFile> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(MappedFile { inner: MapInner::Heap(buf) })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(feature = "mmap", unix, not(miri)))]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `drop` unmaps it.
            MapInner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            MapInner::Heap(v) => v.as_slice(),
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(all(feature = "mmap", unix, not(miri)))]
            MapInner::Mapped { len, .. } => *len,
            MapInner::Heap(v) => v.len(),
        }
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when this mapping is a real `mmap` region (false for the
    /// heap fallback) — what `vxv inspect` reports as map-vs-owned.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(feature = "mmap", unix, not(miri)))]
            MapInner::Mapped { .. } => true,
            MapInner::Heap(_) => false,
        }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(all(feature = "mmap", unix, not(miri)))]
        if let MapInner::Mapped { ptr, len } = self.inner {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// The backing bytes of a [`crate::BlockList`]: owned, or a shared
/// window into a mapped file. Dereferences to `&[u8]`, so every decode
/// path is agnostic to the backing.
#[derive(Clone)]
pub enum Bytes {
    /// Heap-owned buffer (in-memory builds, legacy-format loads).
    Owned(Vec<u8>),
    /// `map[offset..offset + len]` — a window into a shared mapping.
    Shared {
        /// The mapping this window borrows from.
        map: Arc<MappedFile>,
        /// Window start within the mapping.
        offset: usize,
        /// Window length in bytes.
        len: usize,
    },
}

impl Bytes {
    /// A shared window into `map`. Returns `None` when the window falls
    /// outside the mapping — the caller surfaces that as a typed
    /// persistence error, never a panic.
    pub fn shared(map: Arc<MappedFile>, offset: usize, len: usize) -> Option<Bytes> {
        let end = offset.checked_add(len)?;
        if end > map.len() {
            return None;
        }
        Some(Bytes::Shared { map, offset, len })
    }

    /// True when the bytes live in a shared mapping (zero heap cost).
    pub fn is_shared(&self) -> bool {
        matches!(self, Bytes::Shared { .. })
    }

    /// Heap bytes owned by this value (0 for shared windows) — what
    /// footprint reporting uses to show map-vs-owned residency.
    pub fn owned_bytes(&self) -> u64 {
        match self {
            Bytes::Owned(v) => v.len() as u64,
            Bytes::Shared { .. } => 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            Bytes::Owned(v) => v,
            Bytes::Shared { map, offset, len } => &map.as_slice()[*offset..*offset + *len],
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::Owned(Vec::new())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::Owned(v)
    }
}

impl PartialEq for Bytes {
    /// Content equality: an owned list and a mapped list holding the
    /// same bytes compare equal (what the byte-identity tests assert).
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bytes::Owned(v) => f.debug_struct("Bytes::Owned").field("len", &v.len()).finish(),
            Bytes::Shared { offset, len, .. } => {
                f.debug_struct("Bytes::Shared").field("offset", offset).field("len", len).finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("vxv-mapped-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn mapped_files_expose_their_bytes() {
        let path = tmp("basic", b"hello mapped world");
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.as_slice(), b"hello mapped world");
        assert_eq!(map.len(), 18);
        assert!(!map.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_files_map_as_empty() {
        let path = tmp("empty", b"");
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_windows_are_bounds_checked() {
        let path = tmp("windows", b"0123456789");
        let map = Arc::new(MappedFile::open(&path).unwrap());
        let w = Bytes::shared(Arc::clone(&map), 2, 5).unwrap();
        assert_eq!(&w[..], b"23456");
        assert!(w.is_shared());
        assert_eq!(w.owned_bytes(), 0);
        // Off the end, overflowing, and zero-length-at-end windows.
        assert!(Bytes::shared(Arc::clone(&map), 8, 3).is_none());
        assert!(Bytes::shared(Arc::clone(&map), usize::MAX, 2).is_none());
        assert!(Bytes::shared(Arc::clone(&map), 10, 0).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn owned_and_shared_bytes_compare_by_content() {
        let path = tmp("eq", b"same bytes");
        let map = Arc::new(MappedFile::open(&path).unwrap());
        let shared = Bytes::shared(map, 0, 10).unwrap();
        let owned = Bytes::Owned(b"same bytes".to_vec());
        assert_eq!(shared, owned);
        assert_ne!(shared, Bytes::Owned(b"other bytes".to_vec()));
        assert_eq!(owned.owned_bytes(), 10);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mappings_outlive_the_file_entry() {
        // Deleting the file after mapping must not invalidate the bytes
        // (POSIX keeps the pages; the heap fallback trivially copies).
        let path = tmp("unlink", b"still here");
        let map = MappedFile::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(map.as_slice(), b"still here");
    }
}
