//! Tag (element-stream) index.
//!
//! Maps each tag name to the Dewey-ordered list of all elements with that
//! tag. This is the access path that structural-join engines such as
//! Timber consume (one sorted element stream per query node); our
//! GTP+TermJoin comparison system is built on it, while the Efficient
//! pipeline deliberately uses the richer path index instead — that
//! difference is one of the paper's two explanations for its speedup.

use std::collections::HashMap;
use vxv_xml::{Corpus, DeweyId, Document};

/// Tag → Dewey-ordered element list.
#[derive(Debug, Default)]
pub struct TagIndex {
    lists: HashMap<String, Vec<DeweyId>>,
}

impl TagIndex {
    /// Build over every document in the corpus.
    pub fn build(corpus: &Corpus) -> Self {
        let mut idx = TagIndex::default();
        for doc in corpus.docs() {
            idx.add_document(doc);
        }
        for list in idx.lists.values_mut() {
            list.sort();
        }
        idx
    }

    fn add_document(&mut self, doc: &Document) {
        for node_id in doc.iter() {
            let node = doc.node(node_id);
            self.lists
                .entry(doc.tag_name(node.tag).to_string())
                .or_default()
                .push(node.dewey.clone());
        }
    }

    /// The element stream for a tag, in Dewey order.
    pub fn stream(&self, tag: &str) -> &[DeweyId] {
        self.lists.get(tag).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of elements bearing `tag`.
    pub fn count(&self, tag: &str) -> usize {
        self.stream(tag).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_dewey_ordered_per_tag() {
        let mut c = Corpus::new();
        c.add_parsed("d", "<a><b/><c><b/></c><b/></a>").unwrap();
        let idx = TagIndex::build(&c);
        let ids: Vec<String> = idx.stream("b").iter().map(|d| d.to_string()).collect();
        assert_eq!(ids, vec!["1.1", "1.2.1", "1.3"]);
        assert_eq!(idx.count("c"), 1);
        assert_eq!(idx.count("zzz"), 0);
    }
}
