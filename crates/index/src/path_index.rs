//! The Path-Values index (paper Fig. 5).
//!
//! One row per unique *(Path, Value)* pair; each row stores the sorted list
//! of Dewey IDs of elements on that path with that atomic value (elements
//! without an atomic value go into the row with a `None` value). A B-tree
//! over the composite `(Path, Value)` key supports:
//!
//! * exact probes `(path, 'Jane')` for equality predicates,
//! * prefix scans by `path` alone (retrieving *all* rows for the path,
//!   which yields both IDs and values in one probe — the observation that
//!   lets PDT generation materialize `v`-annotated values for free),
//! * range filtering for `<`/`>` predicates.
//!
//! Patterns with `//` axes are expanded against the *path dictionary* of
//! distinct full data paths, and per-path lists are merged in Dewey order.

use crate::pattern::PathPattern;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use vxv_xml::value::compare_atomic;
use vxv_xml::{Corpus, DeweyId, Document};

/// One indexed element occurrence: its Dewey ID plus the byte length of its
/// serialized subtree (stored index-side so PDTs can carry `len(e)` without
/// touching base data).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdEntry {
    /// The element's Dewey identifier.
    pub id: DeweyId,
    /// Byte length of the element's serialized subtree.
    pub byte_len: u32,
}

/// A value predicate pushed into an index probe (QPT leaf predicate).
#[derive(Clone, Debug, PartialEq)]
pub enum ValuePredicate {
    /// Value equals the operand (under [`compare_atomic`] semantics).
    Eq(String),
    /// Value is less than the operand.
    Lt(String),
    /// Value is greater than the operand.
    Gt(String),
}

impl ValuePredicate {
    /// Does an atomic value satisfy this predicate?
    pub fn eval(&self, value: &str) -> bool {
        use std::cmp::Ordering::*;
        match self {
            ValuePredicate::Eq(v) => compare_atomic(value, v) == Equal,
            ValuePredicate::Lt(v) => compare_atomic(value, v) == Less,
            ValuePredicate::Gt(v) => compare_atomic(value, v) == Greater,
        }
    }
}

/// The result of a probe: Dewey-ordered entries, each optionally carrying
/// the element's atomic value.
pub type ProbeResult = Vec<(IdEntry, Option<String>)>;

#[derive(Clone, Debug, Default)]
struct PathRows {
    /// Rows keyed by value; `None` collects elements without atomic values.
    /// Each row's ID list is sorted in Dewey (document) order.
    rows: BTreeMap<Option<String>, Vec<IdEntry>>,
}

/// Counters exposing how much work probes performed (an I/O-cost proxy for
/// the experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathIndexStats {
    /// Number of `lookup_*` calls.
    pub probes: u64,
    /// Number of (Path, Value) rows read.
    pub rows_read: u64,
    /// Number of ID entries returned.
    pub entries_returned: u64,
}

/// The corpus-wide Path-Values index.
#[derive(Debug, Default)]
pub struct PathIndex {
    /// Distinct full data paths, e.g. `/books/book/isbn`.
    paths: Vec<String>,
    path_ids: HashMap<String, u32>,
    tables: Vec<PathRows>,
    probes: AtomicU64,
    rows_read: AtomicU64,
    entries_returned: AtomicU64,
}

impl PathIndex {
    /// Build the index over every document in the corpus.
    pub fn build(corpus: &Corpus) -> Self {
        let mut idx = PathIndex::default();
        for doc in corpus.docs() {
            idx.add_document(doc);
        }
        idx
    }

    /// Index a single document (exposed for incremental tests).
    pub fn add_document(&mut self, doc: &Document) {
        let Some(root) = doc.root() else { return };
        // Walk in document order, maintaining the current path string.
        let mut path_stack: Vec<u32> = Vec::new();
        let mut path_buf = String::new();
        let mut depth_stack: Vec<usize> = Vec::new();
        let mut last_depth = 0usize;
        for node_id in doc.subtree(root) {
            let node = doc.node(node_id);
            let depth = node.dewey.len();
            while last_depth >= depth {
                path_buf.truncate(depth_stack.pop().unwrap());
                path_stack.pop();
                last_depth -= 1;
            }
            depth_stack.push(path_buf.len());
            path_buf.push('/');
            path_buf.push_str(doc.tag_name(node.tag));
            let pid = self.intern_path(&path_buf);
            path_stack.push(pid);
            last_depth = depth;

            let value = node.text.clone();
            let entry = IdEntry { id: node.dewey.clone(), byte_len: node.byte_len };
            self.tables[pid as usize].rows.entry(value).or_default().push(entry);
        }
        // Re-sort rows: multiple documents may interleave ordinals.
        for t in &mut self.tables {
            for row in t.rows.values_mut() {
                row.sort_by(|a, b| a.id.cmp(&b.id));
            }
        }
    }

    fn intern_path(&mut self, path: &str) -> u32 {
        if let Some(id) = self.path_ids.get(path) {
            return *id;
        }
        let id = self.paths.len() as u32;
        self.paths.push(path.to_string());
        self.path_ids.insert(path.to_string(), id);
        self.tables.push(PathRows::default());
        id
    }

    /// Distinct full data paths in the dictionary.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.paths.iter().map(|s| s.as_str())
    }

    /// All full data paths matching a pattern (dictionary expansion).
    pub fn expand_pattern(&self, pattern: &PathPattern) -> Vec<u32> {
        (0..self.paths.len() as u32)
            .filter(|pid| pattern.matches_path_string(&self.paths[*pid as usize]))
            .collect()
    }

    /// `LookUpID(p)` of Fig. 7: all element IDs on paths matching `pattern`
    /// that satisfy every predicate in `preds`, merged in Dewey order.
    /// Values are returned too when present — the index stores them in the
    /// key, so they are free.
    pub fn lookup(&self, pattern: &PathPattern, preds: &[ValuePredicate]) -> ProbeResult {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let mut lists: Vec<ProbeResult> = Vec::new();
        for pid in self.expand_pattern(pattern) {
            lists.push(self.scan_rows(pid, preds));
        }
        let merged = merge_dewey_ordered(lists);
        self.entries_returned.fetch_add(merged.len() as u64, Ordering::Relaxed);
        merged
    }

    /// Probe a single full data path (by dictionary id) under predicates.
    /// Exposed so PDT generation can keep per-path provenance (which full
    /// path produced each entry) for QPT-node alignment.
    pub fn scan_path(&self, path_id: u32, preds: &[ValuePredicate]) -> ProbeResult {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let out = self.scan_rows(path_id, preds);
        self.entries_returned.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// The dictionary string for a path id.
    pub fn path_string(&self, path_id: u32) -> &str {
        &self.paths[path_id as usize]
    }

    fn scan_rows(&self, pid: u32, preds: &[ValuePredicate]) -> ProbeResult {
        let table = &self.tables[pid as usize];
        // Equality probes hit the composite (Path, Value) key directly —
        // a point lookup, not a scan.
        if let [ValuePredicate::Eq(v)] = preds {
            let mut lists: Vec<ProbeResult> = Vec::new();
            if let Some(row) = table.rows.get(&Some(v.clone())) {
                self.rows_read.fetch_add(1, Ordering::Relaxed);
                lists.push(row.iter().map(|e| (e.clone(), Some(v.clone()))).collect());
            }
            // Numeric aliases ("07" = "7") require a scan; only do it when
            // the probe value is numeric.
            if v.trim().parse::<f64>().is_ok() {
                let mut extra: ProbeResult = Vec::new();
                for (val, row) in &table.rows {
                    let Some(val) = val else { continue };
                    if val != v && ValuePredicate::Eq(v.clone()).eval(val) {
                        self.rows_read.fetch_add(1, Ordering::Relaxed);
                        extra.extend(row.iter().map(|e| (e.clone(), Some(val.clone()))));
                    }
                }
                if !extra.is_empty() {
                    lists.push(extra);
                }
            }
            return merge_dewey_ordered(lists);
        }
        let mut out: ProbeResult = Vec::new();
        for (val, row) in &table.rows {
            self.rows_read.fetch_add(1, Ordering::Relaxed);
            if preds.is_empty() {
                out.extend(row.iter().map(|e| (e.clone(), val.clone())));
            } else {
                let Some(val) = val else { continue };
                if preds.iter().all(|p| p.eval(val)) {
                    out.extend(row.iter().map(|e| (e.clone(), Some(val.clone()))));
                }
            }
        }
        out.sort_by(|a, b| a.0.id.cmp(&b.0.id));
        out
    }

    /// Convenience: IDs only.
    pub fn lookup_ids(&self, pattern: &PathPattern) -> Vec<DeweyId> {
        self.lookup(pattern, &[]).into_iter().map(|(e, _)| e.id).collect()
    }

    /// Snapshot of the probe-work counters.
    pub fn stats(&self) -> PathIndexStats {
        PathIndexStats {
            probes: self.probes.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            entries_returned: self.entries_returned.load(Ordering::Relaxed),
        }
    }

    /// Reset the probe-work counters.
    pub fn reset_stats(&self) {
        self.probes.store(0, Ordering::Relaxed);
        self.rows_read.store(0, Ordering::Relaxed);
        self.entries_returned.store(0, Ordering::Relaxed);
    }

    /// Approximate in-memory size of the index, in bytes.
    pub fn approx_byte_size(&self) -> u64 {
        let mut total = 0u64;
        for (p, t) in self.paths.iter().zip(&self.tables) {
            total += p.len() as u64;
            for (v, row) in &t.rows {
                total += v.as_ref().map(|s| s.len() as u64).unwrap_or(0);
                total += row.iter().map(|e| 4 * e.id.len() as u64 + 4).sum::<u64>();
            }
        }
        total
    }
}

/// K-way merge of Dewey-ordered lists.
fn merge_dewey_ordered(mut lists: Vec<ProbeResult>) -> ProbeResult {
    lists.retain(|l| !l.is_empty());
    match lists.len() {
        0 => Vec::new(),
        1 => lists.pop().unwrap(),
        _ => {
            let total = lists.iter().map(|l| l.len()).sum();
            let mut out: ProbeResult = Vec::with_capacity(total);
            let mut cursors = vec![0usize; lists.len()];
            loop {
                let mut min: Option<usize> = None;
                for (i, l) in lists.iter().enumerate() {
                    if cursors[i] < l.len()
                        && min
                            .map(|m| l[cursors[i]].0.id < lists[m][cursors[m]].0.id)
                            .unwrap_or(true)
                    {
                        min = Some(i);
                    }
                }
                match min {
                    Some(i) => {
                        out.push(lists[i][cursors[i]].clone());
                        cursors[i] += 1;
                    }
                    None => break,
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>XML Web Services</title><year>1996</year></book>\
               <book><isbn>222</isbn><title>AI</title><year>2002</year></book>\
               <shelf><book><isbn>333</isbn><year>1990</year></book></shelf>\
             </books>",
        )
        .unwrap();
        c
    }

    fn pat(s: &str) -> PathPattern {
        PathPattern::parse(s).unwrap()
    }

    #[test]
    fn plain_path_probe_returns_ids_and_values_in_dewey_order() {
        let idx = PathIndex::build(&corpus());
        let res = idx.lookup(&pat("/books/book/isbn"), &[]);
        let got: Vec<(String, Option<String>)> =
            res.iter().map(|(e, v)| (e.id.to_string(), v.clone())).collect();
        assert_eq!(
            got,
            vec![
                ("1.1.1".to_string(), Some("111".to_string())),
                ("1.2.1".to_string(), Some("222".to_string())),
            ]
        );
    }

    #[test]
    fn descendant_axis_expands_against_path_dictionary() {
        let idx = PathIndex::build(&corpus());
        let ids: Vec<String> =
            idx.lookup_ids(&pat("/books//book/isbn")).iter().map(|d| d.to_string()).collect();
        assert_eq!(ids, vec!["1.1.1", "1.2.1", "1.3.1.1"]);
    }

    #[test]
    fn equality_predicate_is_a_point_probe() {
        let idx = PathIndex::build(&corpus());
        idx.reset_stats();
        let res = idx.lookup(
            &pat("/books/book/isbn"),
            std::slice::from_ref(&ValuePredicate::Eq("222".into())),
        );
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0.id.to_string(), "1.2.1");
        // Point probe reads at most the matching row(s), not the whole path.
        assert!(idx.stats().rows_read <= 2, "stats: {:?}", idx.stats());
    }

    #[test]
    fn range_predicates_filter_numerically() {
        let idx = PathIndex::build(&corpus());
        let res = idx.lookup(
            &pat("/books//book/year"),
            std::slice::from_ref(&ValuePredicate::Gt("1995".into())),
        );
        let ids: Vec<String> = res.iter().map(|(e, _)| e.id.to_string()).collect();
        assert_eq!(ids, vec!["1.1.3", "1.2.3"]);
        let res = idx.lookup(
            &pat("/books//book/year"),
            std::slice::from_ref(&ValuePredicate::Lt("1995".into())),
        );
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].1.as_deref(), Some("1990"));
    }

    #[test]
    fn non_leaf_rows_have_null_values() {
        let idx = PathIndex::build(&corpus());
        let res = idx.lookup(&pat("/books/book"), &[]);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|(_, v)| v.is_none()));
    }

    #[test]
    fn byte_lengths_are_carried_in_entries() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let res = idx.lookup(&pat("/books/book/isbn"), &[]);
        let doc = c.doc("books.xml").unwrap();
        for (e, _) in &res {
            let n = doc.node_by_dewey(&e.id).unwrap();
            assert_eq!(e.byte_len, doc.node(n).byte_len);
        }
    }

    #[test]
    fn unknown_path_returns_empty() {
        let idx = PathIndex::build(&corpus());
        assert!(idx.lookup(&pat("/books/magazine"), &[]).is_empty());
    }

    #[test]
    fn multi_document_merge_is_globally_dewey_ordered() {
        let mut c = corpus();
        c.add_parsed("more.xml", "<books><book><isbn>999</isbn></book></books>").unwrap();
        let idx = PathIndex::build(&c);
        let ids = idx.lookup_ids(&pat("/books/book/isbn"));
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), 3);
    }
}
