//! The Path-Values index (paper Fig. 5).
//!
//! One row per unique *(Path, Value)* pair; each row stores the sorted
//! list of Dewey IDs of elements on that path with that atomic value
//! (elements without an atomic value go into the row with a `None`
//! value), block-compressed ([`crate::postings::BlockList`]) with the
//! element's subtree byte length as the per-entry payload. A B-tree over
//! the composite `(Path, Value)` key supports:
//!
//! * exact probes `(path, 'Jane')` for equality predicates,
//! * prefix scans by `path` alone (retrieving *all* rows for the path,
//!   which yields both IDs and values in one probe — the observation that
//!   lets PDT generation materialize `v`-annotated values for free),
//! * range filtering for `<`/`>` predicates.
//!
//! Patterns with `//` axes are expanded against the *path dictionary* of
//! distinct full data paths.
//!
//! Probing has two shapes. [`PathIndex::lookup`] materializes a merged
//! [`ProbeResult`] (legacy/diagnostic path). The engine instead calls
//! [`PathIndex::select_rows`], which evaluates value predicates **once
//! per row** (values live in the key, so this is row metadata, not a
//! scan) and returns [`PlannedRow`] handles; entries are only decoded
//! when the returned rows' [`EntryCursor`]s are consumed by the PDT
//! merge, and that consumption is what the work counters charge.

use crate::cursor::{EntryCursor, ScanCounters};
use crate::footprint::{Footprint, IndexFootprint};
use crate::pattern::PathPattern;
use crate::postings::{BlockCursor, BlockList};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vxv_xml::value::compare_atomic;
use vxv_xml::{Corpus, DeweyId, Document};

/// One indexed element occurrence: its Dewey ID plus the byte length of its
/// serialized subtree (stored index-side so PDTs can carry `len(e)` without
/// touching base data).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdEntry {
    /// The element's Dewey identifier.
    pub id: DeweyId,
    /// Byte length of the element's serialized subtree.
    pub byte_len: u32,
}

/// A value predicate pushed into an index probe (QPT leaf predicate).
#[derive(Clone, Debug, PartialEq)]
pub enum ValuePredicate {
    /// Value equals the operand (under [`compare_atomic`] semantics).
    Eq(String),
    /// Value is less than the operand.
    Lt(String),
    /// Value is greater than the operand.
    Gt(String),
}

impl ValuePredicate {
    /// Does an atomic value satisfy this predicate?
    pub fn eval(&self, value: &str) -> bool {
        use std::cmp::Ordering::*;
        match self {
            ValuePredicate::Eq(v) => compare_atomic(value, v) == Equal,
            ValuePredicate::Lt(v) => compare_atomic(value, v) == Less,
            ValuePredicate::Gt(v) => compare_atomic(value, v) == Greater,
        }
    }
}

/// The result of a materialized probe: Dewey-ordered entries, each
/// optionally carrying the element's atomic value.
pub type ProbeResult = Vec<(IdEntry, Option<String>)>;

#[derive(Clone, Debug, Default)]
struct PathRows {
    /// Rows keyed by value; `None` collects elements without atomic values.
    /// Each row's ID list is compressed, in Dewey (document) order.
    rows: BTreeMap<Option<String>, Arc<BlockList>>,
}

/// Counters exposing how much work probes performed (an I/O-cost proxy for
/// the experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathIndexStats {
    /// Number of `lookup`/`scan_path`/`select_rows` calls.
    pub probes: u64,
    /// Number of (Path, Value) rows read or selected.
    pub rows_read: u64,
    /// Number of ID entries decoded (cursor consumption or materialized
    /// probes).
    pub entries_returned: u64,
    /// Compressed blocks skipped by cursor seeks.
    pub blocks_skipped: u64,
    /// Compressed bytes decoded.
    pub bytes_decoded: u64,
}

impl std::ops::Add for PathIndexStats {
    type Output = PathIndexStats;

    fn add(self, rhs: PathIndexStats) -> PathIndexStats {
        PathIndexStats {
            probes: self.probes + rhs.probes,
            rows_read: self.rows_read + rhs.rows_read,
            entries_returned: self.entries_returned + rhs.entries_returned,
            blocks_skipped: self.blocks_skipped + rhs.blocks_skipped,
            bytes_decoded: self.bytes_decoded + rhs.bytes_decoded,
        }
    }
}

/// The corpus-wide Path-Values index.
#[derive(Debug, Default)]
pub struct PathIndex {
    /// Distinct full data paths, e.g. `/books/book/isbn`.
    paths: Vec<String>,
    path_ids: HashMap<String, u32>,
    tables: Vec<PathRows>,
    /// Raw rows staged per path until [`Self::finalize`] compresses them.
    staging: Vec<BTreeMap<Option<String>, Vec<IdEntry>>>,
    probes: AtomicU64,
    rows_read: AtomicU64,
    /// Shared with [`PlannedRow`]s so detached cursor plans still charge
    /// their consumption here.
    scan: Arc<ScanCounters>,
}

impl PathIndex {
    /// Build the index over every document in the corpus.
    pub fn build(corpus: &Corpus) -> Self {
        let mut idx = PathIndex::default();
        for doc in corpus.docs() {
            idx.stage_document(doc);
        }
        idx.finalize();
        idx
    }

    /// Index a single document (exposed for incremental tests). The
    /// index is immediately queryable afterwards.
    pub fn add_document(&mut self, doc: &Document) {
        self.stage_document(doc);
        self.finalize();
    }

    fn stage_document(&mut self, doc: &Document) {
        let Some(root) = doc.root() else { return };
        // Walk in document order, maintaining the current path string.
        let mut path_stack: Vec<u32> = Vec::new();
        let mut path_buf = String::new();
        let mut depth_stack: Vec<usize> = Vec::new();
        let mut last_depth = 0usize;
        for node_id in doc.subtree(root) {
            let node = doc.node(node_id);
            let depth = node.dewey.len();
            while last_depth >= depth {
                path_buf.truncate(depth_stack.pop().unwrap());
                path_stack.pop();
                last_depth -= 1;
            }
            depth_stack.push(path_buf.len());
            path_buf.push('/');
            path_buf.push_str(doc.tag_name(node.tag));
            let pid = self.intern_path(&path_buf);
            path_stack.push(pid);
            last_depth = depth;

            let value = node.text.clone();
            let entry = IdEntry { id: node.dewey.clone(), byte_len: node.byte_len };
            self.staging[pid as usize].entry(value).or_default().push(entry);
        }
    }

    /// Compress staged rows into the tables, re-sorting rows that already
    /// exist (multiple documents may interleave ordinals).
    fn finalize(&mut self) {
        for (pid, staged) in self.staging.iter_mut().enumerate() {
            for (value, new_entries) in std::mem::take(staged) {
                let table = &mut self.tables[pid];
                let mut entries: Vec<(DeweyId, u32)> = match table.rows.remove(&value) {
                    Some(existing) => existing.decode_all(),
                    None => Vec::new(),
                };
                entries.extend(new_entries.into_iter().map(|e| (e.id, e.byte_len)));
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                table.rows.insert(value, Arc::new(BlockList::encode(&entries)));
            }
        }
    }

    fn intern_path(&mut self, path: &str) -> u32 {
        if let Some(id) = self.path_ids.get(path) {
            return *id;
        }
        let id = self.paths.len() as u32;
        self.paths.push(path.to_string());
        self.path_ids.insert(path.to_string(), id);
        self.tables.push(PathRows::default());
        self.staging.push(BTreeMap::new());
        id
    }

    /// Merge several indices over **disjoint** document sets into one.
    /// Path dictionaries are re-interned in first-seen order; every
    /// (Path, Value) row's entries are decoded, concatenated, re-sorted
    /// in Dewey order and re-encoded — byte-identical to a single build
    /// over the union of the documents.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a PathIndex>) -> PathIndex {
        let mut idx = PathIndex::default();
        for part in parts {
            for (pid, path) in part.paths.iter().enumerate() {
                let new_pid = idx.intern_path(path) as usize;
                for (value, list) in &part.tables[pid].rows {
                    idx.staging[new_pid].entry(value.clone()).or_default().extend(
                        list.decode_all()
                            .into_iter()
                            .map(|(id, byte_len)| IdEntry { id, byte_len }),
                    );
                }
            }
        }
        idx.finalize();
        idx
    }

    /// Rebuild an index from its parts (persistence).
    pub(crate) fn from_parts(
        paths: Vec<String>,
        tables_rows: Vec<Vec<(Option<String>, BlockList)>>,
    ) -> Self {
        let path_ids =
            paths.iter().enumerate().map(|(i, p)| (p.clone(), i as u32)).collect::<HashMap<_, _>>();
        let tables = tables_rows
            .into_iter()
            .map(|rows| PathRows {
                rows: rows.into_iter().map(|(v, l)| (v, Arc::new(l))).collect(),
            })
            .collect::<Vec<_>>();
        let staging = vec![BTreeMap::new(); tables.len()];
        PathIndex { paths, path_ids, tables, staging, ..PathIndex::default() }
    }

    /// An immutable snapshot sharing this index's compressed rows —
    /// every row list is behind an `Arc`, so this copies only the path
    /// dictionary and row directories. Work counters start fresh (the
    /// same convention as merged segments). The memtable uses this to
    /// publish a searchable segment per append without re-encoding.
    pub fn clone_shared(&self) -> PathIndex {
        debug_assert!(self.staging.iter().all(|s| s.is_empty()), "finalize before snapshotting");
        PathIndex {
            paths: self.paths.clone(),
            path_ids: self.path_ids.clone(),
            tables: self.tables.clone(),
            staging: vec![BTreeMap::new(); self.tables.len()],
            ..PathIndex::default()
        }
    }

    /// The per-path rows (persistence).
    pub(crate) fn rows_of(&self, pid: u32) -> impl Iterator<Item = (&Option<String>, &BlockList)> {
        self.tables[pid as usize].rows.iter().map(|(v, l)| (v, l.as_ref()))
    }

    /// Distinct full data paths in the dictionary.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.paths.iter().map(|s| s.as_str())
    }

    /// Heap bytes this index's row buffers actually own: zero for rows
    /// decoding out of a shared file mapping (the map-vs-owned residency
    /// split `vxv inspect` reports).
    pub fn owned_data_bytes(&self) -> u64 {
        self.tables.iter().flat_map(|t| t.rows.iter()).map(|(_, l)| l.owned_data_bytes()).sum()
    }

    /// All full data paths matching a pattern (dictionary expansion).
    pub fn expand_pattern(&self, pattern: &PathPattern) -> Vec<u32> {
        (0..self.paths.len() as u32)
            .filter(|pid| pattern.matches_path_string(&self.paths[*pid as usize]))
            .collect()
    }

    /// `LookUpID(p)` of Fig. 7: all element IDs on paths matching `pattern`
    /// that satisfy every predicate in `preds`, merged in Dewey order.
    /// Values are returned too when present — the index stores them in the
    /// key, so they are free. Materializes the result; the engine's PDT
    /// path uses [`Self::select_rows`] instead.
    pub fn lookup(&self, pattern: &PathPattern, preds: &[ValuePredicate]) -> ProbeResult {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let mut out: ProbeResult = Vec::new();
        for pid in self.expand_pattern(pattern) {
            for row in self.matching_rows(pid, preds) {
                out.extend(
                    row.list
                        .decode_all()
                        .into_iter()
                        .map(|(id, byte_len)| (IdEntry { id, byte_len }, row.value.clone())),
                );
            }
        }
        out.sort_by(|a, b| a.0.id.cmp(&b.0.id));
        self.scan.add_entries(out.len() as u64);
        out
    }

    /// Probe a single full data path (by dictionary id) under predicates,
    /// materializing the result.
    pub fn scan_path(&self, path_id: u32, preds: &[ValuePredicate]) -> ProbeResult {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let mut out: ProbeResult = Vec::new();
        for row in self.matching_rows(path_id, preds) {
            out.extend(
                row.list
                    .decode_all()
                    .into_iter()
                    .map(|(id, byte_len)| (IdEntry { id, byte_len }, row.value.clone())),
            );
        }
        out.sort_by(|a, b| a.0.id.cmp(&b.0.id));
        self.scan.add_entries(out.len() as u64);
        out
    }

    /// Select the rows of one full data path whose value satisfies every
    /// predicate — the probe the engine plans against. Row selection is
    /// key-level work (counted in `rows_read`); the entries themselves
    /// stay compressed until the returned rows' cursors are consumed.
    pub fn select_rows(&self, path_id: u32, preds: &[ValuePredicate]) -> Vec<PlannedRow> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.matching_rows(path_id, preds)
    }

    /// Shared row-selection logic: equality probes hit the composite
    /// (Path, Value) key directly (a point lookup); everything else walks
    /// the path's row keys.
    fn matching_rows(&self, pid: u32, preds: &[ValuePredicate]) -> Vec<PlannedRow> {
        let table = &self.tables[pid as usize];
        let mut out: Vec<PlannedRow> = Vec::new();
        let mut push = |value: &Option<String>, list: &Arc<BlockList>| {
            self.rows_read.fetch_add(1, Ordering::Relaxed);
            out.push(PlannedRow {
                path_id: pid,
                value: value.clone(),
                list: Arc::clone(list),
                counters: Arc::clone(&self.scan),
            });
        };
        if let [ValuePredicate::Eq(v)] = preds {
            if let Some(row) = table.rows.get(&Some(v.clone())) {
                push(&Some(v.clone()), row);
            }
            // Numeric aliases ("07" = "7") require a key scan; only do it
            // when the probe value is numeric.
            if v.trim().parse::<f64>().is_ok() {
                for (val, row) in &table.rows {
                    let Some(vs) = val else { continue };
                    if vs != v && ValuePredicate::Eq(v.clone()).eval(vs) {
                        push(val, row);
                    }
                }
            }
            return out;
        }
        for (val, row) in &table.rows {
            if preds.is_empty() {
                push(val, row);
            } else {
                let Some(vs) = val else { continue };
                if preds.iter().all(|p| p.eval(vs)) {
                    push(val, row);
                }
            }
        }
        out
    }

    /// The dictionary string for a path id.
    pub fn path_string(&self, path_id: u32) -> &str {
        &self.paths[path_id as usize]
    }

    /// Convenience: IDs only.
    pub fn lookup_ids(&self, pattern: &PathPattern) -> Vec<DeweyId> {
        self.lookup(pattern, &[]).into_iter().map(|(e, _)| e.id).collect()
    }

    /// Snapshot of the probe-work counters.
    pub fn stats(&self) -> PathIndexStats {
        PathIndexStats {
            probes: self.probes.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            entries_returned: self.scan.entries.load(Ordering::Relaxed),
            blocks_skipped: self.scan.blocks_skipped.load(Ordering::Relaxed),
            bytes_decoded: self.scan.bytes_decoded.load(Ordering::Relaxed),
        }
    }

    /// Reset the probe-work counters.
    pub fn reset_stats(&self) {
        self.probes.store(0, Ordering::Relaxed);
        self.rows_read.store(0, Ordering::Relaxed);
        self.scan.reset();
    }
}

impl IndexFootprint for PathIndex {
    fn footprint(&self) -> Footprint {
        let mut fp = Footprint::default();
        for (p, t) in self.paths.iter().zip(&self.tables) {
            fp.compressed_bytes += p.len() as u64;
            fp.uncompressed_bytes += p.len() as u64;
            for (v, row) in &t.rows {
                let key = v.as_ref().map(|s| s.len() as u64).unwrap_or(0);
                fp.compressed_bytes += key + row.compressed_bytes();
                fp.uncompressed_bytes += key + row.uncompressed_bytes();
                fp.entries += row.len();
            }
        }
        fp
    }
}

/// One row selected by [`PathIndex::select_rows`]: a cheap, shareable
/// handle into the index's compressed storage. The row's value applies
/// to every entry (it is part of the composite key); entries are decoded
/// only when a cursor opened from the handle is consumed, and that work
/// is charged to the owning index's counters even after the index borrow
/// ends.
#[derive(Clone, Debug)]
pub struct PlannedRow {
    /// Dictionary id of the full data path this row belongs to.
    pub path_id: u32,
    /// The row's atomic value (`None` for non-leaf elements).
    pub value: Option<String>,
    list: Arc<BlockList>,
    counters: Arc<ScanCounters>,
}

impl PlannedRow {
    /// Total entries in the row (all documents).
    pub fn len(&self) -> u64 {
        self.list.len()
    }

    /// True when the row holds no entries.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Entries with `lo <= id < hi`, from block metadata plus boundary
    /// decodes (uncounted: this is plan introspection, not a probe).
    pub fn count_range(&self, lo: &DeweyId, hi: &DeweyId) -> u64 {
        self.list.count_range(lo, hi)
    }

    /// Open a cursor over the whole row.
    pub fn cursor(&self) -> RowCursor<'_> {
        RowCursor { inner: self.list.cursor(Some(&self.counters)), end: None, safe: 0 }
    }

    /// Open a cursor restricted to the document with Dewey root
    /// `root_ordinal`: seeks to the document's range and stops at its
    /// end.
    pub fn cursor_for_doc(&self, root_ordinal: u32) -> RowCursor<'_> {
        self.cursor_in(&DocBounds::for_root(root_ordinal))
    }

    /// As [`Self::cursor_for_doc`] with the document range precomputed —
    /// a merge opening hundreds of row cursors for one document builds
    /// the bounds once instead of twice per row.
    pub fn cursor_in(&self, bounds: &DocBounds) -> RowCursor<'_> {
        let mut inner = self.list.cursor(Some(&self.counters));
        inner.seek_raw(&bounds.lo);
        RowCursor { inner, end: Some(bounds.hi.clone()), safe: 0 }
    }
}

/// Precomputed `[lo, hi)` Dewey range of one document, shared across the
/// many row-cursor opens a single merge performs.
#[derive(Clone, Debug)]
pub struct DocBounds {
    /// Root of the document (inclusive lower bound).
    pub lo: DeweyId,
    /// Upper bound of the document's subtree (exclusive).
    pub hi: DeweyId,
}

impl DocBounds {
    /// Bounds of the document whose Dewey root ordinal is `root_ordinal`.
    pub fn for_root(root_ordinal: u32) -> Self {
        let lo = DeweyId::root(root_ordinal);
        let hi = lo.subtree_upper_bound();
        DocBounds { lo, hi }
    }
}

/// [`EntryCursor`] over one compressed row, optionally bounded.
#[derive(Debug)]
pub struct RowCursor<'a> {
    inner: BlockCursor<'a>,
    end: Option<DeweyId>,
    /// Upcoming entries proven `< end` by the block directory — served
    /// without any per-entry bound compare.
    safe: usize,
}

impl RowCursor<'_> {
    /// Serve one decoded block's worth of entries to `f` as raw
    /// `(components, byte_len)` pairs, bounded by the cursor's end.
    /// Returns the number served; 0 means the cursor is exhausted (or
    /// has reached its bound). The batch face of [`EntryCursor::next`]:
    /// a merge that buffers one block per stream touches cursor state
    /// once per block instead of once per entry.
    pub fn next_block<F: FnMut(&[u32], u32)>(&mut self, f: F) -> usize {
        self.safe = 0;
        self.inner.drain_block(self.end.as_ref(), f)
    }
}

impl EntryCursor for RowCursor<'_> {
    fn next(&mut self) -> Option<IdEntry> {
        if self.safe == 0 {
            let (id, _) = self.inner.peek()?;
            match &self.end {
                Some(end) => {
                    if *id >= *end {
                        return None;
                    }
                    self.safe = self.inner.run_below(end).max(1);
                }
                None => self.safe = usize::MAX,
            }
        }
        self.safe -= 1;
        let (id, byte_len) = self.inner.next_raw()?;
        Some(IdEntry { id, byte_len })
    }

    fn seek(&mut self, target: &DeweyId) {
        self.safe = 0;
        self.inner.seek_raw(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>XML Web Services</title><year>1996</year></book>\
               <book><isbn>222</isbn><title>AI</title><year>2002</year></book>\
               <shelf><book><isbn>333</isbn><year>1990</year></book></shelf>\
             </books>",
        )
        .unwrap();
        c
    }

    fn pat(s: &str) -> PathPattern {
        PathPattern::parse(s).unwrap()
    }

    #[test]
    fn plain_path_probe_returns_ids_and_values_in_dewey_order() {
        let idx = PathIndex::build(&corpus());
        let res = idx.lookup(&pat("/books/book/isbn"), &[]);
        let got: Vec<(String, Option<String>)> =
            res.iter().map(|(e, v)| (e.id.to_string(), v.clone())).collect();
        assert_eq!(
            got,
            vec![
                ("1.1.1".to_string(), Some("111".to_string())),
                ("1.2.1".to_string(), Some("222".to_string())),
            ]
        );
    }

    #[test]
    fn descendant_axis_expands_against_path_dictionary() {
        let idx = PathIndex::build(&corpus());
        let ids: Vec<String> =
            idx.lookup_ids(&pat("/books//book/isbn")).iter().map(|d| d.to_string()).collect();
        assert_eq!(ids, vec!["1.1.1", "1.2.1", "1.3.1.1"]);
    }

    #[test]
    fn equality_predicate_is_a_point_probe() {
        let idx = PathIndex::build(&corpus());
        idx.reset_stats();
        let res = idx.lookup(
            &pat("/books/book/isbn"),
            std::slice::from_ref(&ValuePredicate::Eq("222".into())),
        );
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0.id.to_string(), "1.2.1");
        // Point probe reads at most the matching row(s), not the whole path.
        assert!(idx.stats().rows_read <= 2, "stats: {:?}", idx.stats());
    }

    #[test]
    fn range_predicates_filter_numerically() {
        let idx = PathIndex::build(&corpus());
        let res = idx.lookup(
            &pat("/books//book/year"),
            std::slice::from_ref(&ValuePredicate::Gt("1995".into())),
        );
        let ids: Vec<String> = res.iter().map(|(e, _)| e.id.to_string()).collect();
        assert_eq!(ids, vec!["1.1.3", "1.2.3"]);
        let res = idx.lookup(
            &pat("/books//book/year"),
            std::slice::from_ref(&ValuePredicate::Lt("1995".into())),
        );
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].1.as_deref(), Some("1990"));
    }

    #[test]
    fn non_leaf_rows_have_null_values() {
        let idx = PathIndex::build(&corpus());
        let res = idx.lookup(&pat("/books/book"), &[]);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|(_, v)| v.is_none()));
    }

    #[test]
    fn byte_lengths_are_carried_in_entries() {
        let c = corpus();
        let idx = PathIndex::build(&c);
        let res = idx.lookup(&pat("/books/book/isbn"), &[]);
        let doc = c.doc("books.xml").unwrap();
        for (e, _) in &res {
            let n = doc.node_by_dewey(&e.id).unwrap();
            assert_eq!(e.byte_len, doc.node(n).byte_len);
        }
    }

    #[test]
    fn unknown_path_returns_empty() {
        let idx = PathIndex::build(&corpus());
        assert!(idx.lookup(&pat("/books/magazine"), &[]).is_empty());
    }

    #[test]
    fn multi_document_merge_is_globally_dewey_ordered() {
        let mut c = corpus();
        c.add_parsed("more.xml", "<books><book><isbn>999</isbn></book></books>").unwrap();
        let idx = PathIndex::build(&c);
        let ids = idx.lookup_ids(&pat("/books/book/isbn"));
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn incremental_add_document_matches_bulk_build() {
        let c = {
            let mut c = corpus();
            c.add_parsed("more.xml", "<books><book><isbn>999</isbn></book></books>").unwrap();
            c
        };
        let bulk = PathIndex::build(&c);
        let mut incr = PathIndex::default();
        for doc in c.docs() {
            incr.add_document(doc);
        }
        let p = pat("/books//book/isbn");
        assert_eq!(bulk.lookup(&p, &[]), incr.lookup(&p, &[]));
    }

    #[test]
    fn selected_rows_stream_the_same_entries_lookup_materializes() {
        use crate::cursor::collect_entries;
        let idx = PathIndex::build(&corpus());
        let pid = idx.expand_pattern(&pat("/books/book/year"))[0];
        let pred = [ValuePredicate::Gt("1995".into())];
        let materialized = idx.scan_path(pid, &pred);
        let mut streamed: Vec<(IdEntry, Option<String>)> = Vec::new();
        for row in idx.select_rows(pid, &pred) {
            for e in collect_entries(row.cursor()) {
                streamed.push((e, row.value.clone()));
            }
        }
        streamed.sort_by(|a, b| a.0.id.cmp(&b.0.id));
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn consumption_is_charged_even_after_the_borrow_ends() {
        let idx = PathIndex::build(&corpus());
        let pid = idx.expand_pattern(&pat("/books/book/isbn"))[0];
        let rows = idx.select_rows(pid, &[]);
        idx.reset_stats();
        for row in &rows {
            let mut cur = row.cursor_for_doc(1);
            while EntryCursor::next(&mut cur).is_some() {}
        }
        assert!(idx.stats().entries_returned >= 2, "stats: {:?}", idx.stats());
    }

    #[test]
    fn doc_bounded_cursor_stays_inside_the_document() {
        let mut c = corpus();
        c.add_parsed("more.xml", "<books><book><isbn>999</isbn></book></books>").unwrap();
        let idx = PathIndex::build(&c);
        let pid = idx.expand_pattern(&pat("/books/book/isbn"))[0];
        for row in idx.select_rows(pid, &[]) {
            let mut cur = row.cursor_for_doc(2);
            let mut seen = Vec::new();
            while let Some(e) = EntryCursor::next(&mut cur) {
                seen.push(e.id.to_string());
            }
            if row.value.as_deref() == Some("999") {
                assert_eq!(seen, vec!["2.1.1"]);
            } else {
                assert!(seen.is_empty(), "doc-1 row leaked into doc 2: {seen:?}");
            }
        }
    }
}
