//! [`IndexFootprint`] — uniform size reporting for the index families.
//!
//! Experiments report index size next to access counts; with the block
//! compression of [`crate::postings`] the interesting number is the pair
//! (bytes actually held, bytes a materialized representation would
//! take). Both [`crate::InvertedIndex`] and [`crate::PathIndex`] report
//! through this trait, and the bench tables print the ratio.

/// One index's size report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Bytes actually resident: compressed entry data, block
    /// directories, and key strings.
    pub compressed_bytes: u64,
    /// Bytes an uncompressed (materialized vector) representation would
    /// occupy: 4 bytes per Dewey component + 4 payload bytes per entry,
    /// plus the same key strings.
    pub uncompressed_bytes: u64,
    /// Total entries across all lists.
    pub entries: u64,
}

impl Footprint {
    /// `compressed / uncompressed`, or 1.0 for an empty index.
    pub fn ratio(&self) -> f64 {
        if self.uncompressed_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.uncompressed_bytes as f64
        }
    }
}

impl std::ops::Add for Footprint {
    type Output = Footprint;

    fn add(self, rhs: Footprint) -> Footprint {
        Footprint {
            compressed_bytes: self.compressed_bytes + rhs.compressed_bytes,
            uncompressed_bytes: self.uncompressed_bytes + rhs.uncompressed_bytes,
            entries: self.entries + rhs.entries,
        }
    }
}

/// Anything that can report its storage footprint.
pub trait IndexFootprint {
    /// Size report over everything the index currently holds.
    fn footprint(&self) -> Footprint;
}
