//! Per-occurrence token positions alongside the tf postings — the
//! storage half of the positional query layer (phrase and proximity
//! matching).
//!
//! For every posting `(element, tf)` of a keyword, the element's text
//! holds the keyword at `tf` token ordinals (0-based positions in the
//! element's **own** token stream — positions never cross element
//! boundaries, so a phrase cannot straddle two elements). A
//! [`PositionsList`] stores those ordinals as a byte stream parallel to
//! the keyword's [`BlockList`]:
//!
//! * the stream is chunked with **exactly the tf list's block
//!   boundaries** — chunk `b` holds the concatenated position records
//!   of the entries in tf block `b`, so decoding a tf block hands over
//!   everything needed to delimit its position records;
//! * one entry's record is exactly `tf` varints: the first is the
//!   absolute token ordinal, the rest are strictly-positive deltas.
//!   Because `positions.len() == tf` **by construction**, records carry
//!   no length prefix — the tf payloads decoded from the block are the
//!   lengths;
//! * single-block lists (empty tf directory) store no chunk table at
//!   all: the whole buffer is one implicit chunk, mirroring the tf
//!   side's implicit block.
//!
//! Positions are **lazily decoded**: bag-of-words scoring never touches
//! them (tf is already in the postings), and the v5 bundle format maps
//! them as opaque DATA bytes that only a phrase/near probe pages in.
//! Decoded position bytes are charged to
//! [`ScanCounters::positions_bytes`], separately from posting bytes.
//!
//! Like every decoder in this crate, position decoding is fully
//! bounds-checked: corrupt or truncated bytes end the stream (the probe
//! sees fewer matches), they never panic or over-read — safe to point
//! at an untrusted mapping.

use crate::cursor::ScanCounters;
use crate::mapped::Bytes;
use crate::postings::{read_varint_checked, write_varint, BlockList, DecodeScratch};
use vxv_xml::DeweyId;

/// The position records of one keyword's posting list, chunked on the
/// tf list's block boundaries. See the module docs for the layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PositionsList {
    pub(crate) data: Bytes,
    /// Byte start of each chunk, parallel to the tf list's directory;
    /// empty when the tf list is a single implicit block (the whole
    /// buffer is then chunk 0).
    pub(crate) starts: Vec<u32>,
}

impl PositionsList {
    /// Encode per-entry position lists (parallel to the tf entries, in
    /// the same order) with the same chunking `BlockList::
    /// encode_with_block_size` applies: `block_entries` entries per
    /// chunk, no chunk table when everything fits one block.
    ///
    /// # Panics
    /// Panics if `block_entries` is zero or any entry's positions are
    /// not strictly increasing.
    pub fn encode(positions: &[&[u32]], block_entries: usize) -> PositionsList {
        assert!(block_entries > 0, "block size must be positive");
        let single_block = positions.len() <= block_entries;
        let mut data = Vec::new();
        let mut starts = Vec::new();
        for chunk in positions.chunks(block_entries) {
            if !single_block {
                starts.push(data.len() as u32);
            }
            for ps in chunk {
                let mut prev = 0u32;
                for (i, p) in ps.iter().enumerate() {
                    if i == 0 {
                        write_varint(&mut data, *p as u64);
                    } else {
                        assert!(*p > prev, "positions must be strictly increasing");
                        write_varint(&mut data, (*p - prev) as u64);
                    }
                    prev = *p;
                }
            }
        }
        PositionsList { data: Bytes::Owned(data), starts }
    }

    /// Total encoded bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Heap bytes actually owned (zero when mapped).
    pub fn owned_data_bytes(&self) -> u64 {
        self.data.owned_bytes()
    }

    /// The chunk table (persistence).
    pub(crate) fn starts(&self) -> &[u32] {
        &self.starts
    }

    /// Structural sanity used at load time (no decode): the chunk table
    /// must be monotone and in-bounds, and its length must match the tf
    /// list's directory.
    pub(crate) fn structure_ok(&self, tf: &BlockList) -> bool {
        if self.starts.len() != tf.blocks.len() {
            return false;
        }
        let mut prev = 0u32;
        for (i, s) in self.starts.iter().enumerate() {
            if (i == 0 && *s != 0) || *s < prev || *s as usize > self.data.len() {
                return false;
            }
            prev = *s;
        }
        true
    }

    /// Byte range of chunk `b` (of `total` chunks), or `None` when the
    /// table is inconsistent.
    fn chunk_range(&self, b: usize, total: usize) -> Option<(usize, usize)> {
        if self.starts.is_empty() {
            return (b == 0 && total <= 1).then_some((0, self.data.len()));
        }
        let s = *self.starts.get(b)? as usize;
        let e = match self.starts.get(b + 1) {
            Some(v) => *v as usize,
            None => self.data.len(),
        };
        (s <= e && e <= self.data.len()).then_some((s, e))
    }

    /// Decode chunk `b`'s records into `out`, delimited by the per-entry
    /// term frequencies `tfs` (the payloads of the decoded tf block).
    /// Returns the chunk's byte length for counter accounting, or
    /// `None` on any structural problem — corruption truncates, never
    /// panics. `out` always holds one (possibly short) span per entry.
    pub fn decode_chunk(
        &self,
        b: usize,
        total: usize,
        tfs: &[u32],
        out: &mut PositionsScratch,
    ) -> Option<u64> {
        out.clear();
        let (start, end) = self.chunk_range(b, total)?;
        let data = &self.data[start..end];
        let mut pos = 0usize;
        for &tf in tfs {
            let span_start = out.flat.len() as u32;
            let mut prev = 0u32;
            for i in 0..tf {
                let Some(v) = read_varint_checked(data, &mut pos) else {
                    out.spans.push((span_start, out.flat.len() as u32 - span_start));
                    return None;
                };
                let p = if i == 0 { v } else { prev as u64 + v };
                if p > u32::MAX as u64 || (i > 0 && v == 0) {
                    out.spans.push((span_start, out.flat.len() as u32 - span_start));
                    return None;
                }
                prev = p as u32;
                out.flat.push(prev);
            }
            out.spans.push((span_start, tf));
        }
        // A chunk with trailing bytes is inconsistent with the tf block.
        (pos == data.len()).then_some((end - start) as u64)
    }

    /// Full-decode validation against the tf list: every chunk must
    /// decode to exactly its entries' tf counts with strictly increasing
    /// positions and no slack bytes. Used by tests and legacy-style
    /// eager checks; the v5 loader is lazy like v4.
    pub fn validate(&self, tf: &BlockList) -> bool {
        if !self.starts.is_empty() && self.starts.len() != tf.blocks.len() {
            return false;
        }
        let total = tf.block_count();
        if total == 0 {
            return self.data.is_empty() && self.starts.is_empty();
        }
        let mut scratch = DecodeScratch::default();
        let mut pos_scratch = PositionsScratch::default();
        for b in 0..total {
            if !tf.decode_block(b, &mut scratch) {
                return false;
            }
            let tfs: Vec<u32> = (0..scratch.len()).map(|i| scratch.entry(i).1).collect();
            if self.decode_chunk(b, total, &tfs, &mut pos_scratch).is_none() {
                return false;
            }
        }
        true
    }
}

/// Reusable scratch for decoded position records: a flat ordinal arena
/// plus per-entry `(start, len)` spans.
#[derive(Clone, Debug, Default)]
pub struct PositionsScratch {
    flat: Vec<u32>,
    spans: Vec<(u32, u32)>,
}

impl PositionsScratch {
    /// Entries currently decoded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing is decoded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Discard decoded records, keeping allocations.
    pub fn clear(&mut self) {
        self.flat.clear();
        self.spans.clear();
    }

    /// Entry `i`'s positions (sorted ascending).
    pub fn positions(&self, i: usize) -> &[u32] {
        let (s, l) = self.spans[i];
        &self.flat[s as usize..(s + l) as usize]
    }
}

/// The in-range postings of one query word, materialized for positional
/// intersection: Dewey IDs with spans into a shared position arena.
#[derive(Clone, Debug, Default)]
pub(crate) struct RangePostings {
    pub(crate) flat: Vec<u32>,
    /// `(id, start, len)` — positions of the word in that element.
    pub(crate) entries: Vec<(DeweyId, u32, u32)>,
}

impl RangePostings {
    pub(crate) fn clear(&mut self) {
        self.flat.clear();
        self.entries.clear();
    }

    fn positions(&self, i: usize) -> &[u32] {
        let (_, s, l) = self.entries[i];
        &self.flat[s as usize..(s + l) as usize]
    }
}

/// Collect the postings of `lo <= id < hi` from `(list, positions)`
/// into `out`, decoding only the candidate blocks (and their position
/// chunks). Work is charged to `counters` like any cursor scan;
/// position bytes go to `positions_bytes`. Corrupt bytes truncate the
/// collection — never panic.
#[allow(clippy::too_many_arguments)]
pub(crate) fn collect_range(
    list: &BlockList,
    positions: &PositionsList,
    lo: &DeweyId,
    hi: &DeweyId,
    counters: Option<&ScanCounters>,
    scratch: &mut DecodeScratch,
    pos_scratch: &mut PositionsScratch,
    out: &mut RangePostings,
) {
    out.clear();
    if list.is_empty() || lo >= hi {
        return;
    }
    let total = list.block_count();
    let (first, last) = if list.blocks.is_empty() {
        (0usize, 0usize)
    } else {
        let start = list.blocks.partition_point(|m| m.max < *lo);
        if start >= list.blocks.len() {
            return;
        }
        let last = start + list.blocks[start..].partition_point(|m| m.max < *hi);
        (start, last.min(list.blocks.len() - 1))
    };
    let (lo_c, hi_c) = (lo.components(), hi.components());
    let mut tfs: Vec<u32> = Vec::new();
    for b in first..=last {
        if !list.decode_block(b, scratch) {
            return;
        }
        tfs.clear();
        tfs.extend((0..scratch.len()).map(|i| scratch.entry(i).1));
        let chunk_bytes = positions.decode_chunk(b, total, &tfs, pos_scratch);
        if let Some(c) = counters {
            c.add_positions_bytes(chunk_bytes.unwrap_or(0));
        }
        for i in 0..scratch.len() {
            let (comps, _) = scratch.entry(i);
            if let Some(c) = counters {
                c.add_entries(1);
                c.add_bytes(scratch.entry_bytes(i));
            }
            if comps >= hi_c {
                return;
            }
            if comps < lo_c {
                continue;
            }
            if i >= pos_scratch.len() {
                // Truncated position chunk: stop at what decoded.
                return;
            }
            let span_start = out.flat.len() as u32;
            let ps = pos_scratch.positions(i);
            out.flat.extend_from_slice(ps);
            out.entries.push((
                DeweyId::from_components(comps.to_vec()),
                span_start,
                ps.len() as u32,
            ));
        }
    }
}

/// Count the phrase / proximity matches of one element given each word
/// *instance*'s positions in that element (`words[i]` = positions of
/// the i-th word of the query term).
///
/// * `window == None` — **phrase**: a match is a start ordinal `s` with
///   word `i` at `s + i` for every `i` (adjacent, in order).
/// * `window == Some(w)` — **near**: a match is an occurrence `p` of
///   word 0 with every other word within `w` ordinals of `p` (unordered
///   proximity, anchored on the first word).
pub(crate) fn count_element_matches(words: &[&[u32]], window: Option<u32>) -> u32 {
    let Some((first, rest)) = words.split_first() else { return 0 };
    if words.iter().any(|w| w.is_empty()) {
        return 0;
    }
    let mut count = 0u32;
    match window {
        None => {
            'starts: for &s in *first {
                for (i, w) in rest.iter().enumerate() {
                    let want = s as u64 + i as u64 + 1;
                    if want > u32::MAX as u64 || w.binary_search(&(want as u32)).is_err() {
                        continue 'starts;
                    }
                }
                count = count.saturating_add(1);
            }
        }
        Some(win) => {
            'anchors: for &p in *first {
                for w in rest {
                    let lo = p.saturating_sub(win);
                    let at = w.partition_point(|&q| q < lo);
                    let ok = w.get(at).is_some_and(|&q| q as u64 <= p as u64 + win as u64);
                    if !ok {
                        continue 'anchors;
                    }
                }
                count = count.saturating_add(1);
            }
        }
    }
    count
}

/// Exact count of phrase / near matches of a word list inside the
/// subtree rooted at `root`: per-element position intersection summed
/// over the range. `sources[i]` is the i-th query word's `(tf list,
/// positions)` — `None` when the word is unindexed (no element can
/// match). `dedup[i]` maps word instances to distinct sources so a
/// repeated word ("the the") collects its range once.
pub(crate) fn count_subtree_matches(
    sources: &[Option<(&BlockList, &PositionsList)>],
    instance_of: &[usize],
    window: Option<u32>,
    root: &DeweyId,
    counters: Option<&ScanCounters>,
    scratch: &mut DecodeScratch,
    pos_scratch: &mut PositionsScratch,
) -> u32 {
    if instance_of.is_empty() || sources.iter().any(|s| s.is_none()) {
        return 0;
    }
    let hi = root.subtree_upper_bound();
    // Materialize each distinct word's in-range postings, cheapest list
    // first so an empty range short-circuits before the long lists pay.
    let mut order: Vec<usize> = (0..sources.len()).collect();
    order.sort_by_key(|&i| sources[i].map(|(l, _)| l.len()).unwrap_or(0));
    let mut collected: Vec<RangePostings> = vec![RangePostings::default(); sources.len()];
    for i in order {
        let (list, positions) = sources[i].expect("checked above");
        collect_range(
            list,
            positions,
            root,
            &hi,
            counters,
            scratch,
            pos_scratch,
            &mut collected[i],
        );
        if collected[i].entries.is_empty() {
            return 0;
        }
    }
    // Intersect by element: walk the first instance's elements and
    // binary-search the rest (lists are Dewey-ordered).
    let first = &collected[instance_of[0]];
    let mut total = 0u32;
    let mut word_positions: Vec<&[u32]> = Vec::with_capacity(instance_of.len());
    'elements: for ei in 0..first.entries.len() {
        let id = &first.entries[ei].0;
        word_positions.clear();
        word_positions.push(first.positions(ei));
        for &src in &instance_of[1..] {
            let c = &collected[src];
            let Ok(at) = c.entries.binary_search_by(|(eid, _, _)| eid.cmp(id)) else {
                continue 'elements;
            };
            word_positions.push(c.positions(at));
        }
        total = total.saturating_add(count_element_matches(&word_positions, window));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::BlockList;

    fn ids(list: &[(&str, &[u32])]) -> (Vec<(DeweyId, u32)>, Vec<Vec<u32>>) {
        let tf: Vec<(DeweyId, u32)> =
            list.iter().map(|(s, ps)| (s.parse().unwrap(), ps.len() as u32)).collect();
        let ps: Vec<Vec<u32>> = list.iter().map(|(_, ps)| ps.to_vec()).collect();
        (tf, ps)
    }

    fn encode_pair(list: &[(&str, &[u32])], block_entries: usize) -> (BlockList, PositionsList) {
        let (tf, ps) = ids(list);
        let tf_list = BlockList::encode_with_block_size(&tf, block_entries);
        let refs: Vec<&[u32]> = ps.iter().map(|v| v.as_slice()).collect();
        let pos = PositionsList::encode(&refs, block_entries);
        (tf_list, pos)
    }

    #[test]
    fn round_trips_across_block_boundaries() {
        let entries: Vec<(String, Vec<u32>)> =
            (0..25).map(|i| (format!("1.{i}"), vec![i, i + 3, i + 10])).collect();
        let borrowed: Vec<(&str, &[u32])> =
            entries.iter().map(|(s, p)| (s.as_str(), p.as_slice())).collect();
        let (tf, pos) = encode_pair(&borrowed, 8);
        assert!(pos.validate(&tf));
        assert_eq!(pos.starts().len(), tf.block_count());
        let mut scratch = DecodeScratch::default();
        let mut ps = PositionsScratch::default();
        let total = tf.block_count();
        let mut seen = 0usize;
        for b in 0..total {
            assert!(tf.decode_block(b, &mut scratch));
            let tfs: Vec<u32> = (0..scratch.len()).map(|i| scratch.entry(i).1).collect();
            assert!(pos.decode_chunk(b, total, &tfs, &mut ps).is_some());
            for i in 0..scratch.len() {
                assert_eq!(ps.positions(i), entries[seen].1.as_slice());
                seen += 1;
            }
        }
        assert_eq!(seen, entries.len());
    }

    #[test]
    fn single_block_lists_carry_no_chunk_table() {
        let (tf, pos) = encode_pair(&[("1.1", &[0, 2]), ("1.2", &[5])], 8);
        assert!(tf.blocks.is_empty());
        assert!(pos.starts().is_empty());
        assert!(pos.validate(&tf));
    }

    #[test]
    fn corrupt_positions_truncate_instead_of_panicking() {
        let (tf, pos) = encode_pair(&[("1.1", &[0, 2]), ("1.2", &[5])], 8);
        // Truncate the byte stream: decode_chunk reports failure.
        let truncated = PositionsList {
            data: Bytes::Owned(pos.data[..pos.data.len() - 1].to_vec()),
            starts: vec![],
        };
        assert!(!truncated.validate(&tf));
        let mut ps = PositionsScratch::default();
        assert!(truncated.decode_chunk(0, 1, &[2, 1], &mut ps).is_none());
        // Zero deltas (duplicate positions) are structural corruption.
        let dup = PositionsList { data: Bytes::Owned(vec![0, 0, 5]), starts: vec![] };
        assert!(dup.decode_chunk(0, 1, &[2, 1], &mut ps).is_none());
    }

    #[test]
    fn phrase_counts_adjacent_runs() {
        // "a b" with a at {0, 5, 9}, b at {1, 7, 10}: starts 0 and 9.
        assert_eq!(count_element_matches(&[&[0, 5, 9], &[1, 7, 10]], None), 2);
        // Three-word phrase.
        assert_eq!(count_element_matches(&[&[3], &[4], &[5]], None), 1);
        assert_eq!(count_element_matches(&[&[3], &[5], &[4]], None), 0);
        // Empty word list / missing word.
        assert_eq!(count_element_matches(&[], None), 0);
        assert_eq!(count_element_matches(&[&[1], &[]], None), 0);
    }

    #[test]
    fn near_counts_windowed_anchors() {
        // anchor word at {0, 10}; other at {3}: window 3 admits anchor 0 only.
        assert_eq!(count_element_matches(&[&[0, 10], &[3]], Some(3)), 1);
        assert_eq!(count_element_matches(&[&[0, 10], &[3]], Some(7)), 2);
        assert_eq!(count_element_matches(&[&[0, 10], &[3]], Some(2)), 0);
        // Window 0: exact co-position (never true for distinct ordinals).
        assert_eq!(count_element_matches(&[&[4], &[4]], Some(0)), 1);
    }

    #[test]
    fn subtree_matches_sum_over_elements_in_range() {
        // Two elements with "x y" phrases, one outside the probed range.
        let (xl, xp) = encode_pair(&[("1.1.1", &[0]), ("1.2.1", &[0, 4]), ("2.1", &[1])], 2);
        let (yl, yp) = encode_pair(&[("1.1.1", &[1]), ("1.2.1", &[1, 5]), ("2.1", &[0])], 2);
        let sources = vec![Some((&xl, &xp)), Some((&yl, &yp))];
        let mut scratch = DecodeScratch::default();
        let mut ps = PositionsScratch::default();
        let count = count_subtree_matches(
            &sources,
            &[0, 1],
            None,
            &"1".parse().unwrap(),
            None,
            &mut scratch,
            &mut ps,
        );
        assert_eq!(count, 3, "1.1.1 has one start, 1.2.1 has two");
        let count = count_subtree_matches(
            &sources,
            &[0, 1],
            None,
            &"2".parse().unwrap(),
            None,
            &mut scratch,
            &mut ps,
        );
        assert_eq!(count, 0, "y precedes x in 2.1 — no phrase");
    }
}
