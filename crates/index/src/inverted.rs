//! XML inverted-list indices (paper Fig. 4b).
//!
//! For each keyword we store the Dewey-ordered list of elements that
//! *directly* contain the keyword, with its term frequency in that
//! element's own text. A search structure over each list (here: binary
//! search over the sorted vector, standing in for the B-tree the paper
//! builds on top of each list) answers:
//!
//! * point probes — does element `e` directly contain `k`?
//! * subtree range probes — aggregate tf of `k` anywhere under `e`
//!   (descendant postings are contiguous because the lists are in Dewey
//!   order).

use crate::tokenize::token_counts;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use vxv_xml::{Corpus, DeweyId, Document};

/// One posting: an element that directly contains the keyword `tf` times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Posting {
    /// The element that directly contains the keyword.
    pub id: DeweyId,
    /// Occurrences within that element's own text.
    pub tf: u32,
}

/// Work counters for experiments (I/O-cost proxy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InvertedIndexStats {
    /// Number of lookup/range calls.
    pub lookups: u64,
    /// Total postings touched.
    pub postings_scanned: u64,
}

/// The corpus-wide inverted keyword index.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    lists: HashMap<String, Vec<Posting>>,
    lookups: AtomicU64,
    postings_scanned: AtomicU64,
}

impl InvertedIndex {
    /// Build the index over every document in the corpus.
    pub fn build(corpus: &Corpus) -> Self {
        let mut idx = InvertedIndex::default();
        for doc in corpus.docs() {
            idx.add_document(doc);
        }
        idx.finalize();
        idx
    }

    /// Index one document's text content.
    pub fn add_document(&mut self, doc: &Document) {
        for node_id in doc.iter() {
            let node = doc.node(node_id);
            let Some(text) = &node.text else { continue };
            for (token, count) in token_counts(text) {
                self.lists
                    .entry(token)
                    .or_default()
                    .push(Posting { id: node.dewey.clone(), tf: count });
            }
        }
    }

    /// Sort every list in Dewey order (documents may interleave ordinals).
    pub fn finalize(&mut self) {
        for list in self.lists.values_mut() {
            list.sort_by(|a, b| a.id.cmp(&b.id));
        }
    }

    /// The full posting list for a keyword (lowercased token form), in
    /// Dewey order. Empty slice if the keyword never occurs.
    pub fn postings(&self, keyword: &str) -> &[Posting] {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let list = self.lists.get(keyword).map(|v| v.as_slice()).unwrap_or(&[]);
        self.postings_scanned.fetch_add(list.len() as u64, Ordering::Relaxed);
        list
    }

    /// Document frequency: number of elements directly containing `keyword`.
    pub fn list_len(&self, keyword: &str) -> usize {
        self.lists.get(keyword).map(|v| v.len()).unwrap_or(0)
    }

    /// Aggregate term frequency of `keyword` in the subtree rooted at the
    /// element with Dewey ID `root` (inclusive) — a binary-search range
    /// probe, O(log n + occurrences).
    pub fn subtree_tf(&self, keyword: &str, root: &DeweyId) -> u32 {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let Some(list) = self.lists.get(keyword) else { return 0 };
        let lo = list.partition_point(|p| p.id < *root);
        let hi_bound = root.subtree_upper_bound();
        let mut total = 0;
        let mut scanned = 0u64;
        for p in &list[lo..] {
            if p.id >= hi_bound {
                break;
            }
            scanned += 1;
            total += p.tf;
        }
        self.postings_scanned.fetch_add(scanned, Ordering::Relaxed);
        total
    }

    /// Does the subtree rooted at `root` contain `keyword` anywhere?
    pub fn contains_in_subtree(&self, keyword: &str, root: &DeweyId) -> bool {
        self.subtree_tf(keyword, root) > 0
    }

    /// All distinct indexed keywords (unordered).
    pub fn keywords(&self) -> impl Iterator<Item = &str> {
        self.lists.keys().map(|s| s.as_str())
    }

    /// Snapshot of the work counters.
    pub fn stats(&self) -> InvertedIndexStats {
        InvertedIndexStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            postings_scanned: self.postings_scanned.load(Ordering::Relaxed),
        }
    }

    /// Reset the work counters.
    pub fn reset_stats(&self) {
        self.lookups.store(0, Ordering::Relaxed);
        self.postings_scanned.store(0, Ordering::Relaxed);
    }

    /// Approximate in-memory size, in bytes.
    pub fn approx_byte_size(&self) -> u64 {
        self.lists
            .iter()
            .map(|(k, l)| k.len() as u64 + l.iter().map(|p| 4 * p.id.len() as u64 + 4).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><title>XML Web Services</title>\
                     <review><content>all about search and XML search</content></review></book>\
               <book><title>Artificial Intelligence</title></book>\
             </books>",
        )
        .unwrap();
        c
    }

    #[test]
    fn postings_record_direct_containment_with_tf() {
        let idx = InvertedIndex::build(&corpus());
        let xml = idx.postings("xml");
        assert_eq!(xml.len(), 2);
        assert_eq!(xml[0].id.to_string(), "1.1.1");
        assert_eq!(xml[0].tf, 1);
        assert_eq!(xml[1].id.to_string(), "1.1.2.1");
        assert_eq!(xml[1].tf, 1);
        let search = idx.postings("search");
        assert_eq!(search.len(), 1);
        assert_eq!(search[0].tf, 2);
    }

    #[test]
    fn subtree_tf_aggregates_descendants() {
        let idx = InvertedIndex::build(&corpus());
        let book1: DeweyId = "1.1".parse().unwrap();
        assert_eq!(idx.subtree_tf("xml", &book1), 2);
        assert_eq!(idx.subtree_tf("search", &book1), 2);
        let book2: DeweyId = "1.2".parse().unwrap();
        assert_eq!(idx.subtree_tf("xml", &book2), 0);
        let root: DeweyId = "1".parse().unwrap();
        assert_eq!(idx.subtree_tf("intelligence", &root), 1);
    }

    #[test]
    fn subtree_range_does_not_leak_into_siblings() {
        // 1.1 vs 1.10 prefix confusion must not occur.
        let mut c = Corpus::new();
        let mut xml = String::from("<r>");
        for i in 0..12 {
            xml.push_str(&format!("<e><t>word{i} target</t></e>"));
        }
        xml.push_str("</r>");
        c.add_parsed("d", &xml).unwrap();
        let idx = InvertedIndex::build(&c);
        let e1: DeweyId = "1.1".parse().unwrap();
        assert_eq!(idx.subtree_tf("target", &e1), 1);
        assert_eq!(idx.subtree_tf("word0", &e1), 1);
        assert_eq!(idx.subtree_tf("word9", &e1), 0);
    }

    #[test]
    fn unknown_keyword_is_empty() {
        let idx = InvertedIndex::build(&corpus());
        assert!(idx.postings("nonexistent").is_empty());
        assert_eq!(idx.subtree_tf("nonexistent", &"1".parse().unwrap()), 0);
        assert!(!idx.contains_in_subtree("nonexistent", &"1".parse().unwrap()));
    }

    #[test]
    fn stats_count_work() {
        let idx = InvertedIndex::build(&corpus());
        idx.reset_stats();
        idx.postings("xml");
        idx.subtree_tf("search", &"1".parse().unwrap());
        let s = idx.stats();
        assert_eq!(s.lookups, 2);
        assert!(s.postings_scanned >= 3);
    }
}
