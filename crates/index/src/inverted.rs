//! XML inverted-list indices (paper Fig. 4b).
//!
//! For each keyword we store the Dewey-ordered list of elements that
//! *directly* contain the keyword, with its term frequency in that
//! element's own text. Lists are held block-compressed
//! ([`crate::postings::BlockList`]); consumers stream them through
//! [`PostingCursor`]s, whose per-block skip metadata answers:
//!
//! * point probes — does element `e` directly contain `k`?
//! * subtree range probes — aggregate tf of `k` anywhere under `e`
//!   (`seek` to `e`, then a bounded scan: descendant postings are
//!   contiguous because the lists are in Dewey order).
//!
//! Scan work is charged when a cursor *consumes* postings, not when a
//! list is opened, so the counters reflect what queries actually read.

use crate::cursor::{PostingCursor, ScanCounters};
use crate::footprint::{Footprint, IndexFootprint};
use crate::positions::{count_subtree_matches, PositionsList, PositionsScratch};
use crate::postings::{BlockList, DecodeScratch, PayloadBound, RangeEstimate};
use crate::tokenize::token_positions;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vxv_xml::{Corpus, DeweyId, Document};

/// Posting lists compress in finer blocks than the path index's
/// [`crate::postings::DEFAULT_BLOCK_ENTRIES`]: subtree-range probes and
/// block-max pruning bounds both operate at block granularity, and
/// element subtrees rarely hold more than a few dozen postings of one
/// keyword — with 32-entry blocks a subtree almost never spans a whole
/// block, so range estimates could never skip (or prune) one. Eight
/// entries per block keeps the directory overhead a fraction of the
/// entry data while letting mid-sized subtrees contain interior blocks.
pub const INVERTED_BLOCK_ENTRIES: usize = 8;

/// One posting: an element that directly contains the keyword `tf` times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Posting {
    /// The element that directly contains the keyword.
    pub id: DeweyId,
    /// Occurrences within that element's own text.
    pub tf: u32,
}

/// Work counters for experiments (I/O-cost proxy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InvertedIndexStats {
    /// Number of lookup/range calls (list opens).
    pub lookups: u64,
    /// Postings decoded by cursor consumption.
    pub postings_scanned: u64,
    /// Compressed blocks `seek` skipped without decoding.
    pub blocks_skipped: u64,
    /// Compressed bytes decoded.
    pub bytes_decoded: u64,
    /// Position-record bytes decoded for phrase/proximity probes.
    pub positions_bytes: u64,
}

impl std::ops::Add for InvertedIndexStats {
    type Output = InvertedIndexStats;

    fn add(self, rhs: InvertedIndexStats) -> InvertedIndexStats {
        InvertedIndexStats {
            lookups: self.lookups + rhs.lookups,
            postings_scanned: self.postings_scanned + rhs.postings_scanned,
            blocks_skipped: self.blocks_skipped + rhs.blocks_skipped,
            bytes_decoded: self.bytes_decoded + rhs.bytes_decoded,
            positions_bytes: self.positions_bytes + rhs.positions_bytes,
        }
    }
}

/// The corpus-wide inverted keyword index (block-compressed lists).
#[derive(Debug)]
pub struct InvertedIndex {
    lists: HashMap<String, BlockList>,
    /// Per-keyword position records, chunked on the tf list's block
    /// boundaries (see [`crate::positions`]). Present for every list
    /// when [`Self::has_positions`]; empty when the index was loaded
    /// from a pre-v5 bundle that never stored positions.
    positions: HashMap<String, PositionsList>,
    /// Whether this index carries position records — freshly built
    /// indices always do; legacy loads (v1–v4) do not, and merging a
    /// positionless part into anything drops positions from the result.
    has_positions: bool,
    /// The sorted term dictionary, rebuilt whenever the lists change;
    /// prefix terms resolve against it with two binary searches. Shared
    /// (`Arc`) so snapshots don't re-sort.
    sorted: Arc<Vec<String>>,
    /// Raw postings staged by [`Self::add_document`] until
    /// [`Self::finalize`] sorts and compresses them: per keyword, each
    /// element's token ordinals (`positions.len()` is the tf).
    staging: HashMap<String, Vec<(DeweyId, Vec<u32>)>>,
    lookups: AtomicU64,
    scan: ScanCounters,
}

impl Default for InvertedIndex {
    fn default() -> InvertedIndex {
        InvertedIndex {
            lists: HashMap::new(),
            positions: HashMap::new(),
            has_positions: true,
            sorted: Arc::new(Vec::new()),
            staging: HashMap::new(),
            lookups: AtomicU64::new(0),
            scan: ScanCounters::default(),
        }
    }
}

/// Decode one keyword's `(tf list, positions)` pair back into per-entry
/// ordinal lists for re-encoding (finalize/merge). Corrupt position
/// chunks degrade to synthetic ordinals `0..tf` — tf (and therefore
/// every bag-of-words score) is preserved exactly; only positional
/// matches on an already-corrupt mapped segment are best-effort.
fn decode_all_pairs(list: &BlockList, pos: &PositionsList) -> Vec<(DeweyId, Vec<u32>)> {
    let mut out = Vec::with_capacity(list.len() as usize);
    let mut scratch = DecodeScratch::default();
    let mut ps = PositionsScratch::default();
    let total = list.block_count();
    let mut tfs: Vec<u32> = Vec::new();
    for b in 0..total {
        if !list.decode_block(b, &mut scratch) {
            break;
        }
        tfs.clear();
        tfs.extend((0..scratch.len()).map(|i| scratch.entry(i).1));
        let ok = pos.decode_chunk(b, total, &tfs, &mut ps).is_some();
        for i in 0..scratch.len() {
            let (comps, tf) = scratch.entry(i);
            let ordinals = if ok { ps.positions(i).to_vec() } else { (0..tf).collect() };
            out.push((DeweyId::from_components(comps.to_vec()), ordinals));
        }
    }
    out
}

impl InvertedIndex {
    /// Build the index over every document in the corpus.
    pub fn build(corpus: &Corpus) -> Self {
        let mut idx = InvertedIndex::default();
        for doc in corpus.docs() {
            idx.stage_document(doc);
        }
        idx.finalize();
        idx
    }

    /// Index one document's text content. The index is immediately
    /// queryable afterwards (bulk loads go through [`Self::build`],
    /// which compresses once at the end instead of per document).
    pub fn add_document(&mut self, doc: &Document) {
        self.stage_document(doc);
        self.finalize();
    }

    fn stage_document(&mut self, doc: &Document) {
        for node_id in doc.iter() {
            let node = doc.node(node_id);
            let Some(text) = &node.text else { continue };
            for (token, ordinals) in token_positions(text) {
                self.staging.entry(token).or_default().push((node.dewey.clone(), ordinals));
            }
        }
    }

    /// Merge staged postings into the compressed lists, in Dewey order
    /// (documents may interleave ordinals). Idempotent; [`Self::build`]
    /// and [`Self::add_document`] call it for you. Position records are
    /// re-encoded alongside the tf lists when this index carries them
    /// (staged ordinals are dropped when it doesn't — a positionless
    /// index stays positionless, it never becomes half-positional).
    pub fn finalize(&mut self) {
        let changed = !self.staging.is_empty();
        for (token, staged) in self.staging.drain() {
            let mut entries: Vec<(DeweyId, Vec<u32>)> = match self.lists.remove(&token) {
                Some(existing) => {
                    if self.has_positions {
                        let pos = self.positions.remove(&token).unwrap_or_default();
                        decode_all_pairs(&existing, &pos)
                    } else {
                        existing
                            .decode_all()
                            .into_iter()
                            .map(|(id, tf)| (id, (0..tf).collect()))
                            .collect()
                    }
                }
                None => Vec::new(),
            };
            entries.extend(staged);
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            let tf_entries: Vec<(DeweyId, u32)> =
                entries.iter().map(|(id, ps)| (id.clone(), ps.len() as u32)).collect();
            self.lists.insert(
                token.clone(),
                BlockList::encode_with_block_size(&tf_entries, INVERTED_BLOCK_ENTRIES),
            );
            if self.has_positions {
                let refs: Vec<&[u32]> = entries.iter().map(|(_, ps)| ps.as_slice()).collect();
                self.positions.insert(token, PositionsList::encode(&refs, INVERTED_BLOCK_ENTRIES));
            }
        }
        if changed {
            self.rebuild_dictionary();
        }
    }

    fn rebuild_dictionary(&mut self) {
        let mut words: Vec<String> = self.lists.keys().cloned().collect();
        words.sort_unstable();
        self.sorted = Arc::new(words);
    }

    /// Rebuild an index directly from compressed lists (persistence).
    /// `positions` is `Some` only when the bundle stored a position
    /// record for **every** list (v5 with positions); otherwise the
    /// index is positionless and positional probes on it return an
    /// engine-level typed error, never wrong answers.
    pub(crate) fn from_lists(
        lists: HashMap<String, BlockList>,
        positions: Option<HashMap<String, PositionsList>>,
    ) -> Self {
        let mut idx = match positions {
            Some(positions) => {
                InvertedIndex { lists, positions, has_positions: true, ..InvertedIndex::default() }
            }
            None => InvertedIndex { lists, has_positions: false, ..InvertedIndex::default() },
        };
        idx.rebuild_dictionary();
        idx
    }

    /// An immutable snapshot sharing this index's compressed lists —
    /// list *data* is refcounted, so this copies only the per-keyword
    /// directories. Work counters start fresh (the same convention as
    /// merged segments). The memtable uses this to publish a searchable
    /// segment per append without re-encoding anything.
    pub fn clone_shared(&self) -> InvertedIndex {
        debug_assert!(self.staging.is_empty(), "finalize before snapshotting");
        InvertedIndex {
            lists: self.lists.clone(),
            positions: self.positions.clone(),
            has_positions: self.has_positions,
            sorted: Arc::clone(&self.sorted),
            ..InvertedIndex::default()
        }
    }

    /// Merge several indices over **disjoint** document sets into one.
    /// Each keyword's postings are decoded, concatenated, re-sorted in
    /// Dewey order and re-encoded — byte-identical to the index a single
    /// build over the union of the documents would have produced (the
    /// compaction invariant the segment tests pin down).
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a InvertedIndex>) -> InvertedIndex {
        let mut idx = InvertedIndex::default();
        for part in parts {
            debug_assert!(part.staging.is_empty(), "finalize before merging");
            // Any positionless part poisons the merged result: a list
            // that is half-positional would silently miss phrases, so
            // positions survive compaction only when every input has
            // them (always true for freshly built segments).
            idx.has_positions &= part.has_positions;
            for (token, list) in &part.lists {
                let staged = idx.staging.entry(token.clone()).or_default();
                if part.has_positions {
                    let pos = part.positions.get(token).cloned().unwrap_or_default();
                    staged.extend(decode_all_pairs(list, &pos));
                } else {
                    staged.extend(
                        list.decode_all().into_iter().map(|(id, tf)| (id, (0..tf).collect())),
                    );
                }
            }
        }
        idx.finalize();
        idx
    }

    /// The compressed lists (persistence).
    pub(crate) fn lists(&self) -> &HashMap<String, BlockList> {
        debug_assert!(self.staging.is_empty(), "finalize before serializing");
        &self.lists
    }

    /// The position records (persistence). Meaningful only when
    /// [`Self::has_positions`].
    pub(crate) fn position_lists(&self) -> &HashMap<String, PositionsList> {
        debug_assert!(self.staging.is_empty(), "finalize before serializing");
        &self.positions
    }

    /// Whether this index stores per-occurrence positions — phrase and
    /// proximity probes are answerable only when it does. False exactly
    /// for indices loaded from pre-v5 bundles (the engine surfaces that
    /// as a typed error instead of a wrong answer).
    pub fn has_positions(&self) -> bool {
        self.has_positions
    }

    /// Every indexed keyword whose token form starts with `prefix`, in
    /// sorted order — two binary searches over the sorted term
    /// dictionary, so a prefix term expands without touching any
    /// posting list. Counts one lookup (the dictionary probe).
    pub fn prefix_matches(&self, prefix: &str) -> &[String] {
        debug_assert!(self.staging.is_empty(), "finalize before probing");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let start = self.sorted.partition_point(|w| w.as_str() < prefix);
        let end = start + self.sorted[start..].partition_point(|w| w.starts_with(prefix));
        &self.sorted[start..end]
    }

    /// Open a streaming cursor over a keyword's posting list (lowercased
    /// token form), in Dewey order. Counts one lookup; scan work is
    /// charged as the cursor is consumed. The cursor is empty if the
    /// keyword never occurs.
    pub fn postings(&self, keyword: &str) -> PostingsCursor<'_> {
        debug_assert!(self.staging.is_empty(), "finalize before probing");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        PostingsCursor { inner: self.lists.get(keyword).map(|l| l.cursor(Some(&self.scan))) }
    }

    /// Document frequency: number of elements directly containing
    /// `keyword`. Counts one lookup (the length lives in list metadata;
    /// no postings are decoded).
    pub fn list_len(&self, keyword: &str) -> usize {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.lists.get(keyword).map(|l| l.len() as usize).unwrap_or(0)
    }

    /// Aggregate term frequency of `keyword` in the subtree rooted at the
    /// element with Dewey ID `root` (inclusive) — a `seek` over the block
    /// directory plus a bounded scan of the qualifying range.
    pub fn subtree_tf(&self, keyword: &str, root: &DeweyId) -> u32 {
        debug_assert!(self.staging.is_empty(), "finalize before probing");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let Some(list) = self.lists.get(keyword) else { return 0 };
        let mut cur = list.cursor(Some(&self.scan));
        cur.seek_raw(root);
        let hi = root.subtree_upper_bound();
        let mut total = 0;
        while let Some((id, tf)) = cur.next_raw() {
            if id >= hi {
                break;
            }
            total += tf;
        }
        total
    }

    /// Exact number of phrase (`window == None`) or proximity
    /// (`window == Some(w)`) matches of `words` inside the subtree
    /// rooted at `root` — per-element position-list intersection summed
    /// over the Dewey range (see [`crate::positions`] for the match
    /// semantics; occurrences live in one element's own token stream,
    /// so matches never span elements). Returns 0 when any word is
    /// unindexed, or when this index has no positions (the engine
    /// rejects positional queries on such indices upfront with a typed
    /// error — this probe's 0 is never surfaced as an answer). Counts
    /// one lookup per distinct word; decode work, including position
    /// bytes, is charged to the scan counters.
    pub fn positional_subtree_tf(
        &self,
        words: &[String],
        window: Option<u32>,
        root: &DeweyId,
    ) -> u32 {
        debug_assert!(self.staging.is_empty(), "finalize before probing");
        if !self.has_positions || words.is_empty() {
            return 0;
        }
        // Dedup repeated words so "the the" collects one range.
        let mut distinct: Vec<&String> = Vec::new();
        let mut instance_of = Vec::with_capacity(words.len());
        for w in words {
            match distinct.iter().position(|d| *d == w) {
                Some(i) => instance_of.push(i),
                None => {
                    instance_of.push(distinct.len());
                    distinct.push(w);
                }
            }
        }
        let sources: Vec<Option<(&BlockList, &PositionsList)>> = distinct
            .iter()
            .map(|w| {
                self.lookups.fetch_add(1, Ordering::Relaxed);
                Some((self.lists.get(*w)?, self.positions.get(*w)?))
            })
            .collect();
        count_subtree_matches(
            &sources,
            &instance_of,
            window,
            root,
            Some(&self.scan),
            &mut DecodeScratch::default(),
            &mut PositionsScratch::default(),
        )
    }

    /// Largest tf of any single posting of `keyword` (0 when the
    /// keyword is unindexed). List-level metadata; decodes nothing and
    /// counts one lookup.
    pub fn max_tf(&self, keyword: &str) -> u32 {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.lists.get(keyword).map(|l| l.max_payload()).unwrap_or(0)
    }

    /// Directory-only upper bound on [`Self::subtree_tf`]: candidate
    /// blocks contribute `count × block max tf`, **no posting is
    /// decoded**. `bound >= subtree_tf` always, so a top-k pruning
    /// decision based on it can never drop a qualifying hit; `blocks`
    /// is what the exact probe would have to decode. Counts one lookup
    /// and no scan work.
    pub fn subtree_tf_bound(&self, keyword: &str, root: &DeweyId) -> PayloadBound {
        debug_assert!(self.staging.is_empty(), "finalize before probing");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let Some(list) = self.lists.get(keyword) else { return PayloadBound::default() };
        list.range_payload_bound(root, &root.subtree_upper_bound())
    }

    /// Boundary-exact estimate of [`Self::subtree_tf`] — the probe the
    /// score-bounded top-k path issues once per candidate element:
    /// boundary blocks are decoded, interior blocks contribute
    /// `count × block max tf` from the directory alone. `contains` is
    /// exact, `bound` dominates the exact tf and **equals** it when
    /// `skipped_blocks == 0`, so small subtrees get their exact tf from
    /// this single probe. Counts one lookup; decoded work is charged to
    /// the scan counters as usual.
    pub fn subtree_tf_estimate(&self, keyword: &str, root: &DeweyId) -> RangeEstimate {
        debug_assert!(self.staging.is_empty(), "finalize before probing");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let Some(list) = self.lists.get(keyword) else { return RangeEstimate::default() };
        list.range_payload_estimate(root, &root.subtree_upper_bound(), Some(&self.scan))
    }

    /// Exact tf of the **interior** blocks a
    /// [`Self::subtree_tf_estimate`] bounded without decoding: estimate
    /// `boundary_sum` + this = exact [`Self::subtree_tf`], with every
    /// block decoded at most once across the two probes. Counts one
    /// lookup.
    pub fn subtree_tf_interior(&self, keyword: &str, root: &DeweyId) -> u64 {
        debug_assert!(self.staging.is_empty(), "finalize before probing");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let Some(list) = self.lists.get(keyword) else { return 0 };
        list.range_interior_payload_sum(root, &root.subtree_upper_bound(), Some(&self.scan))
    }

    /// Pin one keyword's posting list for repeated subtree probes: the
    /// dictionary lookup happens once (counted as one lookup, like
    /// opening a cursor), then every probe through the returned
    /// [`TfReader`] costs only its directory walk and block decodes.
    /// The score-bounded scorer opens one reader per (plan, keyword)
    /// and probes every candidate element through it.
    pub fn tf_reader(&self, keyword: &str) -> TfReader<'_> {
        debug_assert!(self.staging.is_empty(), "finalize before probing");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        TfReader { list: self.lists.get(keyword), scan: &self.scan }
    }

    /// Pin one keyword's list as an **owned** handle that outlives any
    /// borrow of this index: the list *data* is refcounted (same sharing
    /// as [`Self::clone_shared`]), so the pin copies only the block
    /// directory. Counts one lookup — the dictionary resolution this pin
    /// exists to amortize. Prepared views cache these per (plan,
    /// keyword) so Zipf-head terms resolve once per segment epoch; turn
    /// a pin back into a probe-ready reader with
    /// [`Self::tf_reader_pinned`].
    pub fn pin_list(&self, keyword: &str) -> PinnedList {
        debug_assert!(self.staging.is_empty(), "finalize before probing");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        PinnedList {
            list: self.lists.get(keyword).cloned(),
            positions: self.positions.get(keyword).cloned(),
        }
    }

    /// A [`TfReader`] over a previously pinned list. Charges **no**
    /// lookup (the pin already paid it); scan work from probes is still
    /// charged to this index's counters, so the I/O-cost proxies stay
    /// honest about decode work.
    pub fn tf_reader_pinned<'a>(&'a self, pinned: &'a PinnedList) -> TfReader<'a> {
        TfReader { list: pinned.list.as_ref(), scan: &self.scan }
    }

    /// A [`PositionalReader`] over previously pinned lists: `pins[i]`
    /// is the i-th **distinct** word of a phrase/near term and
    /// `instance_of[j]` maps the term's j-th word instance onto `pins`
    /// (so "the the end" pins two lists, not three). Like
    /// [`Self::tf_reader_pinned`], charges no lookup — the pins already
    /// paid it; probe decode work (including position bytes) is charged
    /// to this index's scan counters.
    pub fn positional_reader_pinned<'a>(
        &'a self,
        pins: &[&'a PinnedList],
        instance_of: Vec<usize>,
        window: Option<u32>,
    ) -> PositionalReader<'a> {
        let lists = pins
            .iter()
            .map(|p| match (&p.list, &p.positions) {
                (Some(l), Some(ps)) => Some((l, ps)),
                _ => None,
            })
            .collect();
        PositionalReader { lists, instance_of, window, scan: &self.scan }
    }

    /// Does the subtree rooted at `root` contain `keyword` anywhere?
    /// Short-circuits on the directory bound (no decode when no block
    /// overlaps the range) and stops the scan at the first qualifying
    /// posting instead of summing the whole range.
    pub fn contains_in_subtree(&self, keyword: &str, root: &DeweyId) -> bool {
        debug_assert!(self.staging.is_empty(), "finalize before probing");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let Some(list) = self.lists.get(keyword) else { return false };
        let hi = root.subtree_upper_bound();
        if list.range_payload_bound(root, &hi).bound == 0 {
            return false;
        }
        let mut cur = list.cursor(Some(&self.scan));
        cur.seek_raw(root);
        while let Some((id, tf)) = cur.next_raw() {
            if id >= hi {
                return false;
            }
            if tf > 0 {
                return true;
            }
        }
        false
    }

    /// All distinct indexed keywords (unordered).
    pub fn keywords(&self) -> impl Iterator<Item = &str> {
        self.lists.keys().map(|s| s.as_str())
    }

    /// Whether `keyword` (token form, like every probe here) has any
    /// postings in this index — a pure dictionary membership test for
    /// fan-out planning: segments whose dictionaries can't match a plan
    /// skip the spawn entirely. Charges **no** lookup and no scan work,
    /// so planning with it never perturbs the experiment counters.
    pub fn has_keyword(&self, keyword: &str) -> bool {
        self.lists.get(keyword).is_some_and(|l| !l.is_empty())
    }

    /// Whether any indexed keyword starts with `prefix` — the planning
    /// counterpart of [`Self::prefix_matches`]: same two binary
    /// searches over the sorted dictionary, but like
    /// [`Self::has_keyword`] it charges **no** lookup, so fan-out
    /// planning never perturbs the experiment counters.
    pub fn has_prefix(&self, prefix: &str) -> bool {
        let start = self.sorted.partition_point(|w| w.as_str() < prefix);
        self.sorted.get(start).is_some_and(|w| w.starts_with(prefix))
    }

    /// Heap bytes this index's posting buffers actually own: zero for
    /// every list decoding out of a shared file mapping. Compare with
    /// [`IndexFootprint::footprint`]'s `compressed_bytes` for the
    /// map-vs-owned residency split.
    pub fn owned_data_bytes(&self) -> u64 {
        self.lists.values().map(|l| l.owned_data_bytes()).sum::<u64>()
            + self.positions.values().map(|p| p.owned_data_bytes()).sum::<u64>()
    }

    /// Snapshot of the work counters.
    pub fn stats(&self) -> InvertedIndexStats {
        InvertedIndexStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            postings_scanned: self.scan.entries.load(Ordering::Relaxed),
            blocks_skipped: self.scan.blocks_skipped.load(Ordering::Relaxed),
            bytes_decoded: self.scan.bytes_decoded.load(Ordering::Relaxed),
            positions_bytes: self.scan.positions_bytes.load(Ordering::Relaxed),
        }
    }

    /// Reset the work counters.
    pub fn reset_stats(&self) {
        self.lookups.store(0, Ordering::Relaxed);
        self.scan.reset();
    }
}

impl IndexFootprint for InvertedIndex {
    fn footprint(&self) -> Footprint {
        let mut fp = Footprint::default();
        for (k, l) in &self.lists {
            fp.compressed_bytes += k.len() as u64 + l.compressed_bytes();
            fp.uncompressed_bytes += k.len() as u64 + l.uncompressed_bytes();
            fp.entries += l.len();
        }
        for p in self.positions.values() {
            // Position records have one on-disk representation; they
            // count equally on both sides of the ratio.
            fp.compressed_bytes += p.byte_len() as u64;
            fp.uncompressed_bytes += p.byte_len() as u64;
        }
        fp
    }
}

/// One keyword's posting list pinned for repeated subtree-range probes
/// (see [`InvertedIndex::tf_reader`]). Scan work is charged to the
/// owning index's counters exactly as direct probes are.
#[derive(Debug)]
pub struct TfReader<'a> {
    list: Option<&'a BlockList>,
    scan: &'a ScanCounters,
}

/// An owned pin of one keyword's posting list (see
/// [`InvertedIndex::pin_list`]): a dictionary resolution that survives
/// across searches without borrowing the index. Holding one keeps the
/// refcounted list data alive; it is probe-ready only through
/// [`InvertedIndex::tf_reader_pinned`], which re-attaches the owning
/// index's scan counters.
#[derive(Clone, Debug, Default)]
pub struct PinnedList {
    list: Option<BlockList>,
    /// The keyword's position records, pinned alongside the tf list
    /// when the owning index stores them (positional probes need both).
    positions: Option<PositionsList>,
}

impl PinnedList {
    /// Whether the keyword had any list at pin time.
    pub fn is_present(&self) -> bool {
        self.list.is_some()
    }
}

/// A phrase/proximity probe over pinned position lists (see
/// [`InvertedIndex::positional_reader_pinned`]): one reader per
/// positional term, probed once per candidate element by the
/// score-bounded scorer — positional terms always resolve **exactly**
/// (their per-element match count has no cheap sound upper bound short
/// of intersecting), which keeps pruned == exact trivially for them
/// while word terms still prune on block-max bounds.
#[derive(Debug)]
pub struct PositionalReader<'a> {
    /// Per **distinct** word: its `(tf list, positions)`, or `None`
    /// when the word is unindexed (no element can match the term).
    lists: Vec<Option<(&'a BlockList, &'a PositionsList)>>,
    /// Maps the term's word instances onto `lists`.
    instance_of: Vec<usize>,
    /// `None` = phrase (adjacent, ordered); `Some(w)` = near within `w`.
    window: Option<u32>,
    scan: &'a ScanCounters,
}

impl PositionalReader<'_> {
    /// Exact number of matches of the term in the subtree rooted at
    /// `root` — the positional analogue of an exact subtree-tf probe,
    /// decoding into caller-provided scratches (same `Sync` rationale
    /// as [`TfReader::subtree_estimate_with`]).
    pub fn subtree_count_with(
        &self,
        root: &DeweyId,
        scratch: &mut DecodeScratch,
        pos_scratch: &mut PositionsScratch,
    ) -> u32 {
        count_subtree_matches(
            &self.lists,
            &self.instance_of,
            self.window,
            root,
            Some(self.scan),
            scratch,
            pos_scratch,
        )
    }
}

impl TfReader<'_> {
    /// As [`InvertedIndex::subtree_tf_estimate`], without re-resolving
    /// the keyword.
    pub fn subtree_estimate(&self, root: &DeweyId) -> RangeEstimate {
        let mut scratch = DecodeScratch::default();
        self.subtree_estimate_with(root, &mut scratch)
    }

    /// As [`Self::subtree_estimate`], decoding boundary blocks into a
    /// caller-provided scratch. The scorer's estimate pass probes every
    /// candidate element through one reader — an explicit scratch
    /// parameter (rather than interior mutability) keeps `TfReader`
    /// `Sync`, so readers can still be shared across the fan-out while
    /// each worker brings its own scratch.
    pub fn subtree_estimate_with(
        &self,
        root: &DeweyId,
        scratch: &mut DecodeScratch,
    ) -> RangeEstimate {
        let Some(list) = self.list else { return RangeEstimate::default() };
        list.range_payload_estimate_with(
            root,
            &root.subtree_upper_bound(),
            Some(self.scan),
            scratch,
        )
    }

    /// As [`InvertedIndex::subtree_tf_interior`], without re-resolving
    /// the keyword.
    pub fn subtree_interior(&self, root: &DeweyId) -> u64 {
        let mut scratch = DecodeScratch::default();
        self.subtree_interior_with(root, &mut scratch)
    }

    /// As [`Self::subtree_interior`], decoding into a caller-provided
    /// scratch (see [`Self::subtree_estimate_with`]).
    pub fn subtree_interior_with(&self, root: &DeweyId, scratch: &mut DecodeScratch) -> u64 {
        let Some(list) = self.list else { return 0 };
        list.range_interior_payload_sum_with(
            root,
            &root.subtree_upper_bound(),
            Some(self.scan),
            scratch,
        )
    }
}

/// [`PostingCursor`] over one keyword's compressed list.
#[derive(Debug)]
pub struct PostingsCursor<'a> {
    inner: Option<crate::postings::BlockCursor<'a>>,
}

impl PostingCursor for PostingsCursor<'_> {
    fn next(&mut self) -> Option<Posting> {
        let (id, tf) = self.inner.as_mut()?.next_raw()?;
        Some(Posting { id, tf })
    }

    fn seek(&mut self, target: &DeweyId) {
        if let Some(c) = self.inner.as_mut() {
            c.seek_raw(target);
        }
    }

    fn max_tf(&self) -> u32 {
        // List-level block-max metadata: bounds every remaining posting
        // without decoding (per-block maxima refine range probes via
        // `InvertedIndex::subtree_tf_bound`).
        self.inner.as_ref().map(|c| c.list_max_payload()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_postings;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><title>XML Web Services</title>\
                     <review><content>all about search and XML search</content></review></book>\
               <book><title>Artificial Intelligence</title></book>\
             </books>",
        )
        .unwrap();
        c
    }

    #[test]
    fn postings_record_direct_containment_with_tf() {
        let idx = InvertedIndex::build(&corpus());
        let xml = collect_postings(idx.postings("xml"));
        assert_eq!(xml.len(), 2);
        assert_eq!(xml[0].id.to_string(), "1.1.1");
        assert_eq!(xml[0].tf, 1);
        assert_eq!(xml[1].id.to_string(), "1.1.2.1");
        assert_eq!(xml[1].tf, 1);
        let search = collect_postings(idx.postings("search"));
        assert_eq!(search.len(), 1);
        assert_eq!(search[0].tf, 2);
    }

    #[test]
    fn subtree_tf_aggregates_descendants() {
        let idx = InvertedIndex::build(&corpus());
        let book1: DeweyId = "1.1".parse().unwrap();
        assert_eq!(idx.subtree_tf("xml", &book1), 2);
        assert_eq!(idx.subtree_tf("search", &book1), 2);
        let book2: DeweyId = "1.2".parse().unwrap();
        assert_eq!(idx.subtree_tf("xml", &book2), 0);
        let root: DeweyId = "1".parse().unwrap();
        assert_eq!(idx.subtree_tf("intelligence", &root), 1);
    }

    #[test]
    fn subtree_range_does_not_leak_into_siblings() {
        // 1.1 vs 1.10 prefix confusion must not occur.
        let mut c = Corpus::new();
        let mut xml = String::from("<r>");
        for i in 0..12 {
            xml.push_str(&format!("<e><t>word{i} target</t></e>"));
        }
        xml.push_str("</r>");
        c.add_parsed("d", &xml).unwrap();
        let idx = InvertedIndex::build(&c);
        let e1: DeweyId = "1.1".parse().unwrap();
        assert_eq!(idx.subtree_tf("target", &e1), 1);
        assert_eq!(idx.subtree_tf("word0", &e1), 1);
        assert_eq!(idx.subtree_tf("word9", &e1), 0);
    }

    #[test]
    fn subtree_tf_bound_dominates_exact_and_decodes_nothing() {
        let mut c = Corpus::new();
        let mut xml = String::from("<r>");
        for i in 0..40 {
            xml.push_str(&format!("<e><t>target target word{i}</t></e>"));
        }
        xml.push_str("</r>");
        c.add_parsed("d", &xml).unwrap();
        let idx = InvertedIndex::build(&c);
        idx.reset_stats();
        for root in ["1", "1.7", "1.39", "1.40.1"] {
            let root: DeweyId = root.parse().unwrap();
            let bound = idx.subtree_tf_bound("target", &root);
            assert!(
                bound.bound >= idx.subtree_tf("target", &root) as u64,
                "bound must dominate at {root}"
            );
        }
        assert_eq!(idx.subtree_tf_bound("nonexistent", &"1".parse().unwrap()).bound, 0);
        // The bound probes themselves decoded nothing (only the exact
        // probes above did): re-check with fresh counters.
        idx.reset_stats();
        idx.subtree_tf_bound("target", &"1".parse().unwrap());
        let s = idx.stats();
        assert_eq!(s.lookups, 1);
        assert_eq!(s.postings_scanned, 0, "bound probes must not decode postings");
        assert_eq!(s.bytes_decoded, 0);
    }

    #[test]
    fn subtree_tf_estimate_is_exact_without_interiors_and_dominates_with() {
        let mut c = Corpus::new();
        let mut xml = String::from("<r>");
        for i in 0..120 {
            xml.push_str(&format!("<e><t>target target word{i}</t></e>"));
        }
        xml.push_str("</r>");
        c.add_parsed("d", &xml).unwrap();
        let idx = InvertedIndex::build(&c);
        // Small subtree: no interior blocks, estimate == exact.
        let leaf: DeweyId = "1.7".parse().unwrap();
        let est = idx.subtree_tf_estimate("target", &leaf);
        assert_eq!(est.skipped_blocks, 0);
        assert_eq!(est.bound, idx.subtree_tf("target", &leaf) as u64);
        assert!(est.contains);
        // Whole-document subtree: interiors skipped, bound dominates.
        let root: DeweyId = "1".parse().unwrap();
        let est = idx.subtree_tf_estimate("target", &root);
        assert!(est.skipped_blocks > 0, "wide range must skip interior blocks");
        assert!(est.bound >= idx.subtree_tf("target", &root) as u64);
        assert!(est.contains);
        // Absent keyword / empty range.
        let est = idx.subtree_tf_estimate("nonexistent", &root);
        assert_eq!(est, RangeEstimate::default());
    }

    #[test]
    fn max_tf_is_the_largest_single_posting() {
        let idx = InvertedIndex::build(&corpus());
        assert_eq!(idx.max_tf("search"), 2);
        assert_eq!(idx.max_tf("xml"), 1);
        assert_eq!(idx.max_tf("nonexistent"), 0);
        let cur = idx.postings("search");
        assert_eq!(cur.max_tf(), 2);
        let mut none = idx.postings("nonexistent");
        assert_eq!(none.max_tf(), 0);
        assert!(none.next().is_none());
        drop(cur);
    }

    #[test]
    fn contains_in_subtree_stops_at_the_first_hit() {
        let mut c = Corpus::new();
        let mut xml = String::from("<r>");
        for i in 0..64 {
            xml.push_str(&format!("<e><t>common word{i}</t></e>"));
        }
        xml.push_str("</r>");
        c.add_parsed("d", &xml).unwrap();
        let idx = InvertedIndex::build(&c);
        idx.reset_stats();
        assert!(idx.contains_in_subtree("common", &"1".parse().unwrap()));
        let scanned = idx.stats().postings_scanned;
        assert!(scanned <= 2, "early exit must not sweep the range ({scanned} scanned)");
        assert!(!idx.contains_in_subtree("common", &"2".parse().unwrap()));
    }

    #[test]
    fn unknown_keyword_is_empty() {
        let idx = InvertedIndex::build(&corpus());
        assert!(collect_postings(idx.postings("nonexistent")).is_empty());
        assert_eq!(idx.subtree_tf("nonexistent", &"1".parse().unwrap()), 0);
        assert!(!idx.contains_in_subtree("nonexistent", &"1".parse().unwrap()));
    }

    #[test]
    fn stats_charge_scans_at_consumption() {
        let idx = InvertedIndex::build(&corpus());
        idx.reset_stats();
        // Opening a cursor counts a lookup but scans nothing...
        let mut cur = idx.postings("xml");
        assert_eq!(idx.stats().lookups, 1);
        assert_eq!(idx.stats().postings_scanned, 0);
        // ...consuming one posting charges exactly one scan. The tally
        // is batched in the cursor and flushed when it drops (or at the
        // next block decode), so it becomes visible after the drop.
        cur.next().unwrap();
        drop(cur);
        assert_eq!(idx.stats().postings_scanned, 1);
        idx.subtree_tf("search", &"1".parse().unwrap());
        let s = idx.stats();
        assert_eq!(s.lookups, 2);
        assert!(s.postings_scanned >= 2);
        assert!(s.bytes_decoded > 0);
    }

    #[test]
    fn list_len_counts_a_lookup() {
        let idx = InvertedIndex::build(&corpus());
        idx.reset_stats();
        assert_eq!(idx.list_len("xml"), 2);
        assert_eq!(idx.list_len("nonexistent"), 0);
        let s = idx.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.postings_scanned, 0, "length probes decode nothing");
    }

    fn words(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn positional_subtree_tf_counts_phrases_per_element() {
        let idx = InvertedIndex::build(&corpus());
        assert!(idx.has_positions());
        let root: DeweyId = "1".parse().unwrap();
        // "xml search" appears adjacent twice in the review content
        // ("search and XML search" has one adjacent pair) plus never in
        // the title "XML Web Services".
        assert_eq!(idx.positional_subtree_tf(&words(&["xml", "search"]), None, &root), 1);
        // Proximity within 2 also admits "search and XML" (anchor
        // "search" at 0, "xml" at 2).
        assert_eq!(idx.positional_subtree_tf(&words(&["search", "xml"]), Some(2), &root), 2);
        // Out-of-subtree roots and unindexed words count zero.
        assert_eq!(
            idx.positional_subtree_tf(&words(&["xml", "search"]), None, &"1.2".parse().unwrap()),
            0
        );
        assert_eq!(idx.positional_subtree_tf(&words(&["xml", "nonexistent"]), None, &root), 0);
        // Repeated words intersect against one collected range.
        assert_eq!(idx.positional_subtree_tf(&words(&["search", "search"]), Some(4), &root), 2);
    }

    #[test]
    fn positional_probes_charge_position_bytes() {
        let idx = InvertedIndex::build(&corpus());
        idx.reset_stats();
        let root: DeweyId = "1".parse().unwrap();
        idx.positional_subtree_tf(&words(&["xml", "search"]), None, &root);
        let s = idx.stats();
        assert_eq!(s.lookups, 2, "one lookup per distinct word");
        assert!(s.positions_bytes > 0, "phrase probes decode position bytes");
        assert!(s.bytes_decoded > 0);
        // Bag-of-words probes never touch positions.
        idx.reset_stats();
        idx.subtree_tf("search", &root);
        assert_eq!(idx.stats().positions_bytes, 0);
    }

    #[test]
    fn pinned_positional_reader_matches_direct_probe() {
        let idx = InvertedIndex::build(&corpus());
        let pins = [idx.pin_list("xml"), idx.pin_list("search")];
        let refs: Vec<&PinnedList> = pins.iter().collect();
        let reader = idx.positional_reader_pinned(&refs, vec![0, 1], None);
        let mut scratch = DecodeScratch::default();
        let mut ps = crate::positions::PositionsScratch::default();
        for root in ["1", "1.1", "1.1.2", "1.2"] {
            let root: DeweyId = root.parse().unwrap();
            assert_eq!(
                reader.subtree_count_with(&root, &mut scratch, &mut ps),
                idx.positional_subtree_tf(&words(&["xml", "search"]), None, &root),
                "pinned and direct probes must agree at {root}"
            );
        }
    }

    #[test]
    fn prefix_matches_resolves_sorted_dictionary_ranges() {
        let idx = InvertedIndex::build(&corpus());
        assert_eq!(idx.prefix_matches("sea"), &["search".to_string()]);
        assert_eq!(idx.prefix_matches("s"), &["search".to_string(), "services".to_string()]);
        assert!(idx.prefix_matches("zz").is_empty());
        // The empty prefix matches the whole dictionary, sorted.
        let all = idx.prefix_matches("");
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(all.len(), idx.keywords().count());
        // Exact word is a prefix of itself.
        assert_eq!(idx.prefix_matches("search"), &["search".to_string()]);
    }

    #[test]
    fn merge_preserves_positions_and_drops_them_when_any_part_lacks_them() {
        let idx = InvertedIndex::build(&corpus());
        let merged = InvertedIndex::merge([&idx]);
        assert!(merged.has_positions());
        let root: DeweyId = "1".parse().unwrap();
        assert_eq!(
            merged.positional_subtree_tf(&words(&["xml", "search"]), None, &root),
            idx.positional_subtree_tf(&words(&["xml", "search"]), None, &root),
        );
        // A positionless part poisons the merge: tf is preserved, the
        // positional surface is gone.
        let positionless = InvertedIndex::from_lists(idx.lists().clone(), None);
        assert!(!positionless.has_positions());
        let mixed = InvertedIndex::merge([&idx, &positionless]);
        assert!(!mixed.has_positions());
        assert_eq!(mixed.positional_subtree_tf(&words(&["xml", "search"]), None, &root), 0);
    }

    #[test]
    fn footprint_reports_both_representations() {
        let idx = InvertedIndex::build(&corpus());
        let fp = idx.footprint();
        assert!(fp.entries > 0);
        assert!(fp.compressed_bytes > 0);
        assert!(fp.uncompressed_bytes >= fp.entries * 8);
    }
}
