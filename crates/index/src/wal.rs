//! Write-ahead log for the engine's real-time write path.
//!
//! Every acknowledged append is recorded here *before* it becomes
//! visible to searches, so a crash at any write boundary recovers to
//! exactly the acknowledged state: replay rebuilds the memtable (and
//! any segments it had sealed) from the log, and a torn tail — a record
//! the process died in the middle of writing — is detected by length
//! and checksum validation and **truncated, typed, never panicking**.
//!
//! ## File format (`wal.vxl`, little-endian)
//!
//! ```text
//! magic  "VXVWAL01"
//! record*
//!
//! record := u32 payload_len, u64 fnv1a(payload), payload
//! payload := u32 doc_count,
//!            per doc: u32 name_len, name bytes, u32 xml_len, xml bytes
//! ```
//!
//! One record is one **append batch** — the durability unit matches the
//! acknowledgement unit, so replay can never resurrect half a batch.
//! The checksum is FNV-1a over the payload bytes, the same integrity
//! primitive [`crate::persist`] uses for the bundle META section:
//! plenty against accidental corruption (torn writes, bit rot); malice
//! is out of scope for a local log file.
//!
//! ## Recovery contract
//!
//! [`replay`] reads the log front to back and stops at the first record
//! that fails validation (short header, length overrunning the file,
//! checksum mismatch, or malformed payload). Everything before that
//! point is returned as [`WalReplay::batches`]; the damaged tail is
//! reported in [`WalReplay::truncated`] and *physically removed* when
//! [`WalWriter::open`] reopens the log for appending, so the next
//! record lands on a clean boundary. A missing file replays as empty
//! (first boot); only a wrong magic is a hard [`WalError::Corrupt`] —
//! that file is not a WAL at all, and silently clobbering it would be
//! data invention in the other direction.
//!
//! ## Durability knobs
//!
//! [`FsyncPolicy`] picks the fsync schedule: `PerRecord` (every append
//! is durable when acknowledged), `Interval` (group commit: fsync at
//! most once per window — a crash can lose the last window of
//! *acknowledged-but-unsynced* batches, but never tears one), or
//! `Never` (leave flushing to the OS; crash-consistency still holds
//! because torn tails truncate cleanly).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The WAL file magic.
pub const WAL_MAGIC: &[u8; 8] = b"VXVWAL01";

/// The file name the engine uses for its WAL inside a store directory.
pub const WAL_FILE: &str = "wal.vxl";

/// Fixed per-record framing overhead: u32 length + u64 checksum.
const RECORD_HEADER: usize = 4 + 8;

/// Hard cap on a single record's payload, so a corrupt length field
/// cannot drive a multi-gigabyte allocation before the checksum gets a
/// chance to reject it.
const MAX_PAYLOAD: u32 = 1 << 30;

/// When the log should be fsynced. See the module docs for the
/// durability each schedule buys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record: an acknowledged append
    /// survives any crash.
    PerRecord,
    /// Group commit: fsync at most once per window. Acknowledged
    /// batches inside an unsynced window can be lost to a crash (never
    /// torn).
    Interval(Duration),
    /// Never fsync explicitly; the OS flushes when it pleases.
    Never,
}

/// Why the WAL could not be opened or replayed.
#[derive(Debug)]
pub enum WalError {
    /// The file exists but does not start with [`WAL_MAGIC`] — it is
    /// not a WAL, and replay refuses to guess.
    Corrupt(String),
    /// An I/O error talking to the file.
    Io(io::Error),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Corrupt(msg) => write!(f, "corrupt WAL: {msg}"),
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// Why replay stopped before the end of the file — the torn tail a
/// crash mid-write leaves behind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TornTail {
    /// Fewer than the 12 record-header bytes (u32 length + u64
    /// checksum) remained.
    ShortHeader {
        /// How many tail bytes were present.
        bytes: usize,
    },
    /// The header's payload length ran past the end of the file (or
    /// past the 1 GiB payload cap).
    ShortPayload {
        /// The length the header claimed.
        claimed: u64,
        /// The payload bytes actually present.
        present: u64,
    },
    /// The payload was fully present but its checksum did not match.
    ChecksumMismatch {
        /// Checksum stored in the record header.
        stored: u64,
        /// Checksum computed over the payload bytes.
        computed: u64,
    },
    /// The checksum matched but the payload did not parse as a batch —
    /// only possible if corruption collides with FNV-1a, but replay
    /// still refuses to invent documents out of it.
    MalformedPayload,
}

/// One replayed append batch: `(document name, raw XML)` pairs in the
/// order they were acknowledged.
pub type WalBatch = Vec<(String, String)>;

/// What [`replay`] recovered from the log.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every intact batch, in append order.
    pub batches: Vec<WalBatch>,
    /// Total intact records (same as `batches.len()`, kept for stats).
    pub records: u64,
    /// Bytes of intact data replayed (magic + intact records).
    pub valid_bytes: u64,
    /// Total file length encountered, including any torn tail.
    pub file_bytes: u64,
    /// Why replay stopped early, if it did. `None` means the whole
    /// file validated.
    pub truncated: Option<TornTail>,
}

/// FNV-1a over the payload bytes — same primitive, same constants as
/// the bundle META checksum in [`crate::persist`].
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode one append batch into a WAL payload.
fn encode_payload(docs: &[(String, String)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for (name, xml) in docs {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(xml.len() as u32).to_le_bytes());
        out.extend_from_slice(xml.as_bytes());
    }
    out
}

/// Decode a validated payload back into a batch. Returns `None` on any
/// structural mismatch (replay maps that to
/// [`TornTail::MalformedPayload`] rather than trusting the bytes).
fn decode_payload(payload: &[u8]) -> Option<WalBatch> {
    let mut pos = 0usize;
    let take_u32 = |pos: &mut usize| -> Option<u32> {
        let bytes = payload.get(*pos..*pos + 4)?;
        *pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    };
    let take_str = |pos: &mut usize| -> Option<String> {
        let len = take_u32(pos)? as usize;
        let bytes = payload.get(*pos..pos.checked_add(len)?)?;
        *pos += len;
        String::from_utf8(bytes.to_vec()).ok()
    };
    let count = take_u32(&mut pos)? as usize;
    let mut docs = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name = take_str(&mut pos)?;
        let xml = take_str(&mut pos)?;
        docs.push((name, xml));
    }
    (pos == payload.len()).then_some(docs)
}

/// Replay the WAL at `path`: every intact record's batch, in order,
/// plus where (and why) validation stopped. A missing file replays as
/// empty; a present file with the wrong magic is [`WalError::Corrupt`].
/// Damaged tails are *reported*, not repaired — [`WalWriter::open`]
/// does the truncation when the engine reopens the log for writing.
pub fn replay(path: &Path) -> Result<WalReplay, WalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(WalError::Io(e)),
    };
    replay_bytes(&bytes)
}

/// [`replay`] over an in-memory image — the corruption sweep tests
/// drive this directly so they can damage every byte offset without
/// touching disk.
pub fn replay_bytes(bytes: &[u8]) -> Result<WalReplay, WalError> {
    let mut out = WalReplay { file_bytes: bytes.len() as u64, ..WalReplay::default() };
    if bytes.is_empty() {
        return Ok(out);
    }
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // A short prefix of the magic is a torn first write; anything
        // else claiming to be this file is not a WAL.
        if WAL_MAGIC.starts_with(&bytes[..bytes.len().min(WAL_MAGIC.len())]) {
            out.truncated = Some(TornTail::ShortHeader { bytes: bytes.len() });
            return Ok(out);
        }
        return Err(WalError::Corrupt(format!(
            "bad magic {:?}, expected {:?}",
            &bytes[..bytes.len().min(8)],
            WAL_MAGIC
        )));
    }
    let mut pos = WAL_MAGIC.len();
    out.valid_bytes = pos as u64;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < RECORD_HEADER {
            out.truncated = Some(TornTail::ShortHeader { bytes: remaining });
            return Ok(out);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let stored = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let payload_start = pos + RECORD_HEADER;
        let present = (bytes.len() - payload_start) as u64;
        if len > MAX_PAYLOAD || u64::from(len) > present {
            out.truncated = Some(TornTail::ShortPayload {
                claimed: u64::from(len),
                present: present.min(u64::from(len)),
            });
            return Ok(out);
        }
        let payload = &bytes[payload_start..payload_start + len as usize];
        let computed = fnv1a(payload);
        if computed != stored {
            out.truncated = Some(TornTail::ChecksumMismatch { stored, computed });
            return Ok(out);
        }
        let Some(batch) = decode_payload(payload) else {
            out.truncated = Some(TornTail::MalformedPayload);
            return Ok(out);
        };
        pos = payload_start + len as usize;
        out.valid_bytes = pos as u64;
        out.records += 1;
        out.batches.push(batch);
    }
    Ok(out)
}

/// An open WAL positioned for appending. Created by [`WalWriter::open`]
/// after a [`replay`], which hands it the validated prefix length so
/// any torn tail is physically truncated before the first new append.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    last_sync: Instant,
    /// Bytes durably framed so far (magic + complete records).
    len: u64,
}

impl WalWriter {
    /// Open (or create) the WAL at `path` for appending, truncating it
    /// to `valid_bytes` — the intact prefix a prior [`replay`]
    /// validated. Writes the magic if the file is new/empty.
    pub fn open(path: &Path, valid_bytes: u64, policy: FsyncPolicy) -> Result<WalWriter, WalError> {
        // Never truncate blindly at open: the validated-prefix set_len
        // below is the only truncation, so a crash between open and
        // set_len cannot empty the log.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut len = valid_bytes;
        if len < WAL_MAGIC.len() as u64 {
            file.set_len(0)?;
            file.write_all(WAL_MAGIC)?;
            len = WAL_MAGIC.len() as u64;
        } else {
            file.set_len(len)?;
        }
        file.seek(SeekFrom::Start(len))?;
        if !matches!(policy, FsyncPolicy::Never) {
            file.sync_all()?;
        }
        Ok(WalWriter { file, path: path.to_path_buf(), policy, last_sync: Instant::now(), len })
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of intact log framed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records yet (just the magic).
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Append one batch as a single record and apply the fsync policy.
    /// Returns the record's framed size in bytes. When this returns
    /// `Ok`, the batch is on its way to disk per the policy — callers
    /// acknowledge the write only after this succeeds.
    pub fn append_batch(&mut self, docs: &[(String, String)]) -> Result<u64, WalError> {
        let payload = encode_payload(docs);
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        self.len += record.len() as u64;
        match self.policy {
            FsyncPolicy::PerRecord => self.file.sync_data()?,
            FsyncPolicy::Interval(window) => {
                if self.last_sync.elapsed() >= window {
                    self.file.sync_data()?;
                    self.last_sync = Instant::now();
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(record.len() as u64)
    }

    /// Force an fsync regardless of policy (engine shutdown does this
    /// so `Interval`/`Never` logs are durable on clean exits).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Checkpoint: drop every record, leaving just the magic. Call only
    /// after the state those records rebuild has been durably persisted
    /// elsewhere (the engine does this after flushing the memtable and
    /// saving the segment bundle, under its mutation lock so no append
    /// can land between the persist and the truncation). The truncation
    /// is fsynced even under `Never` — a checkpoint that might resurrect
    /// already-persisted batches on replay would double-apply them.
    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        let magic = WAL_MAGIC.len() as u64;
        self.file.set_len(magic)?;
        self.file.seek(SeekFrom::Start(magic))?;
        self.file.sync_all()?;
        self.len = magic;
        self.last_sync = Instant::now();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vxv-wal-{tag}-{}", std::process::id()))
    }

    fn batch(pairs: &[(&str, &str)]) -> WalBatch {
        pairs.iter().map(|(n, x)| (n.to_string(), x.to_string())).collect()
    }

    #[test]
    fn roundtrip_batches() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, 0, FsyncPolicy::Never).unwrap();
        w.append_batch(&batch(&[("a.xml", "<r><e>x</e></r>")])).unwrap();
        w.append_batch(&batch(&[("b.xml", "<r/>"), ("c.xml", "<r><e>y</e></r>")])).unwrap();
        drop(w);

        let r = replay(&path).unwrap();
        assert_eq!(r.records, 2);
        assert!(r.truncated.is_none());
        assert_eq!(r.batches[0], batch(&[("a.xml", "<r><e>x</e></r>")]));
        assert_eq!(r.batches[1], batch(&[("b.xml", "<r/>"), ("c.xml", "<r><e>y</e></r>")]));
        assert_eq!(r.valid_bytes, r.file_bytes);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_replays_empty() {
        let r = replay(Path::new("/nonexistent/vxv-wal-nope")).unwrap();
        assert_eq!(r.records, 0);
        assert!(r.truncated.is_none());
    }

    #[test]
    fn torn_tail_truncates_to_intact_prefix() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, 0, FsyncPolicy::Never).unwrap();
        w.append_batch(&batch(&[("a.xml", "<r/>")])).unwrap();
        let intact = w.len();
        w.append_batch(&batch(&[("b.xml", "<r><e>zzz</e></r>")])).unwrap();
        drop(w);

        // Chop mid-way through the second record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..intact as usize + 5]).unwrap();

        let r = replay(&path).unwrap();
        assert_eq!(r.records, 1);
        assert_eq!(r.valid_bytes, intact);
        assert!(matches!(r.truncated, Some(TornTail::ShortHeader { .. })));

        // Reopening for writing removes the tail physically.
        let w = WalWriter::open(&path, r.valid_bytes, FsyncPolicy::Never).unwrap();
        assert_eq!(w.len(), intact);
        drop(w);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_flip_detected() {
        let path = temp_path("flip");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, 0, FsyncPolicy::Never).unwrap();
        w.append_batch(&batch(&[("a.xml", "<r><e>hello</e></r>")])).unwrap();
        drop(w);

        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let r = replay_bytes(&bytes).unwrap();
        assert_eq!(r.records, 0);
        assert!(matches!(r.truncated, Some(TornTail::ChecksumMismatch { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_is_typed_corrupt() {
        let err = replay_bytes(b"NOTAWAL0rest").unwrap_err();
        assert!(matches!(err, WalError::Corrupt(_)));
    }

    #[test]
    fn oversized_length_field_is_a_torn_tail_not_an_allocation() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        let r = replay_bytes(&bytes).unwrap();
        assert_eq!(r.records, 0);
        assert!(matches!(r.truncated, Some(TornTail::ShortPayload { .. })));
    }
}
