#![warn(missing_docs)]
//! # vxv-index — segmented index substrate
//!
//! The two index families the paper's PDT-generation phase consumes
//! (Fig. 3's "Structure (Path/Tag) Indices" and "Inverted List Indices"),
//! stored block-compressed, consumed through streaming cursors, and
//! organized into **segments**:
//!
//! * [`PathIndex`] — the (Path, Value) table of Fig. 5. The engine plans
//!   probes with [`PathIndex::select_rows`] (predicates evaluated once
//!   per row key) and streams the selected rows through [`EntryCursor`]s;
//!   Dewey IDs, atomic values, and byte lengths all come from the index,
//!   never from base documents.
//! * [`InvertedIndex`] — per-keyword Dewey-ordered posting lists of
//!   Fig. 4(b), opened as [`PostingCursor`]s with `seek` + bounded scans
//!   for subtree-range tf probes. Lists carry **block-max tf metadata**
//!   ([`InvertedIndex::max_tf`], [`InvertedIndex::subtree_tf_bound`]):
//!   directory-only upper bounds on what any range probe could return,
//!   which top-k pruning uses to skip exact probes — and whole
//!   compressed blocks — that provably cannot affect the top-k.
//! * [`TagIndex`] — plain per-tag element streams, the access path of the
//!   structural-join (GTP+TermJoin) comparison system.
//!
//! An [`IndexSegment`] bundles one immutable (path index, inverted
//! index, document catalog) triple; the corpus is **partitioned by
//! document** across segments, so ingestion builds a new segment instead
//! of rewriting old ones, per-document query work consults exactly one
//! segment, and [`IndexSegment::merge`] compacts segments into a result
//! byte-identical to a single build over the union — searches can never
//! observe compaction.
//!
//! The probe → cursor contract is defined in [`cursor`]; the
//! delta-varint block format (with per-block ID skip metadata, payload
//! maxima, and a batched scratch decoder) in [`postings`]; sizes are
//! reported uniformly via [`IndexFootprint`]; and
//! [`persist::IndexBundle`] serializes any number of segments into a
//! versioned `indices.vxi` (v4 sectioned: offset-addressed DATA +
//! checksummed META, so [`persist::IndexBundle::open_mmap`] maps
//! posting payloads zero-copy and decodes **nothing** at open; v1–v3
//! files still load by decoding owned) so a cold engine opens indexes
//! from disk instead of rebuilding from the corpus.
//!
//! All indices carry work counters — charged when cursors *consume*
//! entries, not when lists are opened, with tallies batched in the
//! cursor and flushed at block-decode boundaries and on drop — so the
//! experiments can report probe costs; [`SegmentStats`] sums them per
//! segment.
//!
//! The real-time write path's durability layer also lives here:
//! [`wal`] is a checksummed, length-prefixed write-ahead log
//! (`wal.vxl`) whose replay truncates torn tail records typed — the
//! engine logs every append batch before making it searchable, so a
//! crash at any write boundary recovers to exactly the acknowledged
//! state.

pub mod cursor;
pub mod footprint;
pub mod inverted;
pub mod mapped;
pub mod path_index;
pub mod pattern;
pub mod persist;
pub mod positions;
pub mod postings;
pub mod segment;
pub mod tag_index;
pub mod tokenize;
pub mod wal;

pub use cursor::{
    collect_entries, collect_postings, EntryCursor, PostingCursor, ScanCounters, SliceEntryCursor,
    SlicePostingCursor,
};
pub use footprint::{Footprint, IndexFootprint};
pub use inverted::{
    InvertedIndex, InvertedIndexStats, PinnedList, PositionalReader, Posting, PostingsCursor,
    TfReader, INVERTED_BLOCK_ENTRIES,
};
pub use mapped::{Bytes, MappedFile};
pub use path_index::{
    DocBounds, IdEntry, PathIndex, PathIndexStats, PlannedRow, ProbeResult, RowCursor,
    ValuePredicate,
};
pub use pattern::{Axis, PathPattern, Step};
pub use persist::{DocInfo, IndexBundle, OpenStats, PersistError};
pub use positions::{PositionsList, PositionsScratch};
pub use postings::{
    BlockCursor, BlockList, DecodeScratch, PayloadBound, RangeEstimate, DEFAULT_BLOCK_ENTRIES,
};
pub use segment::{IndexSegment, SegmentStats};
pub use tag_index::TagIndex;
pub use wal::{FsyncPolicy, TornTail, WalError, WalReplay, WalWriter, WAL_FILE};
