#![warn(missing_docs)]
//! # vxv-index — index substrate
//!
//! The two index families the paper's PDT-generation phase consumes
//! (Fig. 3's "Structure (Path/Tag) Indices" and "Inverted List Indices"):
//!
//! * [`PathIndex`] — the (Path, Value) table of Fig. 5, probed by path
//!   prefix or composite key; supplies Dewey IDs, atomic values, and byte
//!   lengths without touching base documents.
//! * [`InvertedIndex`] — per-keyword Dewey-ordered posting lists of
//!   Fig. 4(b), with point and subtree-range tf probes.
//! * [`TagIndex`] — plain per-tag element streams, the access path of the
//!   structural-join (GTP+TermJoin) comparison system.
//!
//! All indices carry work counters so the experiments can report probe
//! costs.

pub mod inverted;
pub mod path_index;
pub mod pattern;
pub mod tag_index;
pub mod tokenize;

pub use inverted::{InvertedIndex, InvertedIndexStats, Posting};
pub use path_index::{IdEntry, PathIndex, PathIndexStats, ProbeResult, ValuePredicate};
pub use pattern::{Axis, PathPattern, Step};
pub use tag_index::TagIndex;
