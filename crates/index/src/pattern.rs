//! Linear path patterns with child (`/`) and descendant (`//`) axes.
//!
//! A [`PathPattern`] describes one root-to-node path of a QPT (e.g.
//! `/books//book/isbn`). The path index evaluates a pattern by matching it
//! against its dictionary of *full data paths* (paper §3.2: "for path
//! queries with descendant axes the index is probed for each full data
//! path") and merging the per-path ID lists.

use std::fmt;

/// An XPath axis between two steps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Axis {
    /// `/` — parent/child.
    Child,
    /// `//` — ancestor/descendant.
    Descendant,
}

/// One step: an axis followed by a tag-name test.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Step {
    /// The axis connecting this step to the previous one.
    pub axis: Axis,
    /// The tag-name test.
    pub tag: String,
}

/// A linear root-anchored path pattern.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PathPattern {
    /// The steps, outermost first.
    pub steps: Vec<Step>,
}

impl PathPattern {
    /// The empty pattern (matches only the super-root; rarely useful).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a step, builder style.
    pub fn step(mut self, axis: Axis, tag: &str) -> Self {
        self.steps.push(Step { axis, tag: tag.to_string() });
        self
    }

    /// Parse a textual pattern such as `/books//book/isbn`.
    ///
    /// Returns `None` for syntactically empty or malformed input.
    pub fn parse(s: &str) -> Option<Self> {
        let mut steps = Vec::new();
        let mut rest = s;
        while !rest.is_empty() {
            let axis = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                Axis::Descendant
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                Axis::Child
            } else if steps.is_empty() {
                // Leading axis is implicit-child if omitted.
                Axis::Child
            } else {
                return None;
            };
            let end = rest.find('/').unwrap_or(rest.len());
            let tag = &rest[..end];
            if tag.is_empty() {
                return None;
            }
            steps.push(Step { axis, tag: tag.to_string() });
            rest = &rest[end..];
        }
        if steps.is_empty() {
            None
        } else {
            Some(PathPattern { steps })
        }
    }

    /// Match this pattern against a full data path given as root-first tag
    /// segments. The entire path must be consumed (the pattern addresses
    /// elements *at* the path, not below it).
    pub fn matches(&self, segments: &[&str]) -> bool {
        fn rec(steps: &[Step], segs: &[&str]) -> bool {
            match steps.split_first() {
                None => segs.is_empty(),
                Some((step, rest_steps)) => match step.axis {
                    Axis::Child => {
                        !segs.is_empty() && segs[0] == step.tag && rec(rest_steps, &segs[1..])
                    }
                    Axis::Descendant => {
                        // The step's tag may match at any depth >= 1 further in.
                        (0..segs.len()).any(|skip| {
                            segs[skip] == step.tag && rec(rest_steps, &segs[skip + 1..])
                        })
                    }
                },
            }
        }
        rec(&self.steps, segments)
    }

    /// Match against a `/`-joined full path string like `/books/book/isbn`.
    pub fn matches_path_string(&self, path: &str) -> bool {
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        self.matches(&segments)
    }

    /// The tag of the final step (the node the pattern addresses).
    pub fn leaf_tag(&self) -> Option<&str> {
        self.steps.last().map(|s| s.tag.as_str())
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the pattern has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            match s.axis {
                Axis::Child => write!(f, "/{}", s.tag)?,
                Axis::Descendant => write!(f, "//{}", s.tag)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(s: &str) -> PathPattern {
        PathPattern::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["/books/book", "/books//book/isbn", "//a//a"] {
            assert_eq!(pat(s).to_string(), s);
        }
        assert!(PathPattern::parse("").is_none());
        assert!(PathPattern::parse("/a//").is_none());
    }

    #[test]
    fn child_axis_matches_exact_paths() {
        assert!(pat("/books/book/isbn").matches(&["books", "book", "isbn"]));
        assert!(!pat("/books/book/isbn").matches(&["books", "journal", "book", "isbn"]));
        assert!(!pat("/books/book").matches(&["books", "book", "isbn"])); // must consume all
    }

    #[test]
    fn descendant_axis_skips_levels() {
        assert!(pat("/books//isbn").matches(&["books", "book", "isbn"]));
        assert!(pat("/books//isbn").matches(&["books", "isbn"]));
        assert!(!pat("/books//isbn").matches(&["books", "book", "title"]));
    }

    #[test]
    fn repeated_tags_with_descendant_axes() {
        // //a//a matches /a/a and /a/b/a and /a/a/a (the paper's tricky case).
        assert!(pat("//a//a").matches(&["a", "a"]));
        assert!(pat("//a//a").matches(&["a", "b", "a"]));
        assert!(pat("//a//a").matches(&["a", "a", "a"]));
        assert!(!pat("//a//a").matches(&["a"]));
    }

    #[test]
    fn path_string_matching() {
        assert!(pat("/books//book/isbn").matches_path_string("/books/shelf/book/isbn"));
        assert!(!pat("/books//book/isbn").matches_path_string("/books/shelf/book"));
    }

    #[test]
    fn builder_api() {
        let p = PathPattern::new().step(Axis::Child, "books").step(Axis::Descendant, "book");
        assert_eq!(p.to_string(), "/books//book");
        assert_eq!(p.leaf_tag(), Some("book"));
    }
}
