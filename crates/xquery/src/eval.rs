//! The "regular, unmodified" XQuery evaluator of Fig. 3.
//!
//! Evaluation is generic over a [`DocSource`], so the very same code runs
//! over base documents (Baseline system) and over pruned document trees
//! (the Efficient pipeline) — reproducing the paper's architectural claim
//! that keyword search over views requires *no* evaluator changes.
//!
//! Results are sequences of [`Item`]s. Constructed elements keep
//! *references* to the source nodes they copy instead of eagerly
//! materializing them; those references are the provenance that the
//! scoring and materialization module consumes.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use vxv_xml::value::compare_atomic;
use vxv_xml::{Corpus, Document, NodeId};

/// Supplies documents to `fn:doc(...)`.
pub trait DocSource {
    /// Resolve a document by name.
    fn doc(&self, name: &str) -> Option<&Document>;
}

impl DocSource for Corpus {
    fn doc(&self, name: &str) -> Option<&Document> {
        Corpus::doc(self, name)
    }
}

/// A map-backed source, handy for running queries over PDTs.
pub struct MapSource<'a> {
    docs: HashMap<String, &'a Document>,
}

impl<'a> MapSource<'a> {
    /// Build from (name, document) pairs.
    pub fn new(entries: impl IntoIterator<Item = (String, &'a Document)>) -> Self {
        MapSource { docs: entries.into_iter().collect() }
    }
}

impl DocSource for MapSource<'_> {
    fn doc(&self, name: &str) -> Option<&Document> {
        self.docs.get(name).copied()
    }
}

/// A constructed element: a new tag wrapping copied content.
#[derive(Clone, Debug)]
pub struct ConstructedElem<'a> {
    /// The constructed element's tag name.
    pub tag: String,
    /// Content items, in construction order.
    pub children: Vec<Item<'a>>,
}

/// One item of a result sequence.
#[derive(Clone, Debug)]
pub enum Item<'a> {
    /// A node of a source document (base data or PDT) — a deferred copy.
    Node(&'a Document, NodeId),
    /// A constructed element.
    Elem(Rc<ConstructedElem<'a>>),
}

impl PartialEq for Item<'_> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Item::Node(da, na), Item::Node(db, nb)) => std::ptr::eq(*da, *db) && na == nb,
            (Item::Elem(a), Item::Elem(b)) => a.tag == b.tag && a.children == b.children,
            _ => false,
        }
    }
}

impl PartialEq for ConstructedElem<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.tag == other.tag && self.children == other.children
    }
}

/// A sequence of items.
pub type Seq<'a> = Vec<Item<'a>>;

/// Runtime evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

fn err<T>(message: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError { message: message.into() })
}

/// Variable environment (lexically scoped stack).
#[derive(Default)]
struct Env<'a> {
    frames: Vec<(String, Seq<'a>)>,
}

impl<'a> Env<'a> {
    fn lookup(&self, var: &str) -> Option<&Seq<'a>> {
        self.frames.iter().rev().find(|(n, _)| n == var).map(|(_, s)| s)
    }

    fn push(&mut self, var: &str, seq: Seq<'a>) {
        self.frames.push((var.to_string(), seq));
    }

    fn pop(&mut self) {
        self.frames.pop();
    }
}

const MAX_CALL_DEPTH: u32 = 64;

/// The evaluator. Stateless between calls apart from the function table
/// and a per-evaluator cache of document-rooted path scans (re-scanning
/// `fn:doc(x)/a//b` on every iteration of an enclosing `for` would make
/// every join quadratic in document size; real engines never do that).
pub struct Evaluator<'a> {
    source: &'a dyn DocSource,
    functions: HashMap<&'a str, &'a FunctionDecl>,
    doc_path_cache: std::cell::RefCell<HashMap<String, Seq<'a>>>,
    join_cache: std::cell::RefCell<HashMap<String, Rc<JoinIndex<'a>>>>,
    hash_joins: bool,
}

/// A hash index over a binding sequence for equality joins.
struct JoinIndex<'a> {
    items: Seq<'a>,
    map: HashMap<String, Vec<u32>>,
}

/// Join-key normalization matching [`compare_atomic`] equality: numeric
/// values share a canonical key; everything else compares byte-wise.
fn join_key(value: &str) -> String {
    match value.trim().parse::<f64>() {
        Ok(x) => format!("\u{1}num:{x}"),
        Err(_) => value.to_string(),
    }
}

/// Does a path's source or any of its predicate operands reference `$var`?
fn path_mentions_var(p: &PathExpr, var: &str) -> bool {
    if p.source == PathSource::Var(var.to_string()) {
        return true;
    }
    p.predicates.iter().any(|pred| match pred {
        Predicate::Exists(q) => path_mentions_var(q, var),
        Predicate::CompareLiteral(q, _, _) => path_mentions_var(q, var),
        Predicate::ComparePaths(a, _, b) => path_mentions_var(a, var) || path_mentions_var(b, var),
    })
}

/// Can the outer join side be evaluated right now?
fn outer_resolvable(p: &PathExpr, env: &Env<'_>) -> bool {
    match &p.source {
        PathSource::Doc(_) | PathSource::ContextItem => true,
        PathSource::Var(v) => env.lookup(v).is_some(),
    }
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over `source` with the query's declared
    /// functions in scope.
    pub fn new(source: &'a dyn DocSource, query: &'a Query) -> Self {
        Evaluator {
            source,
            functions: query.functions.iter().map(|f| (f.name.as_str(), f)).collect(),
            doc_path_cache: std::cell::RefCell::new(HashMap::new()),
            join_cache: std::cell::RefCell::new(HashMap::new()),
            hash_joins: true,
        }
    }

    /// Create an evaluator with no functions (for bare expressions).
    pub fn without_functions(source: &'a dyn DocSource) -> Self {
        Evaluator {
            source,
            functions: HashMap::new(),
            doc_path_cache: std::cell::RefCell::new(HashMap::new()),
            join_cache: std::cell::RefCell::new(HashMap::new()),
            hash_joins: true,
        }
    }

    /// Disable the equality hash-join optimization, forcing nested-loop
    /// evaluation of `where` joins (ablation / differential testing).
    pub fn with_naive_joins(mut self) -> Self {
        self.hash_joins = false;
        self
    }

    /// Evaluate a query body to a result sequence.
    pub fn eval_query(&self, query: &Query) -> Result<Seq<'a>, EvalError> {
        let mut env = Env::default();
        self.eval_expr(&query.body, &mut env, None, 0)
    }

    /// Evaluate an arbitrary expression in an empty environment.
    pub fn eval(&self, expr: &Expr) -> Result<Seq<'a>, EvalError> {
        let mut env = Env::default();
        self.eval_expr(expr, &mut env, None, 0)
    }

    fn eval_expr(
        &self,
        expr: &Expr,
        env: &mut Env<'a>,
        ctx: Option<&Item<'a>>,
        depth: u32,
    ) -> Result<Seq<'a>, EvalError> {
        match expr {
            Expr::Path(p) => self.eval_path(p, env, ctx, depth),
            Expr::Flwor(f) => {
                let mut out = Vec::new();
                let mut consumed = vec![false; f.where_clauses.len()];
                self.eval_flwor(f, 0, env, ctx, depth, &mut consumed, &mut out)?;
                Ok(out)
            }
            Expr::Cond { cond, then_branch, else_branch } => {
                if self.eval_predicate(cond, env, ctx, depth)? {
                    self.eval_expr(then_branch, env, ctx, depth)
                } else {
                    self.eval_expr(else_branch, env, ctx, depth)
                }
            }
            Expr::Element { tag, content } => {
                let mut children = Vec::new();
                for c in content {
                    children.extend(self.eval_expr(c, env, ctx, depth)?);
                }
                Ok(vec![Item::Elem(Rc::new(ConstructedElem { tag: tag.clone(), children }))])
            }
            Expr::Sequence(es) => {
                let mut out = Vec::new();
                for e in es {
                    out.extend(self.eval_expr(e, env, ctx, depth)?);
                }
                Ok(out)
            }
            Expr::FunctionCall { name, args } => {
                if depth >= MAX_CALL_DEPTH {
                    return err(format!(
                        "call depth exceeded in '{name}' (recursive functions are not supported)"
                    ));
                }
                let func = self
                    .functions
                    .get(name.as_str())
                    .ok_or_else(|| EvalError { message: format!("undefined function '{name}'") })?;
                if func.params.len() != args.len() {
                    return err(format!(
                        "function '{name}' expects {} arguments, got {}",
                        func.params.len(),
                        args.len()
                    ));
                }
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval_path(a, env, ctx, depth)?);
                }
                // Functions see only their parameters.
                let mut callee_env = Env::default();
                for (p, v) in func.params.iter().zip(values) {
                    callee_env.push(p, v);
                }
                self.eval_expr(&func.body, &mut callee_env, None, depth + 1)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_flwor(
        &self,
        f: &FlworExpr,
        binding_idx: usize,
        env: &mut Env<'a>,
        ctx: Option<&Item<'a>>,
        depth: u32,
        consumed: &mut Vec<bool>,
        out: &mut Seq<'a>,
    ) -> Result<(), EvalError> {
        if binding_idx == f.bindings.len() {
            for (i, w) in f.where_clauses.iter().enumerate() {
                if consumed[i] {
                    continue; // already enforced by a hash join
                }
                if !self.eval_predicate(w, env, ctx, depth)? {
                    return Ok(());
                }
            }
            out.extend(self.eval_expr(&f.return_expr, env, ctx, depth)?);
            return Ok(());
        }
        let b = &f.bindings[binding_idx];
        let seq = self.eval_path(&b.expr, env, ctx, depth)?;
        match b.kind {
            BindingKind::For => {
                // Equality where-clauses over this variable become hash
                // joins: index the binding sequence by the join key once,
                // probe with the outer side's values per iteration.
                if let Some((widx, inner, outer)) = self.plan_hash_join(f, binding_idx, env) {
                    if !consumed[widx] {
                        let index =
                            self.join_index(&b.expr, seq, inner, &b.var, env, ctx, depth)?;
                        let outer_vals = self.eval_path(outer, env, ctx, depth)?;
                        let mut idxs: Vec<u32> = Vec::new();
                        for ov in &outer_vals {
                            if let Some(hits) = index.map.get(&join_key(&atomize(ov))) {
                                idxs.extend_from_slice(hits);
                            }
                        }
                        idxs.sort_unstable();
                        idxs.dedup();
                        consumed[widx] = true;
                        for i in idxs {
                            env.push(&b.var, vec![index.items[i as usize].clone()]);
                            let r =
                                self.eval_flwor(f, binding_idx + 1, env, ctx, depth, consumed, out);
                            env.pop();
                            r?;
                        }
                        consumed[widx] = false;
                        return Ok(());
                    }
                }
                for item in seq {
                    env.push(&b.var, vec![item]);
                    let r = self.eval_flwor(f, binding_idx + 1, env, ctx, depth, consumed, out);
                    env.pop();
                    r?;
                }
            }
            BindingKind::Let => {
                env.push(&b.var, seq);
                let r = self.eval_flwor(f, binding_idx + 1, env, ctx, depth, consumed, out);
                env.pop();
                r?;
            }
        }
        Ok(())
    }

    /// Find a `where` clause of the form `$bound/path = other` (either
    /// side) where `other` does not depend on the variable being bound and
    /// is resolvable in the current environment.
    fn plan_hash_join<'f>(
        &self,
        f: &'f FlworExpr,
        binding_idx: usize,
        env: &Env<'a>,
    ) -> Option<(usize, &'f PathExpr, &'f PathExpr)> {
        if !self.hash_joins {
            return None;
        }
        let b = &f.bindings[binding_idx];
        // Where clauses see the *innermost* binding of a name; if a later
        // clause shadows this variable, no where clause can refer to this
        // binding and joining here would filter the wrong loop.
        if f.bindings[binding_idx + 1..].iter().any(|later| later.var == b.var) {
            return None;
        }
        for (i, w) in f.where_clauses.iter().enumerate() {
            let Predicate::ComparePaths(l, CompOp::Eq, r) = w else { continue };
            for (inner, outer) in [(l, r), (r, l)] {
                if inner.source == PathSource::Var(b.var.clone())
                    && inner.predicates.is_empty()
                    && !path_mentions_var(outer, &b.var)
                    && outer_resolvable(outer, env)
                {
                    return Some((i, inner, outer));
                }
            }
        }
        None
    }

    /// Build (or fetch from cache) the hash index of `seq` keyed by the
    /// atomized values of `inner` evaluated relative to each item.
    #[allow(clippy::too_many_arguments)]
    fn join_index(
        &self,
        binding: &PathExpr,
        seq: Seq<'a>,
        inner: &PathExpr,
        var: &str,
        env: &mut Env<'a>,
        ctx: Option<&Item<'a>>,
        depth: u32,
    ) -> Result<Rc<JoinIndex<'a>>, EvalError> {
        let cacheable =
            matches!(binding.source, PathSource::Doc(_)) && binding.predicates.is_empty();
        let key = format!("{binding}\u{1f}{inner}");
        if cacheable {
            if let Some(hit) = self.join_cache.borrow().get(&key) {
                return Ok(hit.clone());
            }
        }
        let mut map: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, item) in seq.iter().enumerate() {
            env.push(var, vec![item.clone()]);
            let vals = self.eval_path(inner, env, ctx, depth);
            env.pop();
            for v in vals? {
                map.entry(join_key(&atomize(&v))).or_default().push(i as u32);
            }
        }
        let index = Rc::new(JoinIndex { items: seq, map });
        if cacheable {
            self.join_cache.borrow_mut().insert(key, index.clone());
        }
        Ok(index)
    }

    fn eval_path(
        &self,
        p: &PathExpr,
        env: &mut Env<'a>,
        ctx: Option<&Item<'a>>,
        depth: u32,
    ) -> Result<Seq<'a>, EvalError> {
        // Document-rooted, predicate-free paths depend on nothing but the
        // source documents — memoize them across loop iterations.
        let cache_key = if matches!(p.source, PathSource::Doc(_)) && p.predicates.is_empty() {
            let key = p.to_string();
            if let Some(hit) = self.doc_path_cache.borrow().get(&key) {
                return Ok(hit.clone());
            }
            Some(key)
        } else {
            None
        };
        let result = self.eval_path_uncached(p, env, ctx, depth)?;
        if let Some(key) = cache_key {
            self.doc_path_cache.borrow_mut().insert(key, result.clone());
        }
        Ok(result)
    }

    fn eval_path_uncached(
        &self,
        p: &PathExpr,
        env: &mut Env<'a>,
        ctx: Option<&Item<'a>>,
        depth: u32,
    ) -> Result<Seq<'a>, EvalError> {
        let mut seq: Seq<'a> = match &p.source {
            PathSource::Doc(name) => {
                let doc = self
                    .source
                    .doc(name)
                    .ok_or_else(|| EvalError { message: format!("unknown document '{name}'") })?;
                match doc.root() {
                    // A virtual document node above the root element, so
                    // that `/books` addresses the root itself (XPath's
                    // document-node semantics).
                    Some(r) => vec![Item::Elem(Rc::new(ConstructedElem {
                        tag: "#document".to_string(),
                        children: vec![Item::Node(doc, r)],
                    }))],
                    None => vec![],
                }
            }
            PathSource::Var(v) => env
                .lookup(v)
                .cloned()
                .ok_or_else(|| EvalError { message: format!("unbound variable '${v}'") })?,
            PathSource::ContextItem => match ctx {
                Some(item) => vec![item.clone()],
                None => return err("context item '.' used outside a predicate"),
            },
        };
        for step in &p.steps {
            let mut next: Seq<'a> = Vec::new();
            for item in &seq {
                match step.axis {
                    Axis::Child => collect_children(item, &step.tag, &mut next),
                    Axis::Descendant => collect_descendants(item, &step.tag, &mut next),
                }
            }
            normalize_node_sequence(&mut next);
            seq = next;
        }
        if !p.predicates.is_empty() {
            let mut filtered = Vec::with_capacity(seq.len());
            for item in seq {
                let mut keep = true;
                for pred in &p.predicates {
                    if !self.eval_predicate(pred, env, Some(&item), depth)? {
                        keep = false;
                        break;
                    }
                }
                if keep {
                    filtered.push(item);
                }
            }
            seq = filtered;
        }
        Ok(seq)
    }

    fn eval_predicate(
        &self,
        pred: &Predicate,
        env: &mut Env<'a>,
        ctx: Option<&Item<'a>>,
        depth: u32,
    ) -> Result<bool, EvalError> {
        match pred {
            Predicate::Exists(p) => Ok(!self.eval_path(p, env, ctx, depth)?.is_empty()),
            Predicate::CompareLiteral(p, op, lit) => {
                let seq = self.eval_path(p, env, ctx, depth)?;
                let rhs = lit.as_atomic();
                Ok(seq.iter().any(|i| compare_ok(&atomize(i), *op, &rhs)))
            }
            Predicate::ComparePaths(l, op, r) => {
                let ls = self.eval_path(l, env, ctx, depth)?;
                if ls.is_empty() {
                    return Ok(false);
                }
                let rs = self.eval_path(r, env, ctx, depth)?;
                // Existential (general comparison) semantics.
                let rvals: Vec<String> = rs.iter().map(atomize).collect();
                Ok(ls.iter().any(|li| rvals.iter().any(|rv| compare_ok(&atomize(li), *op, rv))))
            }
        }
    }
}

fn compare_ok(lhs: &str, op: CompOp, rhs: &str) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, compare_atomic(lhs, rhs)),
        (CompOp::Eq, Equal) | (CompOp::Lt, Less) | (CompOp::Gt, Greater)
    )
}

fn collect_children<'a>(item: &Item<'a>, tag: &str, out: &mut Seq<'a>) {
    match item {
        Item::Node(doc, n) => {
            for c in doc.children(*n) {
                if doc.node_tag(*c) == tag {
                    out.push(Item::Node(doc, *c));
                }
            }
        }
        Item::Elem(e) => {
            for c in &e.children {
                if item_tag(c) == Some(tag) {
                    out.push(c.clone());
                }
            }
        }
    }
}

fn collect_descendants<'a>(item: &Item<'a>, tag: &str, out: &mut Seq<'a>) {
    match item {
        Item::Node(doc, n) => {
            for d in doc.descendants(*n) {
                if doc.node_tag(d) == tag {
                    out.push(Item::Node(doc, d));
                }
            }
        }
        Item::Elem(e) => {
            for c in &e.children {
                if item_tag(c) == Some(tag) {
                    out.push(c.clone());
                }
                collect_descendants(c, tag, out);
            }
        }
    }
}

/// The element name an item presents to name tests.
pub fn item_tag<'a>(item: &'a Item<'a>) -> Option<&'a str> {
    match item {
        Item::Node(doc, n) => Some(doc.node_tag(*n)),
        Item::Elem(e) => Some(e.tag.as_str()),
    }
}

/// Sort a pure-node sequence into document order and remove duplicates.
/// Dewey IDs are corpus-unique (documents get distinct root ordinals), so
/// the ID alone is a global sort key. Sequences containing constructed
/// elements keep their construction order.
fn normalize_node_sequence(seq: &mut Seq<'_>) {
    if seq.iter().all(|i| matches!(i, Item::Node(..))) {
        seq.sort_by(|a, b| match (a, b) {
            (Item::Node(da, na), Item::Node(db, nb)) => da.node(*na).dewey.cmp(&db.node(*nb).dewey),
            _ => unreachable!(),
        });
        seq.dedup_by(|a, b| match (a, b) {
            (Item::Node(da, na), Item::Node(db, nb)) => da.node(*na).dewey == db.node(*nb).dewey,
            _ => unreachable!(),
        });
    }
}

/// The atomic string value of an item: concatenated descendant text in
/// document order (matches [`Document::full_text`]).
pub fn atomize(item: &Item<'_>) -> String {
    fn rec(item: &Item<'_>, out: &mut String) {
        match item {
            Item::Node(doc, n) => {
                let t = doc.full_text(*n);
                if !t.is_empty() {
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(&t);
                }
            }
            Item::Elem(e) => {
                for c in &e.children {
                    rec(c, out);
                }
            }
        }
    }
    let mut s = String::new();
    rec(item, &mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_query};

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>\
               <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>\
               <book><isbn>333</isbn><title>Old Book</title><year>1990</year></book>\
             </books>",
        )
        .unwrap();
        c.add_parsed(
            "reviews.xml",
            "<reviews>\
               <review><isbn>111</isbn><content>about search</content></review>\
               <review><isbn>111</isbn><content>easy to read</content></review>\
               <review><isbn>222</isbn><content>thorough</content></review>\
             </reviews>",
        )
        .unwrap();
        c
    }

    fn eval_str<'a>(c: &'a Corpus, q: &str) -> Seq<'a> {
        let query = parse_query(q).unwrap();
        // Leak the query for test lifetimes; tests are short-lived.
        let query: &'static Query = Box::leak(Box::new(query));
        Evaluator::new(c, query).eval_query(query).unwrap()
    }

    #[test]
    fn path_navigation_child_and_descendant() {
        let c = corpus();
        let r = eval_str(&c, "fn:doc(books.xml)/books/book/title");
        assert_eq!(r.len(), 3);
        let r = eval_str(&c, "fn:doc(books.xml)//title");
        assert_eq!(r.len(), 3);
        let r = eval_str(&c, "fn:doc(books.xml)/books//isbn");
        let texts: Vec<String> = r.iter().map(atomize).collect();
        assert_eq!(texts, vec!["111", "222", "333"]);
    }

    #[test]
    fn predicates_filter_with_comparison_semantics() {
        let c = corpus();
        let r = eval_str(&c, "fn:doc(books.xml)/books/book[year > 1995]");
        assert_eq!(r.len(), 2);
        let r = eval_str(&c, "fn:doc(books.xml)/books/book[isbn = '333']");
        assert_eq!(r.len(), 1);
        let r = eval_str(&c, "fn:doc(books.xml)/books/book[title]");
        assert_eq!(r.len(), 3);
        let r = eval_str(&c, "fn:doc(books.xml)/books/book[year < 1991]");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn flwor_with_where_and_join() {
        let c = corpus();
        let r = eval_str(
            &c,
            "for $b in fn:doc(books.xml)/books/book \
             where $b/year > 1995 \
             return <out> { $b/title } \
               { for $r in fn:doc(reviews.xml)/reviews/review \
                 where $r/isbn = $b/isbn return $r/content } </out>",
        );
        assert_eq!(r.len(), 2);
        let Item::Elem(first) = &r[0] else { panic!() };
        // title + 2 reviews for isbn 111.
        assert_eq!(first.children.len(), 3);
        assert_eq!(atomize(&r[0]), "XML Web Services about search easy to read");
        assert_eq!(atomize(&r[1]), "Artificial Intelligence thorough");
    }

    #[test]
    fn let_binds_whole_sequences() {
        let c = corpus();
        let r = eval_str(&c, "let $ts := fn:doc(books.xml)//title return <all> { $ts } </all>");
        assert_eq!(r.len(), 1);
        let Item::Elem(e) = &r[0] else { panic!() };
        assert_eq!(e.children.len(), 3);
    }

    #[test]
    fn conditionals_branch_on_predicates() {
        let c = corpus();
        let r = eval_str(
            &c,
            "for $b in fn:doc(books.xml)/books/book \
             return if ($b/year > 2000) then $b/title else $b/isbn",
        );
        let texts: Vec<String> = r.iter().map(atomize).collect();
        assert_eq!(texts, vec!["XML Web Services", "Artificial Intelligence", "333"]);
    }

    #[test]
    fn function_calls_bind_parameters() {
        let c = corpus();
        let r = eval_str(
            &c,
            "declare function titles($b) { $b/title } \
             for $x in fn:doc(books.xml)/books/book return titles($x)",
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn recursion_is_rejected() {
        let c = corpus();
        let q = parse_query("declare function f($x) { f($x) } f(fn:doc(books.xml)/books)").unwrap();
        let ev = Evaluator::new(&c, &q);
        let e = ev.eval_query(&q).unwrap_err();
        assert!(e.message.contains("recursive"), "{e}");
    }

    #[test]
    fn unknown_doc_and_unbound_var_error() {
        let c = corpus();
        let q = parse_query("fn:doc(zzz.xml)/a").unwrap();
        assert!(Evaluator::new(&c, &q).eval_query(&q).is_err());
        let q = parse_query("$nope/a").unwrap();
        assert!(Evaluator::new(&c, &q).eval_query(&q).is_err());
    }

    #[test]
    fn duplicate_nodes_are_removed_in_document_order() {
        let c = corpus();
        // //book//isbn via two overlapping routes stays deduplicated.
        let e = parse_expr("fn:doc(books.xml)//books//isbn").unwrap();
        let q = Query { functions: vec![], body: e };
        let r = Evaluator::new(&c, &q).eval_query(&q).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn navigation_into_constructed_elements() {
        let c = corpus();
        let r = eval_str(
            &c,
            "for $v in fn:doc(books.xml)/books \
             return <wrap> { for $b in $v/book return <entry> { $b/title } </entry> } </wrap>",
        );
        assert_eq!(r.len(), 1);
        // Navigate into the constructed tree through a let binding.
        let r = eval_str(&c, "let $w := fn:doc(books.xml)/books return <x> { $w/book } </x>");
        let Item::Elem(e) = &r[0] else { panic!() };
        assert_eq!(e.children.len(), 3);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::parser::parse_query;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "d.xml",
            "<r><item><k>1</k><tags><t>a</t><t>b</t></tags></item>\
               <item><k>2</k></item><empty/></r>",
        )
        .unwrap();
        c
    }

    fn run<'a>(c: &'a Corpus, q: &'a Query) -> Seq<'a> {
        Evaluator::new(c, q).eval_query(q).unwrap()
    }

    #[test]
    fn empty_sequences_propagate_through_flwor() {
        let c = corpus();
        let q = parse_query("for $x in fn:doc(d.xml)/r/nothing return $x/k").unwrap();
        assert!(run(&c, &q).is_empty());
        let q = parse_query("for $x in fn:doc(d.xml)/r/item where $x/k > 99 return $x").unwrap();
        assert!(run(&c, &q).is_empty());
    }

    #[test]
    fn existential_comparison_over_multi_valued_paths() {
        let c = corpus();
        // tags/t has two values; '= b' holds existentially.
        let q = parse_query("for $x in fn:doc(d.xml)/r/item where $x/tags/t = 'b' return $x/k")
            .unwrap();
        let r = run(&c, &q);
        assert_eq!(r.len(), 1);
        assert_eq!(atomize(&r[0]), "1");
    }

    #[test]
    fn elements_without_text_atomize_to_empty() {
        let c = corpus();
        let q = parse_query("fn:doc(d.xml)/r/empty").unwrap();
        let r = run(&c, &q);
        assert_eq!(r.len(), 1);
        assert_eq!(atomize(&r[0]), "");
    }

    #[test]
    fn constructed_empty_elements_serialize() {
        let c = corpus();
        let q = parse_query("for $x in fn:doc(d.xml)/r/item return <w></w>").unwrap();
        let r = run(&c, &q);
        assert_eq!(r.len(), 2, "one wrapper per iteration even when empty");
        assert_eq!(crate::result::serialize_item(&r[0]), "<w></w>");
    }

    #[test]
    fn let_of_empty_sequence_is_fine() {
        let c = corpus();
        let q = parse_query("let $n := fn:doc(d.xml)/r/nothing return <o> { $n } </o>").unwrap();
        let r = run(&c, &q);
        assert_eq!(crate::result::serialize_item(&r[0]), "<o></o>");
    }

    #[test]
    fn numeric_and_string_comparisons_differ() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><x><v>10</v></x><x><v>9</v></x></r>").unwrap();
        // Numeric: 9 < 10.
        let q = parse_query("for $x in fn:doc(d.xml)/r/x where $x/v < 10 return $x/v").unwrap();
        let r = run(&c, &q);
        assert_eq!(r.len(), 1);
        assert_eq!(atomize(&r[0]), "9");
        // String compare kicks in when one side is non-numeric.
        let q = parse_query("for $x in fn:doc(d.xml)/r/x where $x/v < 'z' return $x/v").unwrap();
        assert_eq!(run(&c, &q).len(), 2);
    }

    #[test]
    fn function_calls_do_not_leak_caller_scope() {
        let c = corpus();
        let q = parse_query(
            "declare function f($a) { $a/k } \
             for $x in fn:doc(d.xml)/r/item for $hidden in $x/k return f($x)",
        )
        .unwrap();
        assert_eq!(run(&c, &q).len(), 2);
        // Referencing a caller variable inside the body is an error.
        let q = parse_query(
            "declare function g($a) { $x/k } \
             for $x in fn:doc(d.xml)/r/item return g($x)",
        )
        .unwrap();
        let err = Evaluator::new(&c, &q).eval_query(&q).unwrap_err();
        assert!(err.message.contains("unbound"), "{err}");
    }

    #[test]
    fn doc_path_cache_is_consistent_across_iterations() {
        let c = corpus();
        // The same doc-rooted path evaluated inside a loop must return the
        // same sequence every time (memoized or not).
        let q = parse_query(
            "for $x in fn:doc(d.xml)/r/item \
             return <o> { for $y in fn:doc(d.xml)/r/item return $y/k } </o>",
        )
        .unwrap();
        let r = run(&c, &q);
        assert_eq!(r.len(), 2);
        let a = crate::result::serialize_item(&r[0]);
        let b = crate::result::serialize_item(&r[1]);
        assert_eq!(a, b);
        assert_eq!(a, "<o><k>1</k><k>2</k></o>");
    }
}
