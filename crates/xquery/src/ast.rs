//! Abstract syntax for the XQuery subset of the paper (Appendix A).
//!
//! The grammar covers exactly what the paper's view-definition language
//! supports: rooted path expressions with `/` and `//` axes and
//! predicates, FLWOR expressions, conditionals, element constructors,
//! sequence concatenation, and non-recursive user functions.

use std::fmt;

/// A comparison operator in a predicate (`Comp :- '=' | '<' | '>'`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompOp::Eq => "=",
            CompOp::Lt => "<",
            CompOp::Gt => ">",
        })
    }
}

/// A literal operand.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// A quoted string literal.
    String(String),
    /// A numeric literal.
    Number(f64),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::String(s) => write!(f, "'{s}'"),
            Literal::Number(n) => write!(f, "{n}"),
        }
    }
}

impl Literal {
    /// The atomic string form used in comparisons.
    pub fn as_atomic(&self) -> String {
        match self {
            Literal::String(s) => s.clone(),
            Literal::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
        }
    }
}

/// Where a path expression starts.
#[derive(Clone, PartialEq, Debug)]
pub enum PathSource {
    /// `fn:doc(name)`
    Doc(String),
    /// `$var`
    Var(String),
    /// `.` — the context item.
    ContextItem,
}

/// An axis between path steps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Axis {
    /// `/` — parent/child.
    Child,
    /// `//` — ancestor/descendant.
    Descendant,
}

/// One name-test step.
#[derive(Clone, PartialEq, Debug)]
pub struct PathStep {
    /// The axis connecting this step to the previous one.
    pub axis: Axis,
    /// The tag-name test.
    pub tag: String,
}

/// A path expression: a source, a sequence of steps, and trailing
/// predicates (the grammar allows `PathExpr '[' PredExpr ']'` at the end
/// of any path; we normalize nests of filters into an ordered list).
#[derive(Clone, PartialEq, Debug)]
pub struct PathExpr {
    /// Where the path starts (document, variable, or context item).
    pub source: PathSource,
    /// The navigation steps, outermost first.
    pub steps: Vec<PathStep>,
    /// Trailing bracket predicates (the grammar allows none mid-path).
    pub predicates: Vec<Predicate>,
}

impl PathExpr {
    /// A bare variable reference `$v`.
    pub fn var(name: &str) -> Self {
        PathExpr { source: PathSource::Var(name.into()), steps: Vec::new(), predicates: Vec::new() }
    }

    /// A bare `fn:doc(name)` source.
    pub fn doc(name: &str) -> Self {
        PathExpr { source: PathSource::Doc(name.into()), steps: Vec::new(), predicates: Vec::new() }
    }

    /// Append a step, builder style.
    pub fn step(mut self, axis: Axis, tag: &str) -> Self {
        self.steps.push(PathStep { axis, tag: tag.into() });
        self
    }
}

/// A predicate expression (`PredExpr`).
#[derive(Clone, PartialEq, Debug)]
pub enum Predicate {
    /// `PathExpr` — existence test.
    Exists(PathExpr),
    /// `PathExpr Comp Literal`
    CompareLiteral(PathExpr, CompOp, Literal),
    /// `PathExpr Comp PathExpr` — value join.
    ComparePaths(PathExpr, CompOp, PathExpr),
}

/// A `for` or `let` binding clause.
#[derive(Clone, PartialEq, Debug)]
pub struct BindingClause {
    /// `for` (iterate) or `let` (alias).
    pub kind: BindingKind,
    /// The bound variable's name, without the `$`.
    pub var: String,
    /// The path expression being bound.
    pub expr: PathExpr,
}

/// Whether a binding iterates (`for`) or aliases (`let`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BindingKind {
    /// Iterate item by item.
    For,
    /// Bind the whole sequence.
    Let,
}

/// A FLWOR expression: one or more bindings, an optional `where` holding a
/// conjunction of predicates (the `and` connective is a small extension
/// over the paper's grammar; each conjunct is handled independently by QPT
/// generation exactly as a separate where clause would be), and a `return`.
#[derive(Clone, PartialEq, Debug)]
pub struct FlworExpr {
    /// The `for`/`let` clauses, outermost first.
    pub bindings: Vec<BindingClause>,
    /// Conjunction of `where` predicates (empty = no where clause).
    pub where_clauses: Vec<Predicate>,
    /// The `return` expression.
    pub return_expr: Box<Expr>,
}

/// Any expression of the supported grammar.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A path expression.
    Path(PathExpr),
    /// A FLWOR expression.
    Flwor(FlworExpr),
    /// `if Expr then Expr else Expr`. The condition is a predicate in this
    /// grammar (paths and comparisons are the only boolean-valued forms).
    Cond {
        /// The branch condition.
        cond: Predicate,
        /// Taken when the condition holds.
        then_branch: Box<Expr>,
        /// Taken otherwise.
        else_branch: Box<Expr>,
    },
    /// `<tag> {e1} {e2} ... </tag>`
    Element {
        /// The constructed element's tag.
        tag: String,
        /// The enclosed expressions, in order.
        content: Vec<Expr>,
    },
    /// `e1, e2`
    Sequence(Vec<Expr>),
    /// `name(arg, ...)` — call of a declared non-recursive function.
    FunctionCall {
        /// The function's (possibly prefixed) name.
        name: String,
        /// Argument path expressions, positional.
        args: Vec<PathExpr>,
    },
}

/// `declare function name($p1, $p2) { body }`
#[derive(Clone, PartialEq, Debug)]
pub struct FunctionDecl {
    /// The declared (possibly prefixed) name.
    pub name: String,
    /// Parameter names, without the `$`.
    pub params: Vec<String>,
    /// The function body.
    pub body: Expr,
}

/// A parsed query: optional function declarations followed by a body.
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    /// Declared functions, in declaration order.
    pub functions: Vec<FunctionDecl>,
    /// The query body.
    pub body: Expr,
}

impl Query {
    /// Look up a declared function.
    pub fn function(&self, name: &str) -> Option<&FunctionDecl> {
        self.functions.iter().find(|f| f.name == name)
    }
}

// ---------------------------------------------------------------------------
// Display (unparsing) — used for workload construction and error messages.
// ---------------------------------------------------------------------------

impl fmt::Display for PathSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathSource::Doc(name) => write!(f, "fn:doc({name})"),
            PathSource::Var(v) => write!(f, "${v}"),
            PathSource::ContextItem => write!(f, "."),
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)?;
        for s in &self.steps {
            match s.axis {
                Axis::Child => write!(f, "/{}", s.tag)?,
                Axis::Descendant => write!(f, "//{}", s.tag)?,
            }
        }
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Exists(p) => write!(f, "{p}"),
            Predicate::CompareLiteral(p, op, l) => write!(f, "{p} {op} {l}"),
            Predicate::ComparePaths(a, op, b) => write!(f, "{a} {op} {b}"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Flwor(fl) => {
                for b in &fl.bindings {
                    match b.kind {
                        BindingKind::For => write!(f, "for ${} in {} ", b.var, b.expr)?,
                        BindingKind::Let => write!(f, "let ${} := {} ", b.var, b.expr)?,
                    }
                }
                if !fl.where_clauses.is_empty() {
                    write!(f, "where ")?;
                    let mut first = true;
                    for w in &fl.where_clauses {
                        if !first {
                            write!(f, "and ")?;
                        }
                        write!(f, "{w} ")?;
                        first = false;
                    }
                }
                write!(f, "return {}", fl.return_expr)
            }
            Expr::Cond { cond, then_branch, else_branch } => {
                write!(f, "if ({cond}) then {then_branch} else {else_branch}")
            }
            Expr::Element { tag, content } => {
                write!(f, "<{tag}>")?;
                for c in content {
                    write!(f, " {{ {c} }}")?;
                }
                write!(f, " </{tag}>")
            }
            Expr::Sequence(es) => {
                let mut first = true;
                for e in es {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                    first = false;
                }
                Ok(())
            }
            Expr::FunctionCall { name, args } => {
                write!(f, "{name}(")?;
                let mut first = true;
                for a in args {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                    first = false;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in &self.functions {
            write!(f, "declare function {}(", func.name)?;
            let mut first = true;
            for p in &func.params {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "${p}")?;
                first = false;
            }
            writeln!(f, ") {{ {} }}", func.body)?;
        }
        write!(f, "{}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_display() {
        let p =
            PathExpr::doc("books.xml").step(Axis::Child, "books").step(Axis::Descendant, "book");
        assert_eq!(p.to_string(), "fn:doc(books.xml)/books//book");
    }

    #[test]
    fn predicate_display() {
        let p = Predicate::CompareLiteral(
            PathExpr::var("book").step(Axis::Child, "year"),
            CompOp::Gt,
            Literal::Number(1995.0),
        );
        assert_eq!(p.to_string(), "$book/year > 1995");
    }

    #[test]
    fn literal_atomic_form() {
        assert_eq!(Literal::Number(1995.0).as_atomic(), "1995");
        assert_eq!(Literal::Number(1.5).as_atomic(), "1.5");
        assert_eq!(Literal::String("Jane".into()).as_atomic(), "Jane");
    }
}
