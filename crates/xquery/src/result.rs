//! Helpers over result sequences: provenance extraction, serialization
//! with pluggable node expansion, and length/term-frequency aggregation.
//!
//! A result item built by the evaluator holds *references* to source nodes
//! rather than copies. The functions here walk that structure once and let
//! the caller decide what a referenced node contributes:
//!
//! * the Baseline system expands nodes from the base documents directly;
//! * the Efficient pipeline's scoring module charges each node its
//!   index-recorded byte length / tf and only expands the top-k winners
//!   from document storage.

use crate::eval::{ConstructedElem, Item};
use vxv_xml::{Document, NodeId};

/// All source-node references copied (transitively) into `item`, in
/// encounter order. If the item itself is a node, that single reference.
pub fn node_refs<'a>(item: &Item<'a>) -> Vec<(&'a Document, NodeId)> {
    let mut out = Vec::new();
    collect_node_refs(item, &mut out);
    out
}

fn collect_node_refs<'a>(item: &Item<'a>, out: &mut Vec<(&'a Document, NodeId)>) {
    match item {
        Item::Node(doc, n) => out.push((doc, *n)),
        Item::Elem(e) => {
            for c in &e.children {
                collect_node_refs(c, out);
            }
        }
    }
}

/// Serialize an item, expanding each referenced source node with `expand`.
pub fn serialize_item_with(
    item: &Item<'_>,
    expand: &mut dyn FnMut(&Document, NodeId, &mut String),
) -> String {
    let mut out = String::new();
    write_item(item, expand, &mut out);
    out
}

fn write_item(
    item: &Item<'_>,
    expand: &mut dyn FnMut(&Document, NodeId, &mut String),
    out: &mut String,
) {
    match item {
        Item::Node(doc, n) => expand(doc, *n, out),
        Item::Elem(e) => write_elem(e, expand, out),
    }
}

fn write_elem(
    e: &ConstructedElem<'_>,
    expand: &mut dyn FnMut(&Document, NodeId, &mut String),
    out: &mut String,
) {
    out.push('<');
    out.push_str(&e.tag);
    out.push('>');
    for c in &e.children {
        write_item(c, expand, out);
    }
    out.push_str("</");
    out.push_str(&e.tag);
    out.push('>');
}

/// Serialize an item by inlining the referenced nodes from the documents
/// they point into (the Baseline materialization).
pub fn serialize_item(item: &Item<'_>) -> String {
    serialize_item_with(item, &mut |doc, n, out| out.push_str(&vxv_xml::serialize_subtree(doc, n)))
}

/// Total byte length of the item under a caller-supplied per-node length
/// (constructed wrappers contribute their own tag overhead, matching the
/// serializer).
pub fn item_byte_len_with(
    item: &Item<'_>,
    node_len: &mut dyn FnMut(&Document, NodeId) -> u64,
) -> u64 {
    match item {
        Item::Node(doc, n) => node_len(doc, *n),
        Item::Elem(e) => {
            let mut total = 2 * e.tag.len() as u64 + 5;
            for c in &e.children {
                total += item_byte_len_with(c, node_len);
            }
            total
        }
    }
}

/// Aggregate a per-node quantity (e.g. a term frequency) over the item.
pub fn item_sum_with(item: &Item<'_>, node_value: &mut dyn FnMut(&Document, NodeId) -> u64) -> u64 {
    match item {
        Item::Node(doc, n) => node_value(doc, *n),
        Item::Elem(e) => e.children.iter().map(|c| item_sum_with(c, node_value)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Query;
    use crate::eval::Evaluator;
    use crate::parser::parse_query;
    use vxv_xml::Corpus;

    fn run<'a>(c: &'a Corpus, q: &'a Query) -> Vec<Item<'a>> {
        Evaluator::new(c, q).eval_query(q).unwrap()
    }

    #[test]
    fn serialization_matches_byte_length_accounting() {
        let mut c = Corpus::new();
        c.add_parsed("b.xml", "<books><book><t>hi</t></book><book><t>yo</t></book></books>")
            .unwrap();
        let q =
            parse_query("for $b in fn:doc(b.xml)/books/book return <out> { $b/t } </out>").unwrap();
        let items = run(&c, &q);
        for item in &items {
            let s = serialize_item(item);
            let len = item_byte_len_with(item, &mut |doc, n| doc.node(n).byte_len as u64);
            assert_eq!(s.len() as u64, len, "serialized: {s}");
        }
    }

    #[test]
    fn node_refs_are_the_copied_leaves() {
        let mut c = Corpus::new();
        c.add_parsed("b.xml", "<books><book><t>hi</t><u>x</u></book></books>").unwrap();
        let q = parse_query("for $b in fn:doc(b.xml)/books/book return <o> { $b/t } { $b/u } </o>")
            .unwrap();
        let items = run(&c, &q);
        let refs = node_refs(&items[0]);
        let tags: Vec<&str> = refs.iter().map(|(d, n)| d.node_tag(*n)).collect();
        assert_eq!(tags, vec!["t", "u"]);
    }

    #[test]
    fn item_sum_aggregates_over_structure() {
        let mut c = Corpus::new();
        c.add_parsed("b.xml", "<books><book><t>a b</t><u>c</u></book></books>").unwrap();
        let q = parse_query("for $b in fn:doc(b.xml)/books/book return <o> { $b/t } { $b/u } </o>")
            .unwrap();
        let items = run(&c, &q);
        // Count tokens per referenced node.
        let total = item_sum_with(&items[0], &mut |doc, n| {
            doc.full_text(n).split_whitespace().count() as u64
        });
        assert_eq!(total, 3);
    }
}
