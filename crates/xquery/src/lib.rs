#![warn(missing_docs)]
//! # vxv-xquery — XQuery-subset engine
//!
//! The query-language substrate of the paper: the Appendix-A grammar
//! (FLWOR expressions, `/`-and-`//` path expressions with predicates,
//! element constructors, conditionals, non-recursive functions), a
//! recursive-descent parser, and an evaluator that is generic over its
//! document source so the *same* code evaluates views over base documents
//! and over pruned document trees.
//!
//! ```
//! use vxv_xml::Corpus;
//! use vxv_xquery::{parse_query, Evaluator, atomize};
//!
//! let mut corpus = Corpus::new();
//! corpus.add_parsed("books.xml", "<books><book><title>XML</title></book></books>").unwrap();
//! let query = parse_query("for $b in fn:doc(books.xml)/books/book return $b/title").unwrap();
//! let results = Evaluator::new(&corpus, &query).eval_query(&query).unwrap();
//! assert_eq!(atomize(&results[0]), "XML");
//! ```

pub mod ast;
pub mod eval;
pub mod parser;
pub mod result;

pub use ast::{
    Axis, BindingClause, BindingKind, CompOp, Expr, FlworExpr, FunctionDecl, Literal, PathExpr,
    PathSource, PathStep, Predicate, Query,
};
pub use eval::{
    atomize, item_tag, ConstructedElem, DocSource, EvalError, Evaluator, Item, MapSource, Seq,
};
pub use parser::{parse_expr, parse_query, QueryParseError};
pub use result::{
    item_byte_len_with, item_sum_with, node_refs, serialize_item, serialize_item_with,
};
