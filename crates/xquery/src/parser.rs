//! Recursive-descent parser for the Appendix-A grammar.
//!
//! Small extensions over the printed grammar, each conventional and
//! explicitly supported by the implementation described in the paper's
//! tech report: `and`-conjunctions in `where` clauses, relative paths
//! inside bracket predicates (implicit `.` source), parenthesized `if`
//! conditions, and numeric literals with an optional decimal point.

use crate::ast::*;
use std::fmt;

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset into the query text.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Parse a complete query (function declarations followed by a body).
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let mut p = P { b: input.as_bytes(), pos: 0 };
    let mut functions = Vec::new();
    loop {
        p.skip_ws();
        if p.peek_keyword("declare") {
            functions.push(p.parse_function_decl()?);
        } else {
            break;
        }
    }
    let body = p.parse_expr_sequence()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing input after query body"));
    }
    Ok(Query { functions, body })
}

/// Parse a single expression (no function declarations).
pub fn parse_expr(input: &str) -> Result<Expr, QueryParseError> {
    let q = parse_query(input)?;
    if !q.functions.is_empty() {
        let mut p = P { b: input.as_bytes(), pos: 0 };
        return Err(p.err_at(0, "unexpected function declaration"));
    }
    Ok(q.body)
}

struct P<'a> {
    b: &'a [u8],
    pos: usize,
}

const KEYWORDS: &[&str] =
    &["for", "let", "in", "where", "return", "if", "then", "else", "declare", "function", "and"];

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> QueryParseError {
        QueryParseError { offset: self.pos, message: message.into() }
    }

    fn err_at(&mut self, offset: usize, message: impl Into<String>) -> QueryParseError {
        QueryParseError { offset, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.b.get(self.pos + off).copied()
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            // XQuery comments: (: ... :), nestable.
            if self.peek() == Some(b'(') && self.peek_at(1) == Some(b':') {
                let mut depth = 0usize;
                while self.pos < self.b.len() {
                    if self.peek() == Some(b'(') && self.peek_at(1) == Some(b':') {
                        depth += 1;
                        self.pos += 2;
                    } else if self.peek() == Some(b':') && self.peek_at(1) == Some(b')') {
                        depth -= 1;
                        self.pos += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        self.pos += 1;
                    }
                }
                continue;
            }
            return;
        }
    }

    fn is_name_byte(c: u8) -> bool {
        c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.')
    }

    /// Peek the identifier starting at the cursor, if any.
    fn peek_word(&self) -> Option<&'a str> {
        let c = self.peek()?;
        if !(c.is_ascii_alphabetic() || c == b'_') {
            return None;
        }
        let mut end = self.pos;
        while end < self.b.len() && Self::is_name_byte(self.b[end]) {
            end += 1;
        }
        Some(std::str::from_utf8(&self.b[self.pos..end]).unwrap())
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        self.peek_word() == Some(kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), QueryParseError> {
        self.skip_ws();
        if self.peek_word() == Some(kw) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}'")))
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), QueryParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn try_eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_name(&mut self) -> Result<String, QueryParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if Self::is_name_byte(c) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.b[start..self.pos]).unwrap().to_string())
    }

    /// A tag name: like a name but must not be a keyword.
    fn parse_tag(&mut self) -> Result<String, QueryParseError> {
        let n = self.parse_name()?;
        if KEYWORDS.contains(&n.as_str()) {
            return Err(self.err(format!("keyword '{n}' used as a name")));
        }
        Ok(n)
    }

    fn parse_var(&mut self) -> Result<String, QueryParseError> {
        self.eat(b'$')?;
        self.parse_name()
    }

    // -- expressions --------------------------------------------------------

    fn parse_expr_sequence(&mut self) -> Result<Expr, QueryParseError> {
        let first = self.parse_single_expr()?;
        let mut items = vec![first];
        while self.try_eat(b',') {
            items.push(self.parse_single_expr()?);
        }
        Ok(if items.len() == 1 { items.pop().unwrap() } else { Expr::Sequence(items) })
    }

    fn parse_single_expr(&mut self) -> Result<Expr, QueryParseError> {
        self.skip_ws();
        match self.peek_word() {
            Some("for") | Some("let") => return self.parse_flwor(),
            Some("if") => return self.parse_cond(),
            _ => {}
        }
        match self.peek() {
            Some(b'<') => self.parse_element_ctor(),
            Some(b'(') => {
                self.eat(b'(')?;
                let e = self.parse_expr_sequence()?;
                self.eat(b')')?;
                Ok(e)
            }
            Some(b'$') | Some(b'.') | Some(b'/') => Ok(Expr::Path(self.parse_path_expr()?)),
            _ => {
                // fn:doc(...), a function call, or an error.
                let save = self.pos;
                if self.peek_word().is_some() {
                    let name = self.parse_qname()?;
                    self.skip_ws();
                    if name == "fn:doc" || name == "doc" || self.peek() != Some(b'(') {
                        self.pos = save;
                        return Ok(Expr::Path(self.parse_path_expr()?));
                    }
                    self.eat(b'(')?;
                    let mut args = Vec::new();
                    self.skip_ws();
                    if self.peek() != Some(b')') {
                        args.push(self.parse_path_expr()?);
                        while self.try_eat(b',') {
                            args.push(self.parse_path_expr()?);
                        }
                    }
                    self.eat(b')')?;
                    return Ok(Expr::FunctionCall { name, args });
                }
                Err(self.err("expected an expression"))
            }
        }
    }

    /// A possibly-prefixed name like `local:fib` or `fn:doc`.
    fn parse_qname(&mut self) -> Result<String, QueryParseError> {
        let mut n = self.parse_name()?;
        if self.peek() == Some(b':') && self.peek_at(1).map(P::is_name_byte).unwrap_or(false) {
            self.pos += 1;
            n.push(':');
            n.push_str(&self.parse_name()?);
        }
        Ok(n)
    }

    fn parse_flwor(&mut self) -> Result<Expr, QueryParseError> {
        let mut bindings = Vec::new();
        loop {
            self.skip_ws();
            match self.peek_word() {
                Some("for") => {
                    self.eat_keyword("for")?;
                    loop {
                        let var = self.parse_var()?;
                        self.eat_keyword("in")?;
                        let expr = self.parse_path_expr()?;
                        bindings.push(BindingClause { kind: BindingKind::For, var, expr });
                        if !self.try_eat(b',') {
                            break;
                        }
                    }
                }
                Some("let") => {
                    self.eat_keyword("let")?;
                    loop {
                        let var = self.parse_var()?;
                        self.skip_ws();
                        // ':=' (also accept 'in' per the printed grammar).
                        if self.peek() == Some(b':') && self.peek_at(1) == Some(b'=') {
                            self.pos += 2;
                        } else {
                            self.eat_keyword("in")?;
                        }
                        let expr = self.parse_path_expr()?;
                        bindings.push(BindingClause { kind: BindingKind::Let, var, expr });
                        if !self.try_eat(b',') {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        if bindings.is_empty() {
            return Err(self.err("expected 'for' or 'let'"));
        }
        let mut where_clauses = Vec::new();
        if self.peek_keyword("where") {
            self.eat_keyword("where")?;
            where_clauses.push(self.parse_predicate()?);
            while self.peek_keyword("and") {
                self.eat_keyword("and")?;
                where_clauses.push(self.parse_predicate()?);
            }
        }
        self.eat_keyword("return")?;
        let return_expr = Box::new(self.parse_single_expr()?);
        Ok(Expr::Flwor(FlworExpr { bindings, where_clauses, return_expr }))
    }

    fn parse_cond(&mut self) -> Result<Expr, QueryParseError> {
        self.eat_keyword("if")?;
        let parenthesized = self.try_eat(b'(');
        let cond = self.parse_predicate()?;
        if parenthesized {
            self.eat(b')')?;
        }
        self.eat_keyword("then")?;
        let then_branch = Box::new(self.parse_single_expr()?);
        self.eat_keyword("else")?;
        let else_branch = Box::new(self.parse_single_expr()?);
        Ok(Expr::Cond { cond, then_branch, else_branch })
    }

    fn parse_element_ctor(&mut self) -> Result<Expr, QueryParseError> {
        self.eat(b'<')?;
        let tag = self.parse_tag()?;
        self.eat(b'>')?;
        let mut content = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'{') {
                self.eat(b'{')?;
                content.push(self.parse_expr_sequence()?);
                self.eat(b'}')?;
            } else if self.peek() == Some(b'<') && self.peek_at(1) == Some(b'/') {
                self.pos += 2;
                let close = self.parse_tag()?;
                if close != tag {
                    return Err(self.err(format!("mismatched </{close}> for <{tag}>")));
                }
                self.eat(b'>')?;
                return Ok(Expr::Element { tag, content });
            } else if self.peek() == Some(b'<') {
                // Nested direct constructor.
                content.push(self.parse_element_ctor()?);
            } else if self.try_eat(b',') {
                // Tolerate commas between enclosed expressions.
                continue;
            } else {
                return Err(self.err(format!("unterminated element constructor <{tag}>")));
            }
        }
    }

    // -- paths & predicates --------------------------------------------------

    fn parse_path_expr(&mut self) -> Result<PathExpr, QueryParseError> {
        self.parse_path_expr_inner(false)
    }

    /// When `relative_ok` is set (inside bracket predicates) a path may
    /// start directly with a tag name, meaning `./tag`.
    fn parse_path_expr_inner(&mut self, relative_ok: bool) -> Result<PathExpr, QueryParseError> {
        self.skip_ws();
        let source = match self.peek() {
            Some(b'$') => PathSource::Var(self.parse_var()?),
            Some(b'.') => {
                self.pos += 1;
                PathSource::ContextItem
            }
            Some(b'/') => PathSource::ContextItem, // leading axis: relative to context
            _ => {
                let save = self.pos;
                if let Some(word) = self.peek_word() {
                    let word = word.to_string();
                    let name = self.parse_qname()?;
                    if name == "fn:doc" || name == "doc" {
                        self.eat(b'(')?;
                        self.skip_ws();
                        let doc_name = if matches!(self.peek(), Some(b'\'' | b'"')) {
                            self.parse_string_literal()?
                        } else {
                            // Bare names like books.xml are allowed, as in Fig. 2.
                            let mut n = String::new();
                            while let Some(c) = self.peek() {
                                if Self::is_name_byte(c) || c == b'/' {
                                    n.push(c as char);
                                    self.pos += 1;
                                } else {
                                    break;
                                }
                            }
                            if n.is_empty() {
                                return Err(self.err("expected document name"));
                            }
                            n
                        };
                        self.eat(b')')?;
                        PathSource::Doc(doc_name)
                    } else if relative_ok {
                        // `year > 1995` style relative path: rewind so the
                        // name becomes the first step.
                        self.pos = save;
                        let mut pe = PathExpr {
                            source: PathSource::ContextItem,
                            steps: Vec::new(),
                            predicates: Vec::new(),
                        };
                        let tag = self.parse_tag()?;
                        pe.steps.push(PathStep { axis: Axis::Child, tag });
                        return self.parse_path_tail(pe);
                    } else {
                        return Err(self.err_at(save, format!("unexpected name in path: {word}")));
                    }
                } else {
                    return Err(self.err("expected a path expression"));
                }
            }
        };
        let pe = PathExpr { source, steps: Vec::new(), predicates: Vec::new() };
        self.parse_path_tail(pe)
    }

    fn parse_path_tail(&mut self, mut pe: PathExpr) -> Result<PathExpr, QueryParseError> {
        loop {
            // No whitespace skipping before '/': paths are lexically tight,
            // but we tolerate spaces for readability.
            self.skip_ws();
            if self.peek() == Some(b'/') {
                if !pe.predicates.is_empty() {
                    // Grammar: predicates terminate a path (`PathExpr '['
                    // PredExpr ']'` has no continuation production).
                    return Err(self.err("path steps after a predicate are not supported"));
                }
                let axis = if self.peek_at(1) == Some(b'/') {
                    self.pos += 2;
                    Axis::Descendant
                } else {
                    self.pos += 1;
                    Axis::Child
                };
                let tag = self.parse_tag()?;
                pe.steps.push(PathStep { axis, tag });
            } else if self.peek() == Some(b'[') {
                self.eat(b'[')?;
                let pred = self.parse_predicate_relative()?;
                self.eat(b']')?;
                pe.predicates.push(pred);
            } else {
                return Ok(pe);
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<Predicate, QueryParseError> {
        let parenthesized = {
            self.skip_ws();
            // A '(' here could be a comment (handled by skip_ws) or a
            // parenthesized predicate.
            self.peek() == Some(b'(') && self.peek_at(1) != Some(b':')
        };
        if parenthesized {
            self.eat(b'(')?;
            let p = self.parse_predicate()?;
            self.eat(b')')?;
            return Ok(p);
        }
        self.parse_predicate_inner(false)
    }

    fn parse_predicate_relative(&mut self) -> Result<Predicate, QueryParseError> {
        self.parse_predicate_inner(true)
    }

    fn parse_predicate_inner(&mut self, relative_ok: bool) -> Result<Predicate, QueryParseError> {
        let left = self.parse_path_expr_inner(relative_ok)?;
        self.skip_ws();
        let op = match self.peek() {
            Some(b'=') => {
                self.pos += 1;
                CompOp::Eq
            }
            Some(b'<') => {
                self.pos += 1;
                CompOp::Lt
            }
            Some(b'>') => {
                self.pos += 1;
                CompOp::Gt
            }
            _ => return Ok(Predicate::Exists(left)),
        };
        self.skip_ws();
        match self.peek() {
            Some(b'\'') | Some(b'"') => {
                let s = self.parse_string_literal()?;
                Ok(Predicate::CompareLiteral(left, op, Literal::String(s)))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let n = self.parse_number()?;
                Ok(Predicate::CompareLiteral(left, op, Literal::Number(n)))
            }
            _ => {
                let right = self.parse_path_expr_inner(relative_ok)?;
                Ok(Predicate::ComparePaths(left, op, right))
            }
        }
    }

    fn parse_string_literal(&mut self) -> Result<String, QueryParseError> {
        self.skip_ws();
        let quote = self.peek().ok_or_else(|| self.err("expected string literal"))?;
        if quote != b'\'' && quote != b'"' {
            return Err(self.err("expected string literal"));
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let s = std::str::from_utf8(&self.b[start..self.pos]).unwrap().to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string literal"))
    }

    fn parse_number(&mut self) -> Result<f64, QueryParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_function_decl(&mut self) -> Result<FunctionDecl, QueryParseError> {
        self.eat_keyword("declare")?;
        self.eat_keyword("function")?;
        let name = self.parse_qname()?;
        self.eat(b'(')?;
        let mut params = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'$') {
            params.push(self.parse_var()?);
            while self.try_eat(b',') {
                params.push(self.parse_var()?);
            }
        }
        self.eat(b')')?;
        self.eat(b'{')?;
        let body = self.parse_expr_sequence()?;
        self.eat(b'}')?;
        Ok(FunctionDecl { name, params, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_running_example_view() {
        let q = parse_query(
            "for $book in fn:doc(books.xml)/books//book \
             where $book/year > 1995 \
             return <bookrevs> \
               { <book> {$book/title} </book> } \
               { for $rev in fn:doc(reviews.xml)/reviews//review \
                 where $rev/isbn = $book/isbn \
                 return $rev/content } \
             </bookrevs>",
        )
        .unwrap();
        let Expr::Flwor(f) = &q.body else { panic!("expected flwor") };
        assert_eq!(f.bindings.len(), 1);
        assert_eq!(f.bindings[0].var, "book");
        assert_eq!(f.bindings[0].expr.to_string(), "fn:doc(books.xml)/books//book");
        assert_eq!(f.where_clauses.len(), 1);
        assert_eq!(f.where_clauses[0].to_string(), "$book/year > 1995");
        let Expr::Element { tag, content } = f.return_expr.as_ref() else { panic!() };
        assert_eq!(tag, "bookrevs");
        assert_eq!(content.len(), 2);
    }

    #[test]
    fn rejects_steps_after_predicates() {
        // `PathExpr '[' PredExpr ']'` has no continuation in the grammar.
        assert!(parse_expr("fn:doc(b.xml)/books//book[year > 1995]/title").is_err());
    }

    #[test]
    fn predicate_position_is_preserved() {
        // `[...]` applies to the path parsed so far; trailing steps after a
        // predicate are not part of this grammar subset, so `p[x]/y` keeps
        // the predicate on the full path — verify what we actually build.
        let e = parse_expr("fn:doc(b.xml)/books//book[year > 1995]").unwrap();
        let Expr::Path(p) = e else { panic!() };
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.predicates.len(), 1);
        assert_eq!(p.predicates[0].to_string(), "./year > 1995");
    }

    #[test]
    fn parses_let_and_multiple_bindings() {
        let q =
            parse_query("let $b := fn:doc(x.xml)/r for $a in $b/item, $c in $b/other return $a")
                .unwrap();
        let Expr::Flwor(f) = &q.body else { panic!() };
        assert_eq!(f.bindings.len(), 3);
        assert_eq!(f.bindings[0].kind, BindingKind::Let);
        assert_eq!(f.bindings[1].kind, BindingKind::For);
    }

    #[test]
    fn parses_where_with_and() {
        let q =
            parse_query("for $a in fn:doc(x)/r/a where $a/y > 3 and $a/z = 'q' return $a").unwrap();
        let Expr::Flwor(f) = &q.body else { panic!() };
        assert_eq!(f.where_clauses.len(), 2);
    }

    #[test]
    fn parses_if_then_else() {
        let e = parse_expr("if ($a/x = 'y') then $a/b else $a/c").unwrap();
        assert!(matches!(e, Expr::Cond { .. }));
        let e = parse_expr("if $a/x then $a/b else $a/c").unwrap();
        assert!(matches!(e, Expr::Cond { .. }));
    }

    #[test]
    fn parses_function_declarations_and_calls() {
        let q = parse_query(
            "declare function local:titles($b) { $b/title } \
             for $x in fn:doc(d)/r//book return local:titles($x)",
        )
        .unwrap();
        assert_eq!(q.functions.len(), 1);
        assert_eq!(q.functions[0].params, vec!["b"]);
        let Expr::Flwor(f) = &q.body else { panic!() };
        assert!(matches!(f.return_expr.as_ref(), Expr::FunctionCall { .. }));
    }

    #[test]
    fn parses_sequences_and_nested_constructors() {
        let e = parse_expr("<a> { $x/b, $x/c } <d> { $x/e } </d> </a>").unwrap();
        let Expr::Element { content, .. } = e else { panic!() };
        assert_eq!(content.len(), 2);
        assert!(matches!(content[0], Expr::Sequence(_)));
        assert!(matches!(content[1], Expr::Element { .. }));
    }

    #[test]
    fn parses_comments() {
        let e = parse_expr("(: a comment (: nested :) :) $x/y").unwrap();
        assert!(matches!(e, Expr::Path(_)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("for $x in").is_err());
        assert!(parse_query("$x/y extra!").is_err());
        assert!(parse_query("<a> {$x} </b>").is_err());
        assert!(parse_query("").is_err());
    }

    #[test]
    fn display_round_trips_through_parser() {
        let src = "for $book in fn:doc(books.xml)/books//book where $book/year > 1995 \
                   return <out> { $book/title } </out>";
        let q = parse_query(src).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn numbers_with_decimals_and_negatives() {
        let e = parse_expr("fn:doc(d)/r/x[v > 3.25]").unwrap();
        let Expr::Path(p) = e else { panic!() };
        let Predicate::CompareLiteral(_, CompOp::Gt, Literal::Number(n)) = &p.predicates[0] else {
            panic!()
        };
        assert_eq!(*n, 3.25);
        let e = parse_expr("fn:doc(d)/r/x[v < -2]").unwrap();
        let Expr::Path(p) = e else { panic!() };
        let Predicate::CompareLiteral(_, _, Literal::Number(n)) = &p.predicates[0] else {
            panic!()
        };
        assert_eq!(*n, -2.0);
    }

    #[test]
    fn both_quote_styles_for_strings() {
        for q in ["fn:doc(d)/r/x[v = 'abc']", "fn:doc(d)/r/x[v = \"abc\"]"] {
            let e = parse_expr(q).unwrap();
            let Expr::Path(p) = e else { panic!() };
            assert_eq!(p.predicates.len(), 1);
        }
    }

    #[test]
    fn doc_names_with_quotes_and_slashes() {
        let e = parse_expr("fn:doc('data/books.xml')/r").unwrap();
        let Expr::Path(p) = e else { panic!() };
        assert_eq!(p.source, PathSource::Doc("data/books.xml".into()));
        let e = parse_expr("fn:doc(data/books.xml)/r").unwrap();
        let Expr::Path(p) = e else { panic!() };
        assert_eq!(p.source, PathSource::Doc("data/books.xml".into()));
    }

    #[test]
    fn doc_alias_without_prefix() {
        let e = parse_expr("doc(books.xml)/r//x").unwrap();
        let Expr::Path(p) = e else { panic!() };
        assert_eq!(p.source, PathSource::Doc("books.xml".into()));
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn multiple_bracket_predicates_stack() {
        let e = parse_expr("fn:doc(d)/r/x[a = 1][b > 2]").unwrap();
        let Expr::Path(p) = e else { panic!() };
        assert_eq!(p.predicates.len(), 2);
    }

    #[test]
    fn whitespace_everywhere() {
        let q = parse_query(
            "  for   $b \n in \t fn:doc( d.xml )/r//item \n where\n $b/x  >  1 \
             \n return\n <o>\n { $b/y }\n </o>  ",
        )
        .unwrap();
        assert!(matches!(q.body, Expr::Flwor(_)));
    }

    #[test]
    fn keywords_cannot_be_tag_names() {
        assert!(parse_expr("fn:doc(d)/return").is_err());
        assert!(parse_expr("fn:doc(d)/r/for").is_err());
    }

    #[test]
    fn deeply_nested_constructors() {
        let e = parse_expr("<a> { <b> { <c> { $x/y } </c> } </b> } <d></d> </a>").unwrap();
        let Expr::Element { content, .. } = e else { panic!() };
        assert_eq!(content.len(), 2);
    }

    #[test]
    fn error_offsets_point_into_the_input() {
        let err = parse_query("for $x in fn:doc(d)/r return").unwrap_err();
        assert!(err.offset >= 22, "offset {} should be at/after 'return'", err.offset);
        let err = parse_query("for $x in fn:doc(d)/r !!").unwrap_err();
        assert!(err.offset >= 20);
    }

    #[test]
    fn unterminated_strings_and_comments() {
        assert!(parse_expr("fn:doc(d)/r[x = 'oops]").is_err());
        // An unterminated comment consumes to EOF and then errors cleanly.
        assert!(parse_query("(: never closed  for $x in fn:doc(d)/r return $x").is_err());
    }

    #[test]
    fn empty_function_parameter_lists() {
        let q = parse_query("declare function f() { fn:doc(d)/r } f()").unwrap();
        assert_eq!(q.functions[0].params.len(), 0);
        assert!(matches!(q.body, Expr::FunctionCall { .. }));
    }
}
