//! Property tests for the XQuery engine:
//!
//! * pretty-printed ASTs re-parse to the same AST (parser ↔ Display);
//! * the hash-join optimization is semantically invisible — joins
//!   evaluate to identical result sequences with and without it.

use proptest::prelude::*;
use vxv_xml::{Corpus, DocumentBuilder};
use vxv_xquery::ast::*;
use vxv_xquery::{parse_query, serialize_item, Evaluator};

// --- parser round trip ------------------------------------------------------

const TAGS: &[&str] = &["item", "name", "price", "cat"];

fn path_strategy() -> impl Strategy<Value = PathExpr> {
    (
        prop_oneof![Just(PathSource::Doc("d.xml".into())), Just(PathSource::Var("v".into())),],
        prop::collection::vec((any::<bool>(), 0..TAGS.len()), 1..4),
    )
        .prop_map(|(source, steps)| PathExpr {
            source,
            steps: steps
                .into_iter()
                .map(|(desc, t)| PathStep {
                    axis: if desc { Axis::Descendant } else { Axis::Child },
                    tag: TAGS[t].to_string(),
                })
                .collect(),
            predicates: vec![],
        })
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        path_strategy().prop_map(Predicate::Exists),
        (path_strategy(), 0u8..3, 0i64..100).prop_map(|(p, op, n)| {
            let op = match op {
                0 => CompOp::Eq,
                1 => CompOp::Lt,
                _ => CompOp::Gt,
            };
            Predicate::CompareLiteral(p, op, Literal::Number(n as f64))
        }),
        (path_strategy(), path_strategy()).prop_map(|(a, b)| Predicate::ComparePaths(
            a,
            CompOp::Eq,
            b
        )),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = path_strategy().prop_map(Expr::Path);
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            // FLWOR
            (
                prop::collection::vec((any::<bool>(), path_strategy()), 1..3),
                prop::collection::vec(predicate_strategy(), 0..2),
                inner.clone(),
            )
                .prop_map(|(bindings, where_clauses, ret)| {
                    Expr::Flwor(FlworExpr {
                        bindings: bindings
                            .into_iter()
                            .enumerate()
                            .map(|(i, (is_let, expr))| BindingClause {
                                kind: if is_let { BindingKind::Let } else { BindingKind::For },
                                var: format!("x{i}"),
                                expr,
                            })
                            .collect(),
                        where_clauses,
                        return_expr: Box::new(ret),
                    })
                }),
            // element constructor
            (0..TAGS.len(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(t, content)| Expr::Element { tag: format!("out{t}"), content }),
            // conditional
            (predicate_strategy(), inner.clone(), inner.clone()).prop_map(|(cond, a, b)| {
                Expr::Cond { cond, then_branch: Box::new(a), else_branch: Box::new(b) }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display → parse is the identity on ASTs.
    #[test]
    fn pretty_printed_queries_reparse_identically(body in expr_strategy()) {
        let q = Query { functions: vec![], body };
        let text = q.to_string();
        let back = parse_query(&text)
            .unwrap_or_else(|e| panic!("failed to reparse: {e}\n{text}"));
        prop_assert_eq!(q, back);
    }
}

// --- hash-join transparency --------------------------------------------------

#[derive(Clone, Debug)]
struct Row {
    key: u8,
    tag2_key: u8,
    word: u8,
}

fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (0u8..6, 0u8..6, 0u8..4).prop_map(|(key, tag2_key, word)| Row { key, tag2_key, word }),
        0..10,
    )
}

fn build_join_corpus(left: &[Row], right: &[Row]) -> Corpus {
    let mut b = DocumentBuilder::new("l.xml", 1);
    b.begin("ls");
    for r in left {
        b.begin("l");
        b.leaf("k", &r.key.to_string());
        b.leaf("w", &format!("word{}", r.word));
        b.end();
    }
    b.end();
    let ldoc = b.finish();
    let mut b = DocumentBuilder::new("r.xml", 2);
    b.begin("rs");
    for r in right {
        b.begin("r");
        b.leaf("k", &r.tag2_key.to_string());
        b.leaf("w", &format!("word{}", r.word));
        b.end();
    }
    b.end();
    let rdoc = b.finish();
    let mut c = Corpus::new();
    c.add(ldoc);
    c.add(rdoc);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Join queries produce byte-identical materialized results whether
    /// evaluated with hash joins or nested loops.
    #[test]
    fn hash_join_is_semantically_invisible(left in rows_strategy(), right in rows_strategy()) {
        let corpus = build_join_corpus(&left, &right);
        let q = parse_query(
            "for $l in fn:doc(l.xml)/ls/l \
             return <pair> { $l/w } \
               { for $r in fn:doc(r.xml)/rs/r where $r/k = $l/k return $r/w } \
             </pair>",
        )
        .unwrap();
        let fast = Evaluator::new(&corpus, &q).eval_query(&q).unwrap();
        let slow = Evaluator::new(&corpus, &q).with_naive_joins().eval_query(&q).unwrap();
        prop_assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert_eq!(serialize_item(a), serialize_item(b));
        }
    }

    /// Same transparency when the join key is on the outer side and the
    /// where clause also carries a selection.
    #[test]
    fn hash_join_with_extra_conjuncts(left in rows_strategy(), right in rows_strategy()) {
        let corpus = build_join_corpus(&left, &right);
        let q = parse_query(
            "for $l in fn:doc(l.xml)/ls/l \
             return <pair> \
               { for $r in fn:doc(r.xml)/rs/r \
                 where $l/k = $r/k and $r/k > 1 return $r/w } \
             </pair>",
        )
        .unwrap();
        let fast = Evaluator::new(&corpus, &q).eval_query(&q).unwrap();
        let slow = Evaluator::new(&corpus, &q).with_naive_joins().eval_query(&q).unwrap();
        prop_assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert_eq!(serialize_item(a), serialize_item(b));
        }
    }
}

#[test]
fn shadowed_variables_do_not_confuse_the_join_planner() {
    // The where clause refers to the INNER $x; the outer $x binding must
    // not hash-join on it.
    let mut corpus = Corpus::new();
    {
        let mut b = DocumentBuilder::new("l.xml", 1);
        b.begin("ls");
        for k in [1u8, 2] {
            b.begin("l");
            b.leaf("k", &k.to_string());
            b.end();
        }
        b.end();
        corpus.add(b.finish());
        let mut b = DocumentBuilder::new("r.xml", 2);
        b.begin("rs");
        for k in [2u8, 3] {
            b.begin("r");
            b.leaf("k", &k.to_string());
            b.end();
        }
        b.end();
        corpus.add(b.finish());
    }
    let q = parse_query(
        "for $x in fn:doc(l.xml)/ls/l \
         return <o> { for $x in fn:doc(r.xml)/rs/r where $x/k = '2' return $x/k } </o>",
    )
    .unwrap();
    let fast = Evaluator::new(&corpus, &q).eval_query(&q).unwrap();
    let slow = Evaluator::new(&corpus, &q).with_naive_joins().eval_query(&q).unwrap();
    let f: Vec<String> = fast.iter().map(serialize_item).collect();
    let s: Vec<String> = slow.iter().map(serialize_item).collect();
    assert_eq!(f, s);
    // Two outer iterations, each wrapping the single matching inner k.
    assert_eq!(f, vec!["<o><k>2</k></o>".to_string(), "<o><k>2</k></o>".to_string()]);

    // The genuinely ambiguous case: one FLWOR rebinds $x, and the join
    // clause must apply to the *inner* $x. Without the shadowing guard the
    // planner would hash-join the outer $x binding on this clause.
    let q = parse_query(
        "for $y in fn:doc(l.xml)/ls/l \
         for $x in fn:doc(l.xml)/ls/l \
         for $x in fn:doc(r.xml)/rs/r \
         where $x/k = $y/k \
         return $x/k",
    )
    .unwrap();
    let fast = Evaluator::new(&corpus, &q).eval_query(&q).unwrap();
    let slow = Evaluator::new(&corpus, &q).with_naive_joins().eval_query(&q).unwrap();
    let f: Vec<String> = fast.iter().map(serialize_item).collect();
    let s: Vec<String> = slow.iter().map(serialize_item).collect();
    assert_eq!(f, s, "shadowed join must match nested-loop semantics");
    // l keys {1,2}, r keys {2,3}: $y=2 joins inner $x=2, and the middle $x
    // binding multiplies the match by |ls| = 2.
    assert_eq!(f, vec!["<k>2</k>".to_string(), "<k>2</k>".to_string()]);
}
