//! Figure 15 — varying the number of keywords (1–5).
//!
//! Paper: run time increases slightly with keyword count because PDT
//! generation reads more inverted lists for tf values.

use vxv_bench::harness::{base_kb_from_env, measure_point, print_preamble, MeasureOptions};
use vxv_bench::table::{ms, Table};
use vxv_inex::ExperimentParams;

fn main() {
    print_preamble("Figure 15", "run time vs number of keywords");
    let base = base_kb_from_env() * 1024;
    let mut table = Table::new(&["#keywords", "PDT(ms)", "Evaluator(ms)", "Post(ms)", "total(ms)"]);
    for n in 1..=5usize {
        let params =
            ExperimentParams { data_bytes: base, num_keywords: n, ..ExperimentParams::default() };
        let m = measure_point(&params, &MeasureOptions::default());
        table.row(vec![
            n.to_string(),
            ms(m.efficient.pdt),
            ms(m.efficient.evaluator),
            ms(m.efficient.post),
            ms(m.efficient.total()),
        ]);
    }
    table.print();
}
