//! `bench_gate` — the CI bench-regression gate.
//!
//! ```text
//! bench_gate consolidate CRITERION_JSONL OUT_JSON
//!     Merge the JSON-lines metrics the benches appended (medians +
//!     prune counters) into one consolidated BENCH_PR.json artifact.
//!
//! bench_gate compare PR_JSON BASELINE_JSON [TOLERANCE]
//!     Compare a PR run against the checked-in baseline with a
//!     symmetric ±TOLERANCE band (default 0.25). Exits non-zero when a
//!     timing leaves the band, a gated counter collapses to zero, or a
//!     baseline bench went missing. New metrics are reported but pass.
//! ```
//!
//! Refreshing the baseline after an intentional perf change is one
//! documented step:
//!
//! ```text
//! cp BENCH_PR.json crates/bench/BENCH_BASELINE.json
//! ```

use std::process::ExitCode;
use vxv_bench::gate::{self, Verdict};

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("consolidate") => {
            let [_, input, output] = args.as_slice() else {
                return fail("usage: bench_gate consolidate CRITERION_JSONL OUT_JSON");
            };
            let content = match std::fs::read_to_string(input) {
                Ok(c) => c,
                Err(e) => return fail(&format!("cannot read {input}: {e}")),
            };
            let metrics = match gate::parse_jsonl(&content) {
                Ok(m) => m,
                Err(e) => return fail(&format!("{input}: {e}")),
            };
            if metrics.is_empty() {
                return fail(&format!(
                    "{input} holds no metrics — did the benches run with CRITERION_JSON set?"
                ));
            }
            if let Err(e) = std::fs::write(output, gate::render(&metrics)) {
                return fail(&format!("cannot write {output}: {e}"));
            }
            eprintln!("bench_gate: consolidated {} metric(s) into {output}", metrics.len());
            ExitCode::SUCCESS
        }
        Some("compare") => {
            let (pr_path, base_path, tolerance) = match args.as_slice() {
                [_, pr, base] => (pr, base, 0.25),
                [_, pr, base, tol] => match tol.parse::<f64>() {
                    Ok(t) if t > 0.0 => (pr, base, t),
                    _ => return fail("TOLERANCE must be a positive number (e.g. 0.25)"),
                },
                _ => return fail("usage: bench_gate compare PR_JSON BASELINE_JSON [TOLERANCE]"),
            };
            let read = |p: &str| -> Result<gate::Metrics, String> {
                let c = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
                gate::parse_consolidated(&c).map_err(|e| format!("{p}: {e}"))
            };
            let (pr, base) = match (read(pr_path), read(base_path)) {
                (Ok(pr), Ok(base)) => (pr, base),
                (Err(e), _) | (_, Err(e)) => return fail(&e),
            };
            let verdicts = gate::compare(&pr, &base, tolerance);
            for (id, v) in &verdicts {
                match v {
                    Verdict::Ok => println!("ok        {id}"),
                    Verdict::OutOfBand { ratio } => {
                        println!("OUT-OF-BAND  {id}: {ratio:.3}x of baseline (band ±{tolerance})")
                    }
                    Verdict::CounterWentToZero => {
                        println!("ZEROED    {id}: gated counter collapsed to 0")
                    }
                    Verdict::Missing => println!("MISSING   {id}: bench no longer reports"),
                    Verdict::New => println!("new       {id} (not gated; refresh baseline)"),
                }
            }
            if gate::failed(&verdicts) {
                eprintln!(
                    "bench_gate: FAILED — if the change is intentional, refresh the baseline:\n  \
                     cp {pr_path} crates/bench/BENCH_BASELINE.json"
                );
                ExitCode::FAILURE
            } else {
                eprintln!("bench_gate: ok ({} metric(s) within ±{tolerance})", verdicts.len());
                ExitCode::SUCCESS
            }
        }
        _ => fail("usage: bench_gate consolidate|compare ..."),
    }
}
