//! `vxv` — command-line keyword search over virtual XML views.
//!
//! ```text
//! vxv search  --doc books.xml --doc reviews.xml --view view.xq \
//!             --keyword xml --keyword search [--top 10] [--any] [--deadline-ms N]
//! vxv inspect --doc books.xml --view view.xq    # show QPTs and probe plans
//! vxv persist --doc books.xml --out store/      # write documents + indices
//! vxv search  --store store/ --view view.xq -k xml   # cold open from disk
//! vxv serve   --store store/ --register reviews=view.xq   # stdin request loop
//! vxv serve   --store store/ --listen 127.0.0.1:7070      # TCP serving tier
//! vxv serve   --doc a.xml --doc b.xml --shards 4 --listen 127.0.0.1:7070
//!                                     # N-shard scatter-gather router
//! vxv cache   --connect 127.0.0.1:7070   # live cache/shard counters
//! vxv batch   --store store/ --register reviews=view.xq --file reqs.txt
//! vxv ingest  --store store/ --doc late.xml      # add docs as a new segment
//! vxv compact --store store/                     # merge all index segments
//! vxv inspect --store store/                     # per-segment breakdown only
//! ```
//!
//! With `--doc`, documents are parsed and indexed in memory; the view's
//! `fn:doc(...)` references must use the same names (base name of the
//! path). With `--store`, the engine cold-opens a directory previously
//! written by `vxv persist`: indices and the document catalog are read
//! from disk, and base documents are touched only to materialize hits.
//!
//! Every `--keyword` (and every `KW` in `serve`/`batch` request lines)
//! is one **query term**, not just a word: `xml` (word), `auto*`
//! (prefix), `~3:virtual,views` (proximity), `"virtual views"`
//! (phrase — shell-quote so the spaces survive), each with an optional
//! `^BOOST` suffix (`xml^2.5`). See `docs/QUERY.md` for the grammar.
//!
//! ## `serve` — line-oriented request loop
//!
//! `serve` builds a [`ViewCatalog`], registers every `--register
//! NAME=VIEWFILE`, then reads commands from stdin (one per line) and
//! writes responses to stdout. Arguments may be double-quoted (`register
//! reviews "my view.xq"`) and runs of whitespace collapse; on EOF or
//! `quit` the loop exits cleanly, printing final catalog stats to
//! stderr. Multi-line responses end with a lone `.`:
//!
//! ```text
//! register NAME VIEWFILE     -> registered NAME
//! search NAME KW [KW...]     -> hits N matching M view V, then one line
//!                               per hit (RANK SCORE XML), then .
//! list                       -> one view name per line, then .
//! stats                      -> stats hits=.. misses=.. prepares=.. ...
//! segments                   -> one line per index segment (id,
//!                               generation, docs, footprint), then .
//! add NAME XMLFILE           -> added NAME segment I (views registered
//!                               earlier keep their snapshot —
//!                               re-register to see the new document)
//! flush                      -> flushed 0|1 (seal the live memtable)
//! checkpoint                 -> checkpointed ... (persist + truncate
//!                               the WAL; needs --store)
//! quit                       -> (exits; EOF works too; both print
//!                               final stats to stderr)
//! ```
//!
//! With `--store`, `serve` enables the **real-time write path**: a
//! write-ahead log (`wal.vxl`, replayed on startup) is kept next to the
//! store, `add` appends durably into a searchable memtable, and a
//! background thread compacts sealed segments. `--fsync
//! per-record|interval-ms=N|off` picks the durability schedule; `stats`
//! gains a `writes ...` counter line.
//!
//! With `--listen ADDR`, `serve` instead mounts the `vxv-server` TCP
//! serving tier on `ADDR` (multi-tenant wire protocol, bounded
//! admission queue, per-tenant quotas — see the `vxv_server` crate
//! docs) and runs until killed; the stdin loop remains the default.
//!
//! Hit XML is emitted on one protocol line: backslash, newline and
//! carriage return are escaped as `\\`, `\n`, `\r`, so pretty-printed
//! source documents can never split a hit across lines or fake the `.`
//! terminator. Clients unescape in the reverse order.
//!
//! ## `batch` — fan a request file across the worker pool
//!
//! Each non-empty, non-`#` line of `--file` is `NAME KW [KW...]`. The
//! whole batch executes via [`ViewCatalog::search_batch`] and reports one
//! summary line per request, in file order.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use vxv_core::KeywordMode;
use vxv_core::{
    DocumentSource, FsyncPolicy, IndexBundle, NamedRequest, PreparedView, SearchRequest,
    ViewCatalog, ViewSearchEngine, WriteConfig,
};
use vxv_index::IndexSegment;
use vxv_xml::{parse_document, Corpus, DiskStore};

struct Args {
    docs: Vec<String>,
    store: Option<String>,
    out: Option<String>,
    view: Option<String>,
    keywords: Vec<String>,
    registers: Vec<(String, String)>,
    file: Option<String>,
    top: usize,
    any: bool,
    deadline_ms: Option<u64>,
    listen: Option<String>,
    /// Cold-open by reading the index file into owned buffers instead of
    /// mapping it (the pre-v4 behavior; mapping is the default).
    no_mmap: bool,
    /// WAL fsync schedule for `serve --store`: `per-record` (default),
    /// `interval-ms=N`, or `off`.
    fsync: Option<String>,
    /// Partition the `--doc` corpus across N scatter-gather shards
    /// (`serve --listen`; 1 = the plain single-engine path).
    shards: Option<usize>,
    /// Result-cache capacity in bytes (0 disables; default 32 MiB).
    cache_bytes: Option<u64>,
    /// `cache --connect ADDR`: inspect a live server instead of
    /// building a local engine.
    connect: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  vxv search  (--doc FILE... | --store DIR) --view FILE --keyword TERM... [--top N] [--any] [--deadline-ms N]\n              TERM: word | stem* | ~W:a,b | \"a phrase\" — each with optional ^BOOST\n  vxv inspect (--doc FILE... | --store DIR) --view FILE\n  vxv persist --doc FILE... --out DIR\n  vxv serve   (--doc FILE... | --store DIR) [--register NAME=VIEWFILE...] [--listen ADDR] [--shards N] [--cache-bytes N] [--fsync per-record|interval-ms=N|off] [--top N] [--any] [--deadline-ms N]\n  vxv batch   (--doc FILE... | --store DIR) --register NAME=VIEWFILE... --file REQS [--top N] [--any] [--deadline-ms N]\n  vxv cache   (--connect ADDR | --doc FILE... --register NAME=VIEWFILE... --keyword WORD...) [--cache-bytes N]\n  vxv ingest  --store DIR --doc FILE...\n  vxv compact --store DIR\n(--store commands map the index file by default; --no-mmap loads owned buffers instead)"
    );
    ExitCode::from(2)
}

fn parse_args(mut argv: std::env::Args) -> Option<(String, Args)> {
    let _bin = argv.next()?;
    let cmd = argv.next()?;
    let mut args = Args {
        docs: vec![],
        store: None,
        out: None,
        view: None,
        keywords: vec![],
        registers: vec![],
        file: None,
        top: 10,
        any: false,
        deadline_ms: None,
        listen: None,
        no_mmap: false,
        fsync: None,
        shards: None,
        cache_bytes: None,
        connect: None,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--doc" => args.docs.push(it.next()?),
            "--store" => args.store = Some(it.next()?),
            "--out" => args.out = Some(it.next()?),
            "--view" => args.view = Some(it.next()?),
            "--keyword" | "-k" => args.keywords.push(it.next()?),
            "--register" => {
                let spec = it.next()?;
                let (name, path) = spec.split_once('=')?;
                args.registers.push((name.to_string(), path.to_string()));
            }
            "--file" => args.file = Some(it.next()?),
            "--top" => args.top = it.next()?.parse().ok()?,
            "--any" => args.any = true,
            "--deadline-ms" => args.deadline_ms = Some(it.next()?.parse().ok()?),
            "--listen" => args.listen = Some(it.next()?),
            "--no-mmap" => args.no_mmap = true,
            "--fsync" => args.fsync = Some(it.next()?),
            "--shards" => args.shards = Some(it.next()?.parse().ok()?),
            "--cache-bytes" => args.cache_bytes = Some(it.next()?.parse().ok()?),
            "--connect" => args.connect = Some(it.next()?),
            _ => {
                eprintln!("unknown flag {flag}");
                return None;
            }
        }
    }
    Some((cmd, args))
}

/// Parse `--fsync per-record|interval-ms=N|off` into a [`WriteConfig`].
fn write_config(args: &Args) -> Result<WriteConfig, String> {
    let mut config = WriteConfig::default();
    if let Some(spec) = args.fsync.as_deref() {
        config.fsync = match spec {
            "per-record" => FsyncPolicy::PerRecord,
            "off" | "never" => FsyncPolicy::Never,
            other => match other.strip_prefix("interval-ms=") {
                Some(ms) => FsyncPolicy::Interval(Duration::from_millis(
                    ms.parse().map_err(|_| format!("bad --fsync interval '{other}'"))?,
                )),
                None => {
                    return Err(format!(
                        "bad --fsync '{other}' (want per-record|interval-ms=N|off)"
                    ))
                }
            },
        };
    }
    Ok(config)
}

fn load_corpus(args: &Args) -> Result<Corpus, String> {
    if args.docs.is_empty() {
        return Err("at least one --doc is required".into());
    }
    let mut corpus = Corpus::new();
    for path in &args.docs {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        corpus.add_parsed(&name, &xml).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(corpus)
}

fn load_view(args: &Args) -> Result<String, String> {
    let view_path = args.view.as_ref().ok_or("--view is required")?;
    std::fs::read_to_string(view_path).map_err(|e| format!("cannot read view {view_path}: {e}"))
}

/// Build the request every command shares. Each keyword token is one
/// query term: a plain word, a `stem*` prefix, a `~W:a,b` proximity
/// group, or a phrase (a token with interior spaces — shell-quote it:
/// `--keyword "virtual views"`), each with an optional `^BOOST` suffix.
/// The error string is the term parser's diagnostic.
fn base_request(args: &Args, keywords: &[String]) -> Result<SearchRequest, String> {
    let mode = if args.any { KeywordMode::Disjunctive } else { KeywordMode::Conjunctive };
    let mut request =
        SearchRequest::parse_terms(keywords).map_err(|e| e.to_string())?.top_k(args.top).mode(mode);
    if let Some(ms) = args.deadline_ms {
        request = request.deadline(Duration::from_millis(ms));
    }
    Ok(request)
}

fn run_search<S: DocumentSource>(view: &PreparedView<S>, args: &Args) -> ExitCode {
    let request = match base_request(args, &args.keywords) {
        Ok(request) => request,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match view.search(&request) {
        Ok(out) => {
            eprintln!(
                "view: {} elements, {} match; idf = {:?}",
                out.view_size, out.matching, out.idf
            );
            for hit in &out.hits {
                println!("#{}\tscore={:.6}\ttf={:?}", hit.rank, hit.score, hit.tf);
                println!("{}", hit.xml);
            }
            if let Some(t) = out.timings {
                eprintln!(
                    "timings: pdt {:?}, evaluator {:?}, post {:?}; {} base fetches",
                    t.pdt, t.evaluator, t.post, out.fetches
                );
                eprintln!(
                    "pruning: {} block(s) pruned, {} candidate(s) skipped, {} early termination(s)",
                    out.pruning.blocks_pruned,
                    out.pruning.candidates_skipped,
                    out.pruning.early_terminations
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The per-segment breakdown `inspect` (and the serve loop's `segments`
/// command) prints so operators can see ingestion/compaction state.
fn segment_lines<S: DocumentSource>(engine: &ViewSearchEngine<S>) -> Vec<String> {
    engine
        .segments()
        .iter()
        .map(|s| {
            format!(
                "segment {} gen {} docs {} compressed {} B (raw {} B)",
                s.id,
                s.generation,
                s.documents,
                s.footprint.compressed_bytes,
                s.footprint.uncompressed_bytes
            )
        })
        .collect()
}

fn run_inspect<S: DocumentSource>(view: &PreparedView<S>, args: &Args) -> ExitCode {
    for line in segment_lines(view.engine()) {
        println!("{line}");
    }
    let stats = view.engine().stats();
    println!(
        "pruning totals: {} block(s) pruned, {} candidate(s) skipped, {} early termination(s)",
        stats.pruning.blocks_pruned,
        stats.pruning.candidates_skipped,
        stats.pruning.early_terminations
    );
    let w = stats.writes;
    println!(
        "write path: enabled {}, {} WAL append(s) ({} B), {} memtable entr(ies), \
         {} flush(es), {} compaction(s), {} replayed record(s)",
        w.enabled,
        w.wal_appends,
        w.wal_bytes,
        w.memtable_entries,
        w.flushes,
        w.compactions,
        w.replay_records
    );
    let out = view.plan(&args.keywords);
    for q in &out.qpts {
        println!("{}", q.rendered);
        println!("  pattern nodes: {} (doc {} in segment {})", q.nodes, q.doc_name, q.segment);
        for p in &q.probes {
            println!(
                "  probe {} ({} predicate(s)) -> {} data path(s), {} entries",
                p.pattern, p.predicates, p.expanded_paths, p.entries
            );
        }
    }
    for (kw, len) in &out.keyword_list_lengths {
        println!("keyword '{kw}': {len} postings");
    }
    ExitCode::SUCCESS
}

/// Run `search`/`inspect` against a prepared view built over either
/// backend.
fn with_prepared<S: DocumentSource>(
    cmd: &str,
    engine: &ViewSearchEngine<S>,
    view_text: &str,
    args: &Args,
) -> ExitCode {
    if cmd == "search" && args.keywords.is_empty() {
        eprintln!("error: at least one --keyword is required");
        return ExitCode::FAILURE;
    }
    if cmd == "inspect" && view_text.is_empty() {
        // Segments-only inspection: no view to plan.
        for line in segment_lines(engine) {
            println!("{line}");
        }
        return ExitCode::SUCCESS;
    }
    match engine.prepare(view_text) {
        Ok(prepared) => match cmd {
            "search" => run_search(&prepared, args),
            _ => run_inspect(&prepared, args),
        },
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Build a catalog over `engine` and register every `--register` spec.
fn build_catalog<S: DocumentSource>(
    engine: ViewSearchEngine<S>,
    args: &Args,
) -> Result<ViewCatalog<S>, String> {
    let catalog = ViewCatalog::new(engine);
    for (name, path) in &args.registers {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read view {path}: {e}"))?;
        catalog.register(name.clone(), &text).map_err(|e| format!("register {name}: {e}"))?;
    }
    Ok(catalog)
}

/// Escape hit XML onto a single protocol line (`\\`, `\n`, `\r`): source
/// documents may contain literal newlines, which would otherwise split a
/// hit across lines or fake the `.` response terminator.
fn escape_protocol_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// The `serve` loop: one command per stdin line; see the module docs for
/// the protocol. Arguments tokenize with double-quote support (shared
/// with the TCP wire protocol), so paths with spaces work; EOF and
/// `quit` both exit cleanly through the final-stats epilogue.
fn serve_loop<S: DocumentSource>(catalog: &ViewCatalog<S>, args: &Args) -> ExitCode {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    eprintln!(
        "vxv serve: {} view(s) registered; commands: \
         register/search/list/stats/segments/add/flush/checkpoint/quit",
        catalog.len()
    );
    'serve: for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let tokens = match vxv_server::proto::tokenize(&line) {
            Ok(t) => t,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                let _ = out.flush();
                continue;
            }
        };
        let parts: Vec<&str> = tokens.iter().map(String::as_str).collect();
        let reply = match parts.as_slice() {
            [] => continue,
            ["quit"] | ["exit"] => break 'serve,
            ["list"] => {
                for name in catalog.names() {
                    let _ = writeln!(out, "{name}");
                }
                let _ = writeln!(out, ".");
                Ok(())
            }
            ["stats"] => {
                let s = catalog.stats();
                let _ = writeln!(
                    out,
                    "stats hits={} misses={} prepares={} evictions={} named={} adhoc={}",
                    s.hits, s.misses, s.prepares, s.evictions, s.named, s.adhoc
                );
                let w = catalog.engine().stats().writes;
                let _ = writeln!(
                    out,
                    "writes enabled={} wal-appends={} wal-bytes={} memtable-entries={} \
                     flushes={} compactions={} checkpoints={} replay-records={}",
                    if w.enabled { 1 } else { 0 },
                    w.wal_appends,
                    w.wal_bytes,
                    w.memtable_entries,
                    w.flushes,
                    w.compactions,
                    w.checkpoints,
                    w.replay_records
                );
                let k = catalog.engine().result_cache().stats();
                let _ = writeln!(
                    out,
                    "cache hits={} misses={} inserts={} evictions={} stale={} entries={} \
                     bytes={} probe-hits={} probe-misses={}",
                    k.hits,
                    k.misses,
                    k.inserts,
                    k.evictions,
                    k.stale,
                    k.entries,
                    k.bytes,
                    k.probe_hits,
                    k.probe_misses
                );
                Ok(())
            }
            ["segments"] => {
                for line in segment_lines(catalog.engine()) {
                    let _ = writeln!(out, "{line}");
                }
                let _ = writeln!(out, ".");
                Ok(())
            }
            ["add", name, path] => match std::fs::read_to_string(path) {
                // With the write path on, `add` is durable: WAL first,
                // then the searchable memtable. Otherwise it falls back
                // to the bulk-load segment-per-batch ingest.
                Ok(xml) => {
                    let engine = catalog.engine();
                    let result = if engine.writes_enabled() {
                        engine.append([(name.to_string(), xml)])
                    } else {
                        engine.ingest([(name.to_string(), xml)])
                    };
                    match result {
                        Ok(report) => {
                            let _ = writeln!(out, "added {name} segment {}", report.segment.id);
                            Ok(())
                        }
                        Err(e) => Err(e.to_string()),
                    }
                }
                Err(e) => Err(format!("cannot read document {path}: {e}")),
            },
            ["flush"] => {
                let flushed = catalog.engine().flush_memtable();
                let _ = writeln!(out, "flushed {}", if flushed { 1 } else { 0 });
                Ok(())
            }
            ["checkpoint"] => match args.store.as_deref() {
                // Seal + persist + truncate the WAL so the next restart
                // replays only post-checkpoint records.
                None => Err("checkpoint needs --store DIR".into()),
                Some(dir) => match catalog.engine().checkpoint(std::path::Path::new(dir)) {
                    Ok(r) => {
                        let _ = writeln!(
                            out,
                            "checkpointed flushed {} segments {} documents {} \
                             wal-bytes-truncated {}",
                            if r.flushed { 1 } else { 0 },
                            r.segments,
                            r.documents_persisted,
                            r.wal_bytes_truncated
                        );
                        Ok(())
                    }
                    Err(e) => Err(e.to_string()),
                },
            },
            ["register", name, path] => match std::fs::read_to_string(path) {
                Ok(text) => match catalog.register(name.to_string(), &text) {
                    Ok(_) => {
                        let _ = writeln!(out, "registered {name}");
                        Ok(())
                    }
                    Err(e) => Err(e.to_string()),
                },
                Err(e) => Err(format!("cannot read view {path}: {e}")),
            },
            ["search", name, kws @ ..] if !kws.is_empty() => {
                let keywords: Vec<String> = kws.iter().map(|s| s.to_string()).collect();
                match base_request(args, &keywords)
                    .and_then(|req| catalog.search(name, &req).map_err(|e| format!("{e}")))
                {
                    Ok(resp) => {
                        let _ = writeln!(
                            out,
                            "hits {} matching {} view {}",
                            resp.hits.len(),
                            resp.matching,
                            resp.view_size
                        );
                        for hit in &resp.hits {
                            let _ = writeln!(
                                out,
                                "{} {:.6} {}",
                                hit.rank,
                                hit.score,
                                escape_protocol_line(&hit.xml)
                            );
                        }
                        let _ = writeln!(out, ".");
                        Ok(())
                    }
                    Err(e) => Err(e.to_string()),
                }
            }
            _ => Err(format!("unrecognized command: {line}")),
        };
        if let Err(msg) = reply {
            let _ = writeln!(out, "error: {msg}");
        }
        let _ = out.flush();
    }
    // Reached on `quit` and on EOF alike: never fall off silently.
    let s = catalog.stats();
    eprintln!(
        "vxv serve: exiting; final stats hits={} misses={} prepares={} evictions={} named={} adhoc={}",
        s.hits, s.misses, s.prepares, s.evictions, s.named, s.adhoc
    );
    ExitCode::SUCCESS
}

/// `serve --listen ADDR`: mount the `vxv-server` TCP serving tier over
/// the catalog and run in the foreground until killed.
fn serve_listen<S: DocumentSource + 'static>(catalog: ViewCatalog<S>, addr: &str) -> ExitCode {
    match vxv_server::serve(Arc::new(catalog), addr, vxv_server::ServerConfig::default()) {
        Ok(handle) => {
            eprintln!("vxv serve: listening on {}", handle.addr());
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: bind {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `serve --shards N --listen ADDR`: partition the `--doc` corpus
/// across N engines by the deterministic doc→shard map and mount the
/// TCP tier over the [`vxv_core::ShardedCatalog`] router.
fn run_serve_sharded(args: &Args) -> ExitCode {
    let n = args.shards.unwrap_or(1).max(1);
    if args.store.is_some() {
        eprintln!("error: --shards needs an in-memory --doc corpus (per-shard stores land later)");
        return ExitCode::FAILURE;
    }
    let Some(addr) = args.listen.as_deref() else {
        eprintln!("error: --shards N requires --listen ADDR (the TCP serving tier)");
        return ExitCode::FAILURE;
    };
    let corpus = match load_corpus(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sharded = Arc::new(vxv_core::ShardedCatalog::partition(&corpus, n));
    if let Some(bytes) = args.cache_bytes {
        for i in 0..sharded.shard_count() {
            sharded.shard(i).engine().result_cache().set_capacity(bytes);
        }
    }
    for (name, path) in &args.registers {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read view {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = sharded.register(name.clone(), &text) {
            eprintln!("error: register {name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match vxv_server::serve_sharded(sharded, addr, vxv_server::ServerConfig::default()) {
        Ok(handle) => {
            eprintln!("vxv serve: {n} shard(s) listening on {}", handle.addr());
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: bind {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `cache` subcommand. `--connect ADDR` prints a live server's
/// cache/engine/shard counter lines; the local form builds a catalog,
/// runs every `--keyword` search twice over every registered view, and
/// prints the resulting cache counters (the second pass should be all
/// hits — a quick coherence/temperature check).
fn run_cache(args: &Args) -> ExitCode {
    if let Some(addr) = args.connect.as_deref() {
        let mut client = match vxv_server::Client::connect(addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: connect {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let stats = match client.stats(None) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: stats: {e}");
                return ExitCode::FAILURE;
            }
        };
        for line in stats.iter().filter(|l| {
            l.starts_with("cache ") || l.starts_with("engine ") || l.starts_with("writes ")
        }) {
            println!("{line}");
        }
        match client.shards() {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: shards: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        if args.registers.is_empty() || args.keywords.is_empty() {
            eprintln!(
                "error: cache needs --connect ADDR, or --register NAME=VIEWFILE... with \
                 --keyword WORD... for the local round trip"
            );
            return ExitCode::FAILURE;
        }
        let corpus = match load_corpus(args) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let engine = ViewSearchEngine::new(corpus);
        if let Some(bytes) = args.cache_bytes {
            engine.result_cache().set_capacity(bytes);
        }
        let catalog = match build_catalog(engine, args) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let request = match base_request(args, &args.keywords) {
            Ok(request) => request,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        for pass in ["cold", "warm"] {
            for (name, _) in &args.registers {
                if let Err(e) = catalog.search(name, &request) {
                    eprintln!("error: {pass} search {name}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let k = catalog.engine().result_cache().stats();
        println!(
            "cache hits {} misses {} inserts {} evictions {} stale {} entries {} bytes {} \
             capacity {} probe-hits {} probe-misses {}",
            k.hits,
            k.misses,
            k.inserts,
            k.evictions,
            k.stale,
            k.entries,
            k.bytes,
            k.capacity,
            k.probe_hits,
            k.probe_misses
        );
        ExitCode::SUCCESS
    }
}

/// The `batch` command: parse the request file, fan it across the
/// catalog's worker pool, report per-request summaries in order.
fn run_batch<S: DocumentSource>(catalog: &ViewCatalog<S>, args: &Args) -> ExitCode {
    let Some(path) = args.file.as_ref() else {
        eprintln!("error: --file REQS is required");
        return ExitCode::FAILURE;
    };
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut requests: Vec<NamedRequest> = Vec::new();
    for line in content.lines() {
        // Same tokenizer as the serve REPL and the wire protocol, so
        // quoted phrase terms ("virtual views") work in batch files.
        let parts = match vxv_server::proto::tokenize(line) {
            Ok(tokens) => tokens,
            Err(e) => {
                eprintln!("error: bad request line '{line}': {e}");
                return ExitCode::FAILURE;
            }
        };
        match parts.as_slice() {
            [] => continue,
            [first, ..] if first.starts_with('#') => continue,
            [name, kws @ ..] if !kws.is_empty() => {
                let keywords: Vec<String> = kws.to_vec();
                match base_request(args, &keywords) {
                    Ok(request) => requests.push(NamedRequest::new(name.as_str(), request)),
                    Err(e) => {
                        eprintln!("error: bad request line '{line}': {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => {
                eprintln!("error: bad request line (want NAME KW [KW...]): {line}");
                return ExitCode::FAILURE;
            }
        }
    }
    let results = catalog.search_batch(&requests);
    let mut failures = 0usize;
    for (i, (req, result)) in requests.iter().zip(&results).enumerate() {
        match result {
            Ok(resp) => {
                let top = resp.hits.first().map(|h| h.score).unwrap_or(0.0);
                println!(
                    "#{} {}: hits={} matching={} top_score={:.6}",
                    i + 1,
                    req.view,
                    resp.hits.len(),
                    resp.matching,
                    top
                );
            }
            Err(e) => {
                failures += 1;
                println!("#{} {}: error: {e}", i + 1, req.view);
            }
        }
    }
    eprintln!("batch: {} request(s), {} failed", results.len(), failures);
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Dispatch a catalog-backed command (`serve` / `batch`) over either
/// backend.
fn with_catalog<S: DocumentSource + 'static>(
    cmd: &str,
    engine: ViewSearchEngine<S>,
    args: &Args,
) -> ExitCode {
    let catalog = match build_catalog(engine, args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "serve" => match args.listen.as_deref() {
            Some(addr) => serve_listen(catalog, addr),
            None => serve_loop(&catalog, args),
        },
        _ => run_batch(&catalog, args),
    }
}

/// `vxv ingest --store DIR --doc FILE...`: parse the documents under
/// fresh root ordinals, build **one new index segment** over them,
/// persist the documents into the store under the segment's file
/// namespace, and append the segment to the bundle — existing segments
/// and document files are never rewritten.
fn run_ingest(args: &Args) -> ExitCode {
    let Some(store_dir) = args.store.as_ref() else {
        eprintln!("error: --store DIR is required");
        return ExitCode::FAILURE;
    };
    if args.docs.is_empty() {
        eprintln!("error: at least one --doc is required");
        return ExitCode::FAILURE;
    }
    let dir = std::path::Path::new(store_dir);
    let mut bundle = match IndexBundle::load(dir) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: load indices: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut store = match DiskStore::open(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: open store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let first_ordinal = bundle.max_root_ordinal().map(|m| m + 1).unwrap_or(1);
    let mut corpus = Corpus::new();
    for (next_ordinal, path) in (first_ordinal..).zip(args.docs.iter()) {
        let name = std::path::Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        if bundle.docs().any(|d| d.name == name) || corpus.doc(&name).is_some() {
            eprintln!("error: document '{name}' is already in the store");
            return ExitCode::FAILURE;
        }
        let xml = match std::fs::read_to_string(path) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match parse_document(&name, &xml, next_ordinal) {
            Ok(doc) => corpus.add(doc),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let segment = IndexSegment::build(&corpus);
    // Keep the pre-append catalog so a failed index save can roll the
    // store back — otherwise the store and the bundle disagree about the
    // new documents and every retried ingest is rejected as a duplicate.
    let catalog_backup = std::fs::read(dir.join(vxv_xml::diskstore::CATALOG_FILE)).ok();
    let namespace = match store.append_segment(&corpus, dir) {
        Ok(ns) => ns,
        Err(e) => {
            eprintln!("error: persist ingested documents: {e}");
            return ExitCode::FAILURE;
        }
    };
    bundle.segments.push(segment);
    match bundle.save(dir) {
        Ok(_) => {
            eprintln!(
                "ingested {} document(s) as a new segment ({} segment(s) total)",
                args.docs.len(),
                bundle.segments.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Undo the store half so the directory stays consistent and
            // the ingest can simply be retried.
            if let Some(backup) = catalog_backup {
                let _ = std::fs::write(dir.join(vxv_xml::diskstore::CATALOG_FILE), backup);
            }
            for i in 0..corpus.docs().count() {
                let _ = std::fs::remove_file(dir.join(format!("seg{namespace:04}-doc{i:04}.xml")));
            }
            eprintln!("error: save indices: {e} (store rolled back; retry the ingest)");
            ExitCode::FAILURE
        }
    }
}

/// `vxv compact --store DIR`: merge every index segment of a persisted
/// bundle into one (full compaction — the operator asked for it).
/// Document files are untouched; only `indices.vxi` is rewritten, and
/// the merged indices are byte-identical to a single build over all
/// documents.
fn run_compact(args: &Args) -> ExitCode {
    let Some(store_dir) = args.store.as_ref() else {
        eprintln!("error: --store DIR is required");
        return ExitCode::FAILURE;
    };
    let dir = std::path::Path::new(store_dir);
    let bundle = match IndexBundle::load(dir) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: load indices: {e}");
            return ExitCode::FAILURE;
        }
    };
    let before = bundle.segments.len();
    if before < 2 {
        eprintln!("nothing to compact: {before} segment(s)");
        return ExitCode::SUCCESS;
    }
    let merged = IndexSegment::merge(bundle.segments.iter());
    let generation = merged.generation();
    match IndexBundle::from_segments(vec![merged]).save(dir) {
        Ok(_) => {
            eprintln!("compacted {before} segments into 1 (generation {generation})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: save indices: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let Some((cmd, args)) = parse_args(std::env::args()) else {
        return usage();
    };
    match cmd.as_str() {
        "persist" => {
            let Some(out_dir) = args.out.as_ref() else {
                eprintln!("error: --out DIR is required");
                return ExitCode::FAILURE;
            };
            let corpus = match load_corpus(&args) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let dir = std::path::Path::new(out_dir);
            if let Err(e) = DiskStore::persist(&corpus, dir) {
                eprintln!("error: persist documents: {e}");
                return ExitCode::FAILURE;
            }
            let bundle = IndexBundle::build(&corpus);
            match bundle.save(dir) {
                Ok(path) => {
                    eprintln!(
                        "persisted {} document(s) and indices to {}",
                        args.docs.len(),
                        path.parent().unwrap_or(dir).display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: persist indices: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "ingest" => run_ingest(&args),
        "compact" => run_compact(&args),
        "cache" => run_cache(&args),
        "serve" if args.shards.is_some_and(|n| n > 1) => run_serve_sharded(&args),
        "search" | "inspect" | "serve" | "batch" => {
            let catalog_cmd = cmd == "serve" || cmd == "batch";
            let view_text = if catalog_cmd || (cmd == "inspect" && args.view.is_none()) {
                String::new()
            } else {
                match load_view(&args) {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            if let Some(store_dir) = args.store.as_ref() {
                // Cold open: indices + catalog from disk, no corpus.
                let dir = std::path::Path::new(store_dir);
                let store = match DiskStore::open(dir) {
                    Ok(s) => Arc::new(s),
                    Err(e) => {
                        eprintln!("error: open store: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                // Map the index file by default: cold open then costs
                // O(header + directories), and posting blocks decode
                // straight out of the mapping on first touch.
                let t_open = std::time::Instant::now();
                let opened =
                    if args.no_mmap { IndexBundle::load(dir) } else { IndexBundle::open_mmap(dir) };
                let bundle = match opened {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("error: load indices: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let t_open = t_open.elapsed();
                if cmd == "inspect" {
                    let st = bundle.open_stats();
                    println!(
                        "cold open (format v{}): {t_open:?}; {} B mapped, {} B owned, {} posting B decoded",
                        st.format_version, st.mapped_bytes, st.owned_bytes, st.bytes_decoded
                    );
                }
                let engine = ViewSearchEngine::open(store, bundle);
                if cmd == "serve" {
                    // A store-backed serve is a live service: turn on the
                    // write path (WAL next to the store, replay first).
                    let config = match write_config(&args) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match engine.enable_writes(dir.join(vxv_index::wal::WAL_FILE), config) {
                        Ok(report) => eprintln!(
                            "vxv serve: WAL replayed {} record(s), {} document(s){}",
                            report.records,
                            report.documents,
                            if report.truncated_tail.is_some() {
                                " (torn tail truncated)"
                            } else {
                                ""
                            }
                        ),
                        Err(e) => {
                            eprintln!("error: enable writes: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if catalog_cmd {
                    with_catalog(&cmd, engine, &args)
                } else {
                    with_prepared(&cmd, &engine, &view_text, &args)
                }
            } else {
                let corpus = match load_corpus(&args) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let engine = ViewSearchEngine::new(corpus);
                if catalog_cmd {
                    with_catalog(&cmd, engine, &args)
                } else {
                    with_prepared(&cmd, &engine, &view_text, &args)
                }
            }
        }
        _ => usage(),
    }
}
