//! `vxv` — command-line keyword search over virtual XML views.
//!
//! ```text
//! vxv search  --doc books.xml --doc reviews.xml --view view.xq \
//!             --keyword xml --keyword search [--top 10] [--any]
//! vxv inspect --doc books.xml --view view.xq    # show QPTs and probe plans
//! vxv persist --doc books.xml --out store/      # write documents + indices
//! vxv search  --store store/ --view view.xq -k xml   # cold open from disk
//! ```
//!
//! With `--doc`, documents are parsed and indexed in memory; the view's
//! `fn:doc(...)` references must use the same names (base name of the
//! path). With `--store`, the engine cold-opens a directory previously
//! written by `vxv persist`: indices and the document catalog are read
//! from disk, and base documents are touched only to materialize hits.

use std::process::ExitCode;
use vxv_core::{DocumentSource, IndexBundle, SearchRequest, ViewSearchEngine};
use vxv_core::{KeywordMode, PreparedView};
use vxv_xml::{Corpus, DiskStore};

struct Args {
    docs: Vec<String>,
    store: Option<String>,
    out: Option<String>,
    view: Option<String>,
    keywords: Vec<String>,
    top: usize,
    any: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  vxv search  (--doc FILE... | --store DIR) --view FILE --keyword WORD... [--top N] [--any]\n  vxv inspect (--doc FILE... | --store DIR) --view FILE\n  vxv persist --doc FILE... --out DIR"
    );
    ExitCode::from(2)
}

fn parse_args(mut argv: std::env::Args) -> Option<(String, Args)> {
    let _bin = argv.next()?;
    let cmd = argv.next()?;
    let mut args = Args {
        docs: vec![],
        store: None,
        out: None,
        view: None,
        keywords: vec![],
        top: 10,
        any: false,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--doc" => args.docs.push(it.next()?),
            "--store" => args.store = Some(it.next()?),
            "--out" => args.out = Some(it.next()?),
            "--view" => args.view = Some(it.next()?),
            "--keyword" | "-k" => args.keywords.push(it.next()?),
            "--top" => args.top = it.next()?.parse().ok()?,
            "--any" => args.any = true,
            _ => {
                eprintln!("unknown flag {flag}");
                return None;
            }
        }
    }
    Some((cmd, args))
}

fn load_corpus(args: &Args) -> Result<Corpus, String> {
    if args.docs.is_empty() {
        return Err("at least one --doc is required".into());
    }
    let mut corpus = Corpus::new();
    for path in &args.docs {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        corpus.add_parsed(&name, &xml).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(corpus)
}

fn load_view(args: &Args) -> Result<String, String> {
    let view_path = args.view.as_ref().ok_or("--view is required")?;
    std::fs::read_to_string(view_path).map_err(|e| format!("cannot read view {view_path}: {e}"))
}

fn run_search<S: DocumentSource>(view: &PreparedView<'_, '_, S>, args: &Args) -> ExitCode {
    let mode = if args.any { KeywordMode::Disjunctive } else { KeywordMode::Conjunctive };
    let request = SearchRequest::new(&args.keywords).top_k(args.top).mode(mode);
    match view.search(&request) {
        Ok(out) => {
            eprintln!(
                "view: {} elements, {} match; idf = {:?}",
                out.view_size, out.matching, out.idf
            );
            for hit in &out.hits {
                println!("#{}\tscore={:.6}\ttf={:?}", hit.rank, hit.score, hit.tf);
                println!("{}", hit.xml);
            }
            if let Some(t) = out.timings {
                eprintln!(
                    "timings: pdt {:?}, evaluator {:?}, post {:?}; {} base fetches",
                    t.pdt, t.evaluator, t.post, out.fetches
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_inspect<S: DocumentSource>(view: &PreparedView<'_, '_, S>, args: &Args) -> ExitCode {
    let out = view.plan(&args.keywords);
    for q in &out.qpts {
        println!("{}", q.rendered);
        println!("  pattern nodes: {}", q.nodes);
        for p in &q.probes {
            println!(
                "  probe {} ({} predicate(s)) -> {} data path(s), {} entries",
                p.pattern, p.predicates, p.expanded_paths, p.entries
            );
        }
    }
    for (kw, len) in &out.keyword_list_lengths {
        println!("keyword '{kw}': {len} postings");
    }
    ExitCode::SUCCESS
}

/// Run `search`/`inspect` against a prepared view built over either
/// backend.
fn with_prepared<S: DocumentSource>(
    cmd: &str,
    engine: &ViewSearchEngine<'_, S>,
    view_text: &str,
    args: &Args,
) -> ExitCode {
    if cmd == "search" && args.keywords.is_empty() {
        eprintln!("error: at least one --keyword is required");
        return ExitCode::FAILURE;
    }
    match engine.prepare(view_text) {
        Ok(prepared) => match cmd {
            "search" => run_search(&prepared, args),
            _ => run_inspect(&prepared, args),
        },
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let Some((cmd, args)) = parse_args(std::env::args()) else {
        return usage();
    };
    match cmd.as_str() {
        "persist" => {
            let Some(out_dir) = args.out.as_ref() else {
                eprintln!("error: --out DIR is required");
                return ExitCode::FAILURE;
            };
            let corpus = match load_corpus(&args) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let dir = std::path::Path::new(out_dir);
            if let Err(e) = DiskStore::persist(&corpus, dir) {
                eprintln!("error: persist documents: {e}");
                return ExitCode::FAILURE;
            }
            let bundle = IndexBundle::build(&corpus);
            match bundle.save(dir) {
                Ok(path) => {
                    eprintln!(
                        "persisted {} document(s) and indices to {}",
                        args.docs.len(),
                        path.parent().unwrap_or(dir).display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: persist indices: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "search" | "inspect" => {
            let view_text = match load_view(&args) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(store_dir) = args.store.as_ref() {
                // Cold open: indices + catalog from disk, no corpus.
                let dir = std::path::Path::new(store_dir);
                let store = match DiskStore::open(dir) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: open store: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let bundle = match IndexBundle::load(dir) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("error: load indices: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let engine = ViewSearchEngine::open(&store, bundle);
                with_prepared(&cmd, &engine, &view_text, &args)
            } else {
                let corpus = match load_corpus(&args) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let engine = ViewSearchEngine::new(&corpus);
                with_prepared(&cmd, &engine, &view_text, &args)
            }
        }
        _ => usage(),
    }
}
