//! `vxv` — command-line keyword search over virtual XML views.
//!
//! ```text
//! vxv search --doc books.xml --doc reviews.xml --view view.xq \
//!            --keyword xml --keyword search [--top 10] [--any]
//! vxv inspect --doc books.xml --view view.xq     # show QPTs and PDT stats
//! ```
//!
//! Documents are loaded by file name; the view's `fn:doc(...)` references
//! must use the same names (base name of the path).

use std::process::ExitCode;
use vxv_core::{KeywordMode, SearchRequest, ViewSearchEngine};
use vxv_xml::Corpus;

struct Args {
    docs: Vec<String>,
    view: Option<String>,
    keywords: Vec<String>,
    top: usize,
    any: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  vxv search  --doc FILE... --view FILE --keyword WORD... [--top N] [--any]\n  vxv inspect --doc FILE... --view FILE"
    );
    ExitCode::from(2)
}

fn parse_args(mut argv: std::env::Args) -> Option<(String, Args)> {
    let _bin = argv.next()?;
    let cmd = argv.next()?;
    let mut args = Args { docs: vec![], view: None, keywords: vec![], top: 10, any: false };
    let mut it = argv;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--doc" => args.docs.push(it.next()?),
            "--view" => args.view = Some(it.next()?),
            "--keyword" | "-k" => args.keywords.push(it.next()?),
            "--top" => args.top = it.next()?.parse().ok()?,
            "--any" => args.any = true,
            _ => {
                eprintln!("unknown flag {flag}");
                return None;
            }
        }
    }
    Some((cmd, args))
}

fn load(args: &Args) -> Result<(Corpus, String), String> {
    if args.docs.is_empty() {
        return Err("at least one --doc is required".into());
    }
    let view_path = args.view.as_ref().ok_or("--view is required")?;
    let view = std::fs::read_to_string(view_path)
        .map_err(|e| format!("cannot read view {view_path}: {e}"))?;
    let mut corpus = Corpus::new();
    for path in &args.docs {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        corpus.add_parsed(&name, &xml).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok((corpus, view))
}

fn main() -> ExitCode {
    let Some((cmd, args)) = parse_args(std::env::args()) else {
        return usage();
    };
    let (corpus, view) = match load(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "search" => {
            if args.keywords.is_empty() {
                eprintln!("error: at least one --keyword is required");
                return ExitCode::FAILURE;
            }
            let mode = if args.any { KeywordMode::Disjunctive } else { KeywordMode::Conjunctive };
            let engine = ViewSearchEngine::new(&corpus);
            let request = SearchRequest::new(&args.keywords).top_k(args.top).mode(mode);
            match engine.prepare(&view).and_then(|v| v.search(&request)) {
                Ok(out) => {
                    eprintln!(
                        "view: {} elements, {} match; idf = {:?}",
                        out.view_size, out.matching, out.idf
                    );
                    for hit in &out.hits {
                        println!("#{}\tscore={:.6}\ttf={:?}", hit.rank, hit.score, hit.tf);
                        println!("{}", hit.xml);
                    }
                    if let Some(t) = out.timings {
                        eprintln!(
                            "timings: pdt {:?}, evaluator {:?}, post {:?}; {} base fetches",
                            t.pdt, t.evaluator, t.post, out.fetches
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "inspect" => {
            let engine = ViewSearchEngine::new(&corpus);
            match engine.prepare(&view) {
                Ok(prepared) => {
                    let out = prepared.plan(&args.keywords);
                    for q in &out.qpts {
                        println!("{}", q.rendered);
                        println!("  pattern nodes: {}", q.nodes);
                        for p in &q.probes {
                            println!(
                                "  probe {} ({} predicate(s)) -> {} data path(s), {} entries",
                                p.pattern, p.predicates, p.expanded_paths, p.entries
                            );
                        }
                    }
                    for (kw, len) in &out.keyword_list_lengths {
                        println!("keyword '{kw}': {len} postings");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
