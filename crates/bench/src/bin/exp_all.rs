//! Run every experiment in sequence, prefixed by the Table 1 parameter
//! grid. Equivalent to invoking each `exp_fig*` binary.

use std::process::Command;

fn main() {
    println!("Table 1: experimental parameters (defaults in [brackets])");
    println!("  Size of data           : 1x..5x of VXV_BASE_KB          [1x]");
    println!("  # keywords             : 1, [2], 3, 4, 5");
    println!("  Selectivity of keywords: Low(ieee, computing), [Medium(thomas, control)], High(moore, burnett)");
    println!("  # of joins             : 0, [1], 2, 3, 4");
    println!("  Join selectivity       : [1X], 0.5X, 0.2X, 0.1X");
    println!("  Level of nestings      : 1, [2], 3, 4");
    println!("  # of results (top-K)   : 1, [10], 20, 30, 40");
    println!("  Avg. size of view elem : [1X], 2X, 3X, 4X, 5X");
    println!();

    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for name in [
        "exp_fig13",
        "exp_fig14",
        "exp_fig15",
        "exp_fig16",
        "exp_fig17",
        "exp_fig18",
        "exp_fig19",
        "exp_fig20",
        "exp_extra",
    ] {
        let bin = dir.join(name);
        if !bin.exists() {
            eprintln!(
                "missing sibling binary {name}; build with `cargo build --release -p vxv-bench`"
            );
            continue;
        }
        let status = Command::new(&bin).status().expect("spawn experiment");
        if !status.success() {
            eprintln!("{name} failed: {status}");
        }
        println!();
    }
}
