//! Figure 19 — varying the level of FLWOR nesting (1–4).
//!
//! Paper: run time grows roughly linearly with nesting, the evaluator's
//! share growing fastest.

use vxv_bench::harness::{base_kb_from_env, measure_point, print_preamble, MeasureOptions};
use vxv_bench::table::{ms, Table};
use vxv_inex::ExperimentParams;

fn main() {
    print_preamble("Figure 19", "run time vs level of nesting");
    let base = base_kb_from_env() * 1024;
    let mut table = Table::new(&["nesting", "PDT(ms)", "Evaluator(ms)", "Post(ms)", "total(ms)"]);
    for nesting in 1..=4usize {
        let params = ExperimentParams { data_bytes: base, nesting, ..ExperimentParams::default() };
        let m = measure_point(&params, &MeasureOptions::default());
        table.row(vec![
            nesting.to_string(),
            ms(m.efficient.pdt),
            ms(m.efficient.evaluator),
            ms(m.efficient.post),
            ms(m.efficient.total()),
        ]);
    }
    table.print();
}
