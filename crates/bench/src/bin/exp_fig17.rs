//! Figure 17 — varying the number of value joins (0–4).
//!
//! Paper: run time grows with join count (query evaluation dominates);
//! the largest jump is 0 → 1 joins, because 0 joins needs a single PDT
//! and a cheap selection while 1 join needs two PDTs and a value join.

use vxv_bench::harness::{base_kb_from_env, measure_point, print_preamble, MeasureOptions};
use vxv_bench::table::{ms, Table};
use vxv_inex::ExperimentParams;

fn main() {
    print_preamble("Figure 17", "run time vs number of joins");
    let base = base_kb_from_env() * 1024;
    let mut table =
        Table::new(&["#joins", "#PDTs", "PDT(ms)", "Evaluator(ms)", "Post(ms)", "total(ms)"]);
    for joins in 0..=4usize {
        let params =
            ExperimentParams { data_bytes: base, num_joins: joins, ..ExperimentParams::default() };
        let pdts = if joins == 0 { 1 } else { joins + 1 };
        let m = measure_point(&params, &MeasureOptions::default());
        table.row(vec![
            joins.to_string(),
            pdts.to_string(),
            ms(m.efficient.pdt),
            ms(m.efficient.evaluator),
            ms(m.efficient.post),
            ms(m.efficient.total()),
        ]);
    }
    table.print();
}
