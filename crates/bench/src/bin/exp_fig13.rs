//! Figure 13 — varying the size of the data.
//!
//! Paper: Efficient answers in <5 s on 500 MB and scales linearly;
//! Baseline is >10× slower even on a 13 MB subset (materialization
//! dominates); GTP is ~10× slower (structural joins + base access);
//! Proj is ~15× slower (full document scans).
//!
//! Expected shape here: Efficient fastest and linear in corpus size,
//! Baseline/GTP/Proj each slower by large factors, orderings as above.
//! Baseline is run only up to `VXV_BASELINE_CAP_X` (default 2×) of the
//! base size, mirroring the paper's own 13 MB cutoff for it.

use vxv_bench::harness::{
    base_kb_from_env, measure_point, print_preamble, MeasureOptions, SystemSet,
};
use vxv_bench::table::{ms, Table};
use vxv_inex::ExperimentParams;

fn main() {
    print_preamble("Figure 13", "run time vs data size, all four systems");
    let base = base_kb_from_env() * 1024;
    let baseline_cap: u64 =
        std::env::var("VXV_BASELINE_CAP_X").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let mut table =
        Table::new(&["size(KB)", "Baseline(ms)", "GTP(ms)", "Proj(ms)", "Efficient(ms)"]);
    for mult in 1..=5u64 {
        let params = ExperimentParams { data_bytes: base * mult, ..ExperimentParams::default() };
        let opts = MeasureOptions {
            systems: SystemSet { baseline: mult <= baseline_cap, gtp: true, proj: true },
            ..MeasureOptions::default()
        };
        let m = measure_point(&params, &opts);
        table.row(vec![
            (m.corpus_bytes / 1024).to_string(),
            m.baseline.map(ms).unwrap_or_else(|| "-".into()),
            m.gtp.map(ms).unwrap_or_else(|| "-".into()),
            m.proj.map(ms).unwrap_or_else(|| "-".into()),
            ms(m.efficient.total()),
        ]);
    }
    table.print();
    println!("(Baseline beyond {baseline_cap}x omitted, as the paper stopped it at 13MB)");
}
