//! Figure 18 — varying join selectivity (1X / 0.5X / 0.2X / 0.1X).
//!
//! Paper: run time increases slightly as selectivity decreases, because
//! query evaluation cost grows.

use vxv_bench::harness::{base_kb_from_env, measure_point, print_preamble, MeasureOptions};
use vxv_bench::table::{ms, Table};
use vxv_inex::ExperimentParams;

fn main() {
    print_preamble("Figure 18", "run time vs join selectivity");
    let base = base_kb_from_env() * 1024;
    let mut table =
        Table::new(&["selectivity", "PDT(ms)", "Evaluator(ms)", "Post(ms)", "total(ms)"]);
    for (label, sel) in [("0.1X", 0.1), ("0.2X", 0.2), ("0.5X", 0.5), ("1X", 1.0)] {
        let params = ExperimentParams {
            data_bytes: base,
            join_selectivity: sel,
            ..ExperimentParams::default()
        };
        let m = measure_point(&params, &MeasureOptions::default());
        table.row(vec![
            label.to_string(),
            ms(m.efficient.pdt),
            ms(m.efficient.evaluator),
            ms(m.efficient.post),
            ms(m.efficient.total()),
        ]);
    }
    table.print();
}
