//! Figure 14 — cost of the Efficient pipeline's modules vs data size.
//!
//! Paper: PDT generation scales gracefully; post-processing (scoring +
//! top-k materialization) is negligible; the query evaluator dominates as
//! data grows.

use vxv_bench::harness::{base_kb_from_env, measure_point, print_preamble, MeasureOptions};
use vxv_bench::table::{ms, Table};
use vxv_inex::ExperimentParams;

fn main() {
    print_preamble("Figure 14", "module breakdown (PDT / Evaluator / Post-processing)");
    let base = base_kb_from_env() * 1024;
    let mut table = Table::new(&["size(KB)", "PDT(ms)", "Evaluator(ms)", "Post(ms)", "total(ms)"]);
    for mult in 1..=5u64 {
        let params = ExperimentParams { data_bytes: base * mult, ..ExperimentParams::default() };
        let m = measure_point(&params, &MeasureOptions::default());
        table.row(vec![
            (m.corpus_bytes / 1024).to_string(),
            ms(m.efficient.pdt),
            ms(m.efficient.evaluator),
            ms(m.efficient.post),
            ms(m.efficient.total()),
        ]);
    }
    table.print();
}
