//! §5.2.3 "other results": (X1) run time vs average view-element size
//! (1X–5X), and (X2) PDT size vs data size.
//!
//! Paper: the approach stays efficient as element size grows, and PDTs
//! are tiny relative to the data (~2 MB for the 500 MB collection),
//! showing the pruning is effective.

use vxv_bench::harness::{base_kb_from_env, measure_point, print_preamble, MeasureOptions};
use vxv_bench::table::{ms, Table};
use vxv_core::SearchRequest;
use vxv_inex::ExperimentParams;

fn main() {
    print_preamble("Extra X1", "run time vs average view-element size");
    let base = base_kb_from_env() * 1024;
    let mut table = Table::new(&["elem size", "PDT(ms)", "Evaluator(ms)", "Post(ms)", "total(ms)"]);
    for s in 1..=5u32 {
        let params =
            ExperimentParams { data_bytes: base, elem_size: s, ..ExperimentParams::default() };
        let m = measure_point(&params, &MeasureOptions::default());
        table.row(vec![
            format!("{s}X"),
            ms(m.efficient.pdt),
            ms(m.efficient.evaluator),
            ms(m.efficient.post),
            ms(m.efficient.total()),
        ]);
    }
    table.print();

    println!();
    print_preamble("Extra X2", "PDT size vs data size (pruning effectiveness)");
    let mut table = Table::new(&["data(KB)", "PDT(KB)", "ratio"]);
    for mult in 1..=5u64 {
        let params = ExperimentParams { data_bytes: base * mult, ..ExperimentParams::default() };
        let m = measure_point(&params, &MeasureOptions::default());
        table.row(vec![
            (m.corpus_bytes / 1024).to_string(),
            (m.pdt_bytes / 1024).to_string(),
            format!("{:.1}%", 100.0 * m.pdt_bytes as f64 / m.corpus_bytes as f64),
        ]);
    }
    table.print();
    println!("(paper: ~2MB of PDTs for the 500MB collection, i.e. ~0.4%)");

    println!();
    print_preamble("Extra X3", "index footprint vs data size (block compression)");
    let mut table = Table::new(&[
        "data(KB)",
        "path idx(KB)",
        "path raw(KB)",
        "inv idx(KB)",
        "inv raw(KB)",
        "compressed",
    ]);
    for mult in 1..=5u64 {
        let params = ExperimentParams { data_bytes: base * mult, ..ExperimentParams::default() };
        let m = measure_point(&params, &MeasureOptions::default());
        let total = m.engine.footprint();
        table.row(vec![
            (m.corpus_bytes / 1024).to_string(),
            (m.engine.path_footprint.compressed_bytes / 1024).to_string(),
            (m.engine.path_footprint.uncompressed_bytes / 1024).to_string(),
            (m.engine.inverted_footprint.compressed_bytes / 1024).to_string(),
            (m.engine.inverted_footprint.uncompressed_bytes / 1024).to_string(),
            format!("{:.0}%", 100.0 * total.ratio()),
        ]);
    }
    table.print();
    println!("(compressed = delta-varint blocks actually resident; raw = materialized vectors)");

    println!();
    print_preamble("Extra X4", "top-k pruning effectiveness vs k (block-max bounds)");
    let mut table = Table::new(&[
        "top k",
        "Post(ms)",
        "blocks pruned",
        "cand skipped",
        "early term",
        "matching",
    ]);
    for k in [1usize, 10, 100] {
        let params = ExperimentParams { data_bytes: base, top_k: k, ..ExperimentParams::default() };
        let m = measure_point(&params, &MeasureOptions::default());
        table.row(vec![
            k.to_string(),
            ms(m.efficient.post),
            m.pruning.blocks_pruned.to_string(),
            m.pruning.candidates_skipped.to_string(),
            m.pruning.early_terminations.to_string(),
            m.matching.to_string(),
        ]);
    }
    table.print();
    println!("(smaller k prunes more: exact tf probes are skipped once the score bound drops below the top-k threshold)");

    println!();
    print_preamble("Extra X5", "positional term shapes vs the bag-of-words baseline");
    let params = ExperimentParams {
        data_bytes: base,
        selectivity: vxv_inex::Selectivity::Low,
        elem_size: 3,
        ..ExperimentParams::default()
    };
    let corpus = vxv_inex::generate(&params.generator_config());
    let engine = vxv_core::ViewSearchEngine::new(corpus);
    let view = engine.prepare(&params.view()).expect("prepare view");
    let kws = params.keywords();
    let (a, b) = (kws[0], kws[1]);
    let empty = || SearchRequest::new(Vec::<String>::new()).top_k(10).materialize(false);
    let shapes: Vec<(&str, SearchRequest)> = vec![
        ("bag", SearchRequest::new(kws.clone()).top_k(10).materialize(false)),
        ("phrase", empty().phrase([a, b])),
        ("near(4)", empty().near(4, [a, b])),
        ("prefix con*", empty().prefix("con")),
        ("boosted ^0.25/^4", {
            empty()
                .term(vxv_core::QueryTerm::Word(a.to_string()))
                .boost(0.25)
                .term(vxv_core::QueryTerm::Word(b.to_string()))
                .boost(4.0)
        }),
    ];
    let mut table =
        Table::new(&["term shape", "search(ms)", "matching", "blocks pruned", "positions(KB)"]);
    for (label, req) in shapes {
        engine.reset_stats();
        let t0 = std::time::Instant::now();
        let resp = view.search(&req).expect("search");
        let elapsed = t0.elapsed();
        let pos_kb = engine.stats().inverted.positions_bytes / 1024;
        table.row(vec![
            label.to_string(),
            ms(elapsed),
            resp.matching.to_string(),
            resp.pruning.blocks_pruned.to_string(),
            pos_kb.to_string(),
        ]);
    }
    table.print();
    println!("(positional terms resolve exactly during the estimate pass, so pruned answers stay byte-identical; word/prefix probes never decode position blocks)");
}
