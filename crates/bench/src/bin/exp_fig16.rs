//! Figure 16 — varying keyword selectivity (Low / Medium / High).
//!
//! Paper: run time increases slightly as selectivity decreases (more
//! frequent keywords mean longer inverted lists, so tf retrieval during
//! PDT generation costs more I/O).

use vxv_bench::harness::{base_kb_from_env, measure_point, print_preamble, MeasureOptions};
use vxv_bench::table::{ms, Table};
use vxv_inex::{ExperimentParams, Selectivity};

fn main() {
    print_preamble("Figure 16", "run time vs keyword selectivity");
    let base = base_kb_from_env() * 1024;
    let mut table =
        Table::new(&["selectivity", "PDT(ms)", "Evaluator(ms)", "Post(ms)", "total(ms)"]);
    for (label, sel) in
        [("Low", Selectivity::Low), ("Medium", Selectivity::Medium), ("High", Selectivity::High)]
    {
        let params =
            ExperimentParams { data_bytes: base, selectivity: sel, ..ExperimentParams::default() };
        let m = measure_point(&params, &MeasureOptions::default());
        table.row(vec![
            label.to_string(),
            ms(m.efficient.pdt),
            ms(m.efficient.evaluator),
            ms(m.efficient.post),
            ms(m.efficient.total()),
        ]);
    }
    table.print();
    println!("(Low selectivity = frequent keywords = long inverted lists, as in the paper)");
}
