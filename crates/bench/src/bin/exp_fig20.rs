//! Figure 20 — varying the number of results (K in top-K).
//!
//! Paper: run time is approximately flat in K, because storing and
//! materializing a few more results is nearly free (only the top-K are
//! ever fetched from base storage).

use vxv_bench::harness::{base_kb_from_env, measure_point, print_preamble, MeasureOptions};
use vxv_bench::table::{ms, Table};
use vxv_inex::ExperimentParams;

fn main() {
    print_preamble("Figure 20", "run time vs number of results (top-K)");
    let base = base_kb_from_env() * 1024;
    let mut table =
        Table::new(&["K", "PDT(ms)", "Evaluator(ms)", "Post(ms)", "total(ms)", "base fetches"]);
    for k in [1usize, 10, 20, 30, 40] {
        let params = ExperimentParams { data_bytes: base, top_k: k, ..ExperimentParams::default() };
        let m = measure_point(&params, &MeasureOptions::default());
        table.row(vec![
            k.to_string(),
            ms(m.efficient.pdt),
            ms(m.efficient.evaluator),
            ms(m.efficient.post),
            ms(m.efficient.total()),
            m.fetches.to_string(),
        ]);
    }
    table.print();
}
