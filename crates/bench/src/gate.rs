//! The bench-regression gate's data model: metric files written by the
//! criterion stub (`CRITERION_JSON` JSON-lines) and by the benches
//! themselves (`criterion::report_metric`), consolidated into a single
//! `BENCH_PR.json` and compared against the checked-in
//! `crates/bench/BENCH_BASELINE.json`.
//!
//! Formats are deliberately tiny and hand-parsed (the workspace builds
//! offline — no serde):
//!
//! * **JSON lines** (append-only, one object per line):
//!   `{"id": "bench/name", "value": 123.4, "unit": "ns"}`
//! * **Consolidated** (`BENCH_PR.json` / `BENCH_BASELINE.json`): one
//!   object with a sorted `"metrics"` map of the same entries.
//!
//! Refreshing the baseline after an intentional perf change is one
//! step: `cp BENCH_PR.json crates/bench/BENCH_BASELINE.json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded metric: a median timing (`unit == "ns"`), a tail
/// latency percentile (`unit == "tail-ns"`, banded at **2×** the
/// tolerance — p99/p999 are order statistics of the noisiest samples,
/// so a medians-width band would flap on scheduler jitter), a
/// hardware-independent within-run ratio (`unit == "ratio"`, banded
/// like a timing but immune to runner-hardware drift), or an auxiliary
/// counter (`unit == "count"`, e.g. pruned blocks — gated only against
/// collapsing to zero).
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// The value (median ns/iter for timings).
    pub value: f64,
    /// `"ns"`, `"tail-ns"`, `"ratio"`, or `"count"`.
    pub unit: String,
}

/// Metrics keyed by benchmark id, sorted for stable serialization.
pub type Metrics = BTreeMap<String, Metric>;

/// Parse one JSON-lines file (later lines override earlier duplicates,
/// so re-running a bench within one CI job keeps the freshest value).
pub fn parse_jsonl(content: &str) -> Result<Metrics, String> {
    let mut out = Metrics::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (id, metric) = parse_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        out.insert(id, metric);
    }
    Ok(out)
}

/// Parse a consolidated metrics file written by [`render`].
pub fn parse_consolidated(content: &str) -> Result<Metrics, String> {
    // The body is the same `{...}` objects, one per metric, inside the
    // "metrics" map; scan for them directly.
    let mut out = Metrics::new();
    let Some(start) = content.find("\"metrics\"") else {
        return Err("missing \"metrics\" key".into());
    };
    let mut rest = &content[start..];
    while let Some(open) = rest.find("{\"id\"") {
        let Some(close) = rest[open..].find('}') else {
            return Err("unterminated metric object".into());
        };
        let obj = &rest[open..open + close + 1];
        let (id, metric) = parse_object(obj)?;
        out.insert(id, metric);
        rest = &rest[open + close + 1..];
    }
    Ok(out)
}

/// Render the consolidated form (`BENCH_PR.json`).
pub fn render(metrics: &Metrics) -> String {
    let mut out = String::from("{\n  \"metrics\": [\n");
    for (i, (id, m)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{comma}",
            escape(id),
            m.value,
            escape(&m.unit)
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect()
}

/// Parse one `{"id": "...", "value": N, "unit": "..."}` object.
fn parse_object(obj: &str) -> Result<(String, Metric), String> {
    let id = string_field(obj, "id")?;
    let unit = string_field(obj, "unit")?;
    let value = number_field(obj, "value")?;
    Ok((id, Metric { value, unit }))
}

fn string_field(obj: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat).ok_or_else(|| format!("missing key {key}: {obj}"))?;
    let rest = &obj[at + pat.len()..];
    let open = rest.find('"').ok_or_else(|| format!("no value for {key}"))? + 1;
    let mut out = String::new();
    let mut chars = rest[open..].chars();
    loop {
        match chars.next() {
            Some('\\') => match chars.next() {
                Some(c) => out.push(c),
                None => return Err(format!("dangling escape in {key}")),
            },
            Some('"') => return Ok(out),
            Some(c) => out.push(c),
            None => return Err(format!("unterminated string for {key}")),
        }
    }
}

fn number_field(obj: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat).ok_or_else(|| format!("missing key {key}: {obj}"))?;
    let rest = obj[at + pat.len()..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].trim().parse().map_err(|e| format!("bad number for {key}: {e}"))
}

/// One metric's comparison verdict.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Within the tolerance band.
    Ok,
    /// Timing drifted outside ±tolerance (slower or faster — a faster
    /// result also wants a baseline refresh so future regressions are
    /// measured against it).
    OutOfBand {
        /// `pr / baseline`.
        ratio: f64,
    },
    /// A counter that must stay positive hit zero (e.g. pruning stopped
    /// engaging).
    CounterWentToZero,
    /// Metric present in the baseline but missing from the PR run — a
    /// bench silently disappeared.
    Missing,
    /// Metric new in the PR run (informational; refresh the baseline to
    /// start gating it).
    New,
}

/// Compare a PR run against the baseline with a symmetric tolerance
/// band (`0.25` = ±25%). Returns per-metric verdicts sorted by id.
pub fn compare(pr: &Metrics, baseline: &Metrics, tolerance: f64) -> Vec<(String, Verdict)> {
    let mut out = Vec::new();
    for (id, base) in baseline {
        let verdict = match pr.get(id) {
            None => Verdict::Missing,
            Some(m) if base.unit == "count" => {
                if base.value > 0.0 && m.value == 0.0 {
                    Verdict::CounterWentToZero
                } else {
                    Verdict::Ok
                }
            }
            Some(m) => {
                let band = if base.unit == "tail-ns" { tolerance * 2.0 } else { tolerance };
                let ratio = if base.value > 0.0 { m.value / base.value } else { 1.0 };
                if ratio > 1.0 + band || ratio < 1.0 / (1.0 + band) {
                    Verdict::OutOfBand { ratio }
                } else {
                    Verdict::Ok
                }
            }
        };
        out.push((id.clone(), verdict));
    }
    for id in pr.keys() {
        if !baseline.contains_key(id) {
            out.push((id.clone(), Verdict::New));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Does any verdict fail the gate? (`New` is informational only.)
pub fn failed(verdicts: &[(String, Verdict)]) -> bool {
    verdicts.iter().any(|(_, v)| {
        matches!(v, Verdict::OutOfBand { .. } | Verdict::CounterWentToZero | Verdict::Missing)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: f64, unit: &str) -> Metric {
        Metric { value: v, unit: unit.into() }
    }

    #[test]
    fn jsonl_round_trips_through_consolidated_form() {
        let jsonl = "\n{\"id\": \"a/b\", \"value\": 1500.5, \"unit\": \"ns\"}\n\
                     {\"id\": \"a/c\", \"value\": 12, \"unit\": \"count\"}\n\
                     {\"id\": \"a/b\", \"value\": 1400, \"unit\": \"ns\"}\n";
        let parsed = parse_jsonl(jsonl).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["a/b"], m(1400.0, "ns"), "later lines win");
        let rendered = render(&parsed);
        assert_eq!(parse_consolidated(&rendered).unwrap(), parsed);
    }

    #[test]
    fn compare_gates_on_band_counters_and_missing_benches() {
        let mut base = Metrics::new();
        base.insert("t/fast".into(), m(1000.0, "ns"));
        base.insert("t/slow".into(), m(1000.0, "ns"));
        base.insert("t/gone".into(), m(1000.0, "ns"));
        base.insert("t/blocks".into(), m(50.0, "count"));
        let mut pr = Metrics::new();
        pr.insert("t/fast".into(), m(1100.0, "ns")); // +10%: ok
        pr.insert("t/slow".into(), m(1400.0, "ns")); // +40%: fail
        pr.insert("t/blocks".into(), m(0.0, "count")); // engagement lost
        pr.insert("t/new".into(), m(5.0, "ns"));

        let verdicts = compare(&pr, &base, 0.25);
        let get = |id: &str| verdicts.iter().find(|(i, _)| i == id).unwrap().1.clone();
        assert_eq!(get("t/fast"), Verdict::Ok);
        assert!(matches!(get("t/slow"), Verdict::OutOfBand { ratio } if ratio > 1.39));
        assert_eq!(get("t/gone"), Verdict::Missing);
        assert_eq!(get("t/blocks"), Verdict::CounterWentToZero);
        assert_eq!(get("t/new"), Verdict::New);
        assert!(failed(&verdicts));

        // Symmetric band: a 2x speedup is also out of band (refresh the
        // baseline so the gain is locked in).
        let mut fast = Metrics::new();
        fast.insert("t/fast".into(), m(400.0, "ns"));
        let mut base1 = Metrics::new();
        base1.insert("t/fast".into(), m(1000.0, "ns"));
        assert!(failed(&compare(&fast, &base1, 0.25)));
    }

    #[test]
    fn tail_latencies_get_a_doubled_band() {
        let mut base = Metrics::new();
        base.insert("t/p50".into(), m(1000.0, "ns"));
        base.insert("t/p99".into(), m(1000.0, "tail-ns"));
        let mut pr = Metrics::new();
        pr.insert("t/p50".into(), m(1400.0, "ns")); // +40%: fail at ±25%
        pr.insert("t/p99".into(), m(1400.0, "tail-ns")); // +40%: ok at ±50%
        let verdicts = compare(&pr, &base, 0.25);
        let get = |id: &str| verdicts.iter().find(|(i, _)| i == id).unwrap().1.clone();
        assert!(matches!(get("t/p50"), Verdict::OutOfBand { .. }));
        assert_eq!(get("t/p99"), Verdict::Ok);
        // The doubled band still gates: +60% tail regressions fail.
        let mut worse = Metrics::new();
        worse.insert("t/p99".into(), m(1600.0, "tail-ns"));
        let mut base1 = Metrics::new();
        base1.insert("t/p99".into(), m(1000.0, "tail-ns"));
        assert!(failed(&compare(&worse, &base1, 0.25)));
    }

    #[test]
    fn counters_within_any_positive_value_pass() {
        let mut base = Metrics::new();
        base.insert("t/blocks".into(), m(50.0, "count"));
        let mut pr = Metrics::new();
        pr.insert("t/blocks".into(), m(3.0, "count"));
        assert!(!failed(&compare(&pr, &base, 0.25)));
    }
}
