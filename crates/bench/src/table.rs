//! Minimal aligned-table printer for experiment output.

/// A column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a duration in milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["size", "ms"]);
        t.row(vec!["1".into(), "10.00".into()]);
        t.row(vec!["100".into(), "3.50".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("10.00"));
        // Right-aligned under the 4-wide "size" header.
        assert!(lines[3].starts_with(" 100"), "{r}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
