//! One-experiment-point measurement: generate the corpus, build indices,
//! run the selected systems, report averaged wall-clock per phase.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vxv_baselines::{BaselineEngine, GtpEngine};
use vxv_core::{generate_qpts, KeywordMode, SearchRequest, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams};
use vxv_xml::{Corpus, DiskStore};
use vxv_xquery::parse_query;

/// Which comparison systems to run alongside Efficient.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemSet {
    pub baseline: bool,
    pub gtp: bool,
    pub proj: bool,
}

impl SystemSet {
    /// Efficient only (Figs. 14–20).
    pub fn efficient_only() -> Self {
        SystemSet::default()
    }

    /// Every system (Fig. 13).
    pub fn all() -> Self {
        SystemSet { baseline: true, gtp: true, proj: true }
    }
}

/// Harness options.
#[derive(Clone, Copy, Debug)]
pub struct MeasureOptions {
    /// Repetitions to average (the paper used 5).
    pub runs: usize,
    pub systems: SystemSet,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions { runs: runs_from_env(), systems: SystemSet::efficient_only() }
    }
}

/// `VXV_RUNS` (default 3).
pub fn runs_from_env() -> usize {
    std::env::var("VXV_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// `VXV_BASE_KB` (default 512): the base corpus size the sweeps scale.
pub fn base_kb_from_env() -> u64 {
    std::env::var("VXV_BASE_KB").ok().and_then(|v| v.parse().ok()).unwrap_or(512)
}

/// The simulated storage device for base-data accesses.
///
/// The defaults are calibrated against the paper's own measurements, not
/// raw device specs: Proj — a pure read+parse+project pass — processed
/// 100 MB in ~15 s on the paper's testbed, i.e. document storage streamed
/// at ~7 MB/s effective (I/O plus page materialization on a 2007 P4).
/// We charge ~8 MB/s with ~0.4 ms positioning per discontiguous access,
/// which reproduces the paper's relative costs between query-proportional
/// index work and data-proportional base access on modern hardware.
/// Tune with `VXV_DISK_LAT_US` / `VXV_DISK_MBPS`; set both to 0 to
/// measure raw page-cache speed.
pub fn cost_model_from_env() -> Option<vxv_xml::diskstore::CostModel> {
    let lat_us: u64 =
        std::env::var("VXV_DISK_LAT_US").ok().and_then(|v| v.parse().ok()).unwrap_or(400);
    let mbps: f64 = std::env::var("VXV_DISK_MBPS").ok().and_then(|v| v.parse().ok()).unwrap_or(8.0);
    if lat_us == 0 && mbps == 0.0 {
        return None;
    }
    let page_bytes: u64 =
        std::env::var("VXV_DISK_PAGE").ok().and_then(|v| v.parse().ok()).unwrap_or(2048);
    Some(vxv_xml::diskstore::CostModel {
        read_latency: Duration::from_micros(lat_us),
        bytes_per_sec: if mbps > 0.0 { mbps * 1024.0 * 1024.0 } else { f64::INFINITY },
        seq_window: 256 * 1024,
        page_bytes,
    })
}

/// Averaged results of one experiment point.
#[derive(Clone, Debug, Default)]
pub struct Measurement {
    /// Actual generated corpus size in bytes.
    pub corpus_bytes: u64,
    /// Efficient pipeline, phase breakdown (Fig. 14's bars).
    pub efficient: PhaseAverages,
    /// Baseline total (materialize + search), if run.
    pub baseline: Option<Duration>,
    /// GTP structural-join + base-access phase, if run.
    pub gtp: Option<Duration>,
    /// Proj projection phase, if run.
    pub proj: Option<Duration>,
    /// |V(D)| of the view.
    pub view_size: usize,
    /// Elements matching the keyword semantics.
    pub matching: usize,
    /// Total bytes of all generated PDTs.
    pub pdt_bytes: u64,
    /// Base-storage fetches spent materializing top-k.
    pub fetches: u64,
    /// Work avoided by score-bounded top-k pruning in one search of
    /// this point (pruning is on by default; see
    /// `SearchRequest::prune`).
    pub pruning: vxv_core::PruneStats,
    /// Aggregate engine report (segment count, work counters and
    /// footprints summed across segments) — one read via
    /// `ViewSearchEngine::stats()` instead of per-index peeking.
    pub engine: vxv_core::EngineStats,
}

/// Phase averages for the Efficient pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseAverages {
    pub pdt: Duration,
    pub evaluator: Duration,
    pub post: Duration,
}

impl PhaseAverages {
    /// Sum of phases.
    pub fn total(&self) -> Duration {
        self.pdt + self.evaluator + self.post
    }
}

fn avg(total: Duration, runs: usize) -> Duration {
    total / runs.max(1) as u32
}

/// Generate the corpus for `params`, persist it to disk-backed document
/// storage, run the selected systems `opts.runs` times each, and average.
pub fn measure_point(params: &ExperimentParams, opts: &MeasureOptions) -> Measurement {
    let corpus = Arc::new(generate(&params.generator_config()));
    measure_on_corpus(&corpus, params, opts)
}

/// Where corpora are spilled for the experiments (`VXV_STORE_DIR`,
/// default under the system temp directory).
fn store_dir() -> std::path::PathBuf {
    std::env::var("VXV_STORE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join(format!("vxv-exp-{}", std::process::id())))
}

/// As [`measure_point`] over a pre-generated corpus (lets sweeps reuse
/// data across points that only vary the query).
///
/// The corpus is persisted to disk first: base documents live in document
/// storage, as in the paper's system, and each strategy pays for exactly
/// the base-data accesses it performs. Index construction is not timed
/// (indices exist before queries arrive).
pub fn measure_on_corpus(
    corpus: &Arc<Corpus>,
    params: &ExperimentParams,
    opts: &MeasureOptions,
) -> Measurement {
    let dir = store_dir();
    let mut store = DiskStore::persist(corpus, &dir).expect("persist corpus");
    store.set_cost_model(cost_model_from_env());
    let store = Arc::new(store);
    let view = params.view();
    let keywords = params.keywords();
    let engine: ViewSearchEngine<DiskStore> =
        ViewSearchEngine::new(Arc::clone(corpus)).with_source(Arc::clone(&store));
    // View analysis is paid once, like index construction: plans exist
    // before queries arrive.
    let prepared = engine.prepare(&view).expect("prepare view");
    let request = SearchRequest::new(&keywords).top_k(params.top_k).mode(KeywordMode::Conjunctive);

    let mut m = Measurement {
        corpus_bytes: corpus.byte_size(),
        engine: engine.stats(),
        ..Measurement::default()
    };

    let mut acc = (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    for _ in 0..opts.runs {
        store.reset_stats(); // cold buffer pool per query, per the paper's
                             // larger-than-memory regime
        let out = prepared.search(&request).expect("efficient search");
        let timings = out.timings.expect("timings requested");
        acc.0 += timings.pdt;
        acc.1 += timings.evaluator;
        acc.2 += timings.post;
        m.view_size = out.view_size;
        m.matching = out.matching;
        m.pdt_bytes = out.pdt_bytes();
        m.fetches = out.fetches;
        m.pruning = out.pruning;
    }
    m.efficient = PhaseAverages {
        pdt: avg(acc.0, opts.runs),
        evaluator: avg(acc.1, opts.runs),
        post: avg(acc.2, opts.runs),
    };

    if opts.systems.baseline {
        let mut total = Duration::ZERO;
        for _ in 0..opts.runs {
            store.reset_stats();
            let out = BaselineEngine::search_from_store(
                &store,
                &view,
                &keywords,
                params.top_k,
                KeywordMode::Conjunctive,
            )
            .expect("baseline search");
            total += out.timings.total();
        }
        m.baseline = Some(avg(total, opts.runs));
    }

    if opts.systems.gtp {
        let gtp = GtpEngine::new(corpus).with_store(&store);
        let query = parse_query(&view).expect("view parses");
        let qpts = generate_qpts(&query).expect("qpts");
        let kws: Vec<String> = keywords.iter().map(|s| s.to_string()).collect();
        let mut total = Duration::ZERO;
        for _ in 0..opts.runs {
            store.reset_stats();
            for qpt in &qpts {
                let (_, _, elapsed) = gtp.build_pdt(qpt, &kws);
                total += elapsed;
            }
        }
        m.gtp = Some(avg(total, opts.runs));
    }

    if opts.systems.proj {
        let query = parse_query(&view).expect("view parses");
        let qpts = generate_qpts(&query).expect("qpts");
        let mut total = Duration::ZERO;
        for _ in 0..opts.runs {
            store.reset_stats();
            let t0 = Instant::now();
            for qpt in &qpts {
                // PROJ scans the stored document: read + parse + project.
                let doc = store.read_document(&qpt.doc_name).expect("doc");
                let (_, _, _) = vxv_baselines::project_for_qpt(&doc, qpt);
            }
            total += t0.elapsed();
        }
        m.proj = Some(avg(total, opts.runs));
    }

    let _ = std::fs::remove_dir_all(&dir);
    m
}

/// Standard header line every experiment binary prints.
pub fn print_preamble(figure: &str, what: &str) {
    println!("== {figure}: {what}");
    println!(
        "   (base corpus {} KB; {} run(s) averaged; override with VXV_BASE_KB / VXV_RUNS)",
        base_kb_from_env(),
        runs_from_env()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_point_runs_all_systems_on_a_tiny_corpus() {
        let params = ExperimentParams { data_bytes: 48 * 1024, ..ExperimentParams::default() };
        let opts = MeasureOptions { runs: 1, systems: SystemSet::all() };
        let m = measure_point(&params, &opts);
        assert!(m.corpus_bytes > 0);
        assert!(m.view_size > 0);
        assert!(m.baseline.is_some() && m.gtp.is_some() && m.proj.is_some());
        assert!(m.efficient.total() > Duration::ZERO);
        assert!(m.pdt_bytes > 0);
        assert_eq!(m.engine.segments, 1);
        assert_eq!(m.engine.documents, 5, "the INEX workload generates five documents");
        assert!(m.engine.path_footprint.entries > 0);
        assert!(m.engine.inverted_footprint.compressed_bytes > 0);
    }
}
