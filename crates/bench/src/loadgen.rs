//! Zipfian closed-loop load generator for the TCP serving tier.
//!
//! `N` workers each own one [`vxv_server::Client`] connection and issue
//! requests back-to-back (closed loop: a worker never has more than one
//! request outstanding). View and keyword choice are Zipf-skewed — a
//! few hot views absorb most of the traffic, as in any real serving
//! workload — and a fixed think time separates consecutive requests.
//!
//! Every response is classified by its typed wire outcome:
//!
//! * **completed** — `ok search …`; the end-to-end latency is recorded.
//! * **shed** — `error overloaded retry-after-ms=N`; the worker honors
//!   the hint and backs off for `N` ms before its next request, so the
//!   measured shed *rate* reflects the server's pacing, not a tight
//!   client-side retry storm.
//! * **deadline_exceeded** — the wire deadline expired in queue or
//!   mid-execution.
//! * **other_errors** — anything else (kept, never panicked on, and
//!   surfaced via [`LoadReport::last_error`] for debugging).
//!
//! The aggregate [`LoadReport`] exposes p50/p99/p999 latency and the
//! shed rate — the two numbers the bench gate tracks for this tier.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use vxv_server::Client;

/// Shape of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop workers (one connection each).
    pub workers: usize,
    /// Requests each worker issues before disconnecting.
    pub requests_per_worker: usize,
    /// Pause between a response and the worker's next request.
    pub think_time: Duration,
    /// Zipf exponent for view *and* keyword choice (`0.0` = uniform;
    /// `~1.0` = classic heavy skew).
    pub zipf_exponent: f64,
    /// Wire deadline attached to every request, if any.
    pub deadline_ms: Option<u64>,
    /// `top=` cut depth sent with every request.
    pub top: usize,
    /// Tenant all requests run as.
    pub tenant: String,
    /// Base RNG seed; worker `w` derives its own stream from it, so a
    /// run is deterministic in *what* it sends (never in timing).
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            workers: 4,
            requests_per_worker: 25,
            think_time: Duration::from_millis(1),
            zipf_exponent: 1.07,
            deadline_ms: None,
            top: 10,
            tenant: "public".into(),
            seed: 0x5eed,
        }
    }
}

/// Zipf(s) sampler over ranks `0..n` via inverse CDF + binary search.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the cumulative distribution for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank in `0..n` (rank 0 is the hottest).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let x = rng.gen::<f64>();
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

/// Aggregated outcome of a load-generation run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests answered `ok search`.
    pub completed: u64,
    /// Requests answered `error overloaded` (admission shed).
    pub shed: u64,
    /// Requests answered `error deadline-exceeded`.
    pub deadline_exceeded: u64,
    /// Any other error outcome.
    pub other_errors: u64,
    /// End-to-end latency of each *completed* request, in nanoseconds.
    pub latencies_ns: Vec<u64>,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Most recent non-overload, non-deadline error, for diagnostics.
    pub last_error: Option<String>,
}

impl LoadReport {
    /// Total requests issued.
    pub fn issued(&self) -> u64 {
        self.completed + self.shed + self.deadline_exceeded + self.other_errors
    }

    /// Fraction of issued requests that were load-shed.
    pub fn shed_rate(&self) -> f64 {
        let issued = self.issued();
        if issued == 0 {
            0.0
        } else {
            self.shed as f64 / issued as f64
        }
    }

    /// Completed requests per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Nearest-rank percentile of completed-request latency, in
    /// nanoseconds. `q` is a fraction in `(0, 1]`; returns 0 when no
    /// request completed.
    pub fn percentile_ns(&self, q: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1] as f64
    }

    /// Median completed-request latency (ns).
    pub fn p50_ns(&self) -> f64 {
        self.percentile_ns(0.50)
    }

    /// 99th-percentile completed-request latency (ns).
    pub fn p99_ns(&self) -> f64 {
        self.percentile_ns(0.99)
    }

    /// 99.9th-percentile completed-request latency (ns).
    pub fn p999_ns(&self) -> f64 {
        self.percentile_ns(0.999)
    }

    fn merge(&mut self, other: LoadReport) {
        self.completed += other.completed;
        self.shed += other.shed;
        self.deadline_exceeded += other.deadline_exceeded;
        self.other_errors += other.other_errors;
        self.latencies_ns.extend(other.latencies_ns);
        if other.last_error.is_some() {
            self.last_error = other.last_error;
        }
    }
}

/// Run the closed loop against a live server: every worker draws its
/// view from `views` and its keyword from `keywords` (both Zipf-ranked
/// hottest-first), issues `requests_per_worker` searches, and the
/// per-worker tallies are merged into one [`LoadReport`].
///
/// The views must already be registered for `config.tenant`; an unknown
/// view shows up as `other_errors`, never a panic.
pub fn run(
    addr: SocketAddr,
    views: &[String],
    keywords: &[String],
    config: &LoadgenConfig,
) -> LoadReport {
    assert!(!views.is_empty() && !keywords.is_empty(), "loadgen needs views and keywords");
    let view_dist = Zipf::new(views.len(), config.zipf_exponent);
    let keyword_dist = Zipf::new(keywords.len(), config.zipf_exponent);
    let started = Instant::now();
    let mut report = LoadReport::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.workers)
            .map(|w| {
                let (view_dist, keyword_dist) = (&view_dist, &keyword_dist);
                scope.spawn(move || {
                    worker(addr, views, keywords, view_dist, keyword_dist, config, w)
                })
            })
            .collect();
        for handle in handles {
            report.merge(handle.join().expect("loadgen worker panicked"));
        }
    });
    report.wall = started.elapsed();
    report
}

fn worker(
    addr: SocketAddr,
    views: &[String],
    keywords: &[String],
    view_dist: &Zipf,
    keyword_dist: &Zipf,
    config: &LoadgenConfig,
    index: usize,
) -> LoadReport {
    // Distinct, deterministic stream per worker: splitmix increments of
    // the base seed keep streams uncorrelated without a second RNG.
    let mut rng = StdRng::seed_from_u64(
        config.seed.wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    );
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            return LoadReport {
                other_errors: config.requests_per_worker as u64,
                last_error: Some(format!("connect: {e}")),
                ..LoadReport::default()
            };
        }
    };
    let mut options: Vec<String> = vec![format!("top={}", config.top)];
    if let Some(ms) = config.deadline_ms {
        options.push(format!("deadline-ms={ms}"));
    }
    let options: Vec<&str> = options.iter().map(String::as_str).collect();

    let mut report = LoadReport::default();
    for _ in 0..config.requests_per_worker {
        let view = views[view_dist.sample(&mut rng)].as_str();
        let keyword = keywords[keyword_dist.sample(&mut rng)].as_str();
        let start = Instant::now();
        match client.search(&config.tenant, view, &options, &[keyword]) {
            Ok(_) => {
                report.completed += 1;
                report.latencies_ns.push(start.elapsed().as_nanos() as u64);
            }
            Err(e) if e.is_overloaded() => {
                report.shed += 1;
                // Honor the server's pacing hint (bounded, so a
                // misconfigured hint can't stall the run).
                if let Some(ms) = e.fault().and_then(|f| f.retry_after_ms) {
                    std::thread::sleep(Duration::from_millis(ms.min(50)));
                }
            }
            Err(e) if e.is_deadline_exceeded() => report.deadline_exceeded += 1,
            Err(e) => {
                report.other_errors += 1;
                report.last_error = Some(e.to_string());
            }
        }
        if !config.think_time.is_zero() {
            std::thread::sleep(config.think_time);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vxv_core::{ViewCatalog, ViewSearchEngine};
    use vxv_server::{serve, ServerConfig};
    use vxv_xml::Corpus;

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let dist = Zipf::new(16, 1.07);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 16];
        for _ in 0..20_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] * 4, "{counts:?}");
        assert!(counts[0] > counts[15] * 8, "{counts:?}");
        // Uniform at s=0: the head cannot dominate.
        let flat = Zipf::new(16, 0.0);
        let mut counts = [0u32; 16];
        for _ in 0..20_000 {
            counts[flat.sample(&mut rng)] += 1;
        }
        assert!(counts[0] < counts[15] * 2, "{counts:?}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let report = LoadReport {
            latencies_ns: (1..=100).rev().collect(),
            completed: 100,
            ..LoadReport::default()
        };
        assert_eq!(report.p50_ns(), 50.0);
        assert_eq!(report.p99_ns(), 99.0);
        assert_eq!(report.p999_ns(), 100.0);
        assert_eq!(LoadReport::default().p99_ns(), 0.0);
    }

    #[test]
    fn closed_loop_completes_cleanly_at_capacity() {
        let mut corpus = Corpus::new();
        corpus
            .add_parsed(
                "books.xml",
                "<books>\
                   <book><title>xml keyword search</title></book>\
                   <book><title>xml databases</title></book>\
                 </books>",
            )
            .unwrap();
        let catalog = Arc::new(ViewCatalog::new(ViewSearchEngine::new(corpus)));
        let view = "for $b in fn:doc(books.xml)/books/book return <hit> { $b/title } </hit>";
        catalog.register("hot", view).unwrap();
        catalog.register("cold", view).unwrap();
        let server = serve(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap();

        let config = LoadgenConfig {
            workers: 2,
            requests_per_worker: 5,
            think_time: Duration::ZERO,
            ..LoadgenConfig::default()
        };
        let report = run(
            server.addr(),
            &["hot".into(), "cold".into()],
            &["xml".into(), "databases".into(), "search".into()],
            &config,
        );
        assert_eq!(report.last_error, None);
        assert_eq!((report.completed, report.issued()), (10, 10));
        assert_eq!(report.shed_rate(), 0.0);
        assert_eq!(report.latencies_ns.len(), 10);
        assert!(report.p50_ns() > 0.0 && report.p99_ns() >= report.p50_ns());
        server.shutdown();
    }
}
