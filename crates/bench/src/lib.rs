//! # vxv-bench — experiment harness
//!
//! Shared machinery for the `exp_fig13` … `exp_fig20` binaries, which
//! regenerate every figure of the paper's evaluation (§5), plus the
//! criterion micro-benchmarks.
//!
//! Each binary prints a table with the same axes and series as the paper's
//! figure. Sizes are scaled to the host (`VXV_BASE_KB` overrides the base
//! corpus size, `VXV_RUNS` the repetitions; the paper averaged 5 runs).

pub mod gate;
pub mod harness;
pub mod loadgen;
pub mod table;

pub use harness::{measure_point, MeasureOptions, Measurement, SystemSet};
pub use table::Table;
