//! Positional query terms (phrase / proximity / prefix / boosts) on the
//! INEX workload, against the same pruned-vs-exact contract the plain
//! bag-of-words path is held to.
//!
//! Besides the criterion timings, the benchmark **asserts** (a) every
//! term shape answers byte-identically on the pruned and exact paths
//! (positional terms resolve exactly inside the estimate pass, so
//! pruning soundness extends to them by construction — this catches a
//! regression that breaks that), (b) the phrase actually matches and
//! obeys the containment ladder phrase ⊆ near(w) ⊆ near(w′>w), (c)
//! block-max pruning still engages under non-uniform boosts, and (d)
//! phrase probes decode position bytes while word probes decode none.
//! CI runs this in quick mode and feeds the medians and counters into
//! the `bench_gate` regression check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use vxv_core::{PreparedView, SearchRequest, SearchResponse, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams};
use vxv_xml::Corpus;

struct Setup {
    engine: ViewSearchEngine<Corpus>,
    view: PreparedView<Corpus>,
    /// The plain bag-of-words request the positional shapes derive from.
    bag: SearchRequest,
    phrase: SearchRequest,
    near: SearchRequest,
    prefix: SearchRequest,
    boosted: SearchRequest,
}

fn setup(kb: u64, top_k: usize) -> Setup {
    // Low-selectivity (frequent) keywords: both words are planted at
    // ~6% per position, so the adjacent bigram occurs often enough for
    // a phrase over them to have real matches, and the inverted lists
    // are long enough for pruning and position decoding to matter.
    let params = ExperimentParams {
        data_bytes: kb * 1024,
        top_k,
        num_joins: 1,
        nesting: 2,
        elem_size: 3,
        selectivity: vxv_inex::Selectivity::Low,
        ..ExperimentParams::default()
    };
    let corpus = generate(&params.generator_config());
    let engine = ViewSearchEngine::new(corpus);
    let view = engine.prepare(&params.view()).expect("prepare view");
    let kws = params.keywords();
    let (a, b) = (kws[0], kws[1]);
    let base = SearchRequest::new(kws).top_k(params.top_k).materialize(false);
    Setup {
        engine,
        view,
        bag: base.clone(),
        phrase: positional(&base, |r| r.phrase([&a, &b])),
        near: positional(&base, |r| r.near(4, [&a, &b])),
        // "con*" unions the planted medium keyword "control" with the
        // ~1/16th of the background vocabulary whose first syllable is
        // "con" — a genuine multi-word dictionary-range expansion.
        prefix: positional(&base, |r| r.prefix("con")),
        // Non-uniform per-keyword weights: 0.25 on the first word, 4.0
        // on the second.
        boosted: positional(&base, |r| {
            r.term(vxv_core::QueryTerm::Word(a.to_string()))
                .boost(0.25)
                .term(vxv_core::QueryTerm::Word(b.to_string()))
                .boost(4.0)
        }),
    }
}

/// Replace `base`'s word terms with one positional term built by `f`,
/// keeping k / materialize / mode.
fn positional(
    base: &SearchRequest,
    f: impl FnOnce(SearchRequest) -> SearchRequest,
) -> SearchRequest {
    f(SearchRequest::new(Vec::<String>::new())).top_k(base.k()).materialize(false)
}

fn assert_identical(a: &SearchResponse, b: &SearchResponse) {
    assert_eq!(a.view_size, b.view_size, "view_size");
    assert_eq!(a.matching, b.matching, "matching");
    assert_eq!(a.idf.len(), b.idf.len());
    for (x, y) in a.idf.iter().zip(&b.idf) {
        assert_eq!(x.to_bits(), y.to_bits(), "idf bits");
    }
    assert_eq!(a.hits.len(), b.hits.len(), "hit count");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits at rank {}", x.rank);
        assert_eq!(x.tf, y.tf, "tf at rank {}", x.rank);
        assert_eq!(x.byte_len, y.byte_len, "byte_len at rank {}", x.rank);
    }
}

/// Seconds per search over alternating measurement windows (drift on a
/// shared machine hits both paths equally).
fn secs_per_search(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (f64, f64) {
    let window = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        let mut iters = 0u32;
        while iters < 5 || t0.elapsed().as_millis() < 150 {
            f();
            iters += 1;
        }
        (iters, t0.elapsed().as_secs_f64())
    };
    let (mut ia, mut ta, mut ib, mut tb) = (0u32, 0f64, 0u32, 0f64);
    for _ in 0..3 {
        let (i, t) = window(a);
        ia += i;
        ta += t;
        let (i, t) = window(b);
        ib += i;
        tb += t;
    }
    (ta / ia as f64, tb / ib as f64)
}

fn bench_positional_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("positional_search");
    {
        let kb = 2048u64;
        let s = setup(kb, 10);

        // Contract 1: pruned == exact, byte for byte, for every term
        // shape at several cut depths.
        for req in [&s.bag, &s.phrase, &s.near, &s.prefix, &s.boosted] {
            for k in [1usize, 10, usize::MAX] {
                let exact = s.view.search(&req.clone().top_k(k).prune(false)).expect("exact");
                let pruned = s.view.search(&req.clone().top_k(k)).expect("pruned");
                assert_identical(&exact, &pruned);
            }
        }

        // Contract 2: the phrase matches, and widening the constraint
        // only adds matches: phrase ⊆ near(4) ⊆ near(64) ⊆ bag.
        let bag = s.view.search(&s.bag).expect("bag");
        let phrase = s.view.search(&s.phrase).expect("phrase");
        let near4 = s.view.search(&s.near).expect("near");
        let near64 = s.view.search(&positional(&s.bag, |r| {
            r.near(64, [s.bag.keywords()[0].as_str(), s.bag.keywords()[1].as_str()])
        }));
        let near64 = near64.expect("near64");
        assert!(phrase.matching > 0, "the planted bigram must occur in the view");
        assert!(phrase.matching <= near4.matching, "phrase ⊆ near(4)");
        assert!(near4.matching <= near64.matching, "near(4) ⊆ near(64)");
        assert!(near64.matching <= bag.matching, "near(64) ⊆ conjunctive bag");
        criterion::report_metric(
            "positional_search/phrase_matching",
            phrase.matching as f64,
            "count",
        );

        // Contract 3: block-max pruning still engages when boosts skew
        // the per-keyword bounds (the estimator scales bounds by the
        // same factors the exact scorer uses).
        let boosted = s.view.search(&s.boosted).expect("boosted");
        assert!(
            boosted.pruning.blocks_pruned > 0,
            "boosted bounds must still prune on the INEX workload: {:?}",
            boosted.pruning
        );
        criterion::report_metric(
            "positional_search/boosted_blocks_pruned",
            boosted.pruning.blocks_pruned as f64,
            "count",
        );

        // Contract 4: phrase probes decode position bytes; word probes
        // never touch them (lazy decoding — the bag path pays nothing
        // for the positions the v5 format carries).
        s.engine.reset_stats();
        s.view.search(&s.bag).expect("bag");
        assert_eq!(
            s.engine.stats().inverted.positions_bytes,
            0,
            "word terms must not decode position blocks"
        );
        s.view.search(&s.phrase).expect("phrase");
        let pos_bytes = s.engine.stats().inverted.positions_bytes;
        assert!(pos_bytes > 0, "phrase probes decode position blocks");
        criterion::report_metric(
            "positional_search/phrase_positions_bytes",
            pos_bytes as f64,
            "count",
        );

        // Within-run cost of the positional constraint: phrase time
        // over bag time on alternating windows. Hardware-independent,
        // so the gate can band it; a blow-up here means the position
        // intersection stopped being block-lazy.
        let (phrase_spq, bag_spq) = secs_per_search(
            &mut || {
                s.view.search(&s.phrase).expect("phrase");
            },
            &mut || {
                s.view.search(&s.bag).expect("bag");
            },
        );
        println!(
            "positional_search/{kb}KB k=10: phrase {:.3} ms/search, bag {:.3} ms/search ({:.2}x)",
            phrase_spq * 1e3,
            bag_spq * 1e3,
            phrase_spq / bag_spq,
        );
        criterion::report_metric(
            "positional_search/phrase_over_bag",
            phrase_spq / bag_spq,
            "ratio",
        );

        group.bench_with_input(BenchmarkId::new("phrase_k10", kb), &s, |b, s| {
            b.iter(|| s.view.search(&s.phrase).expect("phrase"))
        });
        group.bench_with_input(BenchmarkId::new("near4_k10", kb), &s, |b, s| {
            b.iter(|| s.view.search(&s.near).expect("near"))
        });
        group.bench_with_input(BenchmarkId::new("prefix_k10", kb), &s, |b, s| {
            b.iter(|| s.view.search(&s.prefix).expect("prefix"))
        });
        group.bench_with_input(BenchmarkId::new("boosted_k10", kb), &s, |b, s| {
            b.iter(|| s.view.search(&s.boosted).expect("boosted"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_positional_search);
criterion_main!(benches);
