//! Real-time append latency: the acknowledged path (WAL framing,
//! memtable indexing, snapshot publish) measured per document over a
//! fixed 512-append run, with periodic seals included — the tail a
//! serving tier actually sees, not just the happy median.
//!
//! Reported metrics (fed into the `bench_gate` regression check):
//! - `ingest_latency/append_p50` (`ns`) — median acknowledged append.
//! - `ingest_latency/append_p99` (`tail-ns`, wide band) — worst-case
//!   appends, dominated by seal/publish rounds.
//! - `ingest_latency/flushes` (`count`) — seals over the run; doc sizes
//!   and the byte threshold are fixed, so this is deterministic and
//!   pins the seal cadence itself.
//!
//! fsync is off here (the WAL is still written, just not flushed):
//! per-record fsync measures the filesystem, not the engine, and is
//! printed for reference without gating.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use vxv_core::{FsyncPolicy, SearchRequest, ViewSearchEngine, WriteConfig};
use vxv_xml::Corpus;

const DOCS: usize = 512;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vxv-bench-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn doc_xml(i: usize) -> String {
    format!(
        "<books><book><isbn>{i}</isbn><title>xml search wave {} entry {i}</title>\
         <year>{}</year></book></books>",
        i % 7,
        1990 + (i % 16)
    )
}

fn live_engine(dir: &std::path::Path, fsync: FsyncPolicy) -> ViewSearchEngine<Corpus> {
    let mut corpus = Corpus::new();
    corpus.add_parsed("books.xml", "<books><book><title>seed</title></book></books>").unwrap();
    let engine = ViewSearchEngine::new(corpus);
    engine
        .enable_writes(
            dir.join(vxv_index::wal::WAL_FILE),
            WriteConfig {
                fsync,
                // Seal roughly every 64 appends so the measured run
                // includes the seal/publish cost, not just memtable
                // growth.
                memtable_max_bytes: 8 << 10,
                compact_interval: None,
                ..WriteConfig::default()
            },
        )
        .unwrap();
    engine
}

/// Run `DOCS` single-doc appends, returning per-append nanos (sorted)
/// and the flush count.
fn measured_run(fsync: FsyncPolicy, tag: &str) -> (Vec<f64>, u64) {
    let dir = temp_dir(tag);
    let engine = live_engine(&dir, fsync);
    let mut lat = Vec::with_capacity(DOCS);
    for i in 0..DOCS {
        let name = format!("doc{i}.xml");
        let xml = doc_xml(i);
        let t0 = Instant::now();
        engine.append([(name, xml)]).unwrap();
        lat.push(t0.elapsed().as_nanos() as f64);
    }
    let stats = engine.stats().writes;
    assert_eq!(stats.wal_appends, DOCS as u64);

    // The run is real: the last append is searchable pre-flush, and the
    // log replays every acknowledged record.
    let out = engine
        .search_once(
            &format!(
                "for $b in fn:doc(doc{}.xml)/books//book return <h> {{ $b/title }} </h>",
                DOCS - 1
            ),
            &SearchRequest::new(["xml"]),
        )
        .unwrap();
    assert_eq!(out.hits.len(), 1);
    let replay = vxv_index::wal::replay(&dir.join(vxv_index::wal::WAL_FILE)).unwrap();
    assert_eq!(replay.records, DOCS as u64);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);

    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (lat, stats.flushes)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    sorted[((sorted.len() as f64 * p) as usize).min(sorted.len() - 1)]
}

fn bench_ingest_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_latency");
    // Warm-up run absorbs cold-cache effects, then the measured run.
    let _ = measured_run(FsyncPolicy::Never, "warmup");
    let (lat, flushes) = measured_run(FsyncPolicy::Never, "measured");
    let p50 = percentile(&lat, 0.50);
    let p99 = percentile(&lat, 0.99);
    println!(
        "ingest_latency: {DOCS} appends, p50 {:.1} us, p99 {:.1} us, {flushes} flush(es)",
        p50 / 1e3,
        p99 / 1e3
    );
    criterion::report_metric("ingest_latency/append_p50", p50, "ns");
    criterion::report_metric("ingest_latency/append_p99", p99, "tail-ns");
    criterion::report_metric("ingest_latency/flushes", flushes as f64, "count");

    // Reference only (filesystem-dependent, not gated): what per-record
    // durability costs on this machine.
    let (durable, _) = measured_run(FsyncPolicy::PerRecord, "durable");
    println!(
        "ingest_latency: per-record fsync p50 {:.1} us ({:.1}x the unsynced path)",
        percentile(&durable, 0.50) / 1e3,
        percentile(&durable, 0.50) / p50.max(1.0)
    );
    group.finish();
}

criterion_group!(benches, bench_ingest_latency);
criterion_main!(benches);
