//! Criterion micro-benchmarks for PDT construction: the index-only
//! streaming sweep vs the base-data oracle vs GTP's structural joins, plus
//! the probe phase alone (ablating the paper's two claimed advantages:
//! path-index probes instead of structural joins, and index-side value
//! retrieval instead of base access).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vxv_baselines::GtpEngine;
use vxv_core::generate::{generate_pdt, generate_pdt_from_lists, DocMeta};
use vxv_core::oracle::oracle_pdt;
use vxv_core::prepare::prepare_lists;
use vxv_core::{generate_qpts, Qpt};
use vxv_index::{InvertedIndex, PathIndex};
use vxv_inex::{generate, ExperimentParams};
use vxv_xml::Corpus;
use vxv_xquery::parse_query;

struct Setup {
    corpus: Corpus,
    qpt: Qpt,
    path_index: PathIndex,
    inverted: InvertedIndex,
    keywords: Vec<String>,
    meta: DocMeta,
}

fn setup(kb: u64) -> Setup {
    let params = ExperimentParams { data_bytes: kb * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let query = parse_query(&params.view()).unwrap();
    let qpts = generate_qpts(&query).unwrap();
    let qpt = qpts.into_iter().find(|q| q.doc_name == "inex.xml").unwrap();
    let path_index = PathIndex::build(&corpus);
    let inverted = InvertedIndex::build(&corpus);
    let keywords: Vec<String> = params.keywords().iter().map(|s| s.to_string()).collect();
    let doc = corpus.doc("inex.xml").unwrap();
    let root = doc.root().unwrap();
    let meta = DocMeta {
        name: "inex.xml".into(),
        root_tag: doc.node_tag(root).to_string(),
        root_ordinal: doc.node(root).dewey.components()[0],
        segment: 0,
    };
    Setup { corpus, qpt, path_index, inverted, keywords, meta }
}

fn bench_pdt_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdt_construction");
    for kb in [128u64, 512] {
        let s = setup(kb);
        group.bench_with_input(BenchmarkId::new("efficient_sweep", kb), &s, |b, s| {
            b.iter(|| generate_pdt(&s.qpt, &s.path_index, &s.inverted, &s.keywords, &s.meta))
        });
        group.bench_with_input(BenchmarkId::new("prepare_lists_only", kb), &s, |b, s| {
            b.iter(|| prepare_lists(&s.qpt, &s.path_index, s.meta.root_ordinal))
        });
        let lists = prepare_lists(&s.qpt, &s.path_index, s.meta.root_ordinal);
        group.bench_with_input(BenchmarkId::new("merge_sweep_only", kb), &s, |b, s| {
            b.iter(|| generate_pdt_from_lists(&s.qpt, &lists, &s.inverted, &s.keywords, &s.meta))
        });
        group.bench_with_input(BenchmarkId::new("gtp_structural_joins", kb), &s, |b, s| {
            let gtp = GtpEngine::new(&s.corpus);
            b.iter(|| gtp.build_pdt(&s.qpt, &s.keywords))
        });
        group.bench_with_input(BenchmarkId::new("oracle_base_scan", kb), &s, |b, s| {
            let doc = s.corpus.doc("inex.xml").unwrap();
            b.iter(|| oracle_pdt(doc, &s.qpt, &s.inverted, &s.keywords))
        });
    }
    group.finish();
}

fn bench_index_probes(c: &mut Criterion) {
    let s = setup(512);
    let mut group = c.benchmark_group("index_probes");
    let pattern = vxv_index::PathPattern::parse("/books//article/fm/au").unwrap();
    group.bench_function("path_lookup_with_values", |b| {
        b.iter(|| s.path_index.lookup(&pattern, &[]))
    });
    let pred = vxv_index::ValuePredicate::Gt("1995".into());
    let year_pattern = vxv_index::PathPattern::parse("/books//article/fm/yr").unwrap();
    group.bench_function("path_lookup_with_predicate", |b| {
        b.iter(|| s.path_index.lookup(&year_pattern, std::slice::from_ref(&pred)))
    });
    let root: vxv_xml::DeweyId = "1".parse().unwrap();
    group.bench_function("inverted_subtree_tf", |b| {
        b.iter(|| s.inverted.subtree_tf("thomas", &root))
    });
    group.finish();
}

criterion_group!(benches, bench_pdt_strategies, bench_index_probes);
criterion_main!(benches);
