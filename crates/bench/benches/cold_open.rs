//! Cold-open microbench: time `IndexBundle::open_mmap` against the
//! eager `IndexBundle::load` on a saved v4 bundle, and **assert** the
//! zero-copy contract — a v4 open decodes no posting bytes at all.
//!
//! The bundle is saved once in setup; each iteration re-opens it from
//! disk the way a cold engine would. Open time for the mapped path
//! should be metadata-only (header, directory, catalog) and independent
//! of posting volume; the owned path additionally copies every section
//! onto the heap. CI runs this benchmark in quick mode against the
//! pinned baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vxv_index::IndexBundle;
use vxv_inex::{generate, ExperimentParams};

fn bench_cold_open(c: &mut Criterion) {
    let mut group = c.benchmark_group("cold_open");
    let kb = 512u64;
    let params = ExperimentParams { data_bytes: kb * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let bundle = IndexBundle::build(&corpus);
    let dir = std::env::temp_dir().join(format!("vxv-cold-open-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let path = bundle.save(&dir).expect("save bundle");
    println!(
        "cold_open/{kb}KB: saved {} B bundle to {}",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display()
    );

    // The zero-copy contract, checked once before timing: a v4 mmap
    // open decodes nothing and maps its posting payload.
    let opened = IndexBundle::open_mmap(&dir).expect("open_mmap");
    let stats = opened.open_stats();
    assert_eq!(stats.format_version, 5, "save must emit v5");
    assert_eq!(stats.bytes_decoded, 0, "v4 open_mmap must decode zero posting bytes");
    drop(opened);

    group.bench_with_input(BenchmarkId::new("open_mmap", kb), &dir, |b, dir| {
        b.iter(|| {
            let bundle = IndexBundle::open_mmap(dir).expect("open_mmap");
            assert_eq!(bundle.open_stats().bytes_decoded, 0);
            bundle.segments.len()
        })
    });
    group.bench_with_input(BenchmarkId::new("load_owned", kb), &dir, |b, dir| {
        b.iter(|| {
            let bundle = IndexBundle::load(dir).expect("load");
            bundle.segments.len()
        })
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_cold_open);
criterion_main!(benches);
