//! Batched block-decode microbench: drain every prepared row stream of
//! the INEX view through cursors, exercising the unrolled varint block
//! decoder and the `DecodeScratch` reuse path with no merge or sweep on
//! top.
//!
//! This is the floor under the streaming merge: regressions here (a
//! dropped unroll, a scratch realloc per block, a bounds check back in
//! the inner loop) surface as a per-entry decode slowdown before they
//! blur into end-to-end timings. CI runs this benchmark in quick mode
//! against the pinned baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vxv_core::prepare::prepare_lists;
use vxv_core::{generate_qpts, Qpt};
use vxv_index::{EntryCursor, PathIndex};
use vxv_inex::{generate, ExperimentParams};
use vxv_xquery::parse_query;

fn setup(kb: u64) -> (Qpt, PathIndex, u32) {
    let params = ExperimentParams { data_bytes: kb * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let query = parse_query(&params.view()).unwrap();
    let qpts = generate_qpts(&query).unwrap();
    let qpt = qpts.into_iter().find(|q| q.doc_name == "inex.xml").unwrap();
    let path_index = PathIndex::build(&corpus);
    let doc = corpus.doc("inex.xml").unwrap();
    let root = doc.root().unwrap();
    let root_ordinal = doc.node(root).dewey.components()[0];
    (qpt, path_index, root_ordinal)
}

fn bench_decode_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_block");
    let kb = 512u64;
    let (qpt, path_index, root_ordinal) = setup(kb);
    let plan = prepare_lists(&qpt, &path_index, root_ordinal);

    let entries: u64 = {
        let mut n = 0u64;
        for (_, node_plan) in &plan.lists {
            for row in &node_plan.rows {
                let mut cur = row.cursor_for_doc(plan.root_ordinal);
                while cur.next().is_some() {
                    n += 1;
                }
            }
        }
        n
    };
    let rows: usize = plan.lists.iter().map(|(_, p)| p.rows.len()).sum();
    println!("decode_block/{kb}KB: {rows} row streams, {entries} entries in doc range");
    assert!(entries > 0, "workload must decode something");

    // Entry-at-a-time drain: per-entry cursor overhead plus the batched
    // block decode underneath.
    group.bench_with_input(BenchmarkId::new("stream_drain", kb), &plan, |b, plan| {
        b.iter(|| {
            let mut total = 0u64;
            for (_, node_plan) in &plan.lists {
                for row in &node_plan.rows {
                    let mut cur = row.cursor_for_doc(plan.root_ordinal);
                    while let Some(e) = cur.next() {
                        total += e.byte_len as u64;
                    }
                }
            }
            total
        })
    });

    // Block-at-a-time drain: the `next_block` bulk path the streaming
    // merge feeds its arena from — no per-entry ID allocation at all.
    let bounds = vxv_index::DocBounds::for_root(plan.root_ordinal);
    group.bench_with_input(BenchmarkId::new("block_drain", kb), &plan, |b, plan| {
        b.iter(|| {
            let mut total = 0u64;
            for (_, node_plan) in &plan.lists {
                for row in &node_plan.rows {
                    let mut cur = row.cursor_in(&bounds);
                    loop {
                        let served = cur.next_block(|_, byte_len| {
                            total += byte_len as u64;
                        });
                        if served == 0 {
                            break;
                        }
                    }
                }
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decode_block);
criterion_main!(benches);
