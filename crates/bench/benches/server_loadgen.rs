//! Closed-loop Zipfian load generation over the loopback serving tier.
//!
//! Two phases, both asserted and both feeding the bench gate:
//!
//! * **Capacity**: default admission limits, a fixed injected service
//!   delay, and a worker pool the server can absorb. Every request must
//!   complete (zero sheds, zero protocol errors) and the p50/p99/p999
//!   latencies are reported — the median as an `ns` metric, the tails
//!   as `tail-ns` (double-width gate band: order statistics of the
//!   noisiest samples). The injected delay anchors the percentiles —
//!   they measure queueing + wire overhead *on top of* a known floor,
//!   so the gate bands track real regressions rather than scheduler
//!   noise.
//! * **Overload**: one execution slot, zero queue depth, eight eager
//!   workers. The server must shed most of the offered load with typed
//!   `retry-after` hints while the admitted trickle still completes.
//!   The shed *rate* is a within-run ratio (hardware-independent), so
//!   the gate bands it directly; shed/completed counts guard against
//!   the shedding path silently disappearing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use vxv_bench::loadgen::{self, LoadgenConfig};
use vxv_core::{ViewCatalog, ViewSearchEngine};
use vxv_inex::{generate, query_keywords, ExperimentParams, Selectivity};
use vxv_server::{serve, AdmissionConfig, ServerConfig};

fn quick() -> bool {
    std::env::var("CRITERION_QUICK").map(|v| v != "0").unwrap_or(false)
}

/// INEX-style corpus with the same Table-1 view registered under
/// several names, so the Zipf view choice exercises real catalog
/// dispatch (hot view ≠ only view).
fn setup(views: &[String]) -> Arc<ViewCatalog> {
    let params = ExperimentParams { data_bytes: 32 * 1024, ..ExperimentParams::default() };
    let catalog = ViewCatalog::new(ViewSearchEngine::new(generate(&params.generator_config())));
    for name in views {
        catalog.register(name, &params.view()).expect("view prepares");
    }
    Arc::new(catalog)
}

fn bench_server_loadgen(_c: &mut Criterion) {
    let views: Vec<String> = (0..4).map(|i| format!("v{i}")).collect();
    let keywords: Vec<String> = query_keywords(Selectivity::Medium, 5)
        .into_iter()
        .chain(query_keywords(Selectivity::Low, 5))
        .map(String::from)
        .collect();

    // Phase 1: capacity — the server absorbs the whole offered load.
    {
        // 25ms anchor: scheduler spikes of a few ms stay a small
        // fraction of every percentile, including the tails.
        let config = ServerConfig {
            service_delay: Some(Duration::from_millis(25)),
            ..ServerConfig::default()
        };
        let server = serve(setup(&views), "127.0.0.1:0", config).expect("serve");
        let lg = LoadgenConfig {
            workers: 4,
            requests_per_worker: if quick() { 10 } else { 40 },
            think_time: Duration::from_millis(1),
            ..LoadgenConfig::default()
        };
        let report = loadgen::run(server.addr(), &views, &keywords, &lg);
        assert_eq!(report.other_errors, 0, "unexpected errors: {:?}", report.last_error);
        assert_eq!(report.shed, 0, "capacity phase must not shed: {report:?}");
        assert_eq!(report.completed, report.issued(), "every request completes");
        let stats = server.shutdown();
        assert_eq!(stats.protocol_errors, 0);
        println!(
            "server_loadgen/capacity: {} completed, p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms, \
             {:.0} req/s",
            report.completed,
            report.p50_ns() / 1e6,
            report.p99_ns() / 1e6,
            report.p999_ns() / 1e6,
            report.throughput(),
        );
        criterion::report_metric("server_loadgen/p50", report.p50_ns(), "ns");
        criterion::report_metric("server_loadgen/p99", report.p99_ns(), "tail-ns");
        criterion::report_metric("server_loadgen/p999", report.p999_ns(), "tail-ns");
        criterion::report_metric(
            "server_loadgen/capacity_completed",
            report.completed as f64,
            "count",
        );
    }

    // Phase 2: overload — one slot, no queue, eight eager workers.
    {
        let config = ServerConfig {
            admission: AdmissionConfig {
                max_in_flight: 1,
                queue_depth: 0,
                retry_after: Duration::from_millis(2),
                ..AdmissionConfig::default()
            },
            service_delay: Some(Duration::from_millis(15)),
            ..ServerConfig::default()
        };
        let server = serve(setup(&views), "127.0.0.1:0", config).expect("serve");
        let lg = LoadgenConfig {
            workers: 8,
            requests_per_worker: if quick() { 8 } else { 25 },
            think_time: Duration::ZERO,
            ..LoadgenConfig::default()
        };
        let report = loadgen::run(server.addr(), &views, &keywords, &lg);
        assert_eq!(report.other_errors, 0, "unexpected errors: {:?}", report.last_error);
        assert!(report.shed > 0, "one slot + no queue must shed: {report:?}");
        assert!(report.completed > 0, "the admitted trickle still completes: {report:?}");
        let stats = server.shutdown();
        assert_eq!(stats.protocol_errors, 0);
        assert_eq!(stats.admission.shed, report.shed, "every shed is typed over the wire");
        println!(
            "server_loadgen/overload: {} issued, {} shed ({:.1}%), {} completed, {} deadline",
            report.issued(),
            report.shed,
            report.shed_rate() * 100.0,
            report.completed,
            report.deadline_exceeded,
        );
        criterion::report_metric("server_loadgen/shed_rate", report.shed_rate(), "ratio");
        criterion::report_metric("server_loadgen/overload_shed", report.shed as f64, "count");
        criterion::report_metric(
            "server_loadgen/overload_completed",
            report.completed as f64,
            "count",
        );
    }
}

criterion_group!(benches, bench_server_loadgen);
criterion_main!(benches);
