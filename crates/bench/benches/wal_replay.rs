//! WAL replay speed: how fast a crashed engine gets back to serving.
//!
//! Two costs are measured over a 512-record log:
//! - `wal_replay/decode_512` (`ns`) — [`vxv_index::wal::replay`] alone:
//!   framing, checksum validation, batch decode. This is the pure log
//!   format cost and should stay linear in bytes.
//! - `wal_replay/recover_512` (`ns`) — full
//!   [`ViewSearchEngine::enable_writes`] recovery: decode plus
//!   re-parsing and re-indexing every batch into the memtable. This is
//!   the real crash-to-serving time.
//! - `wal_replay/decode_mb_per_s` (`count`) — decode throughput, so the
//!   gate catches a format change that bloats or slows the log even if
//!   absolute timings drift.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use vxv_core::{FsyncPolicy, ViewSearchEngine, WriteConfig};
use vxv_xml::Corpus;

const RECORDS: usize = 512;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vxv-bench-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_engine() -> ViewSearchEngine<Corpus> {
    let mut corpus = Corpus::new();
    corpus.add_parsed("books.xml", "<books><book><title>seed</title></book></books>").unwrap();
    ViewSearchEngine::new(corpus)
}

fn config() -> WriteConfig {
    WriteConfig { fsync: FsyncPolicy::Never, compact_interval: None, ..WriteConfig::default() }
}

/// Median of a few timed runs of `f` (`CRITERION_QUICK` runs once).
fn median_ns(runs: usize, mut f: impl FnMut()) -> f64 {
    let quick = std::env::var("CRITERION_QUICK").map(|v| v != "0").unwrap_or(false);
    let runs = if quick { 1 } else { runs };
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_wal_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_replay");
    let dir = temp_dir("log");
    let wal_path = dir.join(vxv_index::wal::WAL_FILE);

    // Write the log once through the real append path.
    let writer = base_engine();
    writer.enable_writes(&wal_path, config()).unwrap();
    for i in 0..RECORDS {
        writer
            .append([(
                format!("doc{i}.xml"),
                format!(
                    "<books><book><isbn>{i}</isbn><title>xml search entry {i}</title>\
                     <year>{}</year></book></books>",
                    1990 + (i % 16)
                ),
            )])
            .unwrap();
    }
    drop(writer);
    let wal_bytes = std::fs::metadata(&wal_path).unwrap().len();

    // Pure decode: framing + checksums + batch decode, no indexing.
    let decode_ns = median_ns(9, || {
        let replay = vxv_index::wal::replay(&wal_path).unwrap();
        assert_eq!(replay.records, RECORDS as u64);
        assert!(replay.truncated.is_none());
    });

    // Full recovery: decode plus re-indexing everything into a fresh
    // engine's memtable — crash-to-serving.
    let recover_ns = median_ns(5, || {
        let engine = base_engine();
        let report = engine.enable_writes(&wal_path, config()).unwrap();
        assert_eq!(report.records, RECORDS as u64);
        assert_eq!(engine.stats().documents, 1 + RECORDS);
    });

    let mb = wal_bytes as f64 / (1024.0 * 1024.0);
    let decode_mbps = mb / (decode_ns / 1e9);
    println!(
        "wal_replay: {RECORDS} records ({wal_bytes} B), decode {:.2} ms ({decode_mbps:.0} MB/s), \
         full recovery {:.2} ms",
        decode_ns / 1e6,
        recover_ns / 1e6
    );
    criterion::report_metric("wal_replay/decode_512", decode_ns, "ns");
    criterion::report_metric("wal_replay/recover_512", recover_ns, "ns");
    criterion::report_metric("wal_replay/decode_mb_per_s", decode_mbps, "count");

    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_wal_replay);
criterion_main!(benches);
