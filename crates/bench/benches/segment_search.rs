//! Segmented-engine smoke on the INEX workload: the multi-segment
//! parallel search path vs the single-segment engine over the same five
//! documents.
//!
//! Besides the criterion timings, the benchmark **asserts** (a) the two
//! engines answer byte-identically (hits, scores, idf, view size — the
//! segmentation equivalence contract) and (b) the multi-segment parallel
//! path is not slower than single-segment beyond a generous noise bound
//! — per-segment PDT generation fans across a worker pool, so a
//! regression that serializes it behind a lock or duplicates per-segment
//! work fails here. CI runs this in quick mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use vxv_core::{PreparedView, SearchRequest, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams};
use vxv_xml::{serialize_subtree, Corpus};

struct Setup {
    single: PreparedView<Corpus>,
    segmented: PreparedView<Corpus>,
    request: SearchRequest,
}

fn setup(kb: u64) -> Setup {
    // The 4-join Table-1 view projects five documents — five QPTs whose
    // per-segment PDT merges can fan out in parallel.
    let params = ExperimentParams {
        data_bytes: kb * 1024,
        num_joins: 4,
        nesting: 3,
        ..ExperimentParams::default()
    };
    let corpus = generate(&params.generator_config());

    // Single segment: all five documents in one build.
    let single = ViewSearchEngine::new(corpus.clone());

    // Multi segment: one document per segment (first seeds the engine,
    // the rest arrive by ingestion).
    let docs: Vec<(String, String)> = corpus
        .docs()
        .map(|d| (d.name().to_string(), serialize_subtree(d, d.root().expect("root"))))
        .collect();
    let mut base = Corpus::new();
    base.add_parsed(&docs[0].0, &docs[0].1).expect("seed doc");
    let segmented = ViewSearchEngine::new(base);
    for (name, xml) in &docs[1..] {
        segmented.ingest([(name.clone(), xml.clone())]).expect("ingest");
    }
    assert_eq!(segmented.segments().len(), docs.len());

    let view = params.view();
    Setup {
        single: single.prepare(&view).expect("prepare single"),
        segmented: segmented.prepare(&view).expect("prepare segmented"),
        request: SearchRequest::new(params.keywords()).top_k(params.top_k),
    }
}

fn assert_equivalent(s: &Setup) {
    let a = s.single.search(&s.request).expect("single search");
    let b = s.segmented.search(&s.request).expect("segmented search");
    assert_eq!(a.view_size, b.view_size, "view_size");
    assert_eq!(a.matching, b.matching, "matching");
    assert_eq!(a.idf, b.idf, "idf");
    assert_eq!(a.hits.len(), b.hits.len(), "hit count");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits at rank {}", x.rank);
        assert_eq!(x.xml, y.xml, "xml at rank {}", x.rank);
    }
}

/// Seconds per search over alternating measurement windows (drift on a
/// shared machine hits both paths equally).
fn secs_per_search(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (f64, f64) {
    let window = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        let mut iters = 0u32;
        while iters < 5 || t0.elapsed().as_millis() < 150 {
            f();
            iters += 1;
        }
        (iters, t0.elapsed().as_secs_f64())
    };
    let (mut ia, mut ta, mut ib, mut tb) = (0u32, 0f64, 0u32, 0f64);
    for _ in 0..3 {
        let (i, t) = window(a);
        ia += i;
        ta += t;
        let (i, t) = window(b);
        ib += i;
        tb += t;
    }
    (ta / ia as f64, tb / ib as f64)
}

fn bench_segment_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_search");
    {
        let kb = 256u64;
        let s = setup(kb);
        assert_equivalent(&s);

        let (single_spq, seg_spq) = secs_per_search(
            &mut || {
                s.single.search(&s.request).expect("single");
            },
            &mut || {
                s.segmented.search(&s.request).expect("segmented");
            },
        );
        println!(
            "segment_search/{kb}KB: single-segment {:.3} ms/search, \
             5-segment parallel {:.3} ms/search ({:.2}x)",
            single_spq * 1e3,
            seg_spq * 1e3,
            seg_spq / single_spq,
        );
        criterion::report_metric("segment_search/shard-speedup", single_spq / seg_spq, "ratio");
        // The contract depends on what the host can actually run in
        // parallel. With two or more cores the per-segment fan-out must
        // *win* — at least 10% under the monolithic engine — because
        // five independent PDT merges overlap. On a single core the
        // fan-out runs inline by design (no threads, no hand-off), so
        // the segmented path must hold parity with the single-segment
        // engine within scheduling noise: its per-search index work is
        // the same entries over per-document slices. Either way a
        // regression that serializes the pool behind a lock, duplicates
        // per-segment work, or adds per-segment dispatch cost fails
        // here.
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let bound = if cores >= 2 { 0.9 } else { 1.1 };
        assert!(
            seg_spq <= single_spq * bound,
            "multi-segment search lost its shard advantage on {cores} core(s): \
             {seg_spq:.6}s vs single {single_spq:.6}s (bound {bound}x)"
        );

        group.bench_with_input(BenchmarkId::new("single_segment", kb), &s, |b, s| {
            b.iter(|| s.single.search(&s.request).expect("single"))
        });
        group.bench_with_input(BenchmarkId::new("five_segments_parallel", kb), &s, |b, s| {
            b.iter(|| s.segmented.search(&s.request).expect("segmented"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_segment_search);
criterion_main!(benches);
