//! Sharded scatter-gather + epoch-keyed result cache under traffic.
//!
//! Two structural claims ride this bench, both asserted and both gated:
//!
//! 1. **Shard speedup under write traffic.** Every ingest publishes a
//!    new segment set and bumps its engine's epoch, which invalidates
//!    that engine's cached results and forces every one of its views to
//!    re-prepare on next touch. On one engine, *every* write pays that
//!    bill for *every* view; on an N-shard [`ShardedCatalog`] a write
//!    lands on one shard and the other shards' caches and prepared
//!    views stay warm. The mixed ingest+search loop must therefore run
//!    faster on 4 shards than on 1 (`shard_cache/shard-speedup` > 1.0
//!    with ≥2 cores — shard sub-batches and fanned searches overlap —
//!    and no worse than parity on one core, where the win is only the
//!    narrower invalidation).
//! 2. **Cache engagement under Zipfian load.** A closed-loop Zipfian
//!    workload over the real TCP server re-asks hot (view, keyword)
//!    pairs constantly; the epoch-keyed result cache must absorb the
//!    majority (`shard_cache/cache-hit-ratio` > 0.5, and
//!    `shard_cache/cache_hits` is gated against collapsing to zero).
//!
//! The criterion timings pin the two ends of the cache path on a quiet
//! catalog: `warm_hit` (same request twice — the second is a pure cache
//! hit) vs `cold_miss` (capacity 0 — the full scatter-gather search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Instant;
use vxv_bench::loadgen::{self, LoadgenConfig};
use vxv_core::{SearchRequest, ShardedCatalog};
use vxv_server::{serve_sharded, ServerConfig};
use vxv_xml::Corpus;

const WORDS: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "xml", "search", "keyword", "view",
    "virtual", "index",
];

const DOCS: usize = 8;

fn doc_xml(seed: usize, items: usize) -> String {
    let mut xml = String::from("<lib>");
    for i in 0..items {
        let a = WORDS[(seed + i) % WORDS.len()];
        let b = WORDS[(seed + 3 * i + 1) % WORDS.len()];
        let c = WORDS[(seed * 7 + i) % WORDS.len()];
        let year = 1990 + (seed + i * 3) % 20;
        xml.push_str(&format!("<item><name>{a} {b} {c}</name><year>{year}</year></item>"));
    }
    xml.push_str("</lib>");
    xml
}

fn view_for(doc: &str) -> String {
    format!(
        "for $i in fn:doc({doc})/lib/item where $i/year > 1999 \
         return <v> {{ $i/name }} </v>"
    )
}

/// A fresh `shards`-way catalog over the base corpus with all eight
/// views registered.
fn build(shards: usize) -> (ShardedCatalog, Vec<String>) {
    let mut corpus = Corpus::new();
    for d in 0..DOCS {
        corpus.add_parsed(&format!("d{d}.xml"), &doc_xml(d, 40)).expect("doc parses");
    }
    let catalog = ShardedCatalog::partition(&corpus, shards);
    let views: Vec<String> = (0..DOCS).map(|d| format!("v{d}")).collect();
    for (d, view) in views.iter().enumerate() {
        catalog.register(view, &view_for(&format!("d{d}.xml"))).expect("view prepares");
    }
    (catalog, views)
}

/// One round of write traffic: ingest a fresh document into the shard
/// its name routes to, then search every view through the cache. On a
/// single engine the ingest's epoch bump forces all eight views to
/// re-prepare and re-search; on four shards, roughly six of the eight
/// answer straight from cache.
fn traffic_round(catalog: &ShardedCatalog, views: &[String], round: usize, tag: &str) {
    let name = format!("{tag}{round}.xml");
    let shard = catalog.shard_of_doc(&name);
    catalog
        .shard(shard)
        .engine()
        .ingest([(name.as_str(), doc_xml(round, 4).as_str())])
        .expect("ingest");
    let request = SearchRequest::new(["xml", "search"]).top_k(5);
    for view in views {
        catalog.search(view, &request).expect("search");
    }
}

/// Seconds per round over alternating windows (as in the other benches:
/// machine-load drift hits both paths equally).
fn secs_per_round(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (f64, f64) {
    let window = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        let mut iters = 0u32;
        while iters < 4 || t0.elapsed().as_millis() < 150 {
            f();
            iters += 1;
        }
        (iters, t0.elapsed().as_secs_f64())
    };
    let (mut ia, mut ta, mut ib, mut tb) = (0u32, 0f64, 0u32, 0f64);
    for _ in 0..3 {
        let (i, t) = window(a);
        ia += i;
        ta += t;
        let (i, t) = window(b);
        ib += i;
        tb += t;
    }
    (ta / ia as f64, tb / ib as f64)
}

fn bench_shard_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_cache");
    group.sample_size(20);

    // --- Shard speedup under mixed ingest+search traffic ------------
    let (one, one_views) = build(1);
    let (two, two_views) = build(2);
    let (four, four_views) = build(4);
    let (mut r1, mut r2, mut r4) = (0usize, 0usize, 0usize);

    // Interleave 1-vs-4 (the gated ratio), then time 2 shards alone.
    let (t1, t4) = secs_per_round(
        &mut || {
            traffic_round(&one, &one_views, r1, "s1-");
            r1 += 1;
        },
        &mut || {
            traffic_round(&four, &four_views, r4, "s4-");
            r4 += 1;
        },
    );
    let t2 = {
        let t0 = Instant::now();
        let mut iters = 0u32;
        while iters < 4 || t0.elapsed().as_millis() < 150 {
            traffic_round(&two, &two_views, r2, "s2-");
            r2 += 1;
            iters += 1;
        }
        t0.elapsed().as_secs_f64() / iters as f64
    };
    println!(
        "shard_cache/traffic: 1 shard {:.3} ms/round, 2 shards {:.3} ms/round, \
         4 shards {:.3} ms/round ({:.2}x)",
        t1 * 1e3,
        t2 * 1e3,
        t4 * 1e3,
        t1 / t4,
    );
    criterion::report_metric("shard_cache/shard-speedup", t1 / t4, "ratio");
    // With ≥2 cores the narrower invalidation *and* the shard fan-out
    // both work for the 4-shard catalog, so it must win outright. On a
    // single core only the invalidation narrowing remains (fan-out runs
    // inline), so hold parity within scheduling noise.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let bound = if cores >= 2 { 1.0 } else { 0.8 };
    assert!(
        t1 / t4 > bound,
        "4-shard catalog lost its traffic advantage on {cores} core(s): \
         {t4:.6}s/round vs 1-shard {t1:.6}s/round"
    );

    // The epoch bookkeeping the speedup rests on: the 1-shard catalog
    // re-prepared on (nearly) every round; the 4-shard one skipped most.
    let s1 = one.catalog_stats();
    let s4 = four.catalog_stats();
    println!(
        "shard_cache/refreshes: 1 shard {} over {r1} rounds, 4 shards {} over {r4} rounds",
        s1.refreshes, s4.refreshes
    );

    // --- Cache hit ratio under Zipfian TCP load ---------------------
    let (sharded, views) = build(2);
    let sharded = Arc::new(sharded);
    let server = serve_sharded(Arc::clone(&sharded), "127.0.0.1:0", ServerConfig::default())
        .expect("server binds");
    let keywords: Vec<String> = WORDS.iter().take(6).map(|w| w.to_string()).collect();
    let config = LoadgenConfig {
        workers: 4,
        requests_per_worker: 50,
        think_time: std::time::Duration::ZERO,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(server.addr(), &views, &keywords, &config);
    server.shutdown();
    assert_eq!(report.last_error, None, "loadgen hit an unexpected error");
    assert_eq!(report.completed, report.issued(), "quiet server must complete everything");

    let cache = sharded.cache_stats();
    let lookups = cache.hits + cache.misses;
    let hit_ratio = if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 };
    println!(
        "shard_cache/zipfian: {} requests, {} cache hits / {} lookups (ratio {hit_ratio:.3}), \
         {} inserts, {} bytes held",
        report.completed, cache.hits, lookups, cache.inserts, cache.bytes
    );
    criterion::report_metric("shard_cache/cache-hit-ratio", hit_ratio, "ratio");
    criterion::report_metric("shard_cache/cache_hits", cache.hits as f64, "count");
    assert!(
        hit_ratio > 0.5,
        "Zipfian traffic must be cache-absorbed: {} hits / {lookups} lookups",
        cache.hits
    );

    // --- Criterion timings: the two ends of the cache path ----------
    let (warm, warm_views) = build(2);
    let request = SearchRequest::new(["xml", "search"]).top_k(5);
    warm.search(&warm_views[0], &request).expect("seed the cache");
    group.bench_with_input(BenchmarkId::new("warm_hit", DOCS), &warm, |b, cat| {
        b.iter(|| cat.search(&warm_views[0], &request).expect("hit"))
    });
    let (cold, cold_views) = build(2);
    for i in 0..cold.shard_count() {
        cold.shard(i).engine().result_cache().set_capacity(0);
    }
    group.bench_with_input(BenchmarkId::new("cold_miss", DOCS), &cold, |b, cat| {
        b.iter(|| cat.search(&cold_views[0], &request).expect("miss"))
    });

    group.finish();
}

criterion_group!(benches, bench_shard_cache);
criterion_main!(benches);
