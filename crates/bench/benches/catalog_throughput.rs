//! Serving-tier throughput smoke: a shared [`ViewCatalog`] (prepare once,
//! search many) vs re-preparing the view on every request, on the
//! INEX-style workload.
//!
//! Besides the criterion timings, the benchmark measures queries/sec for
//! both paths directly and **asserts the catalog wins** — the whole point
//! of the service tier is that per-request work excludes the
//! view-proportional analysis. CI runs this in quick mode so a regression
//! that sneaks prepare-time work into the search path fails fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use vxv_core::{NamedRequest, SearchRequest, ViewCatalog, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams};

struct Setup {
    catalog: ViewCatalog,
    view: String,
    request: SearchRequest,
}

fn setup(kb: u64) -> Setup {
    // A prepare-heavy point: the 4-join, nesting-3 Table-1 view projects
    // five documents (5 QPTs to generate and probe-plan) over a modest
    // corpus, so the shared-catalog advantage is structural, not noise.
    let params = ExperimentParams {
        data_bytes: kb * 1024,
        num_joins: 4,
        nesting: 3,
        ..ExperimentParams::default()
    };
    let corpus = generate(&params.generator_config());
    let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus));
    catalog.register("bench", &params.view()).expect("view prepares");
    Setup {
        catalog,
        view: params.view(),
        request: SearchRequest::new(params.keywords()).top_k(params.top_k),
    }
}

/// Queries/sec of `f` over at least `min_iters` runs and 150ms (one
/// measurement window).
fn qps_window(f: &mut dyn FnMut(), min_iters: u32) -> (u32, f64) {
    let t0 = Instant::now();
    let mut iters = 0u32;
    while iters < min_iters || t0.elapsed().as_millis() < 150 {
        f();
        iters += 1;
    }
    (iters, t0.elapsed().as_secs_f64())
}

/// Interleaved queries/sec of two workloads: alternating windows absorb
/// machine-load drift that back-to-back measurement would attribute to
/// whichever path ran second.
fn qps_pair(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut ia, mut ta, mut ib, mut tb) = (0u32, 0f64, 0u32, 0f64);
    for _ in 0..3 {
        let (i, t) = qps_window(&mut a, 5);
        ia += i;
        ta += t;
        let (i, t) = qps_window(&mut b, 5);
        ib += i;
        tb += t;
    }
    (ia as f64 / ta, ib as f64 / tb)
}

fn bench_catalog_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog_throughput");
    group.sample_size(20);
    {
        let kb = 16u64;
        let s = setup(kb);

        // The smoke assertion: shared prepared state must beat paying the
        // view analysis per request.
        let (catalog_qps, prepare_qps) = qps_pair(
            || drop(s.catalog.search("bench", &s.request).unwrap()),
            || drop(s.catalog.engine().search_once(&s.view, &s.request).unwrap()),
        );
        println!(
            "catalog_throughput/{kb}KB: shared catalog {catalog_qps:.0} q/s vs \
             per-request prepare {prepare_qps:.0} q/s ({:.2}x)",
            catalog_qps / prepare_qps
        );
        assert!(
            catalog_qps > prepare_qps,
            "a shared catalog must outserve per-request prepare \
             ({catalog_qps:.0} vs {prepare_qps:.0} q/s)"
        );

        group.bench_with_input(BenchmarkId::new("shared_catalog", kb), &s, |b, s| {
            b.iter(|| s.catalog.search("bench", &s.request).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("prepare_per_request", kb), &s, |b, s| {
            b.iter(|| s.catalog.engine().search_once(&s.view, &s.request).unwrap())
        });
        let batch: Vec<NamedRequest> =
            (0..16).map(|_| NamedRequest::new("bench", s.request.clone())).collect();
        group.bench_with_input(BenchmarkId::new("batch_16_pooled", kb), &s, |b, s| {
            b.iter(|| {
                for r in s.catalog.search_batch(&batch) {
                    r.unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_catalog_throughput);
criterion_main!(benches);
