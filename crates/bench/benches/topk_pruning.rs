//! Score-bounded top-k pruning on the INEX workload: the default pruned
//! search path vs the exact reference (`SearchRequest::prune(false)`).
//!
//! Besides the criterion timings, the benchmark **asserts** (a) the two
//! paths answer byte-identically (hits, score bits, order, idf,
//! matching — the pruning equivalence contract), (b) pruning actually
//! engages on this workload at k=10 (`blocks_pruned > 0`), and (c) the
//! pruned path is not slower than the exact path — a regression that
//! loosens the bounds until nothing prunes, or that makes the bound
//! probes cost more than they save, fails here. CI runs this in quick
//! mode and feeds the medians into the `bench_gate` regression check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use vxv_core::{PreparedView, SearchRequest, SearchResponse, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams};
use vxv_xml::Corpus;

struct Setup {
    view: PreparedView<Corpus>,
    pruned: SearchRequest,
    exact: SearchRequest,
}

fn setup(kb: u64, top_k: usize) -> Setup {
    // The paper's default join view over frequent (long-list) keywords
    // with mid-sized elements: candidate subtrees span multiple
    // compressed blocks, so the block-max bounds have interiors to
    // skip, and the threshold prunes roughly half the candidates at
    // k=10.
    let params = ExperimentParams {
        data_bytes: kb * 1024,
        top_k,
        num_joins: 1,
        nesting: 2,
        elem_size: 3,
        selectivity: vxv_inex::Selectivity::Low,
        ..ExperimentParams::default()
    };
    let corpus = generate(&params.generator_config());
    let engine = ViewSearchEngine::new(corpus);
    let view = engine.prepare(&params.view()).expect("prepare view");
    let base = SearchRequest::new(params.keywords()).top_k(params.top_k).materialize(false);
    Setup { view, pruned: base.clone(), exact: base.prune(false) }
}

fn assert_identical(a: &SearchResponse, b: &SearchResponse) {
    assert_eq!(a.view_size, b.view_size, "view_size");
    assert_eq!(a.matching, b.matching, "matching");
    assert_eq!(a.idf.len(), b.idf.len());
    for (x, y) in a.idf.iter().zip(&b.idf) {
        assert_eq!(x.to_bits(), y.to_bits(), "idf bits");
    }
    assert_eq!(a.hits.len(), b.hits.len(), "hit count");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits at rank {}", x.rank);
        assert_eq!(x.tf, y.tf, "tf at rank {}", x.rank);
        assert_eq!(x.byte_len, y.byte_len, "byte_len at rank {}", x.rank);
    }
}

/// Seconds per search over alternating measurement windows (drift on a
/// shared machine hits both paths equally).
fn secs_per_search(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (f64, f64) {
    let window = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        let mut iters = 0u32;
        while iters < 5 || t0.elapsed().as_millis() < 150 {
            f();
            iters += 1;
        }
        (iters, t0.elapsed().as_secs_f64())
    };
    let (mut ia, mut ta, mut ib, mut tb) = (0u32, 0f64, 0u32, 0f64);
    for _ in 0..3 {
        let (i, t) = window(a);
        ia += i;
        ta += t;
        let (i, t) = window(b);
        ib += i;
        tb += t;
    }
    (ta / ia as f64, tb / ib as f64)
}

fn bench_topk_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_pruning");
    {
        let kb = 2048u64;
        let s = setup(kb, 10);

        // Contract 1: byte-identity at several cut depths.
        for k in [1usize, 10, usize::MAX] {
            let exact = s.view.search(&s.exact.clone().top_k(k)).expect("exact");
            let pruned = s.view.search(&s.pruned.clone().top_k(k)).expect("pruned");
            assert_identical(&exact, &pruned);
        }

        // Contract 2: pruning engages on this workload at k=10.
        let pruned = s.view.search(&s.pruned).expect("pruned");
        assert!(
            pruned.pruning.blocks_pruned > 0,
            "block-max pruning must engage on the INEX workload: {:?}",
            pruned.pruning
        );
        assert!(pruned.pruning.candidates_skipped > 0, "{:?}", pruned.pruning);
        criterion::report_metric(
            "topk_pruning/blocks_pruned",
            pruned.pruning.blocks_pruned as f64,
            "count",
        );
        criterion::report_metric(
            "topk_pruning/candidates_skipped",
            pruned.pruning.candidates_skipped as f64,
            "count",
        );

        // Contract 3: pruned wall-time <= exact wall-time at k=10
        // (small tolerance for scheduling noise only — the pruned path
        // must win, not tie, on average).
        let (pruned_spq, exact_spq) = secs_per_search(
            &mut || {
                s.view.search(&s.pruned).expect("pruned");
            },
            &mut || {
                s.view.search(&s.exact).expect("exact");
            },
        );
        println!(
            "topk_pruning/{kb}KB k=10: pruned {:.3} ms/search, exact {:.3} ms/search ({:.2}x)",
            pruned_spq * 1e3,
            exact_spq * 1e3,
            pruned_spq / exact_spq,
        );
        // The within-run ratio is hardware-independent (both paths ran
        // on the same machine in alternating windows), so the gate can
        // band it meaningfully even when absolute medians drift with
        // runner hardware.
        criterion::report_metric("topk_pruning/pruned_over_exact", pruned_spq / exact_spq, "ratio");
        assert!(
            pruned_spq <= exact_spq * 1.05,
            "pruned search regressed past exact: {pruned_spq:.6}s vs {exact_spq:.6}s"
        );

        group.bench_with_input(BenchmarkId::new("pruned_k10", kb), &s, |b, s| {
            b.iter(|| s.view.search(&s.pruned).expect("pruned"))
        });
        group.bench_with_input(BenchmarkId::new("exact_k10", kb), &s, |b, s| {
            b.iter(|| s.view.search(&s.exact).expect("exact"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk_pruning);
criterion_main!(benches);
