//! Criterion benchmarks of the end-to-end pipeline and its phases:
//! whole-query latency for Efficient vs Baseline on in-memory data, view
//! evaluation over PDTs, and the scoring module in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vxv_baselines::BaselineEngine;
use vxv_core::scoring::{score_and_rank, ElementStats, KeywordMode};
use vxv_core::{SearchRequest, ViewSearchEngine};
use vxv_inex::{generate, ExperimentParams};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    for kb in [128u64, 512] {
        let params = ExperimentParams { data_bytes: kb * 1024, ..ExperimentParams::default() };
        let corpus = std::sync::Arc::new(generate(&params.generator_config()));
        let view = params.view();
        let keywords = params.keywords();
        let engine = ViewSearchEngine::new(std::sync::Arc::clone(&corpus));
        let request = SearchRequest::new(&keywords);
        // Amortized path: the view analysis is reused across searches.
        let prepared = engine.prepare(&view).unwrap();
        group.bench_with_input(BenchmarkId::new("efficient_prepared", kb), &(), |b, _| {
            b.iter(|| prepared.search(&request).unwrap())
        });
        // Unamortized path: prepare + search per query.
        group.bench_with_input(BenchmarkId::new("efficient_one_shot", kb), &(), |b, _| {
            b.iter(|| engine.prepare(&view).unwrap().search(&request).unwrap())
        });
        let baseline = BaselineEngine::new(&corpus);
        group.bench_with_input(BenchmarkId::new("baseline_materialize", kb), &(), |b, _| {
            b.iter(|| baseline.search(&view, &keywords, 10, KeywordMode::Conjunctive).unwrap())
        });
    }
    group.finish();
}

/// Ablation: the evaluator's equality hash join vs nested loops, on the
/// default author⋈article view (DESIGN.md calls this choice out — real
/// engines never nested-loop a value join, and neither did Quark).
fn bench_join_ablation(c: &mut Criterion) {
    use vxv_core::generate::{generate_pdt, DocMeta};
    use vxv_core::generate_qpts;
    use vxv_index::{InvertedIndex, PathIndex};
    use vxv_xquery::{parse_query, Evaluator, MapSource};

    let params = ExperimentParams { data_bytes: 256 * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let query = parse_query(&params.view()).unwrap();
    let qpts = generate_qpts(&query).unwrap();
    let keywords: Vec<String> = params.keywords().iter().map(|s| s.to_string()).collect();
    let path_index = PathIndex::build(&corpus);
    let inverted = InvertedIndex::build(&corpus);
    let pdts: Vec<_> = qpts
        .iter()
        .map(|qpt| {
            let doc = corpus.doc(&qpt.doc_name).unwrap();
            let root = doc.root().unwrap();
            let meta = DocMeta {
                name: qpt.doc_name.clone(),
                root_tag: doc.node_tag(root).to_string(),
                root_ordinal: doc.node(root).dewey.components()[0],
                segment: 0,
            };
            generate_pdt(qpt, &path_index, &inverted, &keywords, &meta).0
        })
        .collect();
    let source = MapSource::new(pdts.iter().map(|p| (p.doc_name.clone(), &p.doc)));

    let mut group = c.benchmark_group("join_ablation");
    group.sample_size(20);
    group.bench_function("hash_join", |b| {
        b.iter(|| Evaluator::new(&source, &query).eval_query(&query).unwrap())
    });
    group.bench_function("nested_loop", |b| {
        b.iter(|| Evaluator::new(&source, &query).with_naive_joins().eval_query(&query).unwrap())
    });
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring");
    for n in [1_000usize, 20_000] {
        let stats: Vec<ElementStats> = (0..n)
            .map(|i| ElementStats {
                tf: vec![(i % 7) as u32, (i % 3) as u32],
                byte_len: 100 + (i % 900) as u64,
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("score_and_rank", n), &stats, |b, s| {
            b.iter(|| score_and_rank(s, KeywordMode::Conjunctive, 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_join_ablation, bench_scoring);
criterion_main!(benches);
