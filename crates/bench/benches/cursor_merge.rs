//! Streaming cursor merge vs the seed's materialized-list path, on the
//! INEX-style workload.
//!
//! Both benchmarks measure the same unit of work — "given a prepared
//! plan, produce the document's PDT" — because that is what a search
//! pays per document. The materialized path therefore *includes* its
//! materialization step (decode every probed entry into per-node
//! vectors, sort, then merge): materializing is that strategy's cost,
//! not setup. A `merge_only` diagnostic keeps the old
//! merge-over-prematerialized-lists timing for comparison.
//!
//! Besides the criterion timings, the benchmark **asserts** the
//! refactor's headline claim: the streaming merge is not slower than
//! the materialized path. Wall time is compared over alternating
//! measurement windows (drift on a shared machine hits both paths
//! equally) with a small tolerance for residual scheduling noise. A
//! bytes-copied comparison is also asserted: the cursor plan keeps row
//! handles into the index's compressed storage, while the materialized
//! path copies every probed entry. CI runs this benchmark in quick mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use vxv_core::generate::{generate_pdt_from_lists, generate_pdt_from_materialized, DocMeta};
use vxv_core::prepare::prepare_lists;
use vxv_core::{generate_qpts, Qpt};
use vxv_index::{IndexFootprint, InvertedIndex, PathIndex};
use vxv_inex::{generate, ExperimentParams};
use vxv_xquery::parse_query;

struct Setup {
    qpt: Qpt,
    path_index: PathIndex,
    inverted: InvertedIndex,
    keywords: Vec<String>,
    meta: DocMeta,
}

fn setup(kb: u64) -> Setup {
    let params = ExperimentParams { data_bytes: kb * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let query = parse_query(&params.view()).unwrap();
    let qpts = generate_qpts(&query).unwrap();
    let qpt = qpts.into_iter().find(|q| q.doc_name == "inex.xml").unwrap();
    let path_index = PathIndex::build(&corpus);
    let inverted = InvertedIndex::build(&corpus);
    let keywords: Vec<String> = params.keywords().iter().map(|s| s.to_string()).collect();
    let doc = corpus.doc("inex.xml").unwrap();
    let root = doc.root().unwrap();
    let meta = DocMeta {
        name: "inex.xml".into(),
        root_tag: doc.node_tag(root).to_string(),
        root_ordinal: doc.node(root).dewey.components()[0],
        segment: 0,
    };
    Setup { qpt, path_index, inverted, keywords, meta }
}

/// Seconds per merge over alternating measurement windows (drift on a
/// shared machine hits both paths equally).
fn secs_per_merge(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (f64, f64) {
    let window = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        let mut iters = 0u32;
        while iters < 5 || t0.elapsed().as_millis() < 150 {
            f();
            iters += 1;
        }
        (iters, t0.elapsed().as_secs_f64())
    };
    let (mut ia, mut ta, mut ib, mut tb) = (0u32, 0f64, 0u32, 0f64);
    for _ in 0..3 {
        let (i, t) = window(a);
        ia += i;
        ta += t;
        let (i, t) = window(b);
        ib += i;
        tb += t;
    }
    (ta / ia as f64, tb / ib as f64)
}

fn bench_cursor_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("cursor_merge");
    for kb in [128u64, 512] {
        let s = setup(kb);
        let plan = prepare_lists(&s.qpt, &s.path_index, s.meta.root_ordinal);
        let materialized = plan.materialize();

        // The memory side of the claim: bytes the prepared state copies
        // out of the index, per prepared view.
        let plan_bytes = plan.approx_plan_bytes();
        let copied = materialized.bytes_copied();
        let fp = s.path_index.footprint();
        println!(
            "cursor_merge/{kb}KB: plan holds {plan_bytes} B of row handles vs \
             {copied} B copied by the materialized path \
             (index: {} B compressed / {} B uncompressed)",
            fp.compressed_bytes, fp.uncompressed_bytes
        );
        assert!(
            plan_bytes < copied,
            "cursor plan must be smaller than the materialized copy \
             ({plan_bytes} vs {copied})"
        );

        // The time side of the claim: per-document PDT generation from
        // the streaming plan must not lose to materialize-then-merge.
        let (stream_spm, mat_spm) = secs_per_merge(
            &mut || {
                generate_pdt_from_lists(&s.qpt, &plan, &s.inverted, &s.keywords, &s.meta);
            },
            &mut || {
                let m = plan.materialize();
                generate_pdt_from_materialized(&s.qpt, &m, &s.inverted, &s.keywords, &s.meta);
            },
        );
        println!(
            "cursor_merge/{kb}KB: streaming {:.3} ms/merge vs materialized \
             {:.3} ms/merge ({:.2}x)",
            stream_spm * 1e3,
            mat_spm * 1e3,
            stream_spm / mat_spm,
        );
        criterion::report_metric(
            &format!("cursor_merge/streaming_over_materialized/{kb}"),
            stream_spm / mat_spm,
            "ratio",
        );
        assert!(
            stream_spm <= mat_spm * 1.05,
            "streaming merge regressed past the materialized path: \
             {stream_spm:.6}s vs {mat_spm:.6}s"
        );

        group.bench_with_input(BenchmarkId::new("streaming_merge", kb), &s, |b, s| {
            b.iter(|| generate_pdt_from_lists(&s.qpt, &plan, &s.inverted, &s.keywords, &s.meta))
        });
        // The full materialized path a search would actually run:
        // decode + copy + sort, then merge.
        group.bench_with_input(BenchmarkId::new("materialized_merge", kb), &s, |b, s| {
            b.iter(|| {
                let m = plan.materialize();
                generate_pdt_from_materialized(&s.qpt, &m, &s.inverted, &s.keywords, &s.meta)
            })
        });
        // Diagnostic: the merge loop alone, fed by lists materialized
        // once outside the timed region — isolates merge machinery from
        // decode cost.
        group.bench_with_input(BenchmarkId::new("merge_only", kb), &s, |b, s| {
            b.iter(|| {
                generate_pdt_from_materialized(
                    &s.qpt,
                    &materialized,
                    &s.inverted,
                    &s.keywords,
                    &s.meta,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cursor_merge);
criterion_main!(benches);
