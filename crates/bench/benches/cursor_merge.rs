//! Streaming cursor merge vs the seed's materialized-list path, on the
//! INEX-style workload.
//!
//! Measures the per-search PDT merge both ways and prints a bytes-copied
//! comparison: the cursor plan keeps row handles into the index's
//! compressed storage, while the materialized path copies every probed
//! entry into per-node vectors before merging. CI runs this benchmark in
//! quick mode so regressions in the streaming path fail fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vxv_core::generate::{generate_pdt_from_lists, generate_pdt_from_materialized, DocMeta};
use vxv_core::prepare::prepare_lists;
use vxv_core::{generate_qpts, Qpt};
use vxv_index::{IndexFootprint, InvertedIndex, PathIndex};
use vxv_inex::{generate, ExperimentParams};
use vxv_xquery::parse_query;

struct Setup {
    qpt: Qpt,
    path_index: PathIndex,
    inverted: InvertedIndex,
    keywords: Vec<String>,
    meta: DocMeta,
}

fn setup(kb: u64) -> Setup {
    let params = ExperimentParams { data_bytes: kb * 1024, ..ExperimentParams::default() };
    let corpus = generate(&params.generator_config());
    let query = parse_query(&params.view()).unwrap();
    let qpts = generate_qpts(&query).unwrap();
    let qpt = qpts.into_iter().find(|q| q.doc_name == "inex.xml").unwrap();
    let path_index = PathIndex::build(&corpus);
    let inverted = InvertedIndex::build(&corpus);
    let keywords: Vec<String> = params.keywords().iter().map(|s| s.to_string()).collect();
    let doc = corpus.doc("inex.xml").unwrap();
    let root = doc.root().unwrap();
    let meta = DocMeta {
        name: "inex.xml".into(),
        root_tag: doc.node_tag(root).to_string(),
        root_ordinal: doc.node(root).dewey.components()[0],
        segment: 0,
    };
    Setup { qpt, path_index, inverted, keywords, meta }
}

fn bench_cursor_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("cursor_merge");
    for kb in [128u64, 512] {
        let s = setup(kb);
        let plan = prepare_lists(&s.qpt, &s.path_index, s.meta.root_ordinal);
        let materialized = plan.materialize();

        // The comparison the refactor claims: bytes the prepared state
        // copies out of the index, per prepared view.
        let plan_bytes = plan.approx_plan_bytes();
        let copied = materialized.bytes_copied();
        let fp = s.path_index.footprint();
        println!(
            "cursor_merge/{kb}KB: plan holds {plan_bytes} B of row handles vs \
             {copied} B copied by the materialized path \
             (index: {} B compressed / {} B uncompressed)",
            fp.compressed_bytes, fp.uncompressed_bytes
        );
        assert!(
            plan_bytes < copied,
            "cursor plan must be smaller than the materialized copy \
             ({plan_bytes} vs {copied})"
        );

        group.bench_with_input(BenchmarkId::new("streaming_merge", kb), &s, |b, s| {
            b.iter(|| generate_pdt_from_lists(&s.qpt, &plan, &s.inverted, &s.keywords, &s.meta))
        });
        group.bench_with_input(BenchmarkId::new("materialized_merge", kb), &s, |b, s| {
            b.iter(|| {
                generate_pdt_from_materialized(
                    &s.qpt,
                    &materialized,
                    &s.inverted,
                    &s.keywords,
                    &s.meta,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("materialize_then_merge", kb), &s, |b, s| {
            b.iter(|| {
                let m = plan.materialize();
                generate_pdt_from_materialized(&s.qpt, &m, &s.inverted, &s.keywords, &s.meta)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cursor_merge);
criterion_main!(benches);
