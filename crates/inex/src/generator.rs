//! Synthetic INEX-like corpus generator.
//!
//! The paper evaluates on the 500 MB INEX publication collection, whose
//! relevant DTD excerpt it prints (§5.1):
//!
//! ```text
//! <!ELEMENT books (journal*)>
//! <!ELEMENT journal (title, (sec1|article|sbt)*)>
//! <!ELEMENT article (fno, doi?, fm, bdy)>
//! <!ELEMENT fm (hdr?, (edinfo|au|kwd|fig)*)>
//! ```
//!
//! INEX is not redistributable, so we synthesize a corpus with that shape
//! plus the side collections the join experiments need (authors,
//! citations, venues, publishers), with seeded determinism, calibrated
//! keyword selectivities ([`crate::vocab`]) and a join-selectivity knob
//! matching Table 1. What the experiments actually exercise — bytes
//! scanned, inverted-list lengths, join fan-out — is controlled directly,
//! which is why the substitution preserves every curve's shape.

use crate::vocab::sentence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vxv_xml::{Corpus, DocumentBuilder};

/// Generator knobs (the data-shaped rows of Table 1).
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Approximate corpus size in bytes (across all documents).
    pub target_bytes: u64,
    /// Articles joined per author: 1.0 = the paper's 1X default; smaller
    /// values spread articles over proportionally more authors.
    pub join_selectivity: f64,
    /// View-element size multiplier (1–5): scales article body text.
    pub elem_size: u32,
    /// RNG seed; equal configs generate identical corpora.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            target_bytes: 2 * 1024 * 1024,
            join_selectivity: 1.0,
            elem_size: 1,
            seed: 42,
        }
    }
}

/// Approximate serialized bytes of one generated article.
fn approx_article_bytes(elem_size: u32) -> u64 {
    260 + 420 * elem_size as u64
}

/// Articles a config will generate.
pub fn article_count(cfg: &GeneratorConfig) -> usize {
    ((cfg.target_bytes as f64 / approx_article_bytes(cfg.elem_size) as f64) as usize).max(4)
}

/// Author-pool size: at 1X roughly one author per 8 articles; lower join
/// selectivity grows the pool (fewer articles per author).
pub fn author_count(cfg: &GeneratorConfig) -> usize {
    let articles = article_count(cfg);
    (((articles as f64 / 8.0) / cfg.join_selectivity).ceil() as usize).clamp(2, articles.max(2))
}

/// Deterministic author name for index `i` (also used as the join key).
pub fn author_name(i: usize) -> String {
    format!("author{i:05}")
}

/// Generate the full corpus: `inex.xml`, `authors.xml`, `citations.xml`,
/// `venues.xml`, `publishers.xml`.
pub fn generate(cfg: &GeneratorConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let articles = article_count(cfg);
    let authors = author_count(cfg);
    let venues = (articles / 20).clamp(2, 500);
    let publishers = (venues / 4).clamp(2, 100);

    let mut corpus = Corpus::new();
    corpus.add(gen_inex(&mut rng, cfg, articles, authors, 1));
    corpus.add(gen_authors(&mut rng, authors, 2));
    corpus.add(gen_citations(&mut rng, articles, venues, 3));
    corpus.add(gen_venues(&mut rng, venues, publishers, 4));
    corpus.add(gen_publishers(&mut rng, publishers, 5));
    corpus
}

fn gen_inex(
    rng: &mut StdRng,
    cfg: &GeneratorConfig,
    articles: usize,
    authors: usize,
    ordinal: u32,
) -> vxv_xml::Document {
    let per_journal = 12usize;
    let mut b = DocumentBuilder::new("inex.xml", ordinal);
    b.begin("books");
    let mut emitted = 0usize;
    while emitted < articles {
        b.begin("journal");
        b.leaf("title", &sentence(rng, 3));
        let in_this = per_journal.min(articles - emitted);
        for _ in 0..in_this {
            gen_article(rng, cfg, emitted, authors, &mut b);
            emitted += 1;
        }
        b.end();
    }
    b.end();
    b.finish()
}

fn gen_article(
    rng: &mut StdRng,
    cfg: &GeneratorConfig,
    index: usize,
    authors: usize,
    b: &mut DocumentBuilder,
) {
    b.begin("article");
    b.leaf("fno", &format!("fno{index:06}"));
    if rng.gen_bool(0.3) {
        b.leaf("doi", &format!("10.1000/{index}"));
    }
    b.begin("fm");
    if rng.gen_bool(0.4) {
        b.leaf("hdr", &sentence(rng, 2));
    }
    b.leaf("tl", &sentence(rng, 5));
    b.leaf("yr", &(1990 + rng.gen_range(0..16)).to_string());
    // 1–3 authors per article, skewed toward the front of the pool so
    // author productivity is non-uniform (like real venues).
    let n_au = rng.gen_range(1..=3usize);
    for _ in 0..n_au {
        let skew: f64 = rng.gen::<f64>().powi(2);
        let ai = ((skew * authors as f64) as usize).min(authors - 1);
        b.leaf("au", &crate::generator::author_name(ai));
    }
    for _ in 0..rng.gen_range(1..=3usize) {
        b.leaf("kwd", &sentence(rng, 1));
    }
    b.end(); // fm
    b.begin("bdy");
    let sections = rng.gen_range(1..=2usize) + cfg.elem_size as usize / 3;
    for _ in 0..sections {
        b.begin("sec");
        b.leaf("st", &sentence(rng, 3));
        let paragraphs = 1 + cfg.elem_size as usize;
        for _ in 0..paragraphs {
            let words = 18 + rng.gen_range(0..18);
            b.leaf("p", &sentence(rng, words));
        }
        b.end();
    }
    b.end(); // bdy
    b.end(); // article
}

fn gen_authors(rng: &mut StdRng, authors: usize, ordinal: u32) -> vxv_xml::Document {
    let mut b = DocumentBuilder::new("authors.xml", ordinal);
    b.begin("authors");
    for i in 0..authors {
        b.begin("author");
        b.leaf("name", &author_name(i));
        if rng.gen_bool(0.5) {
            b.leaf("bio", &sentence(rng, 8));
        }
        b.end();
    }
    b.end();
    b.finish()
}

fn gen_citations(
    rng: &mut StdRng,
    articles: usize,
    venues: usize,
    ordinal: u32,
) -> vxv_xml::Document {
    let mut b = DocumentBuilder::new("citations.xml", ordinal);
    b.begin("citations");
    for i in 0..articles {
        for _ in 0..rng.gen_range(0..=2usize) {
            b.begin("cite");
            b.leaf("fno", &format!("fno{i:06}"));
            b.leaf("venue", &format!("v{:04}", rng.gen_range(0..venues)));
            b.leaf("note", &sentence(rng, 6));
            b.end();
        }
    }
    b.end();
    b.finish()
}

fn gen_venues(
    rng: &mut StdRng,
    venues: usize,
    publishers: usize,
    ordinal: u32,
) -> vxv_xml::Document {
    let mut b = DocumentBuilder::new("venues.xml", ordinal);
    b.begin("venues");
    for i in 0..venues {
        b.begin("venue");
        b.leaf("vid", &format!("v{i:04}"));
        b.leaf("vname", &sentence(rng, 3));
        b.leaf("pub", &format!("p{:03}", rng.gen_range(0..publishers)));
        b.end();
    }
    b.end();
    b.finish()
}

fn gen_publishers(rng: &mut StdRng, publishers: usize, ordinal: u32) -> vxv_xml::Document {
    let mut b = DocumentBuilder::new("publishers.xml", ordinal);
    b.begin("publishers");
    for i in 0..publishers {
        b.begin("publisher");
        b.leaf("pid", &format!("p{i:03}"));
        b.leaf("pname", &sentence(rng, 2));
        b.end();
    }
    b.end();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_size_tracks_target() {
        for target in [256 * 1024u64, 1024 * 1024] {
            let cfg = GeneratorConfig { target_bytes: target, ..GeneratorConfig::default() };
            let corpus = generate(&cfg);
            let size = corpus.byte_size();
            assert!(size > target / 2 && size < target * 3, "target {target}, got {size}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig { target_bytes: 128 * 1024, ..GeneratorConfig::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.byte_size(), b.byte_size());
        assert_eq!(a.doc("inex.xml").unwrap().len(), b.doc("inex.xml").unwrap().len());
    }

    #[test]
    fn structure_follows_the_dtd_excerpt() {
        let cfg = GeneratorConfig { target_bytes: 64 * 1024, ..GeneratorConfig::default() };
        let corpus = generate(&cfg);
        let inex = corpus.doc("inex.xml").unwrap();
        let root = inex.root().unwrap();
        assert_eq!(inex.node_tag(root), "books");
        let journal = inex.children(root)[0];
        assert_eq!(inex.node_tag(journal), "journal");
        assert_eq!(inex.node_tag(inex.children(journal)[0]), "title");
        let article = inex
            .descendants(root)
            .find(|n| inex.node_tag(*n) == "article")
            .expect("articles exist");
        let kids: Vec<&str> = inex.children(article).iter().map(|n| inex.node_tag(*n)).collect();
        assert_eq!(kids[0], "fno");
        assert!(kids.contains(&"fm"));
        assert!(kids.contains(&"bdy"));
    }

    #[test]
    fn join_keys_connect_the_collections() {
        let cfg = GeneratorConfig { target_bytes: 64 * 1024, ..GeneratorConfig::default() };
        let corpus = generate(&cfg);
        let inex = corpus.doc("inex.xml").unwrap();
        let authors = corpus.doc("authors.xml").unwrap();
        let names: Vec<String> = authors
            .iter()
            .filter(|n| authors.node_tag(*n) == "name")
            .map(|n| authors.value(n).unwrap().to_string())
            .collect();
        let root = inex.root().unwrap();
        let some_au = inex
            .descendants(root)
            .find(|n| inex.node_tag(*n) == "au")
            .map(|n| inex.value(n).unwrap().to_string())
            .expect("au exists");
        assert!(names.contains(&some_au), "au '{some_au}' must be a known author");
    }

    #[test]
    fn lower_join_selectivity_means_more_authors() {
        let base = GeneratorConfig { target_bytes: 256 * 1024, ..GeneratorConfig::default() };
        let sparse = GeneratorConfig { join_selectivity: 0.1, ..base.clone() };
        assert!(author_count(&sparse) > 5 * author_count(&base));
    }

    #[test]
    fn elem_size_scales_articles() {
        let small =
            GeneratorConfig { target_bytes: 128 * 1024, elem_size: 1, ..Default::default() };
        let big = GeneratorConfig { target_bytes: 128 * 1024, elem_size: 5, ..Default::default() };
        // Same corpus size target, so fewer but fatter articles.
        assert!(article_count(&big) < article_count(&small));
        let c_small = generate(&small);
        let c_big = generate(&big);
        let avg = |c: &Corpus| {
            let d = c.doc("inex.xml").unwrap();
            let (mut total, mut n) = (0u64, 0u64);
            for node in d.iter() {
                if d.node_tag(node) == "article" {
                    total += d.node(node).byte_len as u64;
                    n += 1;
                }
            }
            total / n.max(1)
        };
        assert!(avg(&c_big) > 2 * avg(&c_small));
    }
}
