#![warn(missing_docs)]
//! # vxv-inex — synthetic INEX-like corpus and Table-1 workloads
//!
//! The paper evaluates on the 500 MB INEX publication collection, which is
//! not redistributable. This crate synthesizes a corpus with the DTD shape
//! the paper prints, planted keywords at the three selectivity classes of
//! Table 1, and the side collections (authors, citations, venues,
//! publishers) that the join-count sweep needs — all seeded and
//! deterministic. [`ExperimentParams`] mirrors Table 1 and produces the
//! generator configuration, keyword list and XQuery view for each
//! experiment point.

pub mod generator;
pub mod vocab;
pub mod workload;

pub use generator::{article_count, author_count, author_name, generate, GeneratorConfig};
pub use vocab::{query_keywords, Selectivity};
pub use workload::{build_view, ExperimentParams};
