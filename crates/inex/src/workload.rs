//! Experiment workloads: Table 1 parameters and the view definitions they
//! induce.
//!
//! The paper's default view nests articles under their authors (§5.1); the
//! sweeps vary data size, keyword count/selectivity, number of value
//! joins (a chain through citations → venues → publishers), join
//! selectivity, FLWOR nesting depth, top-K, and view-element size.

use crate::generator::GeneratorConfig;
use crate::vocab::{query_keywords, Selectivity};

/// One experiment configuration (Table 1; defaults in bold there).
#[derive(Clone, Debug)]
pub struct ExperimentParams {
    /// Corpus size in bytes. The paper sweeps 100–500 MB; the harness
    /// scales this down — curve shapes are size-relative.
    pub data_bytes: u64,
    /// Number of query keywords (1–5, default 2).
    pub num_keywords: usize,
    /// Keyword selectivity class (default Medium).
    pub selectivity: Selectivity,
    /// Number of value joins in the view (0–4, default 1).
    pub num_joins: usize,
    /// Join selectivity 1X/0.5X/0.2X/0.1X (default 1X).
    pub join_selectivity: f64,
    /// FLWOR nesting levels (1–4, default 2).
    pub nesting: usize,
    /// K in top-K (default 10).
    pub top_k: usize,
    /// Average view-element size multiplier (1–5X, default 1X).
    pub elem_size: u32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            data_bytes: 2 * 1024 * 1024,
            num_keywords: 2,
            selectivity: Selectivity::Medium,
            num_joins: 1,
            join_selectivity: 1.0,
            nesting: 2,
            top_k: 10,
            elem_size: 1,
            seed: 42,
        }
    }
}

impl ExperimentParams {
    /// The generator configuration this experiment needs.
    pub fn generator_config(&self) -> GeneratorConfig {
        GeneratorConfig {
            target_bytes: self.data_bytes,
            join_selectivity: self.join_selectivity,
            elem_size: self.elem_size,
            seed: self.seed,
        }
    }

    /// The query keywords this experiment searches for.
    pub fn keywords(&self) -> Vec<&'static str> {
        query_keywords(self.selectivity, self.num_keywords)
    }

    /// The XQuery view definition this experiment searches over.
    pub fn view(&self) -> String {
        build_view(self.num_joins, self.nesting)
    }
}

/// Build the experiment view for a given join count and nesting depth.
///
/// * `joins = 0` (or `nesting = 1`): a selection-only view over articles
///   (`yr > 1995`), producing a single PDT — the paper's no-join case.
/// * `joins ≥ 1`: articles nested under their authors via the
///   `au = name` value join (the paper's default view).
/// * `joins ≥ 2..4`: each additional join nests another collection:
///   citations on `fno`, venues on `venue = vid`, publishers on
///   `pub = pid`.
/// * `nesting ≥ 3..4`: additional *navigational* FLWOR levels over the
///   article body (sections, then paragraphs), deepening the view without
///   adding joins.
pub fn build_view(joins: usize, nesting: usize) -> String {
    // Innermost: what an article contributes to the view.
    let mut article_content = String::from("{ $art/fm/tl } ");
    match nesting {
        0..=2 => article_content.push_str("{ $art/bdy }"),
        3 => article_content
            .push_str("{ for $s in $art/bdy/sec return <section> { $s/st } { $s/p } </section> }"),
        _ => article_content.push_str(
            "{ for $s in $art/bdy/sec return <section> { $s/st } \
               { for $pp in $s/p return <para> { $pp } </para> } </section> }",
        ),
    }
    let citation_part = match joins {
        0 | 1 => String::new(),
        2 => "{ for $c in fn:doc(citations.xml)/citations/cite \
               where $c/fno = $art/fno return <cnote> { $c/note } </cnote> }"
            .to_string(),
        3 => "{ for $c in fn:doc(citations.xml)/citations/cite \
               where $c/fno = $art/fno return <cnote> { $c/note } \
                 { for $v in fn:doc(venues.xml)/venues/venue \
                   where $v/vid = $c/venue return <vn> { $v/vname } </vn> } </cnote> }"
            .to_string(),
        _ => "{ for $c in fn:doc(citations.xml)/citations/cite \
               where $c/fno = $art/fno return <cnote> { $c/note } \
                 { for $v in fn:doc(venues.xml)/venues/venue \
                   where $v/vid = $c/venue return <vn> { $v/vname } \
                     { for $pb in fn:doc(publishers.xml)/publishers/publisher \
                       where $pb/pid = $v/pub return $pb/pname } </vn> } </cnote> }"
            .to_string(),
    };

    if joins == 0 || nesting <= 1 {
        // Selection-only view: single document, single PDT.
        return format!(
            "for $art in fn:doc(inex.xml)/books//article \
             where $art/fm/yr > 1995 \
             return <pub> {article_content} {citation_part} </pub>"
        );
    }
    format!(
        "for $auth in fn:doc(authors.xml)/authors/author \
         return <arec> {{ <nm> {{ $auth/name }} </nm> }} \
           {{ for $art in fn:doc(inex.xml)/books//article \
              where $art/fm/au = $auth/name and $art/fm/yr > 1995 \
              return <pub> {article_content} {citation_part} </pub> }} \
         </arec>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use vxv_core::{generate_qpts, KeywordMode, SearchRequest, ViewSearchEngine};
    use vxv_xquery::parse_query;

    #[test]
    fn every_table1_view_parses_and_generates_qpts() {
        for joins in 0..=4 {
            for nesting in 1..=4 {
                let view = build_view(joins, nesting);
                let q = parse_query(&view)
                    .unwrap_or_else(|e| panic!("joins={joins} nesting={nesting}: {e}\n{view}"));
                let qpts = generate_qpts(&q)
                    .unwrap_or_else(|e| panic!("joins={joins} nesting={nesting}: {e}"));
                let expected_docs = if joins == 0 || nesting <= 1 {
                    1 + joins.saturating_sub(1).min(3)
                } else {
                    2 + joins.saturating_sub(1).min(3)
                };
                assert_eq!(qpts.len(), expected_docs, "joins={joins} nesting={nesting}");
            }
        }
    }

    #[test]
    fn default_experiment_runs_end_to_end() {
        let params = ExperimentParams { data_bytes: 96 * 1024, ..ExperimentParams::default() };
        let corpus = generate(&params.generator_config());
        let engine = ViewSearchEngine::new(corpus);
        let out = engine
            .prepare(&params.view())
            .unwrap()
            .search(
                &SearchRequest::new(params.keywords())
                    .top_k(params.top_k)
                    .mode(KeywordMode::Conjunctive),
            )
            .unwrap();
        assert!(out.view_size > 0, "view must not be empty");
    }

    #[test]
    fn selection_only_view_produces_one_pdt() {
        let params = ExperimentParams {
            data_bytes: 64 * 1024,
            num_joins: 0,
            nesting: 1,
            ..ExperimentParams::default()
        };
        let corpus = generate(&params.generator_config());
        let engine = ViewSearchEngine::new(corpus);
        let out = engine
            .prepare(&params.view())
            .unwrap()
            .search(&SearchRequest::new(["data"]).top_k(5))
            .unwrap();
        assert_eq!(out.pdt_stats.len(), 1);
    }

    #[test]
    fn four_join_view_touches_five_documents() {
        let params =
            ExperimentParams { data_bytes: 64 * 1024, num_joins: 4, ..ExperimentParams::default() };
        let corpus = generate(&params.generator_config());
        let engine = ViewSearchEngine::new(corpus);
        let out = engine
            .prepare(&params.view())
            .unwrap()
            .search(&SearchRequest::new(["data"]).top_k(5))
            .unwrap();
        assert_eq!(out.pdt_stats.len(), 5);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::generator::{article_count, generate};

    #[test]
    fn keywords_follow_selectivity_and_count() {
        let p = ExperimentParams {
            selectivity: Selectivity::High,
            num_keywords: 3,
            ..ExperimentParams::default()
        };
        assert_eq!(p.keywords(), vec!["moore", "burnett", "quantum"]);
    }

    #[test]
    fn generator_config_mirrors_params() {
        let p = ExperimentParams {
            data_bytes: 123,
            join_selectivity: 0.2,
            elem_size: 3,
            seed: 9,
            ..ExperimentParams::default()
        };
        let g = p.generator_config();
        assert_eq!(g.target_bytes, 123);
        assert_eq!(g.join_selectivity, 0.2);
        assert_eq!(g.elem_size, 3);
        assert_eq!(g.seed, 9);
    }

    #[test]
    fn planted_keywords_actually_occur_in_generated_text() {
        let p = ExperimentParams { data_bytes: 256 * 1024, ..ExperimentParams::default() };
        let corpus = generate(&p.generator_config());
        let inex = corpus.doc("inex.xml").unwrap();
        let text = inex.full_text(inex.root().unwrap());
        for kw in ["ieee", "thomas", "data"] {
            assert!(text.contains(kw), "{kw} must occur in a 256KB corpus");
        }
    }

    #[test]
    fn article_count_scales_with_target() {
        let small = ExperimentParams { data_bytes: 64 * 1024, ..ExperimentParams::default() };
        let large = ExperimentParams { data_bytes: 512 * 1024, ..ExperimentParams::default() };
        let a = article_count(&small.generator_config());
        let b = article_count(&large.generator_config());
        assert!(b > 6 * a, "{a} vs {b}");
    }

    #[test]
    fn nesting_one_and_joins_zero_coincide() {
        assert!(!build_view(0, 2).contains("authors.xml"));
        assert!(!build_view(3, 1).contains("authors.xml"));
        assert!(build_view(1, 2).contains("authors.xml"));
    }
}
