//! Vocabulary with controlled keyword selectivities.
//!
//! The paper's Table 1 classes query keywords by selectivity on INEX:
//! *Low* (IEEE, Computing — very frequent, long inverted lists), *Medium*
//! (Thomas, Control) and *High* (Moore, Burnett — rare). The generator
//! plants stand-ins for each class at calibrated rates and draws
//! background text from a Zipf-distributed vocabulary, so inverted-list
//! lengths scale the same way the paper's do.

use rand::rngs::StdRng;
use rand::Rng;

/// Keyword selectivity classes of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Selectivity {
    /// Frequent terms — long inverted lists (paper: IEEE, Computing).
    Low,
    /// Mid-frequency terms (paper: Thomas, Control).
    Medium,
    /// Rare terms — short inverted lists (paper: Moore, Burnett).
    High,
}

/// Planted low-selectivity (frequent) keywords (Fig. 15 sweeps 1–5).
pub const LOW_KEYWORDS: [&str; 5] = ["ieee", "computing", "system", "data", "model"];
/// Planted medium-selectivity keywords.
pub const MEDIUM_KEYWORDS: [&str; 5] = ["thomas", "control", "fuzzy", "neural", "logic"];
/// Planted high-selectivity (rare) keywords.
pub const HIGH_KEYWORDS: [&str; 5] = ["moore", "burnett", "quantum", "kalman", "weibull"];

/// Per-word injection probability for each class.
const LOW_RATE: f64 = 0.06;
const MEDIUM_RATE: f64 = 0.012;
const HIGH_RATE: f64 = 0.0015;

/// The first `n` query keywords of a class.
pub fn query_keywords(selectivity: Selectivity, n: usize) -> Vec<&'static str> {
    let pool: &[&str; 5] = match selectivity {
        Selectivity::Low => &LOW_KEYWORDS,
        Selectivity::Medium => &MEDIUM_KEYWORDS,
        Selectivity::High => &HIGH_KEYWORDS,
    };
    pool[..n.min(5)].to_vec()
}

/// Background vocabulary size.
const BACKGROUND: usize = 1200;

/// Draw one word: a planted keyword with class-calibrated probability,
/// otherwise a Zipf-ish background word.
pub fn draw_word(rng: &mut StdRng) -> String {
    let roll: f64 = rng.gen();
    let mut acc = 0.0;
    for (rate, pool) in
        [(LOW_RATE, &LOW_KEYWORDS), (MEDIUM_RATE, &MEDIUM_KEYWORDS), (HIGH_RATE, &HIGH_KEYWORDS)]
    {
        let total = rate * pool.len() as f64;
        if roll < acc + total {
            let i = ((roll - acc) / rate) as usize;
            return pool[i.min(pool.len() - 1)].to_string();
        }
        acc += total;
    }
    // Zipf-ish background: log-uniform ranks spread occurrences across
    // the vocabulary while keeping a long tail.
    let u: f64 = rng.gen();
    let rank = ((BACKGROUND as f64).powf(u) as usize).min(BACKGROUND) - 1;
    background_word(rank)
}

/// The `rank`-th background word (deterministic synthesis, no table).
pub fn background_word(rank: usize) -> String {
    const SYLLABLES: [&str; 16] = [
        "ta", "re", "mi", "con", "ver", "lo", "san", "del", "pra", "ku", "zen", "for", "bi", "nor",
        "gal", "hu",
    ];
    let mut w = String::new();
    let mut r = rank + 17;
    for _ in 0..3 {
        w.push_str(SYLLABLES[r % SYLLABLES.len()]);
        r /= SYLLABLES.len();
    }
    w
}

/// A sentence of `len` words.
pub fn sentence(rng: &mut StdRng, len: usize) -> String {
    let mut out = String::with_capacity(len * 6);
    for i in 0..len {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&draw_word(rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn keyword_pools_are_disjoint() {
        for low in LOW_KEYWORDS {
            assert!(!MEDIUM_KEYWORDS.contains(&low));
            assert!(!HIGH_KEYWORDS.contains(&low));
        }
        for med in MEDIUM_KEYWORDS {
            assert!(!HIGH_KEYWORDS.contains(&med));
        }
    }

    #[test]
    fn selectivity_classes_order_by_frequency() {
        let mut rng = StdRng::seed_from_u64(7);
        let text = sentence(&mut rng, 200_000);
        let count = |w: &str| text.split(' ').filter(|t| *t == w).count();
        let low: usize = LOW_KEYWORDS.iter().map(|w| count(w)).sum();
        let medium: usize = MEDIUM_KEYWORDS.iter().map(|w| count(w)).sum();
        let high: usize = HIGH_KEYWORDS.iter().map(|w| count(w)).sum();
        assert!(low > 4 * medium, "low={low} medium={medium}");
        assert!(medium > 4 * high, "medium={medium} high={high}");
        assert!(high > 0, "rare keywords must still occur at this scale");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = sentence(&mut StdRng::seed_from_u64(3), 50);
        let b = sentence(&mut StdRng::seed_from_u64(3), 50);
        let c = sentence(&mut StdRng::seed_from_u64(4), 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn query_keywords_truncate_to_pool() {
        assert_eq!(query_keywords(Selectivity::High, 2), vec!["moore", "burnett"]);
        assert_eq!(query_keywords(Selectivity::Low, 9).len(), 5);
    }
}
