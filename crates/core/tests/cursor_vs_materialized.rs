//! Property test: the streaming cursor merge produces PDTs
//! **byte-identical** to the seed's materialized-list merge, on
//! randomized documents × randomized QPTs.
//!
//! [`generate_pdt_from_materialized`] is the seed's path preserved
//! verbatim (decode every probe into per-node vectors, linear min-scan
//! merge); [`generate_pdt_from_lists`] is the new heap merge pulling
//! directly from block-compressed index cursors. Everything observable
//! must match: element sets, tags, values, byte lengths, tf annotations,
//! serialized trees, and the sweep's work counters.

use proptest::prelude::*;
use vxv_core::generate::{generate_pdt_from_lists, generate_pdt_from_materialized, DocMeta};
use vxv_core::prepare::prepare_lists;
use vxv_core::qpt::{Qpt, QptNodeId};
use vxv_index::{Axis, InvertedIndex, PathIndex, ValuePredicate};
use vxv_xml::{serialize_subtree, Corpus, DocumentBuilder};

const TAGS: &[&str] = &["a", "b", "c", "d"];
const WORDS: &[&str] = &["alpha", "beta", "gamma"];

/// A recipe for one random element: tag index, optional value, children.
#[derive(Clone, Debug)]
struct TreeSpec {
    tag: usize,
    value: Option<u8>,
    word: Option<usize>,
    children: Vec<TreeSpec>,
}

fn tree_strategy(depth: u32) -> impl Strategy<Value = TreeSpec> {
    let leaf = (0..TAGS.len(), proptest::option::of(0u8..6), proptest::option::of(0..WORDS.len()))
        .prop_map(|(tag, value, word)| TreeSpec { tag, value, word, children: vec![] });
    leaf.prop_recursive(depth, 30, 5, |inner| {
        (
            0..TAGS.len(),
            proptest::option::of(0u8..6),
            proptest::option::of(0..WORDS.len()),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(tag, value, word, children)| TreeSpec {
                tag,
                value,
                word,
                children,
            })
    })
}

fn build_doc(spec: &TreeSpec) -> Corpus {
    fn rec(b: &mut DocumentBuilder, s: &TreeSpec) {
        b.begin(TAGS[s.tag]);
        let mut text = String::new();
        if let Some(v) = s.value {
            text.push_str(&v.to_string());
        }
        if let Some(w) = s.word {
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(WORDS[w]);
        }
        if !text.is_empty() {
            b.text(&text);
        }
        for c in &s.children {
            rec(b, c);
        }
        b.end();
    }
    let mut b = DocumentBuilder::new("doc.xml", 1);
    rec(&mut b, spec);
    let mut corpus = Corpus::new();
    corpus.add(b.finish());
    corpus
}

/// A recipe for one random QPT node.
#[derive(Clone, Debug)]
struct QptSpec {
    tag: usize,
    axis: bool, // true = descendant
    mandatory: bool,
    pred: Option<(u8, u8)>, // (op 0..3, operand)
    v: bool,
    c: bool,
    children: Vec<QptSpec>,
}

fn qpt_strategy() -> impl Strategy<Value = QptSpec> {
    let leaf = (
        0..TAGS.len(),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of((0u8..3, 0u8..6)),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(tag, axis, mandatory, pred, v, c)| QptSpec {
            tag,
            axis,
            mandatory,
            pred,
            v,
            c,
            children: vec![],
        });
    leaf.prop_recursive(3, 12, 3, |inner| {
        (
            0..TAGS.len(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(tag, axis, mandatory, v, c, children)| QptSpec {
                tag,
                axis,
                mandatory,
                pred: None,
                v,
                c,
                children,
            })
    })
}

fn build_qpt(spec: &QptSpec) -> Qpt {
    fn rec(q: &mut Qpt, parent: Option<QptNodeId>, s: &QptSpec) {
        let axis = if s.axis { Axis::Descendant } else { Axis::Child };
        let id = q.add_node(parent, axis, s.mandatory, TAGS[s.tag]);
        q.node_mut(id).v_ann = s.v;
        q.node_mut(id).c_ann = s.c;
        if let Some((op, val)) = s.pred {
            let v = val.to_string();
            q.node_mut(id).preds.push(match op {
                0 => ValuePredicate::Eq(v),
                1 => ValuePredicate::Lt(v),
                _ => ValuePredicate::Gt(v),
            });
        }
        for c in &s.children {
            rec(q, Some(id), c);
        }
    }
    let mut q = Qpt::new("doc.xml");
    rec(&mut q, None, spec);
    q
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn cursor_merge_is_byte_identical_to_materialized_merge(
        tree in tree_strategy(4),
        qspec in qpt_strategy(),
    ) {
        let corpus = build_doc(&tree);
        let qpt = build_qpt(&qspec);
        let path_index = PathIndex::build(&corpus);
        let inverted = InvertedIndex::build(&corpus);
        let keywords: Vec<String> = WORDS.iter().map(|w| w.to_string()).collect();
        let meta = DocMeta { name: "doc.xml".into(), root_tag: TAGS[tree.tag].into(), root_ordinal: 1, segment: 0 };

        let plan = prepare_lists(&qpt, &path_index, 1);
        let materialized = plan.materialize();

        let (streamed, s_stats) =
            generate_pdt_from_lists(&qpt, &plan, &inverted, &keywords, &meta);
        let (reference, r_stats) =
            generate_pdt_from_materialized(&qpt, &materialized, &inverted, &keywords, &meta);

        // The sweeps consumed the same entries in the same order.
        prop_assert_eq!(s_stats, r_stats, "work counters diverge\nQPT:\n{}", &qpt);

        // Annotation tables identical (byte lengths, tf vectors).
        prop_assert_eq!(&streamed.info, &reference.info, "info tables differ\nQPT:\n{}", &qpt);

        // Serialized trees byte-identical.
        let s_root = streamed.doc.root().expect("pdt has anchor root");
        let r_root = reference.doc.root().expect("pdt has anchor root");
        prop_assert_eq!(
            serialize_subtree(&streamed.doc, s_root),
            serialize_subtree(&reference.doc, r_root),
            "serialized PDTs differ\nQPT:\n{}",
            &qpt
        );

        // Dewey IDs preserved node for node.
        for d in reference.info.keys() {
            prop_assert!(streamed.doc.node_by_dewey(d).is_some(), "missing {} in streamed", d);
        }
    }
}
