//! Property test: the index-only streaming PDT generator produces exactly
//! the PDT defined by Definitions 1–3 (computed by the oracle from base
//! data) on randomized documents × randomized QPTs — the executable form
//! of the paper's Theorem F.1.

use proptest::prelude::*;
use vxv_core::generate::{generate_pdt, DocMeta};
use vxv_core::oracle::oracle_pdt;
use vxv_core::qpt::{Qpt, QptNodeId};
use vxv_index::{Axis, InvertedIndex, PathIndex, ValuePredicate};
use vxv_xml::{Corpus, DocumentBuilder};

const TAGS: &[&str] = &["a", "b", "c", "d"];
const WORDS: &[&str] = &["alpha", "beta", "gamma"];

/// A recipe for one random element: tag index, optional value, children.
#[derive(Clone, Debug)]
struct TreeSpec {
    tag: usize,
    value: Option<u8>,
    word: Option<usize>,
    children: Vec<TreeSpec>,
}

fn tree_strategy(depth: u32) -> impl Strategy<Value = TreeSpec> {
    let leaf = (0..TAGS.len(), proptest::option::of(0u8..6), proptest::option::of(0..WORDS.len()))
        .prop_map(|(tag, value, word)| TreeSpec { tag, value, word, children: vec![] });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (
            0..TAGS.len(),
            proptest::option::of(0u8..6),
            proptest::option::of(0..WORDS.len()),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, value, word, children)| TreeSpec {
                tag,
                value,
                word,
                children,
            })
    })
}

fn build_doc(spec: &TreeSpec) -> Corpus {
    fn rec(b: &mut DocumentBuilder, s: &TreeSpec) {
        b.begin(TAGS[s.tag]);
        let mut text = String::new();
        if let Some(v) = s.value {
            text.push_str(&v.to_string());
        }
        if let Some(w) = s.word {
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(WORDS[w]);
        }
        if !text.is_empty() {
            b.text(&text);
        }
        for c in &s.children {
            rec(b, c);
        }
        b.end();
    }
    let mut b = DocumentBuilder::new("doc.xml", 1);
    rec(&mut b, spec);
    let mut corpus = Corpus::new();
    corpus.add(b.finish());
    corpus
}

/// A recipe for one random QPT node.
#[derive(Clone, Debug)]
struct QptSpec {
    tag: usize,
    axis: bool, // true = descendant
    mandatory: bool,
    pred: Option<(u8, u8)>, // (op 0..3, operand)
    v: bool,
    c: bool,
    children: Vec<QptSpec>,
}

fn qpt_strategy() -> impl Strategy<Value = QptSpec> {
    let leaf = (
        0..TAGS.len(),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of((0u8..3, 0u8..6)),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(tag, axis, mandatory, pred, v, c)| QptSpec {
            tag,
            axis,
            mandatory,
            pred,
            v,
            c,
            children: vec![],
        });
    leaf.prop_recursive(3, 12, 3, |inner| {
        (
            0..TAGS.len(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(tag, axis, mandatory, v, c, children)| QptSpec {
                tag,
                axis,
                mandatory,
                pred: None,
                v,
                c,
                children,
            })
    })
}

fn build_qpt(spec: &QptSpec) -> Qpt {
    fn rec(q: &mut Qpt, parent: Option<QptNodeId>, s: &QptSpec) {
        let axis = if s.axis { Axis::Descendant } else { Axis::Child };
        let id = q.add_node(parent, axis, s.mandatory, TAGS[s.tag]);
        q.node_mut(id).v_ann = s.v;
        q.node_mut(id).c_ann = s.c;
        if let Some((op, val)) = s.pred {
            let v = val.to_string();
            q.node_mut(id).preds.push(match op {
                0 => ValuePredicate::Eq(v),
                1 => ValuePredicate::Lt(v),
                _ => ValuePredicate::Gt(v),
            });
        }
        for c in &s.children {
            rec(q, Some(id), c);
        }
    }
    let mut q = Qpt::new("doc.xml");
    rec(&mut q, None, spec);
    q
}

proptest! {
    // 256 cases by default; override with PROPTEST_CASES for deep runs.
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn streaming_pdt_equals_oracle(tree in tree_strategy(4), qspec in qpt_strategy()) {
        let corpus = build_doc(&tree);
        let qpt = build_qpt(&qspec);
        let path_index = PathIndex::build(&corpus);
        let inverted = InvertedIndex::build(&corpus);
        let keywords: Vec<String> = WORDS.iter().map(|w| w.to_string()).collect();
        let doc = corpus.doc("doc.xml").unwrap();
        let meta = DocMeta {
            name: "doc.xml".into(),
            root_tag: doc.node_tag(doc.root().unwrap()).to_string(),
            root_ordinal: 1,
            segment: 0,
        };
        let (pdt, _) = generate_pdt(&qpt, &path_index, &inverted, &keywords, &meta);
        let oracle = oracle_pdt(doc, &qpt, &inverted, &keywords);

        let got: Vec<String> = pdt.info.keys().map(|d| d.to_string()).collect();
        let want: Vec<String> = oracle.info.keys().map(|d| d.to_string()).collect();
        prop_assert_eq!(&got, &want, "element sets differ\nQPT:\n{}", &qpt);

        for (d, want_info) in &oracle.info {
            let got_info = pdt.node_info(d).unwrap();
            prop_assert_eq!(got_info.byte_len, want_info.byte_len, "byte_len at {}", d);
            prop_assert_eq!(&got_info.tf, &want_info.tf, "tf at {}", d);
            let gn = pdt.doc.node_by_dewey(d).unwrap();
            let on = oracle.doc.node_by_dewey(d).unwrap();
            prop_assert_eq!(pdt.doc.node_tag(gn), oracle.doc.node_tag(on));
            prop_assert_eq!(pdt.doc.value(gn), oracle.doc.value(on), "value at {}", d);
            // Structure: same parent linkage (nearest qualifying ancestor).
            let gp = pdt.doc.node(gn).parent.map(|p| pdt.doc.node(p).dewey.clone());
            let op = oracle.doc.node(on).parent.map(|p| oracle.doc.node(p).dewey.clone());
            prop_assert_eq!(gp, op, "parent at {}", d);
        }
    }
}
