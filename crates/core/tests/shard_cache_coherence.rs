//! Property tests for the read-scale layer: N-shard routing is
//! byte-identical to a single-engine union build (score bits and
//! pruning included), the epoch-keyed result cache never serves a stale
//! response under interleaved append/flush/compact/search traffic, and
//! WAL checkpointing bounds restart replay to post-checkpoint records.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use vxv_core::{
    KeywordMode, SearchRequest, SearchResponse, ShardedCatalog, ViewCatalog, ViewSearchEngine,
    WriteConfig,
};
use vxv_xml::Corpus;

const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "xml", "search"];

/// One synthetic document: `<lib>` of items, each with a name made of
/// pool words and a year some view predicates filter on.
fn doc_xml(items: &[Vec<usize>]) -> String {
    let mut xml = String::from("<lib>");
    for (i, words) in items.iter().enumerate() {
        let name: Vec<&str> = words.iter().map(|&w| WORDS[w % WORDS.len()]).collect();
        let year = 1995 + (i * 3) % 12;
        xml.push_str(&format!("<item><name>{}</name><year>{year}</year></item>", name.join(" ")));
    }
    xml.push_str("</lib>");
    xml
}

fn view_for(doc: &str) -> String {
    format!(
        "for $i in fn:doc({doc})/lib/item where $i/year > 1999 \
         return <v> {{ $i/name }} </v>"
    )
}

/// Full response byte-identity: counts, idf bits, and per-hit rank,
/// score bits, tf, byte length, XML.
fn same_response(a: &SearchResponse, b: &SearchResponse) -> Result<(), String> {
    if a.matching != b.matching {
        return Err(format!("matching {} vs {}", a.matching, b.matching));
    }
    if a.view_size != b.view_size {
        return Err(format!("view_size {} vs {}", a.view_size, b.view_size));
    }
    if a.idf.len() != b.idf.len() {
        return Err("idf length".into());
    }
    for (x, y) in a.idf.iter().zip(&b.idf) {
        if x.to_bits() != y.to_bits() {
            return Err(format!("idf bits {x} vs {y}"));
        }
    }
    if a.hits.len() != b.hits.len() {
        return Err(format!("hits {} vs {}", a.hits.len(), b.hits.len()));
    }
    for (x, y) in a.hits.iter().zip(&b.hits) {
        if x.rank != y.rank {
            return Err(format!("rank {} vs {}", x.rank, y.rank));
        }
        if x.score.to_bits() != y.score.to_bits() {
            return Err(format!("score bits {} vs {}", x.score, y.score));
        }
        if x.tf != y.tf {
            return Err(format!("tf {:?} vs {:?}", x.tf, y.tf));
        }
        if x.byte_len != y.byte_len {
            return Err(format!("byte_len {} vs {}", x.byte_len, y.byte_len));
        }
        if x.xml != y.xml {
            return Err(format!("xml '{}' vs '{}'", x.xml, y.xml));
        }
    }
    Ok(())
}

fn request(kws: &[usize], k: usize, any: bool, prune: bool) -> SearchRequest {
    let keywords: Vec<&str> = kws.iter().map(|&w| WORDS[w % WORDS.len()]).collect();
    let mode = if any { KeywordMode::Disjunctive } else { KeywordMode::Conjunctive };
    SearchRequest::new(keywords).top_k(k).mode(mode).prune(prune)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The tentpole acceptance property: for random corpora, shard
    /// counts, and requests (pruned and exact), every view's routed
    /// search over a [`ShardedCatalog`] is byte-identical — hits, score
    /// bits, order, `matching`, `idf` — to the same view over one
    /// engine holding every document.
    #[test]
    fn routed_shards_are_byte_identical_to_union_build(
        docs in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0usize..WORDS.len(), 1..4), 1..5),
            2..7,
        ),
        shards in 1usize..6,
        kws in prop::collection::vec(0usize..WORDS.len(), 1..4),
        disjunctive in any::<bool>(),
        prune in any::<bool>(),
    ) {
        let mut corpus = Corpus::new();
        for (d, items) in docs.iter().enumerate() {
            corpus.add_parsed(&format!("d{d}.xml"), &doc_xml(items)).unwrap();
        }
        let union = ViewCatalog::new(ViewSearchEngine::new(corpus.clone()));
        let sharded = ShardedCatalog::partition(&corpus, shards);
        for d in 0..docs.len() {
            let name = format!("v{d}");
            let text = view_for(&format!("d{d}.xml"));
            union.register(&name, &text).unwrap();
            sharded.register(&name, &text).unwrap();
        }
        let req = request(&kws, 4, disjunctive, prune);
        for d in 0..docs.len() {
            let name = format!("v{d}");
            let a = union.search(&name, &req).unwrap();
            let b = sharded.search(&name, &req).unwrap();
            if let Err(why) = same_response(&a, &b) {
                prop_assert!(false, "view {name} over {shards} shard(s): {why}");
            }
        }
    }
}

/// One mutation/search op in the interleaving proptest.
#[derive(Clone, Debug)]
enum Op {
    /// Append a fresh document (durable write path) and register a view
    /// over it, so later searches cover memtable-backed epochs.
    Append(Vec<usize>),
    Flush,
    Compact,
    /// Search view `view % live views` with the given keyword picks.
    Search {
        view: usize,
        kws: Vec<usize>,
        any: bool,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(0usize..WORDS.len(), 1..4).prop_map(Op::Append),
        Just(Op::Flush),
        Just(Op::Compact),
        (0usize..8, prop::collection::vec(0usize..WORDS.len(), 1..3), any::<bool>())
            .prop_map(|(view, kws, any)| Op::Search { view, kws, any }),
        (0usize..8, prop::collection::vec(0usize..WORDS.len(), 1..3), any::<bool>())
            .prop_map(|(view, kws, any)| Op::Search { view, kws, any }),
    ]
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The cache-coherence satellite: under arbitrary interleavings of
    /// append / flush / compact / search, a response served through the
    /// epoch-keyed cache is always byte-identical to a freshly prepared
    /// exact search at that moment — the cache can serve *identical*
    /// bytes or recompute, never stale ones. Every search runs twice so
    /// the second round is answered at the same epoch (a cache hit
    /// whenever capacity allows) and must still match.
    #[test]
    fn interleaved_writes_never_serve_stale_cache(
        ops in prop::collection::vec(op_strategy(), 1..14),
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("vxv-coherence-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut corpus = Corpus::new();
        corpus.add_parsed("base0.xml", &doc_xml(&[vec![0, 4], vec![1, 5]])).unwrap();
        corpus.add_parsed("base1.xml", &doc_xml(&[vec![2, 4, 5]])).unwrap();
        let catalog = ViewCatalog::new(ViewSearchEngine::new(corpus));
        catalog.engine().enable_writes(dir.join("wal.vxl"), WriteConfig::default()).unwrap();

        // (name, text) of every live view; grows as appends land.
        let mut views: Vec<(String, String)> = Vec::new();
        for (d, doc) in ["base0.xml", "base1.xml"].iter().enumerate() {
            let name = format!("v{d}");
            let text = view_for(doc);
            catalog.register(&name, &text).unwrap();
            views.push((name, text));
        }

        let mut appended = 0usize;
        for op in &ops {
            match op {
                Op::Append(words) => {
                    let doc = format!("extra{appended}.xml");
                    appended += 1;
                    catalog
                        .engine()
                        .append([(doc.as_str(), doc_xml(std::slice::from_ref(words)).as_str())])
                        .unwrap();
                    let name = format!("x{appended}");
                    let text = view_for(&doc);
                    catalog.register(&name, &text).unwrap();
                    views.push((name, text));
                }
                Op::Flush => {
                    catalog.engine().flush_memtable();
                }
                Op::Compact => {
                    catalog.engine().compact();
                }
                Op::Search { view, kws, any } => {
                    let (name, text) = &views[view % views.len()];
                    let req = request(kws, 3, *any, true);
                    for round in ["first", "repeat"] {
                        // Through the catalog: admission + epoch refresh
                        // + result cache.
                        let cached = catalog.search(name, &req).unwrap();
                        // Fresh prepare at the current segment set: the
                        // exact, cache-free reference.
                        let fresh = catalog
                            .engine()
                            .prepare(text)
                            .unwrap()
                            .search(&req.clone().prune(false))
                            .unwrap();
                        if let Err(why) = same_response(&cached, &fresh) {
                            prop_assert!(false, "{round} search of {name}: {why}");
                        }
                    }
                }
            }
        }
        // Counter sanity: the cache was consulted and never under- or
        // over-counted (hits + misses == cached-path lookups).
        let stats = catalog.engine().result_cache().stats();
        let searches = 2 * ops
            .iter()
            .filter(|op| matches!(op, Op::Search { .. }))
            .count() as u64;
        prop_assert_eq!(stats.hits + stats.misses, searches);

        drop(catalog);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The WAL-checkpointing satellite, end to end: after a checkpoint
/// persists the flushed state, a restart replays **only** records
/// appended after the checkpoint (pinned by the replay_records
/// counter), and every document — persisted or replayed — is
/// searchable.
#[test]
fn checkpoint_bounds_restart_replay() {
    let dir = std::env::temp_dir().join(format!("vxv-ckpt-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("wal.vxl");

    let mut corpus = Corpus::new();
    corpus.add_parsed("base0.xml", &doc_xml(&[vec![0, 4], vec![1, 5]])).unwrap();
    let store = vxv_xml::DiskStore::persist(&corpus, &dir).unwrap();
    vxv_core::IndexBundle::build(&corpus).save(&dir).unwrap();

    {
        let engine = ViewSearchEngine::open(store, vxv_core::IndexBundle::load(&dir).unwrap());
        let replay = engine.enable_writes(&wal, WriteConfig::default()).unwrap();
        assert_eq!(replay.records, 0, "fresh WAL");

        engine.append([("pre1.xml", doc_xml(&[vec![2, 4]]).as_str())]).unwrap();
        engine.append([("pre2.xml", doc_xml(&[vec![3, 5]]).as_str())]).unwrap();
        assert!(engine.flush_memtable());
        let report = engine.checkpoint(&dir).unwrap();
        assert_eq!(report.documents_persisted, 2, "both appended docs hit the store");
        assert!(report.wal_bytes_truncated > 0, "two records were dropped");
        assert_eq!(engine.stats().writes.checkpoints, 1);

        // This one lands *after* the checkpoint: the only record a
        // restart may replay.
        engine.append([("post.xml", doc_xml(&[vec![0, 5]]).as_str())]).unwrap();
    } // drop joins the compactor and syncs the WAL

    let store = vxv_xml::DiskStore::open(&dir).unwrap();
    let engine = ViewSearchEngine::open(store, vxv_core::IndexBundle::load(&dir).unwrap());
    let replay = engine.enable_writes(&wal, WriteConfig::default()).unwrap();
    assert_eq!(replay.records, 1, "only the post-checkpoint record replays");
    assert_eq!(replay.documents, 1);

    // Persisted and replayed documents alike are present and searchable.
    for doc in ["base0.xml", "pre1.xml", "pre2.xml", "post.xml"] {
        assert!(engine.doc_meta(doc).is_some(), "{doc} missing after restart");
        let text = format!("for $i in fn:doc({doc})/lib/item return <v> {{ $i/name }} </v>");
        let view = engine.prepare(&text).unwrap();
        let out = view
            .search(&SearchRequest::new([WORDS[4], WORDS[5]]).mode(KeywordMode::Disjunctive))
            .unwrap();
        assert!(out.view_size > 0, "{doc} view is empty after restart");
    }

    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}
