//! Reference (oracle) PDT construction straight from Definitions 1–3.
//!
//! This implementation reads the *base document* and computes candidate
//! elements (`CE`, descendant constraints) bottom-up and PDT elements
//! (`PE`, ancestor constraints) top-down, exactly as the definitions state.
//! It is deliberately simple and slow; the streaming index-only algorithm
//! in [`crate::generate`] is property-tested against it, turning the
//! paper's Theorem F.1 into an executable check.

use crate::pdt::{Pdt, PdtElem};
use crate::qpt::Qpt;
use std::collections::BTreeMap;
use vxv_index::{Axis, InvertedIndex};
use vxv_xml::{DeweyId, Document, NodeId};

/// The per-element QPT-node match masks of the oracle run.
pub type OracleElements = BTreeMap<DeweyId, u64>;

/// Compute the PDT element set for `qpt` over `doc`, returning for every
/// qualifying element the bitmask of QPT nodes it belongs to (`PE`).
pub fn oracle_pdt_elements(doc: &Document, qpt: &Qpt) -> OracleElements {
    assert!(qpt.len() <= 64, "oracle supports up to 64 QPT nodes");
    let n = doc.len();
    let mut ce = vec![0u64; n];

    // Bottom-up: children appear after parents in the arena, so reverse
    // document order visits every descendant before its ancestor.
    for i in (0..n).rev() {
        let node_id = NodeId(i as u32);
        let node = doc.node(node_id);
        for q in qpt.node_ids() {
            let qn = qpt.node(q);
            if doc.tag_name(node.tag) != qn.tag {
                continue;
            }
            // Predicates apply to the element's own atomic value.
            if !qn.preds.is_empty() {
                let Some(v) = &node.text else { continue };
                if !qn.preds.iter().all(|p| p.eval(v)) {
                    continue;
                }
            }
            let mut ok = true;
            for edge in qpt.mandatory_children(q) {
                let bit = 1u64 << edge.child.0;
                let found = match edge.axis {
                    Axis::Child => {
                        doc.children(node_id).iter().any(|c| ce[c.0 as usize] & bit != 0)
                    }
                    Axis::Descendant => {
                        doc.descendants(node_id).any(|d| ce[d.0 as usize] & bit != 0)
                    }
                };
                if !found {
                    ok = false;
                    break;
                }
            }
            if ok {
                ce[i] |= 1u64 << q.0;
            }
        }
    }

    // Top-down: ancestors appear before descendants, so a forward pass with
    // an ancestor stack sees every ancestor's PE before the element's.
    let mut pe = vec![0u64; n];
    // Stack of (depth, node index); cumulative PE "or" recomputed per node.
    let mut stack: Vec<usize> = Vec::new();
    #[allow(clippy::needless_range_loop)] // walks ce and pe in lockstep
    for i in 0..n {
        let node_id = NodeId(i as u32);
        let depth = doc.node(node_id).dewey.len();
        while stack.len() >= depth {
            stack.pop();
        }
        for q in qpt.node_ids() {
            if ce[i] & (1u64 << q.0) == 0 {
                continue;
            }
            let qn = qpt.node(q);
            let ok = match qn.parent {
                None => match qn.incoming_axis {
                    // Child of the virtual document root: the root element.
                    Axis::Child => depth == 1,
                    Axis::Descendant => true,
                },
                Some(qp) => {
                    let bit = 1u64 << qp.0;
                    match qn.incoming_axis {
                        Axis::Child => stack
                            .last()
                            .map(|&p| {
                                doc.node(NodeId(p as u32)).dewey.len() == depth - 1
                                    && pe[p] & bit != 0
                            })
                            .unwrap_or(false),
                        Axis::Descendant => stack.iter().any(|&p| pe[p] & bit != 0),
                    }
                }
            };
            if ok {
                pe[i] |= 1u64 << q.0;
            }
        }
        stack.push(i);
    }

    let mut out = OracleElements::new();
    #[allow(clippy::needless_range_loop)] // i doubles as the NodeId
    for i in 0..n {
        if pe[i] != 0 {
            out.insert(doc.node(NodeId(i as u32)).dewey.clone(), pe[i]);
        }
    }
    out
}

/// Build a full [`Pdt`] from the oracle element set, materializing values
/// and tf annotations from the base document (oracle-side only; the real
/// pipeline gets these from indices).
pub fn oracle_pdt(doc: &Document, qpt: &Qpt, inverted: &InvertedIndex, keywords: &[String]) -> Pdt {
    let elements = oracle_pdt_elements(doc, qpt);
    let mut map: BTreeMap<DeweyId, PdtElem> = BTreeMap::new();
    for (dewey, mask) in &elements {
        let node_id = doc.node_by_dewey(dewey).expect("oracle element exists");
        let node = doc.node(node_id);
        let mut value = None;
        let mut content = false;
        let mut byte_len = 0;
        for q in qpt.node_ids() {
            if mask & (1u64 << q.0) == 0 {
                continue;
            }
            let qn = qpt.node(q);
            if qpt.probed(q) {
                // Probed nodes are the ones whose values and byte lengths
                // the index supplies; mirror that here so the oracle and
                // the index-only algorithm agree bit-for-bit.
                value = value.or_else(|| node.text.clone());
                byte_len = node.byte_len;
            }
            content |= qn.c_ann;
        }
        map.insert(
            dewey.clone(),
            PdtElem { tag: doc.tag_name(node.tag).to_string(), value, byte_len, content },
        );
    }
    let root = doc.root().expect("non-empty document");
    let root_tag = doc.node_tag(root).to_string();
    let ordinal = doc.node(root).dewey.components()[0];
    let mut pdt = Pdt::assemble(doc.name(), &root_tag, ordinal, &map, keywords.len());
    // Fill tf values for content nodes.
    for (dewey, info) in pdt.info.iter_mut() {
        if let Some(tf) = &mut info.tf {
            for (k, kw) in keywords.iter().enumerate() {
                tf[k] = inverted.subtree_tf(kw, dewey);
            }
        }
    }
    pdt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qpt::Qpt;
    use vxv_index::{Axis, ValuePredicate};
    use vxv_xml::Corpus;

    /// The book QPT of Fig. 6(a).
    fn book_qpt() -> Qpt {
        let mut q = Qpt::new("books.xml");
        let books = q.add_node(None, Axis::Child, true, "books");
        let book = q.add_node(Some(books), Axis::Descendant, true, "book");
        let isbn = q.add_node(Some(book), Axis::Child, false, "isbn");
        q.node_mut(isbn).v_ann = true;
        let title = q.add_node(Some(book), Axis::Child, false, "title");
        q.node_mut(title).c_ann = true;
        let year = q.add_node(Some(book), Axis::Child, true, "year");
        q.node_mut(year).preds.push(ValuePredicate::Gt("1995".into()));
        q
    }

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>New XML</title><year>1996</year></book>\
               <book><isbn>222</isbn><title>Old</title><year>1990</year></book>\
               <book><title>No Year</title></book>\
               <shelf><book><isbn>333</isbn><year>2001</year></book></shelf>\
             </books>",
        )
        .unwrap();
        c
    }

    #[test]
    fn descendant_constraints_prune_books_without_qualifying_year() {
        let c = corpus();
        let doc = c.doc("books.xml").unwrap();
        let elems = oracle_pdt_elements(doc, &book_qpt());
        let ids: Vec<String> = elems.keys().map(|d| d.to_string()).collect();
        // book 1.1 qualifies (year 1996); its isbn/title come along.
        // book 1.2 fails (year 1990), book 1.3 fails (no year),
        // shelf book 1.4.1 qualifies (year 2001) via the // axis.
        assert_eq!(ids, vec!["1", "1.1", "1.1.1", "1.1.2", "1.1.3", "1.4.1", "1.4.1.1", "1.4.1.2"]);
    }

    #[test]
    fn ancestor_constraints_drop_children_of_failed_parents() {
        let c = corpus();
        let doc = c.doc("books.xml").unwrap();
        let elems = oracle_pdt_elements(doc, &book_qpt());
        // isbn 222 exists in the data but its book fails the year test.
        assert!(!elems.contains_key(&"1.2.1".parse().unwrap()));
    }

    #[test]
    fn child_axis_at_the_top_only_matches_the_root() {
        let c = corpus();
        let doc = c.doc("books.xml").unwrap();
        let mut q = Qpt::new("books.xml");
        q.add_node(None, Axis::Child, true, "book"); // root is <books>, not <book>
        assert!(oracle_pdt_elements(doc, &q).is_empty());
        let mut q2 = Qpt::new("books.xml");
        q2.add_node(None, Axis::Descendant, true, "book");
        assert_eq!(oracle_pdt_elements(doc, &q2).len(), 4);
    }

    #[test]
    fn mandatory_child_vs_descendant_axes() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><a><x>1</x></a><a><m><x>2</x></m></a></r>").unwrap();
        let doc = c.doc("d.xml").unwrap();
        // /r//a with mandatory child /x: only the first <a>.
        let mut q = Qpt::new("d.xml");
        let r = q.add_node(None, Axis::Child, true, "r");
        let a = q.add_node(Some(r), Axis::Descendant, true, "a");
        q.add_node(Some(a), Axis::Child, true, "x");
        let ids: Vec<String> = oracle_pdt_elements(doc, &q).keys().map(|d| d.to_string()).collect();
        assert_eq!(ids, vec!["1", "1.1", "1.1.1"]);
        // With // x both <a>s qualify.
        let mut q2 = Qpt::new("d.xml");
        let r = q2.add_node(None, Axis::Child, true, "r");
        let a = q2.add_node(Some(r), Axis::Descendant, true, "a");
        q2.add_node(Some(a), Axis::Descendant, true, "x");
        assert_eq!(oracle_pdt_elements(doc, &q2).len(), 5);
    }

    #[test]
    fn repeated_tags_match_multiple_qpt_nodes() {
        let mut c = Corpus::new();
        // 1=a{ 1.1=a{ 1.1.1=b, 1.1.2=a{ 1.1.2.1=b } } }
        c.add_parsed("d.xml", "<a><a><b>1</b><a><b>2</b></a></a></a>").unwrap();
        let doc = c.doc("d.xml").unwrap();
        // //a//a/b
        let mut q = Qpt::new("d.xml");
        let a1 = q.add_node(None, Axis::Descendant, true, "a");
        let a2 = q.add_node(Some(a1), Axis::Descendant, true, "a");
        q.add_node(Some(a2), Axis::Child, true, "b");
        let elems = oracle_pdt_elements(doc, &q);
        let ids: Vec<String> = elems.keys().map(|d| d.to_string()).collect();
        assert_eq!(ids, vec!["1", "1.1", "1.1.1", "1.1.2", "1.1.2.1"]);
        // 1.1 matches a2 (direct b child) AND a1 (descendant 1.1.2 is an
        // a2-candidate) — one Dewey ID, two QPT nodes.
        let m_11 = elems[&"1.1".parse::<DeweyId>().unwrap()];
        assert_eq!(m_11 & 0b11, 0b11, "1.1 should match both a-nodes");
        // The outermost a matches only a1 (no direct b child).
        assert_eq!(elems[&"1".parse::<DeweyId>().unwrap()], 0b01);
    }

    #[test]
    fn oracle_pdt_builds_annotated_document() {
        let c = corpus();
        let doc = c.doc("books.xml").unwrap();
        let inv = InvertedIndex::build(&c);
        let kws = vec!["xml".to_string(), "new".to_string()];
        let pdt = oracle_pdt(doc, &book_qpt(), &inv, &kws);
        // Title node 1.1.2 is content-annotated with tf values.
        let info = pdt.node_info(&"1.1.2".parse().unwrap()).unwrap();
        assert_eq!(info.tf.as_deref(), Some(&[1u32, 1u32][..]));
        // isbn value materialized.
        let isbn = pdt.doc.node_by_dewey(&"1.1.1".parse().unwrap()).unwrap();
        assert_eq!(pdt.doc.value(isbn), Some("111"));
        // year value materialized (needed to re-evaluate the predicate).
        let year = pdt.doc.node_by_dewey(&"1.1.3".parse().unwrap()).unwrap();
        assert_eq!(pdt.doc.value(year), Some("1996"));
        // Byte lengths are the base ones.
        let base_title = doc.node_by_dewey(&"1.1.2".parse().unwrap()).unwrap();
        assert_eq!(pdt.byte_len(&"1.1.2".parse().unwrap()), doc.node(base_title).byte_len);
    }
}
