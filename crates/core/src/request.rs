//! The request/response halves of the prepared-view search API.
//!
//! A [`SearchRequest`] carries everything that varies *per search* —
//! keywords, `k`, keyword semantics, and output options — while the
//! expensive per-view work (parsing, QPT generation, probe planning)
//! lives in [`crate::prepared::PreparedView`]. One prepared view answers
//! many requests, concurrently.

use crate::control::CancelToken;
use crate::generate::GenerateStats;
use crate::prepared::QueryPlan;
use crate::scoring::{KeywordMode, PruneStats};
use crate::term::{QueryTerm, TermParseError};
use std::time::Duration;

/// One keyword search over a prepared view: what to look for and what to
/// report back. Build with [`SearchRequest::new`] and chain the setters.
///
/// ```
/// use vxv_core::{KeywordMode, SearchRequest};
/// let req = SearchRequest::new(["xml", "search"])
///     .top_k(5)
///     .mode(KeywordMode::Disjunctive)
///     .materialize(false)
///     .collect_timings(false);
/// assert_eq!(req.keywords(), ["xml", "search"]);
/// ```
///
/// Beyond plain keywords, a request can carry positional and weighted
/// [`QueryTerm`]s — each occupies one scoring slot exactly like a
/// keyword (see [`crate::term`] for semantics and syntax):
///
/// ```
/// use vxv_core::SearchRequest;
/// let req = SearchRequest::new(["xml"])
///     .phrase(["keyword", "search"])
///     .near(3, ["virtual", "views"])
///     .prefix("index")
///     .boost(2.0); // boosts the most recently added term
/// assert_eq!(req.keywords(), ["xml", "keyword search", "~3:virtual,views", "index*"]);
/// assert_eq!(req.boosts(), [1.0, 1.0, 1.0, 2.0]);
/// ```
#[derive(Clone, Debug)]
pub struct SearchRequest {
    terms: Vec<QueryTerm>,
    /// Per-term weights. **Empty means unboosted** — scoring then uses
    /// the legacy `tf × idf` expression, keeping unboosted responses
    /// byte-identical to the pre-boost engine. Non-empty is always the
    /// same length as `terms`.
    boosts: Vec<f64>,
    /// Cached [`QueryTerm`] display forms, what [`Self::keywords`]
    /// returns.
    display: Vec<String>,
    top_k: usize,
    mode: KeywordMode,
    materialize: bool,
    collect_timings: bool,
    with_plan: bool,
    prune: bool,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
}

impl SearchRequest {
    /// A conjunctive top-10 search for `keywords`, with materialization
    /// and timing collection on and plan reporting off. Each keyword
    /// becomes one [`QueryTerm::Word`] **verbatim** — no query syntax is
    /// interpreted here; use [`Self::parse_terms`] for the textual term
    /// language.
    pub fn new<I, K>(keywords: I) -> Self
    where
        I: IntoIterator<Item = K>,
        K: AsRef<str>,
    {
        let terms: Vec<QueryTerm> =
            keywords.into_iter().map(|k| QueryTerm::Word(k.as_ref().to_string())).collect();
        SearchRequest {
            display: terms.iter().map(|t| t.to_string()).collect(),
            terms,
            boosts: Vec::new(),
            top_k: 10,
            mode: KeywordMode::Conjunctive,
            materialize: true,
            collect_timings: true,
            with_plan: false,
            prune: true,
            deadline: None,
            cancel: None,
        }
    }

    /// A request whose terms come from the textual query language: each
    /// token is parsed by [`QueryTerm::parse`] (quoting happens at the
    /// transport layer — a phrase arrives as one token with interior
    /// whitespace). Everything else starts as [`Self::new`]'s defaults.
    pub fn parse_terms<I, K>(tokens: I) -> Result<Self, TermParseError>
    where
        I: IntoIterator<Item = K>,
        K: AsRef<str>,
    {
        let mut request = SearchRequest::new(std::iter::empty::<&str>());
        for token in tokens {
            let (term, boost) = QueryTerm::parse(token.as_ref())?;
            request = request.term(term);
            if let Some(b) = boost {
                request = request.boost(b);
            }
        }
        Ok(request)
    }

    /// Append one term (one scoring slot). Its boost defaults to 1.0;
    /// chain [`Self::boost`] to change it.
    pub fn term(mut self, term: QueryTerm) -> Self {
        self.display.push(term.to_string());
        self.terms.push(term);
        if !self.boosts.is_empty() {
            self.boosts.push(1.0);
        }
        self
    }

    /// Append a phrase term: `words` occurring consecutively, in order,
    /// in one element's token stream. A single word collapses to a
    /// plain [`QueryTerm::Word`].
    pub fn phrase<I, K>(self, words: I) -> Self
    where
        I: IntoIterator<Item = K>,
        K: AsRef<str>,
    {
        let mut words: Vec<String> = words.into_iter().map(|w| w.as_ref().to_string()).collect();
        self.term(match words.len() {
            1 => QueryTerm::Word(words.remove(0)),
            _ => QueryTerm::Phrase(words),
        })
    }

    /// Append a proximity term: every word within `window` token
    /// positions of an occurrence of the first word.
    pub fn near<I, K>(self, window: u32, words: I) -> Self
    where
        I: IntoIterator<Item = K>,
        K: AsRef<str>,
    {
        let words = words.into_iter().map(|w| w.as_ref().to_string()).collect();
        self.term(QueryTerm::Near { window, words })
    }

    /// Append a prefix term matching every indexed keyword that starts
    /// with `stem` (pass it without the `*`).
    pub fn prefix<K: AsRef<str>>(self, stem: K) -> Self {
        self.term(QueryTerm::Prefix(stem.as_ref().to_string()))
    }

    /// Weight the **most recently added** term by `factor` (> 0,
    /// finite): its slot contributes `tf × idf × factor` to the score.
    /// The first boost switches the whole request to boosted scoring
    /// (every other term gets an explicit 1.0).
    pub fn boost(mut self, factor: f64) -> Self {
        if self.boosts.is_empty() {
            self.boosts = vec![1.0; self.terms.len()];
        }
        if let Some(last) = self.boosts.last_mut() {
            *last = factor;
        }
        self
    }

    /// How many top-ranked hits to return (and to materialize).
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Conjunctive (all keywords) or disjunctive (any keyword) matching.
    pub fn mode(mut self, mode: KeywordMode) -> Self {
        self.mode = mode;
        self
    }

    /// Whether to expand the top-k hits from base storage into XML.
    /// With `false`, hits carry scores, tf vectors and byte lengths but an
    /// empty `xml`, and the search touches **no** base data at all.
    pub fn materialize(mut self, on: bool) -> Self {
        self.materialize = on;
        self
    }

    /// Whether to record per-phase wall-clock timings in the response.
    pub fn collect_timings(mut self, on: bool) -> Self {
        self.collect_timings = on;
        self
    }

    /// Whether to attach the query plan (QPTs, probes, posting-list
    /// lengths) to the response.
    pub fn with_plan(mut self, on: bool) -> Self {
        self.with_plan = on;
        self
    }

    /// Whether score-bounded top-k pruning may skip exact tf probes for
    /// candidates whose block-max score upper bound provably cannot
    /// reach the top-k (default **on**). Pruned responses are
    /// byte-identical to exact ones — same hits, same score bits, same
    /// order, same `matching`/`idf` — so `false` exists only as the
    /// reference path for equivalence tests and A/B benchmarks.
    pub fn prune(mut self, on: bool) -> Self {
        self.prune = on;
        self
    }

    /// Abort the search if it runs longer than `budget`, with
    /// [`crate::EngineError::DeadlineExceeded`] carrying the partial
    /// phase timings. The budget is resolved to an absolute instant when
    /// the search starts and checked at phase boundaries and inside the
    /// PDT merge loop.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Attach a cooperative [`CancelToken`]: `cancel()` on any clone of
    /// the token aborts the search at its next checkpoint with
    /// [`crate::EngineError::Cancelled`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The raw (un-normalized) terms in display form, one string per
    /// scoring slot — for plain keywords this is the keyword itself.
    pub fn keywords(&self) -> &[String] {
        &self.display
    }

    /// The raw (un-normalized) terms, one per scoring slot.
    pub fn terms(&self) -> &[QueryTerm] {
        &self.terms
    }

    /// Per-term boosts. Empty when no [`Self::boost`] was applied —
    /// scoring then uses the unboosted legacy expression; otherwise the
    /// same length as [`Self::terms`].
    pub fn boosts(&self) -> &[f64] {
        &self.boosts
    }

    /// The `k` of top-k.
    pub fn k(&self) -> usize {
        self.top_k
    }

    /// The keyword semantics.
    pub fn keyword_mode(&self) -> KeywordMode {
        self.mode
    }

    /// Whether hits will be materialized.
    pub fn materializes(&self) -> bool {
        self.materialize
    }

    /// Whether timings will be collected.
    pub fn collects_timings(&self) -> bool {
        self.collect_timings
    }

    /// Whether the plan will be attached.
    pub fn wants_plan(&self) -> bool {
        self.with_plan
    }

    /// Whether score-bounded top-k pruning is enabled.
    pub fn prunes(&self) -> bool {
        self.prune
    }

    /// The wall-clock budget, if one was set.
    pub fn deadline_budget(&self) -> Option<Duration> {
        self.deadline
    }

    /// The attached cancel token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }
}

/// One ranked search hit.
#[derive(Clone, Debug)]
pub struct SearchHit {
    /// 1-based rank.
    pub rank: usize,
    /// The normalized TF-IDF score.
    pub score: f64,
    /// Per-query-keyword term frequencies.
    pub tf: Vec<u32>,
    /// Aggregate byte length of the view element.
    pub byte_len: u64,
    /// The materialized XML of the view element (empty when the request
    /// disabled materialization).
    pub xml: String,
}

/// Wall-clock cost of each pipeline phase (Fig. 14's breakdown).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// PDT generation from the prepared probe lists (the paper's "PDT"
    /// bar; view parsing and probe planning are paid at prepare time).
    pub pdt: Duration,
    /// View evaluation over the PDTs (the "Evaluator" bar).
    pub evaluator: Duration,
    /// Scoring + top-k materialization (the "Post-processing" bar).
    pub post: Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.pdt + self.evaluator + self.post
    }
}

/// Everything one search reports back. `Clone` exists so the
/// epoch-keyed result cache can hand out copies of a stored response;
/// the clone cost is dominated by the materialized hit XML.
#[derive(Clone, Debug)]
pub struct SearchResponse {
    /// Ranked hits, materialized if the request asked for it.
    pub hits: Vec<SearchHit>,
    /// |V(D)| — size of the (virtual) view.
    pub view_size: usize,
    /// Matching elements before the top-k cut.
    pub matching: usize,
    /// Per-keyword idf over the view.
    pub idf: Vec<f64>,
    /// Phase wall-clock costs, when the request collected them.
    pub timings: Option<PhaseTimings>,
    /// Per-document PDT statistics: (doc name, sweep stats, PDT bytes).
    pub pdt_stats: Vec<(String, GenerateStats, u64)>,
    /// Base-data subtree fetches spent on materialization.
    pub fetches: u64,
    /// Work avoided by score-bounded top-k pruning in this search (all
    /// zeros when the request disabled pruning).
    pub pruning: PruneStats,
    /// The query plan, when the request asked for it.
    pub plan: Option<QueryPlan>,
}

impl SearchResponse {
    /// Total bytes across all generated PDTs.
    pub fn pdt_bytes(&self) -> u64 {
        self.pdt_stats.iter().map(|(_, _, b)| *b).sum()
    }
}
