//! `GeneratePDT` — the single-pass, index-only PDT construction
//! (paper §4.2.2 and Appendix E).
//!
//! The algorithm performs a k-way merge over the streaming cursors of a
//! [`crate::prepare::PreparedLists`] plan: every selected index row
//! contributes one [`vxv_index::EntryCursor`] (opened directly over the
//! index's block-compressed storage, bounded to the projected document),
//! and a **loser tree** keyed on `(DeweyId, stream)` — with a fixed-width
//! integer order-embedding of the ID so matches rarely touch the
//! variable-length components — pulls entries incrementally in document
//! order. Nothing is materialized up front — entries are decoded only as
//! the sweep consumes them.
//!
//! The sweep itself is unchanged from the paper: the *Candidate Tree*
//! materializes as a stack of currently-open elements (the pseudo-code's
//! left-most path); each open element carries one state per QPT node its
//! ID prefix aligns to (`CTQNodeSet`), holding the DescendantMap bitmask
//! and the `InPdt` flag. Closing an element finalizes its candidacy
//! (Definition 1), notifies ancestors' DescendantMaps, and resolves or
//! defers its ancestor constraint (Definition 2): elements whose
//! qualifying parent is not yet decided park in a pending table (the
//! pseudo-code's `PdtCache`s) keyed by the ancestor states they wait on,
//! and cascade when those resolve.
//!
//! Base documents are never read: IDs, atomic values and byte lengths come
//! from the path index; term frequencies from the inverted index
//! (subtree-range probes that `seek` over block skip metadata).
//!
//! [`generate_pdt_from_materialized`] keeps the seed's linear merge over
//! fully decoded entry vectors as the reference implementation; the
//! property suite asserts both merges produce byte-identical PDTs.

use crate::control::{ExecControl, Interrupt};
use crate::pdt::{Pdt, PdtElem};
use crate::prepare::{prepare_lists, MaterializedLists, PreparedLists};
use crate::qpt::{Qpt, QptNodeId};
use crate::term::ResolvedTerms;
use std::collections::{BTreeMap, HashMap};
use vxv_index::{Axis, InvertedIndex, PathIndex};
use vxv_xml::DeweyId;

/// How many merge-loop entries are consumed between cooperative
/// deadline/cancellation checks. Amortizes the `Instant::now()` cost to
/// noise while bounding overrun to one small batch.
const CHECK_EVERY: usize = 1024;

/// Whether PDT generation resolves exact term frequencies eagerly
/// (one inverted-index subtree probe per content element per keyword —
/// the reference behavior) or leaves the annotations zeroed for the
/// score-bounded top-k path, which probes lazily per *view element* and
/// skips candidates whose score bound cannot reach the top-k.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TfAnnotation {
    /// Probe every content element's subtree tf during `finish_sweep`.
    Exact,
    /// Leave tf annotations zeroed; the caller resolves tf lazily
    /// through the inverted index (content-ness is still recorded —
    /// `info.tf.is_some()` keeps meaning "scoring reads this element").
    Deferred,
}

/// Catalog facts about the projected document (not base data: name, root
/// tag and root ordinal are schema-level metadata).
#[derive(Clone, Debug)]
pub struct DocMeta {
    /// The document's name (the `fn:doc(...)` key).
    pub name: String,
    /// Tag of the document's root element.
    pub root_tag: String,
    /// The document's Dewey root ordinal.
    pub root_ordinal: u32,
    /// Id of the index segment that owns the document (0 for standalone
    /// / un-segmented use). Ordinals are allocated per segment, so the
    /// (segment, ordinal) pair survives ingestion and compaction.
    pub segment: u64,
}

/// Work counters of one GeneratePDT run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenerateStats {
    /// Probe-list entries consumed.
    pub entries: usize,
    /// Peak depth of the candidate stack.
    pub max_stack: usize,
    /// Peak number of parked (deferred) elements.
    pub max_pending: usize,
    /// Elements emitted into the PDT.
    pub emitted: usize,
    /// Path-index probes issued by the prepare phase.
    pub probes: usize,
}

type StateKey = (DeweyId, QptNodeId);

#[derive(Clone, Debug)]
struct CtState {
    q: QptNodeId,
    dm: u32,
    probed_hit: bool,
    candidate: bool,
    in_pdt: bool,
}

#[derive(Debug)]
struct CtNode {
    dewey: DeweyId,
    states: Vec<CtState>,
    value: Option<String>,
    byte_len: u32,
}

impl CtNode {
    fn state_mut(&mut self, q: QptNodeId) -> Option<&mut CtState> {
        self.states.iter_mut().find(|s| s.q == q)
    }

    fn state(&self, q: QptNodeId) -> Option<&CtState> {
        self.states.iter().find(|s| s.q == q)
    }
}

#[derive(Debug)]
struct Pending {
    dewey: DeweyId,
    q: QptNodeId,
    /// Remaining potential parent states, deepest first.
    pl: Vec<StateKey>,
    elem: PdtElem,
}

struct Sweep<'a> {
    qpt: &'a Qpt,
    stack: Vec<CtNode>,
    emitted: BTreeMap<DeweyId, PdtElem>,
    pending: Vec<Option<Pending>>,
    pending_on: HashMap<StateKey, Vec<usize>>,
    /// Final outcomes, recorded only for states some parked element's
    /// parent list mentions (`interest`): without deferred elements the
    /// sweep stores nothing per state.
    outcomes: HashMap<StateKey, bool>,
    interest: std::collections::HashSet<StateKey>,
    live_pending: usize,
    stats: GenerateStats,
}

/// Generate the PDT for `qpt` using only the path and inverted indices.
/// `keywords` are plain bag-of-words slots (already in token form);
/// prepared views pass full positional terms through the crate-private
/// `generate_pdt_from_lists_ctl` instead.
pub fn generate_pdt(
    qpt: &Qpt,
    path_index: &PathIndex,
    inverted: &InvertedIndex,
    keywords: &[String],
    meta: &DocMeta,
) -> (Pdt, GenerateStats) {
    let lists = prepare_lists(qpt, path_index, meta.root_ordinal);
    generate_pdt_from_lists(qpt, &lists, inverted, keywords, meta)
}

/// As [`generate_pdt`] but over a pre-computed cursor plan (what
/// [`crate::prepared::PreparedView`] reuses across searches): a k-way
/// heap merge that pulls entries from the plan's row cursors
/// incrementally, decoding only what the sweep consumes.
pub fn generate_pdt_from_lists(
    qpt: &Qpt,
    lists: &PreparedLists,
    inverted: &InvertedIndex,
    keywords: &[String],
    meta: &DocMeta,
) -> (Pdt, GenerateStats) {
    generate_pdt_from_lists_ctl(
        qpt,
        lists,
        inverted,
        &ResolvedTerms::from_keywords(keywords),
        meta,
        &ExecControl::unchecked(),
        TfAnnotation::Exact,
    )
    .expect("unchecked control never interrupts")
}

/// As [`generate_pdt_from_lists`], polling `ctl` every [`CHECK_EVERY`]
/// consumed entries — the merge loop is the one place a search can spend
/// unbounded time between phase boundaries — honoring the caller's
/// [`TfAnnotation`] choice, and annotating one tf slot per resolved
/// query term (word, prefix, phrase, or proximity).
pub(crate) fn generate_pdt_from_lists_ctl(
    qpt: &Qpt,
    lists: &PreparedLists,
    inverted: &InvertedIndex,
    terms: &ResolvedTerms,
    meta: &DocMeta,
    ctl: &ExecControl,
    annotate: TfAnnotation,
) -> Result<(Pdt, GenerateStats), Interrupt> {
    let mut sweep = new_sweep(qpt, lists.probes);

    // One stream per selected index row, ordered (probed node, row) so
    // equal Dewey IDs across nodes are consumed in probe order — the
    // same tie-break as the materialized reference merge (stream index
    // ascends with probe order, and ties within one node cannot occur:
    // an element lives in exactly one (path, value) row). The alignment
    // map is resolved once per stream, not once per entry.
    struct Stream<'a> {
        qnode: QptNodeId,
        value: Option<&'a str>,
        alignment: &'a [Vec<QptNodeId>],
    }
    /// Fixed-width order-embedding of a Dewey ID: the first eight
    /// components, 16 bits each, saturating, with absent components
    /// mapped below every present one. `a < b` implies
    /// `key(a) <= key(b)` (and `key(a) < key(b)` implies `a < b`), so
    /// the merge resolves almost every match with one integer compare
    /// and falls back to the full (pointer-chasing) component compare
    /// only on key ties.
    fn dewey_key(comps: &[u32]) -> u128 {
        let mut k = 0u128;
        for i in 0..8 {
            let c = comps.get(i).map(|c| c.saturating_add(1).min(0xFFFF)).unwrap_or(0);
            k = (k << 16) | c as u128;
        }
        k
    }
    /// One decoded entry, ready to rank: its merge key, subtree byte
    /// length, the Dewey components as a slice of the shared pool, and
    /// the stream it came from. Exactly 32 bytes and fully contiguous,
    /// so the sort that establishes document order runs over a compact
    /// cache-resident array instead of pointer-chasing per-entry heap
    /// allocations.
    #[derive(Clone, Copy)]
    struct Slot {
        key: u128,
        byte_len: u32,
        comps_start: u32,
        comps_len: u32,
        stream: u32,
    }
    // A content-heavy plan opens hundreds of tiny value-row streams
    // (one per matching (path, value) row), each contributing a handful
    // of entries inside this document's Dewey range. A k-way
    // tournament over that many nearly-empty streams is memory-bound:
    // every advance takes a cache miss into a different cursor. So
    // instead we drain each stream's bounded run block-by-block into
    // one arena of compact slots, sort the slots once (the runs are
    // tiny and the slots are 32 bytes — the sort stays in L2), and feed
    // the sweep with a single linear pass. Transient memory is
    // O(entries in the document's range) slots plus their components —
    // the same order as the PDT being built — and nothing per entry is
    // heap-allocated until the sweep actually ingests it.
    let mut streams: Vec<Stream<'_>> = Vec::new();
    let mut arena: Vec<Slot> = Vec::new();
    let mut pool: Vec<u32> = Vec::new();
    let bounds = vxv_index::DocBounds::for_root(lists.root_ordinal);
    for (qnode, plan) in &lists.lists {
        for row in &plan.rows {
            let mut cursor = row.cursor_in(&bounds);
            let si = streams.len() as u32;
            let before = arena.len();
            loop {
                let served = cursor.next_block(|comps, byte_len| {
                    let comps_start = pool.len() as u32;
                    pool.extend_from_slice(comps);
                    arena.push(Slot {
                        key: dewey_key(comps),
                        byte_len,
                        comps_start,
                        comps_len: comps.len() as u32,
                        stream: si,
                    });
                });
                if served == 0 {
                    break;
                }
            }
            if arena.len() == before {
                continue;
            }
            streams.push(Stream {
                qnode: *qnode,
                value: row.value.as_deref(),
                alignment: &lists.alignments[&(*qnode, row.path_id)],
            });
        }
    }
    // One integer compare decides almost every pair; ties (IDs deeper
    // than the key covers, or one element probed by several QPT nodes)
    // fall back to the full component compare and then break toward the
    // earlier stream — the materialized reference merge's tie order.
    // Equal (id, stream) pairs cannot occur (a row is keyed by ID), so
    // the unstable sort is safe.
    arena.sort_unstable_by(|a, b| {
        a.key.cmp(&b.key).then_with(|| {
            let ca = &pool[a.comps_start as usize..][..a.comps_len as usize];
            let cb = &pool[b.comps_start as usize..][..b.comps_len as usize];
            ca.cmp(cb).then(a.stream.cmp(&b.stream))
        })
    });
    for slot in &arena {
        let s = &streams[slot.stream as usize];
        sweep.stats.entries += 1;
        if sweep.stats.entries.is_multiple_of(CHECK_EVERY) {
            ctl.check()?;
        }
        let id = DeweyId::from_components(
            pool[slot.comps_start as usize..][..slot.comps_len as usize].to_vec(),
        );
        sweep.ingest(id, s.qnode, s.value, slot.byte_len, s.alignment);
    }
    finish_sweep_ctl(sweep, inverted, terms, meta, ctl, annotate)
}

/// The seed's merge — a linear min-scan over fully materialized entry
/// vectors. Kept as the reference implementation for equivalence tests
/// and the allocation-comparison benchmark.
pub fn generate_pdt_from_materialized(
    qpt: &Qpt,
    lists: &MaterializedLists,
    inverted: &InvertedIndex,
    keywords: &[String],
    meta: &DocMeta,
) -> (Pdt, GenerateStats) {
    let mut sweep = new_sweep(qpt, lists.probes);
    let mut cursors = vec![0usize; lists.lists.len()];
    loop {
        let mut min: Option<usize> = None;
        for (i, (_, entries)) in lists.lists.iter().enumerate() {
            if cursors[i] >= entries.len() {
                continue;
            }
            min = match min {
                None => Some(i),
                Some(m) => {
                    if entries[cursors[i]].dewey < lists.lists[m].1[cursors[m]].dewey {
                        Some(i)
                    } else {
                        Some(m)
                    }
                }
            };
        }
        let Some(i) = min else { break };
        let (qnode, entries) = &lists.lists[i];
        let entry = &entries[cursors[i]];
        cursors[i] += 1;
        sweep.stats.entries += 1;
        let alignment = &lists.alignments[&(*qnode, entry.path_id)];
        sweep.ingest(
            entry.dewey.clone(),
            *qnode,
            entry.value.as_deref(),
            entry.byte_len,
            alignment,
        );
    }
    finish_sweep(sweep, inverted, keywords, meta)
}

fn new_sweep(qpt: &Qpt, probes: usize) -> Sweep<'_> {
    Sweep {
        qpt,
        stack: Vec::new(),
        emitted: BTreeMap::new(),
        pending: Vec::new(),
        pending_on: HashMap::new(),
        outcomes: HashMap::new(),
        interest: std::collections::HashSet::new(),
        live_pending: 0,
        stats: GenerateStats { probes, ..GenerateStats::default() },
    }
}

/// Drain the candidate stack, annotate term frequencies from the
/// inverted index, and assemble the PDT.
fn finish_sweep(
    sweep: Sweep<'_>,
    inverted: &InvertedIndex,
    keywords: &[String],
    meta: &DocMeta,
) -> (Pdt, GenerateStats) {
    finish_sweep_ctl(
        sweep,
        inverted,
        &ResolvedTerms::from_keywords(keywords),
        meta,
        &ExecControl::unchecked(),
        TfAnnotation::Exact,
    )
    .expect("unchecked control never interrupts")
}

/// As [`finish_sweep`] with cooperative checks in the tf-annotation loop
/// (one inverted-index range probe per PDT element per term — prefix
/// terms sum their dictionary expansion, phrase/proximity terms count
/// position-list intersections). With [`TfAnnotation::Deferred`] the
/// probe loop is skipped entirely — the score-bounded path resolves tf
/// lazily and only where the top-k threshold demands it.
fn finish_sweep_ctl(
    mut sweep: Sweep<'_>,
    inverted: &InvertedIndex,
    terms: &ResolvedTerms,
    meta: &DocMeta,
    ctl: &ExecControl,
    annotate: TfAnnotation,
) -> Result<(Pdt, GenerateStats), Interrupt> {
    while !sweep.stack.is_empty() {
        sweep.close_top();
    }
    debug_assert_eq!(sweep.live_pending, 0, "all deferred elements must resolve");

    sweep.stats.emitted = sweep.emitted.len();
    let stats = sweep.stats;
    let mut pdt =
        Pdt::assemble(&meta.name, &meta.root_tag, meta.root_ordinal, &sweep.emitted, terms.len());
    if annotate == TfAnnotation::Exact {
        for (i, (dewey, info)) in pdt.info.iter_mut().enumerate() {
            if (i + 1).is_multiple_of(CHECK_EVERY) {
                ctl.check()?;
            }
            if let Some(tf) = &mut info.tf {
                for (k, slot) in tf.iter_mut().enumerate() {
                    *slot = terms.subtree_tf_in(inverted, k, dewey);
                }
            }
        }
    }
    Ok((pdt, stats))
}

impl<'a> Sweep<'a> {
    fn ingest(
        &mut self,
        dewey: DeweyId,
        qnode: QptNodeId,
        value: Option<&str>,
        byte_len: u32,
        alignment: &[Vec<QptNodeId>],
    ) {
        // Close elements the sweep has left.
        while let Some(top) = self.stack.last() {
            if top.dewey.is_prefix_of(&dewey) {
                break;
            }
            self.close_top();
        }
        // Open / merge CT nodes for every aligned prefix depth.
        let len = dewey.len();
        for d in 1..=len {
            let qnodes = &alignment[d - 1];
            let is_self = d == len;
            if qnodes.is_empty() {
                continue;
            }
            // Locate the stack slot: stack deweys strictly lengthen, and
            // every remaining stack node is a prefix of `dewey`, so a
            // length match IS the prefix match.
            let pos = self.stack.partition_point(|n| n.dewey.len() < d);
            let node = if pos < self.stack.len() && self.stack[pos].dewey.len() == d {
                debug_assert_eq!(self.stack[pos].dewey, dewey.prefix(d));
                &mut self.stack[pos]
            } else {
                self.stack.insert(
                    pos,
                    CtNode { dewey: dewey.prefix(d), states: Vec::new(), value: None, byte_len: 0 },
                );
                self.stats.max_stack = self.stats.max_stack.max(self.stack.len());
                &mut self.stack[pos]
            };
            for q in qnodes {
                if node.state(*q).is_none() {
                    node.states.push(CtState {
                        q: *q,
                        dm: 0,
                        probed_hit: false,
                        candidate: false,
                        in_pdt: false,
                    });
                }
            }
            if is_self {
                if let Some(s) = node.state_mut(qnode) {
                    s.probed_hit = true;
                }
                if node.value.is_none() {
                    node.value = value.map(str::to_string);
                }
                node.byte_len = node.byte_len.max(byte_len);
            }
        }
    }

    fn close_top(&mut self) {
        let mut node = self.stack.pop().expect("close on empty stack");
        // Phase 1: finalize candidacy.
        for s in &mut node.states {
            if !s.candidate {
                let probed_ok = !self.qpt.probed(s.q) || s.probed_hit;
                s.candidate = probed_ok && s.dm == full_mask_of(self.qpt, s.q);
            }
        }
        // Phase 2: candidates notify ancestors' DescendantMaps (may flip
        // ancestors to candidates, and to InPdt early).
        let candidate_qs: Vec<QptNodeId> =
            node.states.iter().filter(|s| s.candidate).map(|s| s.q).collect();
        for q in &candidate_qs {
            self.propagate_dm(&node.dewey, *q);
        }
        // Phase 3: resolve the ancestor constraint per candidate state.
        // With nothing parked anywhere, resolution has no observers and
        // only emissions matter — the common case on real data.
        let quiet = self.pending_on.is_empty() && self.interest.is_empty();
        for s in &node.states {
            if !s.candidate {
                if !quiet {
                    self.resolve((node.dewey.clone(), s.q), false);
                }
                continue;
            }
            if s.in_pdt {
                // Became InPdt early while open (drained then); emit now.
                let key = (node.dewey.clone(), s.q);
                self.emit(key.clone(), make_elem(self.qpt, &node, s));
                if self.interest.contains(&key) {
                    self.outcomes.insert(key, true);
                }
                continue;
            }
            match self.check_parents(&node.dewey, s.q) {
                ParentCheck::InPdt => {
                    let key = (node.dewey.clone(), s.q);
                    self.emit(key.clone(), make_elem(self.qpt, &node, s));
                    if !quiet {
                        self.resolve(key, true);
                    }
                }
                ParentCheck::Dead => {
                    if !quiet {
                        self.resolve((node.dewey.clone(), s.q), false);
                    }
                }
                ParentCheck::Pending(mut pl) => {
                    let first = pl.remove(0);
                    self.interest.insert(first.clone());
                    for k in &pl {
                        self.interest.insert(k.clone());
                    }
                    let idx = self.pending.len();
                    self.pending.push(Some(Pending {
                        dewey: node.dewey.clone(),
                        q: s.q,
                        pl,
                        elem: make_elem(self.qpt, &node, s),
                    }));
                    self.live_pending += 1;
                    self.stats.max_pending = self.stats.max_pending.max(self.live_pending);
                    self.register(first, idx);
                }
            }
        }
    }

    /// Set the DescendantMap bit for `q` on every qualifying open ancestor;
    /// ancestors completing their mask become candidates immediately, and
    /// InPdt if their own ancestor constraint is already settled (the
    /// `InPdt` optimization of §4.2.2.1).
    fn propagate_dm(&mut self, dewey: &DeweyId, q: QptNodeId) {
        let qn = self.qpt.node(q);
        let Some(parent_q) = qn.parent else { return };
        let Some(bit) = self.qpt.dm_bit(q) else { return };
        let parent_dewey = dewey.parent();
        let mut flipped: Vec<usize> = Vec::new();
        for (i, anc) in self.stack.iter_mut().enumerate() {
            match qn.incoming_axis {
                Axis::Child => {
                    if Some(&anc.dewey) != parent_dewey.as_ref() {
                        continue;
                    }
                }
                Axis::Descendant => {} // every stack node is a strict ancestor
            }
            if let Some(s) = anc.state_mut(parent_q) {
                let had = s.dm & (1 << bit) != 0;
                s.dm |= 1 << bit;
                if !had && !s.candidate {
                    flipped.push(i);
                }
            }
        }
        for i in flipped {
            self.try_early_candidate(i, parent_q);
        }
    }

    /// Re-evaluate candidacy of an *open* state after a DM update, and
    /// settle InPdt early when its ancestor constraint already holds.
    fn try_early_candidate(&mut self, stack_idx: usize, q: QptNodeId) {
        let full = full_mask_of(self.qpt, q);
        let probed = self.qpt.probed(q);
        {
            let node = &mut self.stack[stack_idx];
            let Some(s) = node.state_mut(q) else { return };
            if s.candidate || s.dm != full || (probed && !s.probed_hit) {
                return;
            }
            s.candidate = true;
        }
        // Early InPdt: top-level, or some open ancestor parent state InPdt.
        let settled = match self.qpt.node(q).parent {
            None => true,
            Some(pq) => {
                let child_axis = self.qpt.node(q).incoming_axis == Axis::Child;
                let my_dewey = self.stack[stack_idx].dewey.clone();
                let parent_dewey = my_dewey.parent();
                self.stack[..stack_idx].iter().any(|anc| {
                    if child_axis && Some(&anc.dewey) != parent_dewey.as_ref() {
                        return false;
                    }
                    anc.state(pq).map(|s| s.in_pdt).unwrap_or(false)
                })
            }
        };
        if settled {
            self.mark_in_pdt_open(stack_idx, q);
        }
    }

    /// Flip an open state to InPdt and wake everything parked on it. Newly
    /// InPdt ancestors also settle open candidate descendants (cascading
    /// down the stack).
    fn mark_in_pdt_open(&mut self, stack_idx: usize, q: QptNodeId) {
        {
            let node = &mut self.stack[stack_idx];
            let Some(s) = node.state_mut(q) else { return };
            if s.in_pdt {
                return;
            }
            s.in_pdt = true;
        }
        if !(self.pending_on.is_empty() && self.interest.is_empty()) {
            let key = (self.stack[stack_idx].dewey.clone(), q);
            if self.interest.contains(&key) {
                self.outcomes.insert(key.clone(), true);
            }
            self.resolve_waiters(key, true);
        }
        // Cascade down: open descendants whose parent state just settled.
        for below in stack_idx + 1..self.stack.len() {
            let found: Vec<QptNodeId> = self.stack[below]
                .states
                .iter()
                .filter(|s| {
                    s.candidate
                        && !s.in_pdt
                        && self.qpt.node(s.q).parent == Some(q)
                        && match self.qpt.node(s.q).incoming_axis {
                            Axis::Child => {
                                self.stack[below].dewey.parent().as_ref()
                                    == Some(&self.stack[stack_idx].dewey)
                            }
                            Axis::Descendant => true,
                        }
                })
                .map(|s| s.q)
                .collect();
            for cq in found {
                self.mark_in_pdt_open(below, cq);
            }
        }
    }

    fn check_parents(&self, dewey: &DeweyId, q: QptNodeId) -> ParentCheck {
        let qn = self.qpt.node(q);
        let Some(pq) = qn.parent else { return ParentCheck::InPdt };
        let parent_dewey = dewey.parent();
        let mut pl = Vec::new();
        for anc in self.stack.iter().rev() {
            if qn.incoming_axis == Axis::Child && Some(&anc.dewey) != parent_dewey.as_ref() {
                continue;
            }
            if let Some(s) = anc.state(pq) {
                if s.in_pdt {
                    return ParentCheck::InPdt;
                }
                pl.push((anc.dewey.clone(), pq));
            }
        }
        if pl.is_empty() {
            ParentCheck::Dead
        } else {
            ParentCheck::Pending(pl)
        }
    }

    /// Record a state's final outcome (when someone may still ask for it)
    /// and wake everything parked on it.
    fn resolve(&mut self, key: StateKey, in_pdt: bool) {
        if self.interest.contains(&key) {
            self.outcomes.insert(key.clone(), in_pdt);
        }
        self.resolve_waiters(key, in_pdt);
    }

    fn resolve_waiters(&mut self, key: StateKey, in_pdt: bool) {
        let Some(waiters) = self.pending_on.remove(&key) else { return };
        for w in waiters {
            let Some(mut p) = self.pending[w].take() else { continue };
            self.live_pending -= 1;
            if in_pdt {
                let pkey = (p.dewey.clone(), p.q);
                self.emit(pkey.clone(), p.elem);
                self.resolve(pkey, true);
            } else {
                // Try the next potential parent.
                loop {
                    if p.pl.is_empty() {
                        let pkey = (p.dewey.clone(), p.q);
                        self.resolve(pkey, false);
                        break;
                    }
                    let next = p.pl.remove(0);
                    match self.outcomes.get(&next) {
                        Some(true) => {
                            let pkey = (p.dewey.clone(), p.q);
                            self.emit(pkey.clone(), p.elem);
                            self.resolve(pkey, true);
                            break;
                        }
                        Some(false) => continue,
                        None => {
                            self.pending[w] = Some(p);
                            self.live_pending += 1;
                            self.register(next, w);
                            break;
                        }
                    }
                }
            }
        }
    }

    fn register(&mut self, key: StateKey, pending_idx: usize) {
        match self.outcomes.get(&key) {
            Some(&outcome) => {
                // The target already settled; resolve inline.
                let Some(mut p) = self.pending[pending_idx].take() else { return };
                self.live_pending -= 1;
                if outcome {
                    let pkey = (p.dewey.clone(), p.q);
                    self.emit(pkey.clone(), p.elem);
                    self.resolve(pkey, true);
                } else if p.pl.is_empty() {
                    let pkey = (p.dewey.clone(), p.q);
                    self.resolve(pkey, false);
                } else {
                    let next = p.pl.remove(0);
                    self.pending[pending_idx] = Some(p);
                    self.live_pending += 1;
                    self.register(next, pending_idx);
                }
            }
            None => {
                self.pending_on.entry(key).or_default().push(pending_idx);
            }
        }
    }

    fn emit(&mut self, key: StateKey, elem: PdtElem) {
        let (dewey, _) = key;
        let slot = self
            .emitted
            .entry(dewey)
            .or_insert_with(|| PdtElem { tag: elem.tag.clone(), ..PdtElem::default() });
        debug_assert_eq!(slot.tag, elem.tag);
        if slot.value.is_none() {
            slot.value = elem.value;
        }
        slot.byte_len = slot.byte_len.max(elem.byte_len);
        slot.content |= elem.content;
    }
}

enum ParentCheck {
    InPdt,
    Dead,
    Pending(Vec<StateKey>),
}

fn full_mask_of(qpt: &Qpt, q: QptNodeId) -> u32 {
    let n = qpt.mandatory_child_count(q);
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

fn make_elem(qpt: &Qpt, node: &CtNode, s: &CtState) -> PdtElem {
    PdtElem {
        tag: qpt.node(s.q).tag.clone(),
        value: if qpt.probed(s.q) && s.probed_hit { node.value.clone() } else { None },
        byte_len: node.byte_len,
        content: qpt.node(s.q).c_ann,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_pdt;
    use vxv_index::ValuePredicate;
    use vxv_xml::Corpus;

    fn book_qpt() -> Qpt {
        let mut q = Qpt::new("books.xml");
        let books = q.add_node(None, Axis::Child, true, "books");
        let book = q.add_node(Some(books), Axis::Descendant, true, "book");
        let isbn = q.add_node(Some(book), Axis::Child, false, "isbn");
        q.node_mut(isbn).v_ann = true;
        let title = q.add_node(Some(book), Axis::Child, false, "title");
        q.node_mut(title).c_ann = true;
        let year = q.add_node(Some(book), Axis::Child, true, "year");
        q.node_mut(year).preds.push(ValuePredicate::Gt("1995".into()));
        q
    }

    fn run_both(corpus: &Corpus, doc: &str, qpt: &Qpt, keywords: &[&str]) -> (Pdt, Pdt) {
        let path_index = PathIndex::build(corpus);
        let inverted = InvertedIndex::build(corpus);
        let kws: Vec<String> = keywords.iter().map(|s| s.to_string()).collect();
        let document = corpus.doc(doc).unwrap();
        let root = document.root().unwrap();
        let meta = DocMeta {
            name: doc.to_string(),
            root_tag: document.node_tag(root).to_string(),
            root_ordinal: document.node(root).dewey.components()[0],
            segment: 0,
        };
        let (pdt, _) = generate_pdt(qpt, &path_index, &inverted, &kws, &meta);
        let oracle = oracle_pdt(document, qpt, &inverted, &kws);
        (pdt, oracle)
    }

    fn assert_equivalent(pdt: &Pdt, oracle: &Pdt) {
        let got: Vec<String> = pdt.info.keys().map(|d| d.to_string()).collect();
        let want: Vec<String> = oracle.info.keys().map(|d| d.to_string()).collect();
        assert_eq!(got, want, "element sets differ");
        for (d, info) in &oracle.info {
            let g = pdt.node_info(d).unwrap();
            assert_eq!(g.byte_len, info.byte_len, "byte_len at {d}");
            assert_eq!(g.tf, info.tf, "tf at {d}");
            let gn = pdt.doc.node_by_dewey(d).unwrap();
            let on = oracle.doc.node_by_dewey(d).unwrap();
            assert_eq!(pdt.doc.node_tag(gn), oracle.doc.node_tag(on), "tag at {d}");
            assert_eq!(pdt.doc.value(gn), oracle.doc.value(on), "value at {d}");
        }
    }

    #[test]
    fn matches_oracle_on_the_running_example() {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books>\
               <book><isbn>111</isbn><title>New XML search</title><year>1996</year></book>\
               <book><isbn>222</isbn><title>Old</title><year>1990</year></book>\
               <book><title>No Year</title></book>\
               <shelf><book><isbn>333</isbn><title>XML deep</title><year>2001</year></book></shelf>\
             </books>",
        )
        .unwrap();
        let (pdt, oracle) = run_both(&c, "books.xml", &book_qpt(), &["xml", "search"]);
        assert_equivalent(&pdt, &oracle);
        // Sanity: the qualifying books are 1.1 and 1.4.1 only.
        assert!(pdt.info.contains_key(&"1.1".parse().unwrap()));
        assert!(pdt.info.contains_key(&"1.4.1".parse().unwrap()));
        assert!(!pdt.info.contains_key(&"1.2".parse().unwrap()));
        assert!(!pdt.info.contains_key(&"1.3".parse().unwrap()));
    }

    #[test]
    fn mutual_constraints_are_not_local() {
        // A content element must be dropped when its parent fails a
        // *different* mandatory constraint (the paper's "not local" note).
        let mut c = Corpus::new();
        c.add_parsed(
            "reviews.xml",
            "<reviews>\
               <review><isbn>1</isbn><content>good</content></review>\
               <review><content>orphan content</content></review>\
             </reviews>",
        )
        .unwrap();
        let mut q = Qpt::new("reviews.xml");
        let reviews = q.add_node(None, Axis::Child, true, "reviews");
        let review = q.add_node(Some(reviews), Axis::Descendant, true, "review");
        let isbn = q.add_node(Some(review), Axis::Child, true, "isbn");
        q.node_mut(isbn).v_ann = true;
        let content = q.add_node(Some(review), Axis::Child, false, "content");
        q.node_mut(content).c_ann = true;
        let (pdt, oracle) = run_both(&c, "reviews.xml", &q, &["good"]);
        assert_equivalent(&pdt, &oracle);
        assert!(pdt.info.contains_key(&"1.1.2".parse().unwrap()), "kept content");
        assert!(!pdt.info.contains_key(&"1.2.1".parse().unwrap()), "orphan content dropped");
    }

    #[test]
    fn repeated_tags_with_descendant_axes_match_oracle() {
        let mut c = Corpus::new();
        c.add_parsed(
            "d.xml",
            "<a><a><b>1</b><a><b>2</b></a></a><x><a><b>3</b></a></x><a><c>no</c></a></a>",
        )
        .unwrap();
        let mut q = Qpt::new("d.xml");
        let a1 = q.add_node(None, Axis::Descendant, true, "a");
        let a2 = q.add_node(Some(a1), Axis::Descendant, true, "a");
        let b = q.add_node(Some(a2), Axis::Child, true, "b");
        q.node_mut(b).c_ann = true;
        let (pdt, oracle) = run_both(&c, "d.xml", &q, &["1"]);
        assert_equivalent(&pdt, &oracle);
    }

    #[test]
    fn deep_skipped_levels_are_pruned_but_relations_kept() {
        let mut c = Corpus::new();
        c.add_parsed(
            "d.xml",
            "<r><wrap><deep><item><k>5</k></item></deep></wrap><item><k>9</k></item></r>",
        )
        .unwrap();
        let mut q = Qpt::new("d.xml");
        let r = q.add_node(None, Axis::Child, true, "r");
        let item = q.add_node(Some(r), Axis::Descendant, true, "item");
        let k = q.add_node(Some(item), Axis::Child, true, "k");
        q.node_mut(k).v_ann = true;
        let (pdt, oracle) = run_both(&c, "d.xml", &q, &[]);
        assert_equivalent(&pdt, &oracle);
        // wrap/deep are pruned; 1.1.1.1 parents directly to 1.
        let item1 = pdt.doc.node_by_dewey(&"1.1.1.1".parse().unwrap()).unwrap();
        let parent = pdt.doc.node(item1).parent.unwrap();
        assert_eq!(pdt.doc.node(parent).dewey.to_string(), "1");
    }

    #[test]
    fn empty_result_when_nothing_qualifies() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><item><k>1</k></item></r>").unwrap();
        let mut q = Qpt::new("d.xml");
        let r = q.add_node(None, Axis::Child, true, "r");
        let item = q.add_node(Some(r), Axis::Descendant, true, "item");
        let k = q.add_node(Some(item), Axis::Child, true, "k");
        q.node_mut(k).preds.push(ValuePredicate::Gt("100".into()));
        let (pdt, oracle) = run_both(&c, "d.xml", &q, &[]);
        assert_equivalent(&pdt, &oracle);
        assert!(pdt.is_empty());
    }

    #[test]
    fn optional_only_qpt_keeps_all_matches() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><item>x</item><item>y</item><other>z</other></r>").unwrap();
        let mut q = Qpt::new("d.xml");
        let r = q.add_node(None, Axis::Child, true, "r");
        let item = q.add_node(Some(r), Axis::Child, false, "item");
        q.node_mut(item).c_ann = true;
        let (pdt, oracle) = run_both(&c, "d.xml", &q, &["x"]);
        assert_equivalent(&pdt, &oracle);
        assert_eq!(pdt.len(), 3); // r + two items, no <other>
    }

    #[test]
    fn stats_reflect_the_sweep() {
        let mut c = Corpus::new();
        c.add_parsed(
            "books.xml",
            "<books><book><isbn>1</isbn><title>t</title><year>1999</year></book></books>",
        )
        .unwrap();
        let path_index = PathIndex::build(&c);
        let inverted = InvertedIndex::build(&c);
        let meta = DocMeta {
            name: "books.xml".into(),
            root_tag: "books".into(),
            root_ordinal: 1,
            segment: 0,
        };
        let (_, stats) = generate_pdt(&book_qpt(), &path_index, &inverted, &[], &meta);
        assert_eq!(stats.probes, 3);
        assert_eq!(stats.entries, 3);
        assert!(stats.emitted >= 4);
        assert!(stats.max_stack >= 3);
    }
}

#[cfg(test)]
mod pending_tests {
    //! Targeted tests for the deferred-resolution machinery: elements
    //! whose ancestor constraint cannot be decided when they close (the
    //! pseudo-code's PdtCache) and chains of such deferrals.

    use super::*;
    use crate::oracle::oracle_pdt;
    use vxv_index::InvertedIndex;
    use vxv_xml::Corpus;

    fn run(corpus: &Corpus, qpt: &Qpt) -> (Pdt, GenerateStats, Pdt) {
        let path_index = PathIndex::build(corpus);
        let inverted = InvertedIndex::build(corpus);
        let doc = corpus.doc("d.xml").unwrap();
        let meta = DocMeta {
            name: "d.xml".into(),
            root_tag: doc.node_tag(doc.root().unwrap()).to_string(),
            root_ordinal: 1,
            segment: 0,
        };
        let (pdt, stats) = generate_pdt(qpt, &path_index, &inverted, &[], &meta);
        let oracle = oracle_pdt(doc, qpt, &inverted, &[]);
        (pdt, stats, oracle)
    }

    fn assert_same(pdt: &Pdt, oracle: &Pdt) {
        let got: Vec<String> = pdt.info.keys().map(|d| d.to_string()).collect();
        let want: Vec<String> = oracle.info.keys().map(|d| d.to_string()).collect();
        assert_eq!(got, want);
    }

    /// A content child closes before the sibling that will satisfy its
    /// parent's mandatory edge arrives: the child must park, then emit
    /// when the parent's DescendantMap completes.
    #[test]
    fn child_defers_until_parent_candidacy_resolves_positively() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><a><c>x</c><b>y</b></a></r>").unwrap();
        let mut q = Qpt::new("d.xml");
        let r = q.add_node(None, Axis::Child, true, "r");
        let a = q.add_node(Some(r), Axis::Descendant, true, "a");
        q.add_node(Some(a), Axis::Descendant, true, "b");
        let cn = q.add_node(Some(a), Axis::Child, false, "c");
        q.node_mut(cn).c_ann = true;
        let (pdt, stats, oracle) = run(&c, &q);
        assert_same(&pdt, &oracle);
        assert!(pdt.info.contains_key(&"1.1.1".parse().unwrap()), "c emitted");
        assert!(stats.max_pending >= 1, "c must have parked while b was pending");
    }

    /// Same shape but the satisfying sibling never arrives: the parked
    /// child must be discarded when the parent dies.
    #[test]
    fn deferred_child_dies_with_its_parent() {
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><a><c>x</c></a><a><c>y</c><b>z</b></a></r>").unwrap();
        let mut q = Qpt::new("d.xml");
        let r = q.add_node(None, Axis::Child, true, "r");
        let a = q.add_node(Some(r), Axis::Descendant, true, "a");
        q.add_node(Some(a), Axis::Descendant, true, "b");
        let cn = q.add_node(Some(a), Axis::Child, false, "c");
        q.node_mut(cn).c_ann = true;
        let (pdt, _, oracle) = run(&c, &q);
        assert_same(&pdt, &oracle);
        assert!(!pdt.info.contains_key(&"1.1.1".parse().unwrap()), "first c dropped");
        assert!(pdt.info.contains_key(&"1.2.1".parse().unwrap()), "second c kept");
    }

    /// Deferral chains: a parked element whose potential parent is itself
    /// parked (the cache-propagation case of Fig. 27).
    #[test]
    fn chained_deferrals_resolve_transitively() {
        // r / a / a / c, with each `a` requiring a descendant b; the b
        // arrives last, after both a-states and the c have closed deeper
        // decisions... structure: outer a contains inner a (with c) and
        // then b; inner a contains c and its own b later.
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<r><a><a><c>x</c><b>ib</b></a><b>ob</b></a></r>").unwrap();
        let mut q = Qpt::new("d.xml");
        let r = q.add_node(None, Axis::Child, true, "r");
        let a1 = q.add_node(Some(r), Axis::Descendant, true, "a");
        let a2 = q.add_node(Some(a1), Axis::Descendant, true, "a");
        q.add_node(Some(a2), Axis::Child, true, "b");
        let cn = q.add_node(Some(a2), Axis::Child, false, "c");
        q.node_mut(cn).c_ann = true;
        // a1 additionally requires its own b child.
        q.add_node(Some(a1), Axis::Child, true, "b");
        let (pdt, _, oracle) = run(&c, &q);
        assert_same(&pdt, &oracle);
        assert!(pdt.info.contains_key(&"1.1.1.1".parse().unwrap()), "deep c kept");
    }

    /// Repeated tags: one element parked under several potential parents
    /// (a ParentList longer than one); the nearest dies, a farther one
    /// succeeds.
    #[test]
    fn parent_list_falls_back_to_farther_ancestor() {
        // Pattern //a//a/c where the middle `a` fails its own mandatory
        // edge but the outer `a` succeeds through a *different* middle.
        let mut c = Corpus::new();
        c.add_parsed("d.xml", "<a><a><a><c>x</c><k>1</k></a></a><k>1</k></a>").unwrap();
        // a1 = //a (needs descendant a2); a2 = //a (needs child c and k).
        let mut q = Qpt::new("d.xml");
        let a1 = q.add_node(None, Axis::Descendant, true, "a");
        let a2 = q.add_node(Some(a1), Axis::Descendant, true, "a");
        let cn = q.add_node(Some(a2), Axis::Child, true, "c");
        q.node_mut(cn).c_ann = true;
        q.add_node(Some(a2), Axis::Child, true, "k");
        let (pdt, _, oracle) = run(&c, &q);
        assert_same(&pdt, &oracle);
    }

    /// The sweep's counters: pendings drain fully and the stack peaks at
    /// the document depth of the relevant region.
    #[test]
    fn counters_are_sane_on_deep_documents() {
        let mut xml = String::from("<r>");
        for i in 0..30 {
            xml.push_str(&format!("<a><c>v{i}</c><b>k</b></a>"));
        }
        xml.push_str("</r>");
        let mut c = Corpus::new();
        c.add_parsed("d.xml", &xml).unwrap();
        let mut q = Qpt::new("d.xml");
        let r = q.add_node(None, Axis::Child, true, "r");
        let a = q.add_node(Some(r), Axis::Descendant, true, "a");
        q.add_node(Some(a), Axis::Descendant, true, "b");
        let cn = q.add_node(Some(a), Axis::Child, false, "c");
        q.node_mut(cn).c_ann = true;
        let (pdt, stats, oracle) = run(&c, &q);
        assert_same(&pdt, &oracle);
        assert!(stats.max_stack <= 4, "stack bounded by relevant depth: {stats:?}");
        assert_eq!(pdt.len(), 1 + 3 * 30);
    }
}
